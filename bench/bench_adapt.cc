// E29 — self-healing adaptation throughput (robustness extension; no
// paper artifact). Runs the closed-loop study the adapt subsystem exists
// for, end to end through the batch engine: a fleet decays epoch by epoch
// while the controller re-tunes (k, M) over a candidate grid to hold a
// detection floor under a false-alarm cap, with a per-epoch Monte-Carlo
// validation pass against the analytical prediction.
//
// Configs cover cold vs warm solver memo cache and solver-thread scaling.
// The adaptation loop's determinism contract (byte-identical results
// regardless of thread count or cache temperature) is enforced on this
// real workload: any divergence fails the bench.
//
// Output ends with one "BENCH_JSON {...}" line (epochs/s per config, warm
// speedup, retune count) that CI collects into the BENCH_*.json
// perf-trajectory artifact.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "adapt/adapt.h"
#include "adapt/spec.h"
#include "bench_util.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "opt/backend.h"
#include "prob/memo_cache.h"

using namespace sparsedet;

namespace {

// The acceptance-style scenario at bench weight: 120 nodes decaying to
// ~60% survival over eight epochs, a 6 x 9 (k, window) candidate grid
// re-evaluated at every epoch's estimated population, and 400 validation
// trials per epoch. Fixed seed — the run is a pure function of this text.
constexpr const char* kStudy = R"({
  "mode": "closed_loop",
  "params": {"nodes": 120},
  "failure": {"mean_lifetime_s": 25000},
  "horizon_epochs": 8, "epoch_periods": 20,
  "constraints": {"min_detection": 0.85, "pf": 0.00005, "max_fa": 0.05},
  "search": {"k": {"from": 1, "to": 6},
             "window": {"from": 8, "to": 24, "step": 2}},
  "sim": {"seed": 11, "trials": 400}})";

struct ConfigSpec {
  const char* label;
  std::size_t solver_threads;
  bool clear_memo;  // start this config from a cold memo cache
};

struct RunResult {
  double seconds = 0.0;
  std::int64_t epochs = 0;
  std::int64_t retunes = 0;
  bool held = false;
  std::string output;  // the determinism probe
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

RunResult RunConfig(const ConfigSpec& spec) {
  if (spec.clear_memo) prob::MemoCache::Global().Clear();
  const prob::MemoCacheStats before = prob::MemoCache::Global().Stats();

  engine::EngineOptions options;
  options.threads = 0;  // the pool is how the loop fans candidates out
  options.solver_threads = spec.solver_threads;
  engine::BatchEngine engine(options);
  opt::SyncEngineBackend backend(engine);
  const adapt::AdaptSpec study = adapt::ParseAdaptSpec(ParseJson(kStudy));

  RunResult result;
  Stopwatch watch;
  const JsonValue run = adapt::AdaptRun(study, backend, &engine.registry());
  result.seconds = bench::LapSeconds(watch);

  result.epochs = static_cast<std::int64_t>(run.Find("epochs_run")->AsDouble());
  result.retunes = static_cast<std::int64_t>(run.Find("retunes")->AsDouble());
  result.held = run.Find("held")->AsBool();
  result.output = run.ToString();

  const prob::MemoCacheStats after = prob::MemoCache::Global().Stats();
  result.memo_hits = after.hits - before.hits;
  result.memo_misses = after.misses - before.misses;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E29", "Self-healing adaptation loop",
      "Closed-loop (k, M) re-tuning through `adapt`: a decaying fleet, a\n"
      "candidate grid re-solved per epoch at the estimated population, and\n"
      "Monte-Carlo validation — cold vs warm solver memo, solver-thread\n"
      "scaling. Results must be byte-identical across every configuration.");

  const std::vector<ConfigSpec> configs = {
      {"memo cold, solver x1", 1, true},
      {"memo warm, solver x1", 1, false},
      {"memo warm, solver hw", 0, false},
  };

  Table table({"config", "epochs", "retunes", "seconds", "epochs/s",
               "memo hits", "memo misses"});
  std::string reference_output;
  JsonValue bench_configs = JsonValue::Array();
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double best_rate = 0.0;
  std::int64_t retunes = 0;
  bool held = false;
  for (const ConfigSpec& spec : configs) {
    const RunResult run = RunConfig(spec);
    const double rate = static_cast<double>(run.epochs) / run.seconds;
    table.BeginRow();
    table.AddCell(spec.label);
    table.AddInt(static_cast<int>(run.epochs));
    table.AddInt(static_cast<int>(run.retunes));
    table.AddNumber(run.seconds, 3);
    table.AddNumber(rate, 1);
    table.AddInt(static_cast<int>(run.memo_hits));
    table.AddInt(static_cast<int>(run.memo_misses));

    if (std::string(spec.label) == "memo cold, solver x1") {
      cold_seconds = run.seconds;
    }
    if (std::string(spec.label) == "memo warm, solver x1") {
      warm_seconds = run.seconds;
    }
    best_rate = std::max(best_rate, rate);
    retunes = run.retunes;
    held = run.held;
    JsonValue entry = JsonValue::Object();
    entry.Set("config", spec.label)
        .Set("epochs", run.epochs)
        .Set("seconds", run.seconds)
        .Set("epochs_per_s", rate)
        .Set("memo_hits", static_cast<std::int64_t>(run.memo_hits))
        .Set("memo_misses", static_cast<std::int64_t>(run.memo_misses));
    bench_configs.Append(std::move(entry));

    if (reference_output.empty()) {
      reference_output = run.output;
    } else if (run.output != reference_output) {
      std::cerr << "DETERMINISM VIOLATION: adaptation output differs "
                   "between configs\n";
      return 1;
    }
  }
  bench::Emit(table, argc, argv);

  const double warm_speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  JsonValue bench_json = JsonValue::Object();
  bench_json.Set("bench", "adapt")
      .Set("configs", std::move(bench_configs))
      .Set("epochs_per_s", best_rate)
      .Set("retunes", retunes)
      .Set("held", held)
      .Set("speedup_warm_vs_cold", warm_speedup);
  std::cout << "BENCH_JSON " << bench_json.ToString() << "\n";
  if (retunes == 0) {
    std::cerr << "SANITY FAILURE: the decaying fleet never forced a "
                 "retune\n";
    return 1;
  }
  if (!held) {
    std::cerr << "SANITY FAILURE: the adaptive loop failed to hold its "
                 "floor\n";
    return 1;
  }
  return 0;
}
