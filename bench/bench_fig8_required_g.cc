// E1 — Figure 8: required values of g and gh (M-S-approach) and G
// (S-approach) to reach 99% analysis accuracy, as the deployment density
// grows. Paper parameters: S = 32 km x 32 km, Rs = 1000 m, t = 1 min,
// M = 20, V = 10 m/s, N = 60 .. 260.
//
// Expected shape (paper): G climbs steeply (≈4 at N=60 up to ≈13 at
// N=260) while gh stays around 2-4 and g at 1-2; G >> gh >= g throughout,
// which is why the S-approach is computationally infeasible and the
// M-S-approach is not.
#include "bench_util.h"
#include "core/ms_approach.h"
#include "core/s_approach.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E1", "Figure 8",
      "Required caps for 99% analysis accuracy vs. deployment size\n"
      "(S = 32km x 32km, Rs = 1000m, t = 60s, M = 20, V = 10 m/s)");

  Table table({"N", "g (M-S)", "gh (M-S)", "G (S)", "S cost ~ms^2G",
               "M-S cost ~ms^2gh+(M-1)ms^2g"});
  for (int nodes = 60; nodes <= 260; nodes += 20) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;

    const MsRequiredCaps caps = MsRequiredCapsFor(p, 0.99);
    const int g_cap = SApproachRequiredCap(p, 0.99);

    table.BeginRow();
    table.AddInt(nodes);
    table.AddInt(caps.g);
    table.AddInt(caps.gh);
    table.AddInt(g_cap);
    table.AddCell(FormatDouble(SApproachCostModel(p.Ms(), g_cap), 0));
    table.AddCell(
        FormatDouble(MsApproachCostModel(p.Ms(), caps.gh, caps.g, 20), 0));
  }
  bench::Emit(table, argc, argv);
  return 0;
}
