// E13 — failure injection: node reliability. Undersea sensors fail (flood,
// battery, fouling); the spatial model extends exactly to this case by
// thinning the per-sensor report pmf with the survival probability q. This
// experiment validates the extension against a simulator that kills each
// node independently with probability 1 - q, and shows how much detection
// probability a deployment loses per 10% of failed nodes — directly
// answering "how much over-provisioning does a fleet need?".
#include "bench_util.h"
#include "core/ms_approach.h"
#include "core/s_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E13", "Failure injection (node reliability extension)",
      "P[>=5 reports in 20 periods] vs node survival probability q\n"
      "(V = 10 m/s, Pd = 0.9, 10000 trials; 'equivalent N' = q*N intuition)");

  Table table({"N", "q", "analysis(M-S)", "analysis(exact)", "simulation",
               "equiv. healthy N=q*N"});
  for (int nodes : {140, 240}) {
    for (double q : {1.0, 0.9, 0.75, 0.5, 0.25}) {
      SystemParams p = SystemParams::OnrDefaults();
      p.num_nodes = nodes;
      p.target_speed = 10.0;

      MsApproachOptions opt;
      opt.node_reliability = q;
      const double ms_analysis =
          MsApproachAnalyze(p, opt).detection_probability;
      const double exact = SApproachExactDetectionProbability(p, -1, q);

      TrialConfig config;
      config.params = p;
      config.node_reliability = q;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      // A healthy fleet of q*N nodes is the intuition check — thinning a
      // binomial deployment by q is exactly a q*N-mean deployment.
      SystemParams equiv = p;
      equiv.num_nodes = static_cast<int>(q * nodes + 0.5);
      const double equiv_p =
          SApproachExactDetectionProbability(equiv);

      table.BeginRow();
      table.AddInt(nodes);
      table.AddNumber(q, 2);
      table.AddNumber(ms_analysis, 4);
      table.AddNumber(exact, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(equiv_p, 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
