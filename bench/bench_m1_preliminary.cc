// E7 — Section 3.1: the M = 1 preliminary model (Eqs. 1-2) validated
// against simulation, plus the argument that motivates M > 1: in a sparse
// deployment the probability of >= 2 reports in a single period is tiny,
// so single-period group detection degenerates to instantaneous detection.
#include "bench_util.h"
#include "core/single_period.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E7", "Section 3.1 (M = 1 preliminary model, Eqs. 1-2)",
      "P1[X >= k]: analysis vs simulation with a single sensing period\n"
      "(V = 10 m/s, Pd = 0.9, 20000 trials)");

  Table table({"N", "k", "analysis", "simulation", "|diff|"});
  for (int nodes : {60, 120, 180, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;
    p.window_periods = 1;

    for (int k : {1, 2, 3}) {
      p.threshold_reports = k;
      const double analysis = SinglePeriodDetectionProbability(p);

      TrialConfig config;
      config.params = p;
      MonteCarloOptions mc;
      mc.trials = 20000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      table.BeginRow();
      table.AddInt(nodes);
      table.AddInt(k);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(std::abs(analysis - sim.point), 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
