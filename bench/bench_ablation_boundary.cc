// E12 — boundary ablation. The paper's analysis is boundary-free; its
// simulator matched it, implying boundary-free simulation. This experiment
// makes the boundary handling explicit:
//   toroidal — the field wraps (realizes the analysis assumptions exactly);
//   planar   — the track may leave the 32 km field into sensor-free space;
//   reflect  — the track bounces off the field edge.
// The planar gap grows with the track length (i.e. with V), quantifying
// how far the published model can be trusted near real field borders.
#include "bench_util.h"
#include "core/ms_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E12", "Boundary ablation (toroidal vs planar vs reflecting field)",
      "k = 5 of M = 20, Pd = 0.9, 10000 trials per cell");

  const StraightLineMotion unbounded(BoundaryPolicy::kUnbounded);
  const StraightLineMotion reflecting(BoundaryPolicy::kReflect);

  Table table({"V (m/s)", "N", "analysis", "sim toroidal", "sim planar",
               "sim reflect", "planar gap"});
  for (double speed : {4.0, 10.0}) {
    for (int nodes : {60, 120, 180, 240}) {
      SystemParams p = SystemParams::OnrDefaults();
      p.num_nodes = nodes;
      p.target_speed = speed;
      const double analysis = MsApproachAnalyze(p).detection_probability;

      MonteCarloOptions mc;
      mc.trials = 10000;

      TrialConfig toroidal;
      toroidal.params = p;
      const double sim_toroidal =
          EstimateDetectionProbability(toroidal, mc).point;

      TrialConfig planar;
      planar.params = p;
      planar.geometry = SensingGeometry::kPlanar;
      planar.motion = &unbounded;
      const double sim_planar =
          EstimateDetectionProbability(planar, mc).point;

      TrialConfig reflect;
      reflect.params = p;
      reflect.geometry = SensingGeometry::kPlanar;
      reflect.motion = &reflecting;
      const double sim_reflect =
          EstimateDetectionProbability(reflect, mc).point;

      table.BeginRow();
      table.AddNumber(speed, 0);
      table.AddInt(nodes);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim_toroidal, 4);
      table.AddNumber(sim_planar, 4);
      table.AddNumber(sim_reflect, 4);
      table.AddNumber(analysis - sim_planar, 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
