// E24 — the detection-vs-lifetime frontier. Duty cycling trades the two:
// P[detect] maps through Pd' = d*Pd (validated in E20) and node lifetime
// through the energy model. The frontier tells a designer what a year of
// extra lifetime costs in detection probability — the decision the
// energy-efficient-surveillance literature the paper builds on actually
// optimizes.
#include "bench_util.h"
#include "core/energy_model.h"
#include "core/ms_approach.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E24", "Detection vs lifetime frontier under duty cycling",
      "N = 240, V = 10 m/s, pf = 1e-3, mean route 4.3 hops (from E10)");

  const EnergyModel energy;
  const double pf = 1e-3;
  const double mean_hops = 4.3;

  Table table({"duty d", "P[detect] (analysis)", "drain (J/period)",
               "sensing share", "lifetime (days)"});
  for (double duty : {1.0, 0.75, 0.5, 0.35, 0.25, 0.15, 0.1}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = 240;
    p.target_speed = 10.0;

    SystemParams scaled = p;
    scaled.detect_prob = p.detect_prob * duty;
    const double detect = MsApproachAnalyze(scaled).detection_probability;

    const EnergyReport report = AnalyzeEnergy(
        p, energy, duty, SteadyStateReportRate(duty, pf), mean_hops);

    table.BeginRow();
    table.AddNumber(duty, 2);
    table.AddNumber(detect, 4);
    table.AddNumber(report.drain_per_period, 4);
    table.AddNumber(report.sensing_share, 3);
    table.AddNumber(report.lifetime_days, 1);
  }
  bench::Emit(table, argc, argv);
  return 0;
}
