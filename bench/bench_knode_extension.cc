// E8 — Section 4 extension: "at least k reports from at least h distinct
// nodes within M periods". The paper only sketches the enlarged m:n Markov
// state space; this experiment validates our implementation of it against
// simulation for h = 1 .. 3 and shows the detection cost of the stronger
// rule.
#include "bench_util.h"
#include "core/knode_model.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E8", "Section 4 (k-reports-from-h-nodes extension)",
      "P[>=5 reports from >=h nodes in 20 periods]: analysis vs simulation\n"
      "(V = 10 m/s, Pd = 0.9, 10000 trials)");

  Table table({"N", "h", "analysis", "simulation", "|diff|"});
  for (int nodes : {60, 120, 180, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;

    for (int h : {1, 2, 3}) {
      KNodeOptions opt;
      opt.h = h;
      const double analysis = KNodeAnalyze(p, opt).detection_probability;

      TrialConfig config;
      config.params = p;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim =
          EstimateKNodeDetectionProbability(config, h, mc);

      table.BeginRow();
      table.AddInt(nodes);
      table.AddInt(h);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(std::abs(analysis - sim.point), 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
