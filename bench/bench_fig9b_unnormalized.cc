// E3 — Figure 9(b): the same comparison as Figure 9(a) but with the
// Eq. 13 normalization DISABLED in the analysis.
//
// Expected shape (paper): the raw truncated analysis now under-estimates
// the simulation, and the error grows with N and V (the paper reports >4%
// at N = 240, V = 10 m/s; the exact size depends on how much probability
// mass the caps discard, i.e. on eta_MS of Eq. 14, printed alongside).
#include "bench_util.h"
#include "core/ms_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E3", "Figure 9(b)",
      "Detection probability with the analysis NOT normalized (Eq. 13 off)\n"
      "(k = 5 of M = 20, Pd = 0.9, gh = g = 3, 10000 trials)");

  MsApproachOptions raw;
  raw.normalize = false;

  Table table({"V (m/s)", "N", "analysis(raw)", "simulation", "error",
               "eta_MS (Eq.14)"});
  for (double speed : {4.0, 10.0}) {
    for (int nodes = 60; nodes <= 240; nodes += 20) {
      SystemParams p = SystemParams::OnrDefaults();
      p.num_nodes = nodes;
      p.target_speed = speed;

      const MsApproachResult analysis = MsApproachAnalyze(p, raw);

      TrialConfig config;
      config.params = p;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      table.BeginRow();
      table.AddNumber(speed, 0);
      table.AddInt(nodes);
      table.AddNumber(analysis.detection_probability, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(sim.point - analysis.detection_probability, 4);
      table.AddNumber(analysis.predicted_accuracy, 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
