// E10 — Section 4's communication argument: "the maximum possible physical
// distance is around 36 km, that is, around 6 hops [Rc = 6 km]; ... this
// 6-hop end-to-end communication can easily be finished within a single
// sensing period". The paper uses this to justify ignoring the
// communication stack entirely. This experiment measures it on concrete
// deployments: base station at the middle of an edge (max distance
// sqrt(16^2 + 32^2) ~ 35.8 km), BFS shortest path and greedy geographic
// forwarding, 6 s per hop.
#include "bench_util.h"
#include "common/rng.h"
#include "geometry/field.h"
#include "net/delivery.h"
#include "net/topology.h"
#include "prob/stats.h"
#include "sim/deployment.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E10", "Section 4 (multi-hop delivery inside one sensing period)",
      "32 km x 32 km field, Rc = 6 km, base mid-edge, 6 s per hop, 30 "
      "deployments per N");

  Table table({"N", "routing", "delivered", "mean hops", "max hops",
               "P[latency <= period]"});
  const Field field = Field::Square(32000.0);
  const Rng base_rng(4242);

  for (int nodes : {60, 120, 180, 240}) {
    for (bool greedy : {false, true}) {
      MeanVarAccumulator delivered;
      MeanVarAccumulator mean_hops;
      MeanVarAccumulator within;
      int max_hops = 0;
      for (int rep = 0; rep < 30; ++rep) {
        Rng rng = base_rng.Substream(nodes * 100 + rep);
        std::vector<Vec2> positions = DeployUniform(field, nodes, rng);
        positions.push_back({16000.0, 0.0});  // base station
        const Topology topology(std::move(positions), 6000.0);
        const DeliveryStats stats =
            EvaluateDelivery(topology, topology.num_nodes() - 1,
                             /*per_hop_latency=*/6.0,
                             /*period_length=*/60.0, greedy);
        delivered.Add(stats.delivered_fraction);
        mean_hops.Add(stats.mean_hops);
        within.Add(stats.within_period_fraction);
        max_hops = std::max(max_hops, stats.max_hops);
      }
      table.BeginRow();
      table.AddInt(nodes);
      table.AddCell(greedy ? "greedy GF" : "BFS");
      table.AddNumber(delivered.Mean(), 3);
      table.AddNumber(mean_hops.Mean(), 2);
      table.AddInt(max_hops);
      table.AddNumber(within.Mean(), 3);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
