// E25 — contention-derived per-hop latency. Replaces the assumed constant
// per-hop delay with a slotted-CSMA contention model whose latency grows
// with local density, then re-checks the paper's "report within one
// sensing period" premise: denser deployments route in fewer hops but each
// hop contends with more neighbors. The experiment locates where the
// premise stops binding.
#include "bench_util.h"
#include "common/rng.h"
#include "geometry/field.h"
#include "net/delivery.h"
#include "net/mac.h"
#include "net/topology.h"
#include "prob/stats.h"
#include "sim/deployment.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E25", "MAC contention and the one-period delivery premise",
      "Slotted CSMA (50 ms slots, optimal p_tx), Rc = 6 km, base mid-edge,\n"
      "20 deployments per N");

  Table table({"N", "mean degree", "hop latency (s)", "mean hops",
               "route latency (s)", "P[latency <= 60 s]"});
  const Field field = Field::Square(32000.0);
  const MacModel mac;
  const Rng base_rng(515);

  for (int nodes : {60, 120, 240, 480, 960}) {
    MeanVarAccumulator degree;
    MeanVarAccumulator hop_latency;
    MeanVarAccumulator hops;
    MeanVarAccumulator route_latency;
    MeanVarAccumulator within;
    for (int rep = 0; rep < 20; ++rep) {
      Rng rng = base_rng.Substream(nodes * 64 + rep);
      std::vector<Vec2> positions = DeployUniform(field, nodes, rng);
      positions.push_back({16000.0, 0.0});
      const Topology topology(std::move(positions), 6000.0);
      const double latency = MeanHopLatency(topology, mac);
      const DeliveryStats stats =
          EvaluateDelivery(topology, topology.num_nodes() - 1, latency,
                           /*period_length=*/60.0, /*use_greedy=*/false);
      degree.Add(topology.AverageDegree());
      hop_latency.Add(latency);
      hops.Add(stats.mean_hops);
      route_latency.Add(stats.mean_latency);
      within.Add(stats.within_period_fraction);
    }
    table.BeginRow();
    table.AddInt(nodes);
    table.AddNumber(degree.Mean(), 1);
    table.AddNumber(hop_latency.Mean(), 2);
    table.AddNumber(hops.Mean(), 2);
    table.AddNumber(route_latency.Mean(), 2);
    table.AddNumber(within.Mean(), 3);
  }
  bench::Emit(table, argc, argv);
  return 0;
}
