// E22 — sliding windows over long target dwells. The paper analyzes ONE
// M-period window, implicitly assuming the target is present for exactly
// M periods. A deployed base station slides the window over a continuous
// stream while a real target may dwell D > M periods. For such targets:
//   * the single-window analysis P_M[X >= k] is a LOWER bound (the first
//     M periods alone already give that chance);
//   * the D-period-window analysis P_D[X >= k] is an UPPER bound (k
//     reports anywhere in D periods need not fall inside one M-window).
// The sliding-window simulation must land between the two, much closer to
// the upper bound because true-target reports cluster in time.
#include <atomic>

#include "bench_util.h"
#include "common/parallel.h"
#include "core/ms_approach.h"
#include "detect/window_detector.h"
#include "sim/trial.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E22", "Sliding M-window over a long target dwell",
      "Target present D = 40 periods, detector slides M = 20, k = 5\n"
      "(V = 10 m/s, 5000 trials)");

  Table table({"N", "lower bound P_20", "sim (sliding)", "upper bound P_40"});
  const int dwell = 40;
  for (int nodes : {60, 100, 140, 180}) {
    SystemParams window20 = SystemParams::OnrDefaults();
    window20.num_nodes = nodes;
    window20.target_speed = 10.0;

    SystemParams window40 = window20;
    window40.window_periods = dwell;

    const double lower = MsApproachAnalyze(window20).detection_probability;
    const double upper = MsApproachAnalyze(window40).detection_probability;

    // Simulate a D-period dwell, slide the 20-period count-only window.
    TrialConfig config;
    config.params = window40;  // target present for all 40 periods
    WindowDetector::Options detector_options;
    detector_options.k = 5;
    detector_options.window = 20;
    const Rng base(2718);
    std::atomic<int> detected{0};
    const int trials = 5000;
    ParallelFor(static_cast<std::size_t>(trials), [&](std::size_t i) {
      Rng rng = base.Substream(i);
      const TrialResult trial = RunTrial(config, rng);
      if (DetectTrial(trial, detector_options)) detected.fetch_add(1);
    });
    const double sliding = static_cast<double>(detected.load()) / trials;

    table.BeginRow();
    table.AddInt(nodes);
    table.AddNumber(lower, 4);
    table.AddNumber(sliding, 4);
    table.AddNumber(upper, 4);
  }
  bench::Emit(table, argc, argv);
  return 0;
}
