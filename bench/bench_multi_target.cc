// E19 — multiple targets (the paper's future-work case). Two targets on
// parallel tracks at a controlled separation:
//   * per-target detection (count of that target's own reports >= k) must
//     match the single-target analysis at EVERY separation — the paper's
//     "our analysis still holds per target" claim, which in the count
//     abstraction holds even for near targets;
//   * the base station, which sees only an undifferentiated report
//     stream, must also RESOLVE two tracks; greedy chain-peeling succeeds
//     when the tracks are far apart and merges them when they are within
//     the gate width (~ V*t + 2*Rs), locating the paper's excluded regime.
#include "bench_util.h"
#include "common/parallel.h"
#include "core/ms_approach.h"
#include "detect/track_count.h"
#include "sim/multi_target.h"

#include <atomic>

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E19", "Two targets on parallel tracks (future-work regime)",
      "N = 240, V = 10 m/s, k = 5 of M = 20, 4000 trials per separation");

  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = 240;
  p.target_speed = 10.0;
  const double single_analysis = MsApproachAnalyze(p).detection_probability;
  const TrackGateParams gate = TrackGateParams::FromSystem(p);
  const int k = p.threshold_reports;
  const int trials = 4000;

  Table table({"separation (m)", "P[target1]", "P[target2]",
               "single-target analysis", "P[>=2 tracks | both detected]"});
  for (double separation : {500.0, 2000.0, 4000.0, 8000.0, 16000.0}) {
    std::atomic<int> det1{0};
    std::atomic<int> det2{0};
    std::atomic<int> both{0};
    std::atomic<int> resolved{0};
    TrialConfig config;
    config.params = p;
    const Rng base(77);
    ParallelFor(static_cast<std::size_t>(trials), [&](std::size_t i) {
      Rng rng = base.Substream(i);
      const MultiTargetResult trial =
          RunParallelTargetsTrial(config, 2, separation, rng);
      const bool d1 = trial.per_target_reports[0] >= k;
      const bool d2 = trial.per_target_reports[1] >= k;
      if (d1) det1.fetch_add(1);
      if (d2) det2.fetch_add(1);
      if (d1 && d2) {
        both.fetch_add(1);
        if (CountDisjointTracks(trial.merged_reports, gate, k) >= 2) {
          resolved.fetch_add(1);
        }
      }
    });

    table.BeginRow();
    table.AddNumber(separation, 0);
    table.AddNumber(static_cast<double>(det1.load()) / trials, 4);
    table.AddNumber(static_cast<double>(det2.load()) / trials, 4);
    table.AddNumber(single_analysis, 4);
    table.AddNumber(both.load() > 0
                        ? static_cast<double>(resolved.load()) / both.load()
                        : 0.0,
                    4);
  }
  bench::Emit(table, argc, argv);
  return 0;
}
