// E18 — end-to-end detection with REAL report transport. The paper drops
// the communication stack after arguing every report arrives within one
// period; this experiment runs the whole pipeline — sensing, routing over
// the trial's own multi-hop topology, delivery delay/loss, then the
// k-of-M decision on ARRIVED reports — and compares against the ideal
// transport assumption.
//
// Expected: at the densities the paper evaluates (N >= 120) the network is
// well connected and the end-to-end loss is small, confirming the premise;
// at N = 60 disconnection and greedy voids take a visible bite, marking
// the premise's boundary. Per-hop loss directly erodes detection.
#include "bench_util.h"
#include "core/ms_approach.h"
#include "detect/transport.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E18", "End-to-end detection with real multi-hop transport",
      "k = 5 of M = 20, V = 10 m/s, Rc = 6 km, base mid-edge, 6 s/hop,\n"
      "5000 trials per cell");

  Table table({"N", "routing", "loss/hop", "analysis(ideal)", "sim(ideal)",
               "sim(transported)", "transport cost"});
  MonteCarloOptions mc;
  mc.trials = 5000;

  for (int nodes : {60, 120, 180, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;
    const double analysis = MsApproachAnalyze(p).detection_probability;

    TrialConfig config;
    config.params = p;
    const double ideal = EstimateDetectionProbability(config, mc).point;

    for (bool greedy : {false, true}) {
      for (double loss : {0.0, 0.05}) {
        TransportOptions transport;
        transport.use_greedy = greedy;
        transport.loss_per_hop = loss;
        const double transported =
            EstimateDetectionWithTransport(config, transport, mc).point;
        table.BeginRow();
        table.AddInt(nodes);
        table.AddCell(greedy ? "greedy" : "BFS");
        table.AddNumber(loss, 2);
        table.AddNumber(analysis, 4);
        table.AddNumber(ideal, 4);
        table.AddNumber(transported, 4);
        table.AddNumber(ideal - transported, 4);
      }
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
