// E28 — TCP serve-mode throughput (serving extension; no paper artifact).
// Drives the epoll front-end (src/server/) end to end from real client
// sockets: 32 connections, each pipelining windows of analyze requests,
// 100k+ requests total. Measures sustained throughput and per-request
// latency quantiles, then verifies the two serving guarantees that make
// the TCP path trustworthy:
//
//   * byte-identity — the concatenated per-connection response streams
//     must equal what the stdio `serve` loop emits for the same lines, so
//     the transport adds no observable behavior;
//   * snapshot warm-start — after a drain (which persists the memo-cache
//     snapshot) and a full memo Clear(), a restarted server must answer a
//     first batch of repeat scenarios with zero memo misses.
//
// Phase 1 also scrapes the out-of-band admin plane (/metrics, /healthz,
// /statusz, /tracez) continuously while the data plane is saturated;
// every scrape must answer 200 with a non-empty body, and /metrics must
// carry the server latency split and the SLO burn-rate gauges.
//
// Output ends with one "BENCH_JSON {...}" line (throughput, p50/p99,
// identity + warm-start + admin-scrape verdicts) that CI collects into
// the perf-trajectory artifact. Exits non-zero when any guarantee fails.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "common/framing.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "prob/memo_cache.h"
#include "server/tcp_server.h"

using namespace sparsedet;

namespace {

constexpr int kConnections = 32;
constexpr int kWindow = 128;  // pipelined requests in flight per connection
constexpr int kScenarios = 24;

// Distinct analyze scenario `slot`, as a serve-protocol request line.
std::string MakeLine(int id, int slot) {
  std::ostringstream os;
  os << "{\"id\": " << id << ", \"op\": \"analyze\", \"params\": {\"nodes\": "
     << (60 + 20 * (slot % 12)) << ", \"speed\": " << (6 + 2 * (slot / 12))
     << "}}";
  return os.str();
}

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct ClientResult {
  std::string responses;           // raw response bytes, request order
  std::vector<double> latency_us;  // per-request, send-of-window to receive
  bool ok = false;
};

// Reads complete '\n'-terminated responses from `fd` until `count` have
// arrived, appending bytes to `result` and stamping one latency sample per
// response. Returns false on EOF/error before `count` responses.
bool ReadResponses(int fd, int count, std::chrono::steady_clock::time_point t0,
                   ClientResult* result) {
  char buf[1 << 16];
  int seen = 0;
  while (seen < count) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return false;
    const auto now = std::chrono::steady_clock::now();
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') {
        ++seen;
        result->latency_us.push_back(
            std::chrono::duration<double, std::micro>(now - t0).count());
      }
    }
    result->responses.append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

// One connection's worth of load: pipeline `lines` in windows of kWindow,
// reading each window's responses before sending the next.
void RunClient(int port, const std::vector<std::string>& lines,
               ClientResult* result) {
  const int fd = ConnectTo(port);
  if (fd < 0) return;
  for (std::size_t start = 0; start < lines.size(); start += kWindow) {
    const std::size_t end = std::min(lines.size(), start + kWindow);
    std::string window;
    for (std::size_t i = start; i < end; ++i) {
      window += lines[i];
      window += '\n';
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (!framing::WriteAllFd(fd, window.data(), window.size()) ||
        !ReadResponses(fd, static_cast<int>(end - start), t0, result)) {
      ::close(fd);
      return;
    }
  }
  ::close(fd);
  result->ok = true;
}

engine::EngineOptions MakeEngineOptions() {
  engine::EngineOptions options;
  options.threads = 0;  // hardware
  options.cache_capacity = 4096;
  options.solver_threads = 1;
  options.memo_cache_entries = 4096;
  // SLO tracking on, so the admin scrape below sees the burn-rate gauges
  // under load (the gauges never touch response bytes, so phase 2's
  // byte-identity check is unaffected).
  options.slo.availability = 0.999;
  options.slo.p99_ms = 30'000;
  return options;
}

// One admin-plane scrape: blocking HTTP GET against the admin port.
// Returns the response body; empty on connect failure, read failure or a
// non-200 status.
std::string AdminGet(int port, const std::string& path) {
  const int fd = ConnectTo(port);
  if (fd < 0) return "";
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: bench\r\n\r\n";
  if (!framing::WriteAllFd(fd, request.data(), request.size())) {
    ::close(fd);
    return "";
  }
  std::string raw;
  char buf[1 << 14];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.1 200", 0) != 0) return "";
  const std::size_t split = raw.find("\r\n\r\n");
  return split == std::string::npos ? "" : raw.substr(split + 4);
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E28", "TCP serve-mode throughput",
      "32 pipelined client connections drive 100k+ analyze requests\n"
      "through the epoll TCP front-end; verifies byte-identity against\n"
      "the stdio serve loop and zero-miss warm start from the memo-cache\n"
      "snapshot written at drain.");

  // CI's sanitizer smoke lowers the request count; the default exercises
  // the 100k+ acceptance bar.
  int per_conn = 3200;  // 32 * 3200 = 102,400 requests
  if (const char* env = std::getenv("SPARSEDET_BENCH_NET_REQUESTS")) {
    per_conn = std::max(kScenarios, std::atoi(env) / kConnections);
  }
  const std::string snapshot_path = "bench_net_serve_memo.snap";
  std::remove(snapshot_path.c_str());

  // Per-connection request lines: ids are globally unique, scenarios cycle
  // through a shared pool so the result cache carries the steady state.
  std::vector<std::vector<std::string>> conn_lines(kConnections);
  for (int c = 0; c < kConnections; ++c) {
    conn_lines[c].reserve(static_cast<std::size_t>(per_conn));
    for (int i = 0; i < per_conn; ++i) {
      conn_lines[c].push_back(
          MakeLine(c * 1000000 + i, (c * 7 + i) % kScenarios));
    }
  }
  const std::uint64_t total_requests =
      static_cast<std::uint64_t>(kConnections) *
      static_cast<std::uint64_t>(per_conn);

  prob::MemoCache::Global().Clear();

  // --- Phase 1: cold serve under concurrent pipelined load, with the
  // admin plane scraped out-of-band the whole time. ----------------------
  server::TcpServerOptions sopts;
  sopts.memo_snapshot_path = snapshot_path;
  sopts.max_connections = kConnections + 4;
  sopts.admin_port = 0;
  double seconds = 0.0;
  std::vector<ClientResult> results(kConnections);
  std::uint64_t admin_scrapes = 0;
  std::uint64_t admin_scrape_failures = 0;
  {
    engine::BatchEngine batch_engine(MakeEngineOptions());
    server::TcpServer server(batch_engine, sopts);
    server.Start();
    std::thread loop([&] { server.Run(); });

    // Rotates through the four endpoints while the data plane is
    // saturated; every scrape must come back 200 with a non-empty body,
    // and /metrics must carry the latency split and the SLO gauges.
    std::atomic<bool> stop_scraper{false};
    std::thread scraper([&, admin_port = server.admin_port()] {
      const std::string paths[] = {"/metrics", "/healthz", "/statusz",
                                   "/tracez"};
      for (std::uint64_t i = 0; !stop_scraper.load(std::memory_order_relaxed);
           ++i) {
        const std::string& path = paths[i % 4];
        const std::string body = AdminGet(admin_port, path);
        ++admin_scrapes;
        const bool ok =
            !body.empty() &&
            (path != "/metrics" ||
             (body.find("server_request_us_bucket") != std::string::npos &&
              body.find("server_queue_wait_us_bucket") != std::string::npos &&
              body.find("slo_burn_rate") != std::string::npos));
        if (!ok) ++admin_scrape_failures;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });

    Stopwatch watch;
    std::vector<std::thread> clients;
    clients.reserve(kConnections);
    for (int c = 0; c < kConnections; ++c) {
      clients.emplace_back(RunClient, server.port(), std::cref(conn_lines[c]),
                           &results[c]);
    }
    for (std::thread& t : clients) t.join();
    seconds = bench::LapSeconds(watch);

    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    server.RequestDrain();  // drains in-flight work, writes the snapshot
    loop.join();
  }
  if (admin_scrapes == 0 || admin_scrape_failures != 0) {
    std::cerr << "FAIL: admin plane under load: " << admin_scrape_failures
              << " failed scrapes of " << admin_scrapes << "\n";
  }

  std::vector<double> latencies;
  latencies.reserve(total_requests);
  for (const ClientResult& r : results) {
    if (!r.ok) {
      std::cerr << "FAIL: a client connection died before finishing\n";
      return 1;
    }
    latencies.insert(latencies.end(), r.latency_us.begin(),
                     r.latency_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50_us = Quantile(latencies, 0.50);
  const double p99_us = Quantile(latencies, 0.99);
  const double throughput = static_cast<double>(total_requests) / seconds;

  // --- Phase 2: byte-identity against the stdio serve loop. -------------
  // The same lines, connection by connection, through a fresh stdio
  // engine; each connection's TCP response stream must match exactly.
  bool identical = true;
  {
    std::ostringstream all_lines;
    for (int c = 0; c < kConnections; ++c) {
      for (const std::string& line : conn_lines[c]) all_lines << line << "\n";
    }
    engine::BatchEngine stdio_engine(MakeEngineOptions());
    std::istringstream in(all_lines.str());
    std::ostringstream out;
    stdio_engine.Serve(in, out);
    std::string expected;
    for (const ClientResult& r : results) expected += r.responses;
    identical = out.str() == expected;
    if (!identical) {
      std::cerr << "FAIL: TCP responses diverge from stdio serve ("
                << out.str().size() << " vs " << expected.size()
                << " bytes)\n";
    }
  }

  // --- Phase 3: warm start from the drain-time snapshot. ----------------
  const prob::MemoCacheStats cold_stats = prob::MemoCache::Global().Stats();
  prob::MemoCache::Global().Clear();
  std::uint64_t warm_misses = ~0ull;
  std::uint64_t restored = 0;
  double warm_seconds = 0.0;
  {
    engine::BatchEngine batch_engine(MakeEngineOptions());
    server::TcpServer server(batch_engine, sopts);
    server.Start();  // loads the snapshot written by phase 1's drain
    std::thread loop([&] { server.Run(); });

    const prob::MemoCacheStats before = prob::MemoCache::Global().Stats();
    restored = before.restored;
    std::vector<std::string> first_batch;
    for (int s = 0; s < kScenarios; ++s) {
      first_batch.push_back(MakeLine(9000000 + s, s));
    }
    ClientResult warm;
    Stopwatch watch;
    RunClient(server.port(), first_batch, &warm);
    warm_seconds = bench::LapSeconds(watch);
    const prob::MemoCacheStats after = prob::MemoCache::Global().Stats();
    server.RequestDrain();
    loop.join();
    if (!warm.ok) {
      std::cerr << "FAIL: warm-start client died\n";
      return 1;
    }
    warm_misses = after.misses - before.misses;
    if (warm_misses != 0) {
      std::cerr << "FAIL: warm start from snapshot took " << warm_misses
                << " memo misses (want 0)\n";
    }
  }
  std::remove(snapshot_path.c_str());
  std::remove((snapshot_path + ".tmp").c_str());

  Table table({"phase", "requests", "seconds", "req/s", "p50 us", "p99 us"});
  table.BeginRow();
  table.AddCell("cold serve (32 conns)");
  table.AddInt(static_cast<int>(total_requests));
  table.AddNumber(seconds, 3);
  table.AddNumber(throughput, 0);
  table.AddNumber(p50_us, 1);
  table.AddNumber(p99_us, 1);
  table.BeginRow();
  table.AddCell("warm first batch");
  table.AddInt(kScenarios);
  table.AddNumber(warm_seconds, 4);
  table.AddNumber(static_cast<double>(kScenarios) / warm_seconds, 0);
  table.AddCell("-");
  table.AddCell("-");
  bench::Emit(table, argc, argv);

  JsonValue bench_json = JsonValue::Object();
  bench_json.Set("bench", "net_serve")
      .Set("connections", kConnections)
      .Set("requests", static_cast<std::int64_t>(total_requests))
      .Set("seconds", seconds)
      .Set("requests_per_s", throughput)
      .Set("p50_us", p50_us)
      .Set("p99_us", p99_us)
      .Set("byte_identical_vs_stdio", identical)
      .Set("admin_scrapes", static_cast<std::int64_t>(admin_scrapes))
      .Set("admin_scrape_failures",
           static_cast<std::int64_t>(admin_scrape_failures))
      .Set("memo_entries_after_cold",
           static_cast<std::int64_t>(cold_stats.entries))
      .Set("snapshot_restored_entries", static_cast<std::int64_t>(restored))
      .Set("warm_first_batch_misses", static_cast<std::int64_t>(warm_misses))
      .Set("warm_first_batch_seconds", warm_seconds);
  std::cout << "BENCH_JSON " << bench_json.ToString() << "\n";

  return (identical && warm_misses == 0 && admin_scrapes > 0 &&
          admin_scrape_failures == 0)
             ? 0
             : 1;
}
