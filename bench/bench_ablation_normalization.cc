// E11 — ablation of the Eq. 13 normalization. The paper observes
// (Section 4) that although Eq. 14 predicts e.g. ~96% retained mass at
// N = 240, V = 10 m/s with gh = g = 3, the NORMALIZED analysis lands
// within 1% of the simulation — normalization redistributes the truncated
// mass proportionally and recovers almost all of the accuracy. This sweep
// quantifies that across caps, against the exact spatial model.
#include <cmath>

#include "bench_util.h"
#include "core/ms_approach.h"
#include "core/s_approach.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E11", "Normalization ablation (Eq. 13 vs raw truncation)",
      "N = 240, V = 10 m/s, k = 5 of M = 20; exact spatial model as ground "
      "truth");

  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = 240;
  p.target_speed = 10.0;
  const double exact = SApproachExactDetectionProbability(p);

  Table table({"gh=g", "eta_MS (Eq.14)", "raw P", "raw error",
               "normalized P", "normalized error"});
  for (int cap = 1; cap <= 6; ++cap) {
    MsApproachOptions raw;
    raw.gh = cap;
    raw.g = cap;
    raw.normalize = false;
    MsApproachOptions norm = raw;
    norm.normalize = true;

    const MsApproachResult r_raw = MsApproachAnalyze(p, raw);
    const MsApproachResult r_norm = MsApproachAnalyze(p, norm);

    table.BeginRow();
    table.AddInt(cap);
    table.AddNumber(r_raw.predicted_accuracy, 4);
    table.AddNumber(r_raw.detection_probability, 4);
    table.AddNumber(std::abs(r_raw.detection_probability - exact), 4);
    table.AddNumber(r_norm.detection_probability, 4);
    table.AddNumber(std::abs(r_norm.detection_probability - exact), 4);
  }
  std::cout << "exact spatial model: P = " << FormatDouble(exact, 4)
            << "\n\n";
  bench::Emit(table, argc, argv);
  return 0;
}
