function(sparsedet_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE
    sparsedet_detect sparsedet_net sparsedet_sim sparsedet_core
    sparsedet_markov sparsedet_linalg sparsedet_prob sparsedet_geometry
    sparsedet_common sparsedet_options)
endfunction()

sparsedet_bench(bench_fig8_required_g)
sparsedet_bench(bench_fig9a_straight_line)
sparsedet_bench(bench_fig9b_unnormalized)
sparsedet_bench(bench_fig9c_random_walk)
sparsedet_bench(bench_tapproach_states)
sparsedet_bench(bench_m1_preliminary)
sparsedet_bench(bench_knode_extension)
sparsedet_bench(bench_false_alarms)
sparsedet_bench(bench_net_delivery)
sparsedet_bench(bench_ablation_normalization)
sparsedet_bench(bench_ablation_boundary)
sparsedet_bench(bench_ablation_reliability)
sparsedet_bench(bench_varying_speed)
sparsedet_bench(bench_ablation_deployment)
sparsedet_bench(bench_latency)
sparsedet_bench(bench_dwell_sensing)
sparsedet_bench(bench_transport)
sparsedet_bench(bench_multi_target)
sparsedet_bench(bench_duty_cycle)
sparsedet_bench(bench_sensitivity)
sparsedet_bench(bench_sliding_window)
sparsedet_bench(bench_track_estimation)
sparsedet_bench(bench_energy_frontier)
sparsedet_bench(bench_mac_latency)
sparsedet_bench(bench_roc_comparison)
sparsedet_bench(bench_coverage_breach)
target_link_libraries(bench_coverage_breach PRIVATE sparsedet_coverage)

sparsedet_bench(bench_timing_s_vs_ms)
target_link_libraries(bench_timing_s_vs_ms PRIVATE benchmark::benchmark)
sparsedet_bench(bench_micro_perf)
target_link_libraries(bench_micro_perf PRIVATE benchmark::benchmark)

sparsedet_bench(bench_engine_batch)
target_link_libraries(bench_engine_batch PRIVATE sparsedet_engine)

sparsedet_bench(bench_net_serve)
target_link_libraries(bench_net_serve PRIVATE sparsedet_server
                                              sparsedet_engine)

sparsedet_bench(bench_optimize)
target_link_libraries(bench_optimize PRIVATE sparsedet_opt
                                             sparsedet_engine)

sparsedet_bench(bench_adapt)
target_link_libraries(bench_adapt PRIVATE sparsedet_adapt
                                          sparsedet_engine)
