// E27 — batch engine throughput (scaling extension; no paper artifact).
// Measures the request-evaluation engine end to end on a parameter-sweep
// workload: k-sweeps over overlapping (nodes, speed) scenarios, the shape
// where the cross-request memo cache pays — every unit of one k-sweep
// shares the same stage pmfs and propagated distribution, and nearby
// requests share Region(i) sub-pmfs. Configs cover no-cache baseline,
// cold and warm memo cache, solver-thread scaling, and worker-pool
// scaling under cross-request group dispatch. The determinism contract
// means every configuration must produce byte-identical result streams —
// verified here on real workloads, not just in unit tests.
//
// Also measures the cold (memo-off) M-S solve directly, pinned against
// the PR5 trajectory baseline: the SIMD kernel rewrite promises >= 5x.
//
// Output ends with one "BENCH_JSON {...}" line (wall time, memo hit rate,
// speedups) that CI collects into the BENCH_*.json perf-trajectory
// artifact; tools/bench_regression.py enforces the floors.
#include <algorithm>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "core/ms_approach.h"
#include "core/params.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "prob/memo_cache.h"

using namespace sparsedet;

namespace {

// The cold BM_FullMsAnalysis/0 measurement from the PR5 BENCH artifact
// (ns per solve, ONR scenario at N=240, v=10). The SIMD hot-path rewrite
// is gated on staying >= 5x faster than this.
constexpr double kPr5FullMsAnalysisNs = 83912.9;

// n/8 k-sweep requests over a nodes x speed grid with ~25% repeated
// scenarios (overlapping parameter studies), each expanding into 8 analyze
// units that differ only in the report threshold k.
std::string MakeSweepWorkload(int n) {
  std::ostringstream os;
  const int requests = n / 8;
  for (int i = 0; i < requests; ++i) {
    const int slot = i % (3 * requests / 4 == 0 ? 1 : 3 * requests / 4);
    const int nodes = 60 + 20 * (slot % 12);
    const int speed = 6 + 2 * (slot / 12 % 5);
    os << "{\"id\": " << i << ", \"op\": \"sweep\", \"params\": {\"nodes\": "
       << nodes << ", \"speed\": " << speed
       << "}, \"sweep\": {\"param\": \"k\", \"from\": 1, \"to\": 8, "
          "\"step\": 1}}\n";
  }
  return os.str();
}

struct ConfigSpec {
  const char* label;
  std::size_t pool_threads;  // EngineOptions::threads (0 = hardware)
  std::size_t solver_threads;
  std::size_t memo_entries;
  bool clear_memo;  // start every repeat from a cold memo cache
  bool group_dispatch = true;
};

struct RunResult {
  double seconds = 0.0;  // best over repeats
  std::string output;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  obs::RegistrySnapshot metrics;
};

RunResult RunConfigOnce(const std::string& workload, const ConfigSpec& spec) {
  if (spec.clear_memo) prob::MemoCache::Global().Clear();
  const prob::MemoCacheStats before = prob::MemoCache::Global().Stats();

  engine::EngineOptions options;
  options.threads = spec.pool_threads;
  options.cache_capacity = 0;  // no result cache: every request solves
  options.solver_threads = spec.solver_threads;
  options.memo_cache_entries = spec.memo_entries;
  options.group_dispatch = spec.group_dispatch;
  engine::BatchEngine batch_engine(options);

  RunResult result;
  Stopwatch watch;
  std::istringstream in(workload);
  std::ostringstream out;
  batch_engine.RunBatch(in, out);
  result.seconds = bench::LapSeconds(watch);
  result.output = out.str();
  result.metrics = batch_engine.MetricsSnapshot();

  const prob::MemoCacheStats after = prob::MemoCache::Global().Stats();
  result.memo_hits = after.hits - before.hits;
  result.memo_misses = after.misses - before.misses;
  return result;
}

// Best-of-N wall time: container timing noise easily exceeds the gaps the
// floors below guard, and the minimum is the standard robust estimator
// for "how fast can this configuration go".
RunResult RunConfig(const std::string& workload, const ConfigSpec& spec,
                    int repeats) {
  RunResult best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    RunResult run = RunConfigOnce(workload, spec);
    const double seconds = run.seconds;
    if (seconds < best.seconds) best = std::move(run);
  }
  return best;
}

// Cold (memo-off) end-to-end M-S solve, the micro bench BM_FullMsAnalysis
// re-measured here so the trajectory artifact carries it: ONR scenario,
// N=240 nodes, v=10 -> M*Z+1 = 301 states, six stage pmfs, 20 propagation
// steps. Best-of-batches for the same noise reason as above.
double MeasureColdFullMsNs() {
  prob::MemoCache& memo = prob::MemoCache::Global();
  const std::size_t prev_capacity = memo.capacity();
  memo.SetCapacity(0);
  SystemParams params = SystemParams::OnrDefaults();
  params.num_nodes = 240;
  params.target_speed = 10.0;
  double sink = 0.0;
  for (int i = 0; i < 30; ++i) {
    sink += MsApproachAnalyze(params).detection_probability;
  }
  double best = std::numeric_limits<double>::infinity();
  constexpr int kIters = 200;
  for (int batch = 0; batch < 5; ++batch) {
    Stopwatch watch;
    for (int i = 0; i < kIters; ++i) {
      sink += MsApproachAnalyze(params).detection_probability;
    }
    best = std::min(best, bench::LapSeconds(watch) * 1e9 / kIters);
  }
  memo.SetCapacity(prev_capacity);
  if (!(sink > 0.0)) std::cerr << "impossible: zero detection mass\n";
  return best;
}

// One JSON line per config: where each request's wall time went, from the
// engine's phase histograms (queue-wait vs solve vs serialize, summed
// across all units/requests of the run).
JsonValue PhaseBreakdown(const std::string& label,
                         const obs::RegistrySnapshot& snapshot) {
  JsonValue phases = JsonValue::Object();
  for (const obs::RegistrySnapshot::HistogramValue& h : snapshot.histograms) {
    if (h.name != "sparsedet_phase_duration_ns" || h.labels.empty()) continue;
    if (h.histogram.total == 0) continue;
    JsonValue entry = JsonValue::Object();
    entry.Set("count", static_cast<std::int64_t>(h.histogram.total))
        .Set("sum_ns", h.histogram.sum)
        .Set("p50_ns", h.histogram.Quantile(0.5))
        .Set("p99_ns", h.histogram.Quantile(0.99));
    phases.Set(h.labels.front().second, std::move(entry));
  }
  JsonValue line = JsonValue::Object();
  line.Set("config", label).Set("phases", std::move(phases));
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E27", "Batch engine throughput",
      "JSONL k-sweep workload (overlapping parameter grid) through the\n"
      "batch engine: no-cache baseline vs cold/warm memo cache vs solver\n"
      "threads vs pool threads under group dispatch; result cache off so\n"
      "every request exercises the solver.");

  const int n = 400;  // total analyze units after sweep expansion
  const std::string workload = MakeSweepWorkload(n);
  const std::size_t hw_threads = std::max(1u, std::thread::hardware_concurrency());

  // Pool-scaling configs run memo-off so they measure dispatch + solve,
  // not cache temperature. "1 thread, memo off" doubles as the baseline
  // for both the warm-memo speedup and the pool-scaling ratio.
  const std::vector<ConfigSpec> configs = {
      {"1 thread, memo off", 1, 1, 0, true},
      {"hw threads, memo off", 0, 1, 0, true},
      {"hw threads, memo off, group off", 0, 1, 0, true, false},
      {"1 thread, memo cold", 1, 1, 4096, true},
      {"1 thread, memo warm", 1, 1, 4096, false},
      {"hw threads, memo warm", 0, 1, 4096, false},
  };

  Table table({"config", "units", "seconds", "units/s", "memo hits",
               "memo misses"});
  std::string reference_output;
  std::vector<JsonValue> breakdowns;
  JsonValue bench_configs = JsonValue::Array();
  double baseline_seconds = 0.0;
  double hw_off_seconds = 0.0;
  double warm_seconds = 0.0;
  double warm_hit_rate = 0.0;
  for (const ConfigSpec& spec : configs) {
    const RunResult run = RunConfig(workload, spec, /*repeats=*/3);
    table.BeginRow();
    table.AddCell(spec.label);
    table.AddInt(n);
    table.AddNumber(run.seconds, 3);
    table.AddNumber(n / run.seconds, 0);
    table.AddInt(static_cast<int>(run.memo_hits));
    table.AddInt(static_cast<int>(run.memo_misses));
    breakdowns.push_back(PhaseBreakdown(spec.label, run.metrics));

    const double lookups =
        static_cast<double>(run.memo_hits + run.memo_misses);
    const double hit_rate =
        lookups > 0.0 ? static_cast<double>(run.memo_hits) / lookups : 0.0;
    const std::string label = spec.label;
    if (label == "1 thread, memo off") baseline_seconds = run.seconds;
    if (label == "hw threads, memo off") hw_off_seconds = run.seconds;
    if (label == "1 thread, memo warm") {
      warm_seconds = run.seconds;
      warm_hit_rate = hit_rate;
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("config", spec.label)
        .Set("units", n)
        .Set("seconds", run.seconds)
        .Set("units_per_s", n / run.seconds)
        .Set("memo_hits", static_cast<std::int64_t>(run.memo_hits))
        .Set("memo_misses", static_cast<std::int64_t>(run.memo_misses))
        .Set("memo_hit_rate", hit_rate);
    bench_configs.Append(std::move(entry));

    if (reference_output.empty()) {
      reference_output = run.output;
    } else if (run.output != reference_output) {
      std::cerr << "DETERMINISM VIOLATION: output differs between configs\n";
      return 1;
    }
  }
  bench::Emit(table, argc, argv);
  std::cout << "per-phase breakdown (engine registry):\n";
  for (const JsonValue& line : breakdowns) {
    std::cout << line.ToString() << "\n";
  }

  const double full_ms_cold_ns = MeasureColdFullMsNs();
  const double full_ms_speedup = kPr5FullMsAnalysisNs / full_ms_cold_ns;
  std::cout << "cold full M-S solve: " << full_ms_cold_ns << " ns ("
            << full_ms_speedup << "x vs PR5 baseline "
            << kPr5FullMsAnalysisNs << " ns)\n";

  const double speedup =
      warm_seconds > 0.0 ? baseline_seconds / warm_seconds : 0.0;
  JsonValue bench_json = JsonValue::Object();
  bench_json.Set("bench", "engine_batch")
      .Set("units", n)
      .Set("configs", std::move(bench_configs))
      .Set("warm_memo_hit_rate", warm_hit_rate)
      .Set("speedup_warm_memo_vs_threads1", speedup)
      .Set("full_ms_cold_ns", full_ms_cold_ns)
      .Set("full_ms_speedup_vs_pr5", full_ms_speedup)
      .Set("hw_threads", static_cast<std::int64_t>(hw_threads));
  // The pool-scaling ratio is only meaningful (and only emitted) on a
  // multicore host; single-core runners skip the metric, and the
  // regression gate treats its absence as environment, not regression.
  if (hw_threads > 1 && hw_off_seconds > 0.0) {
    bench_json.Set("hw_vs_1thread", baseline_seconds / hw_off_seconds);
  }
  std::cout << "BENCH_JSON " << bench_json.ToString() << "\n";

  bool failed = false;
  // The warm-memo bar was 2.0x through PR9, when a cold solve cost ~84us
  // and the memo elided most of each request's wall time. The SIMD kernel
  // rewrite cut the cold solve to ~11us, so fixed per-request work
  // (serialization, dispatch) now dominates the memo-off baseline too and
  // the memo's *relative* win shrinks even though warm units/s improved
  // (~58k/s -> ~65k/s; the absolute rate is what bench_regression.py
  // guards). 1.5x still requires the memo to pay for itself on top of the
  // fast kernels without re-litigating the fixed overhead it cannot touch.
  if (speedup < 1.5) {
    std::cerr << "PERF REGRESSION: warm-memo speedup " << speedup
              << "x is below the 1.5x acceptance bar\n";
    failed = true;
  }
  if (full_ms_speedup < 5.0) {
    std::cerr << "PERF REGRESSION: cold M-S solve " << full_ms_speedup
              << "x vs PR5 is below the 5x acceptance bar\n";
    failed = true;
  }
  if (hw_threads > 1 && hw_off_seconds > 0.0 &&
      baseline_seconds / hw_off_seconds <= 1.0) {
    std::cerr << "PERF REGRESSION: hw-thread pool ("
              << baseline_seconds / hw_off_seconds
              << "x vs 1 thread) must strictly beat the 1-thread pool\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
