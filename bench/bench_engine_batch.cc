// E27 — batch engine throughput (scaling extension; no paper artifact).
// Measures the request-evaluation engine end to end on a parameter-sweep
// workload: k-sweeps over overlapping (nodes, speed) scenarios, the shape
// where the cross-request memo cache pays — every unit of one k-sweep
// shares the same stage pmfs and propagated distribution, and nearby
// requests share Region(i) sub-pmfs. Configs cover no-cache baseline,
// cold and warm memo cache, and solver-thread scaling. The determinism
// contract means every configuration must produce byte-identical result
// streams — verified here on real workloads, not just in unit tests.
//
// Output ends with one "BENCH_JSON {...}" line (wall time, memo hit rate,
// speedup vs the threads=1 no-cache baseline) that CI collects into the
// BENCH_*.json perf-trajectory artifact.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "prob/memo_cache.h"

using namespace sparsedet;

namespace {

// n/8 k-sweep requests over a nodes x speed grid with ~25% repeated
// scenarios (overlapping parameter studies), each expanding into 8 analyze
// units that differ only in the report threshold k.
std::string MakeSweepWorkload(int n) {
  std::ostringstream os;
  const int requests = n / 8;
  for (int i = 0; i < requests; ++i) {
    const int slot = i % (3 * requests / 4 == 0 ? 1 : 3 * requests / 4);
    const int nodes = 60 + 20 * (slot % 12);
    const int speed = 6 + 2 * (slot / 12 % 5);
    os << "{\"id\": " << i << ", \"op\": \"sweep\", \"params\": {\"nodes\": "
       << nodes << ", \"speed\": " << speed
       << "}, \"sweep\": {\"param\": \"k\", \"from\": 1, \"to\": 8, "
          "\"step\": 1}}\n";
  }
  return os.str();
}

struct ConfigSpec {
  const char* label;
  std::size_t solver_threads;
  std::size_t memo_entries;
  bool clear_memo;  // start this config from a cold memo cache
};

struct RunResult {
  double seconds = 0.0;
  std::string output;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  obs::RegistrySnapshot metrics;
};

RunResult RunConfig(const std::string& workload, const ConfigSpec& spec) {
  if (spec.clear_memo) prob::MemoCache::Global().Clear();
  const prob::MemoCacheStats before = prob::MemoCache::Global().Stats();

  engine::EngineOptions options;
  options.threads = 1;  // isolate solver-side effects from pool scaling
  options.cache_capacity = 0;  // no result cache: every request solves
  options.solver_threads = spec.solver_threads;
  options.memo_cache_entries = spec.memo_entries;
  engine::BatchEngine batch_engine(options);

  RunResult result;
  Stopwatch watch;
  std::istringstream in(workload);
  std::ostringstream out;
  batch_engine.RunBatch(in, out);
  result.seconds = bench::LapSeconds(watch);
  result.output = out.str();
  result.metrics = batch_engine.MetricsSnapshot();

  const prob::MemoCacheStats after = prob::MemoCache::Global().Stats();
  result.memo_hits = after.hits - before.hits;
  result.memo_misses = after.misses - before.misses;
  return result;
}

// One JSON line per config: where each request's wall time went, from the
// engine's phase histograms (queue-wait vs solve vs serialize, summed
// across all units/requests of the run).
JsonValue PhaseBreakdown(const std::string& label,
                         const obs::RegistrySnapshot& snapshot) {
  JsonValue phases = JsonValue::Object();
  for (const obs::RegistrySnapshot::HistogramValue& h : snapshot.histograms) {
    if (h.name != "sparsedet_phase_duration_ns" || h.labels.empty()) continue;
    if (h.histogram.total == 0) continue;
    JsonValue entry = JsonValue::Object();
    entry.Set("count", static_cast<std::int64_t>(h.histogram.total))
        .Set("sum_ns", h.histogram.sum)
        .Set("p50_ns", h.histogram.Quantile(0.5))
        .Set("p99_ns", h.histogram.Quantile(0.99));
    phases.Set(h.labels.front().second, std::move(entry));
  }
  JsonValue line = JsonValue::Object();
  line.Set("config", label).Set("phases", std::move(phases));
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E27", "Batch engine throughput",
      "JSONL k-sweep workload (overlapping parameter grid) through the\n"
      "batch engine: no-cache baseline vs cold/warm memo cache vs solver\n"
      "threads; result cache off so every request exercises the solver.");

  const int n = 400;  // total analyze units after sweep expansion
  const std::string workload = MakeSweepWorkload(n);

  const std::vector<ConfigSpec> configs = {
      {"1 thread, memo off", 1, 0, true},
      {"1 thread, memo cold", 1, 4096, true},
      {"1 thread, memo warm", 1, 4096, false},
      {"hw threads, memo warm", 0, 4096, false},
  };

  Table table({"config", "units", "seconds", "units/s", "memo hits",
               "memo misses"});
  std::string reference_output;
  std::vector<JsonValue> breakdowns;
  JsonValue bench_configs = JsonValue::Array();
  double baseline_seconds = 0.0;
  double warm_seconds = 0.0;
  double warm_hit_rate = 0.0;
  for (const ConfigSpec& spec : configs) {
    const RunResult run = RunConfig(workload, spec);
    table.BeginRow();
    table.AddCell(spec.label);
    table.AddInt(n);
    table.AddNumber(run.seconds, 3);
    table.AddNumber(n / run.seconds, 0);
    table.AddInt(static_cast<int>(run.memo_hits));
    table.AddInt(static_cast<int>(run.memo_misses));
    breakdowns.push_back(PhaseBreakdown(spec.label, run.metrics));

    const double lookups =
        static_cast<double>(run.memo_hits + run.memo_misses);
    const double hit_rate =
        lookups > 0.0 ? static_cast<double>(run.memo_hits) / lookups : 0.0;
    if (std::string(spec.label) == "1 thread, memo off") {
      baseline_seconds = run.seconds;
    }
    if (std::string(spec.label) == "1 thread, memo warm") {
      warm_seconds = run.seconds;
      warm_hit_rate = hit_rate;
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("config", spec.label)
        .Set("units", n)
        .Set("seconds", run.seconds)
        .Set("units_per_s", n / run.seconds)
        .Set("memo_hits", static_cast<std::int64_t>(run.memo_hits))
        .Set("memo_misses", static_cast<std::int64_t>(run.memo_misses))
        .Set("memo_hit_rate", hit_rate);
    bench_configs.Append(std::move(entry));

    if (reference_output.empty()) {
      reference_output = run.output;
    } else if (run.output != reference_output) {
      std::cerr << "DETERMINISM VIOLATION: output differs between configs\n";
      return 1;
    }
  }
  bench::Emit(table, argc, argv);
  std::cout << "per-phase breakdown (engine registry):\n";
  for (const JsonValue& line : breakdowns) {
    std::cout << line.ToString() << "\n";
  }

  const double speedup =
      warm_seconds > 0.0 ? baseline_seconds / warm_seconds : 0.0;
  JsonValue bench_json = JsonValue::Object();
  bench_json.Set("bench", "engine_batch")
      .Set("units", n)
      .Set("configs", std::move(bench_configs))
      .Set("warm_memo_hit_rate", warm_hit_rate)
      .Set("speedup_warm_memo_vs_threads1", speedup);
  std::cout << "BENCH_JSON " << bench_json.ToString() << "\n";
  if (speedup < 2.0) {
    std::cerr << "PERF REGRESSION: warm-memo speedup " << speedup
              << "x is below the 2x acceptance bar\n";
    return 1;
  }
  return 0;
}
