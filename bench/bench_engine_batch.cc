// E27 — batch engine throughput (scaling extension; no paper artifact).
// Measures the request-evaluation engine end to end: a synthetic JSONL
// workload of analytical requests over a parameter grid, evaluated cold
// (every unit computed), warm (second pass, served from the LRU cache) and
// across worker-thread counts. The determinism contract means every
// configuration must produce byte-identical result streams — verified here
// on real workloads, not just in unit tests.
#include <iostream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "obs/metrics.h"

using namespace sparsedet;

namespace {

// n analyze requests over a nodes x speed grid; ~25% of the scenarios
// repeat, the way overlapping parameter studies do in practice.
std::string MakeWorkload(int n) {
  std::ostringstream os;
  for (int i = 0; i < n; ++i) {
    const int slot = i % (3 * n / 4 == 0 ? 1 : 3 * n / 4);
    const int nodes = 60 + 20 * (slot % 12);
    const int speed = 6 + 2 * (slot / 12 % 5);
    os << "{\"id\": " << i << ", \"op\": \"analyze\", \"params\": {\"nodes\": "
       << nodes << ", \"speed\": " << speed << "}}\n";
  }
  return os.str();
}

struct RunResult {
  double seconds = 0.0;
  std::string output;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  obs::RegistrySnapshot metrics;
};

RunResult RunPasses(const std::string& workload, std::size_t threads,
                    int passes) {
  engine::EngineOptions options;
  options.threads = threads;
  engine::BatchEngine batch_engine(options);
  RunResult result;
  Stopwatch watch;
  for (int pass = 0; pass < passes; ++pass) {
    std::istringstream in(workload);
    std::ostringstream out;
    batch_engine.RunBatch(in, out);
    result.output = out.str();  // keep the last pass for comparison
  }
  result.seconds = bench::LapSeconds(watch);
  result.hits = batch_engine.cache().counters().hits;
  result.misses = batch_engine.cache().counters().misses;
  result.metrics = batch_engine.MetricsSnapshot();
  return result;
}

// One JSON line per config: where each request's wall time went, from the
// engine's phase histograms (queue-wait vs solve vs serialize, summed
// across all units/requests of the run).
JsonValue PhaseBreakdown(const std::string& label,
                         const obs::RegistrySnapshot& snapshot) {
  JsonValue phases = JsonValue::Object();
  for (const obs::RegistrySnapshot::HistogramValue& h : snapshot.histograms) {
    if (h.name != "sparsedet_phase_duration_ns" || h.labels.empty()) continue;
    if (h.histogram.total == 0) continue;
    JsonValue entry = JsonValue::Object();
    entry.Set("count", static_cast<std::int64_t>(h.histogram.total))
        .Set("sum_ns", h.histogram.sum)
        .Set("p50_ns", h.histogram.Quantile(0.5))
        .Set("p99_ns", h.histogram.Quantile(0.99));
    phases.Set(h.labels.front().second, std::move(entry));
  }
  JsonValue line = JsonValue::Object();
  line.Set("config", label).Set("phases", std::move(phases));
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E27", "Batch engine throughput",
      "JSONL analyze workload (overlapping parameter grid) through the\n"
      "batch engine: cold vs cache-warm passes, 1 vs hardware threads.");

  const int n = 400;
  const std::string workload = MakeWorkload(n);

  Table table({"config", "requests", "seconds", "req/s", "hits", "misses"});
  std::string reference_output;
  std::vector<JsonValue> breakdowns;
  for (const auto& [label, threads, passes] :
       {std::tuple<const char*, std::size_t, int>{"cold, 1 thread", 1, 1},
        {"cold, hw threads", 0, 1},
        {"cold+warm pass", 0, 2}}) {
    const RunResult run = RunPasses(workload, threads, passes);
    table.BeginRow();
    table.AddCell(label);
    table.AddInt(n * passes);
    table.AddNumber(run.seconds, 3);
    table.AddNumber(n * passes / run.seconds, 0);
    table.AddInt(static_cast<int>(run.hits));
    table.AddInt(static_cast<int>(run.misses));
    breakdowns.push_back(PhaseBreakdown(label, run.metrics));
    if (reference_output.empty()) {
      reference_output = run.output;
    } else if (run.output != reference_output) {
      std::cerr << "DETERMINISM VIOLATION: output differs between configs\n";
      return 1;
    }
  }
  bench::Emit(table, argc, argv);
  std::cout << "per-phase breakdown (engine registry):\n";
  for (const JsonValue& line : breakdowns) {
    std::cout << line.ToString() << "\n";
  }
  return 0;
}
