// E9 — false alarms, two paper claims plus the future-work item:
//   (1) Section 2: mixing node-level false alarms into a real-target window
//       can only RAISE the detection probability (more reports along the
//       track), so the clean analysis is a lower bound for noisy systems.
//   (2) Section 1: the track gate filters scattered false alarms that a
//       count-only rule would accept.
//   (3) Section 6 future work: the minimum k that bounds the system-level
//       false alarm probability, analytically for the count-only rule and
//       by Monte-Carlo for the gated rule.
#include "bench_util.h"
#include "core/false_alarm_model.h"
#include "core/gated_fa_bound.h"
#include "core/ms_approach.h"
#include "detect/system_fa.h"
#include "detect/window_detector.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

namespace {

void DetectionWithFalseAlarms() {
  std::cout << "-- (1) detection probability with false alarms mixed in "
               "(N = 140, V = 10 m/s, count-only rule over ALL reports) --\n";
  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = 140;
  p.target_speed = 10.0;

  Table table({"pf (per node-period)", "analysis (no FA)", "sim (with FA)"});
  const double analysis = MsApproachAnalyze(p).detection_probability;
  for (double pf : {0.0, 1e-4, 5e-4, 1e-3, 5e-3}) {
    TrialConfig config;
    config.params = p;
    config.false_alarm_prob = pf;
    MonteCarloOptions mc;
    mc.trials = 10000;
    const int k = p.threshold_reports;
    const ProportionEstimate sim = EstimateTrialProbability(
        config, mc, [k](const TrialResult& trial) {
          return static_cast<int>(trial.reports.size()) >= k;
        });
    table.BeginRow();
    table.AddCell(FormatDouble(pf, 4));
    table.AddNumber(analysis, 4);
    table.AddNumber(sim.point, 4);
  }
  table.PrintText(std::cout);
  std::cout << "\n";
}

void SystemFaVsThreshold() {
  std::cout << "-- (2) system-level false alarm probability per window vs k "
               "(N = 140, pf = 1e-3, 20000 no-target windows) --\n";
  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = 140;

  Table table({"k", "count-only (analytic)", "count-only (sim)",
               "track-gated (sim)"});
  for (int k : {1, 2, 3, 4, 5, 6}) {
    p.threshold_reports = k;
    SystemFaOptions opt;
    opt.trials = 20000;
    const SystemFaEstimate est = EstimateSystemFaProbability(p, 1e-3, opt);
    table.BeginRow();
    table.AddInt(k);
    table.AddNumber(CountOnlySystemFaProbability(p, 1e-3), 4);
    table.AddNumber(est.count_only.point, 4);
    table.AddNumber(est.gated.point, 4);
  }
  table.PrintText(std::cout);
  std::cout << "\n";
}

void MinimumK() {
  std::cout << "-- (3) minimum k for a target system FA probability "
               "(N = 140, M = 20) --\n";
  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = 140;

  Table table({"pf", "target P_sysFA", "min k (count-only, analytic)",
               "min k (track-gated, sim)",
               "min k (gated, guaranteed bound)"});
  for (double pf : {1e-4, 1e-3, 5e-3}) {
    for (double target : {0.01, 0.001}) {
      SystemFaOptions opt;
      opt.trials = 20000;
      table.BeginRow();
      table.AddCell(FormatDouble(pf, 4));
      table.AddCell(FormatDouble(target, 3));
      table.AddInt(MinimumThresholdForFaRate(p, pf, target));
      table.AddInt(MinimumGatedThreshold(p, pf, target, opt));
      table.AddInt(GuaranteedGatedThreshold(p, pf, target));
    }
  }
  table.PrintText(std::cout);
  std::cout << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader("E9", "Sections 1, 2 and 6 (false alarms and the choice of k)",
                     "");
  (void)argc;
  (void)argv;
  DetectionWithFalseAlarms();
  SystemFaVsThreshold();
  MinimumK();
  return 0;
}
