// E16 — detection latency (extension; the paper's related work [21]
// studies latency, the paper itself only end-of-window probability).
// Within the spatial model P[latency <= L] = P_L[X >= k], so the latency
// law falls out of prefix sweeps of the M-S-approach. Validated against
// the simulator's first-passage time (first period where the cumulative
// report count reaches k).
#include <atomic>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/latency.h"
#include "sim/trial.h"

using namespace sparsedet;

namespace {

// Empirical P[latency <= L] for each L = 1..M.
std::vector<double> SimulatedLatencyCdf(const SystemParams& p, int trials,
                                        std::uint64_t seed) {
  std::vector<std::atomic<long long>> detected_by(p.window_periods);
  TrialConfig config;
  config.params = p;
  const Rng base(seed);
  ParallelFor(static_cast<std::size_t>(trials), [&](std::size_t i) {
    Rng rng = base.Substream(i);
    const TrialResult trial = RunTrial(config, rng);
    int cumulative = 0;
    for (int period = 0; period < p.window_periods; ++period) {
      cumulative += trial.true_reports_per_period[period];
      if (cumulative >= p.threshold_reports) {
        for (int l = period; l < p.window_periods; ++l) detected_by[l]++;
        break;
      }
    }
  });
  std::vector<double> cdf(p.window_periods);
  for (int l = 0; l < p.window_periods; ++l) {
    cdf[l] = static_cast<double>(detected_by[l].load()) / trials;
  }
  return cdf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E16", "Detection latency (first-passage extension)",
      "P[detected within L periods]: prefix-swept M-S analysis vs simulated\n"
      "first passage (N in {140, 240}, V = 10 m/s, k = 5, 10000 trials)");

  Table table({"N", "L (periods)", "analysis", "simulation", "|diff|"});
  for (int nodes : {140, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;

    const LatencyDistribution analysis = DetectionLatency(p);
    const std::vector<double> sim = SimulatedLatencyCdf(p, 10000, 11);

    for (int l = 6; l <= p.window_periods; l += 2) {
      const double a = analysis.CdfAt(l);
      const double s = sim[l - 1];
      table.BeginRow();
      table.AddInt(nodes);
      table.AddInt(l);
      table.AddNumber(a, 4);
      table.AddNumber(s, 4);
      table.AddNumber(std::abs(a - s), 4);
    }
    std::cout << "N = " << nodes << ": mean latency | detected = "
              << FormatDouble(analysis.MeanConditionalLatency(), 2)
              << " periods; conditional 90th percentile = "
              << analysis.ConditionalQuantile(0.9) << " periods\n";
  }
  std::cout << "\n";
  bench::Emit(table, argc, argv);
  return 0;
}
