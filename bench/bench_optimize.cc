// E28 — inverse deployment optimizer throughput (scaling extension; no
// paper artifact). Runs the two studies the optimizer exists for, end to
// end through the batch engine:
//
//   * an E9-style fleet-sizing study — the smallest N meeting a P_D floor
//     over a (N, k) grid plus step-halving refinement, and
//   * an E24-style energy study — the energy-vs-P_D Pareto frontier over
//     a (N, duty) grid under a false-alarm-driven drain model.
//
// Configs cover cold vs warm solver memo cache and solver-thread scaling.
// The optimizer's determinism contract (byte-identical results regardless
// of thread count or cache temperature) is enforced on this real workload:
// any divergence fails the bench.
//
// Output ends with one "BENCH_JSON {...}" line (candidates/s per config,
// warm speedup, frontier size) that CI collects into the BENCH_*.json
// perf-trajectory artifact.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "opt/backend.h"
#include "opt/optimizer.h"
#include "opt/spec.h"
#include "prob/memo_cache.h"

using namespace sparsedet;

namespace {

// Fleet sizing: min nodes with P_D >= 0.9 over N in 60..240 x k in 2..9,
// two refinement rounds — 296 coarse candidates plus neighborhoods.
opt::OptimizeSpec SizingSpec() {
  opt::OptimizeSpec spec;
  spec.objective = opt::Objective::kMinNodes;
  spec.min_detection = 0.9;
  spec.nodes.set = true;
  spec.nodes.from = 60;
  spec.nodes.to = 240;
  spec.nodes.step = 5;
  spec.k.set = true;
  spec.k.from = 2;
  spec.k.to = 9;
  spec.k.step = 1;
  spec.refine_rounds = 2;
  return spec;
}

// Energy frontier: drain vs detection over N in 60..240 x duty 0.2..1.0
// with a 1e-3 per-period false alarm probability feeding the report rate.
opt::OptimizeSpec FrontierSpec() {
  opt::OptimizeSpec spec;
  spec.objective = opt::Objective::kMinEnergy;
  spec.mode = opt::SearchMode::kFrontier;
  spec.min_detection = 0.5;
  spec.pf = 0.001;
  spec.max_fa = 0.5;
  spec.nodes.set = true;
  spec.nodes.from = 60;
  spec.nodes.to = 240;
  spec.nodes.step = 20;
  spec.duty.set = true;
  spec.duty.from = 0.2;
  spec.duty.to = 1.0;
  spec.duty.step = 0.1;
  return spec;
}

struct ConfigSpec {
  const char* label;
  std::size_t solver_threads;
  bool clear_memo;  // start this config from a cold memo cache
};

struct RunResult {
  double seconds = 0.0;
  std::int64_t evaluated = 0;
  std::int64_t frontier_size = 0;
  std::string output;  // both results concatenated, the determinism probe
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

RunResult RunConfig(const ConfigSpec& spec) {
  if (spec.clear_memo) prob::MemoCache::Global().Clear();
  const prob::MemoCacheStats before = prob::MemoCache::Global().Stats();

  engine::EngineOptions options;
  options.threads = 0;  // the pool is how the optimizer fans out
  options.solver_threads = spec.solver_threads;
  engine::BatchEngine engine(options);
  opt::SyncEngineBackend backend(engine);

  RunResult result;
  Stopwatch watch;
  for (const opt::OptimizeSpec& study : {SizingSpec(), FrontierSpec()}) {
    opt::Optimizer optimizer(study, backend, &engine.registry());
    const JsonValue run = optimizer.Run();
    result.evaluated +=
        static_cast<std::int64_t>(run.Find("evaluated")->AsDouble());
    if (const JsonValue* frontier = run.Find("frontier")) {
      result.frontier_size = static_cast<std::int64_t>(frontier->Size());
    }
    result.output += run.ToString();
    result.output += '\n';
  }
  result.seconds = bench::LapSeconds(watch);

  const prob::MemoCacheStats after = prob::MemoCache::Global().Stats();
  result.memo_hits = after.hits - before.hits;
  result.memo_misses = after.misses - before.misses;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E28", "Inverse deployment optimizer",
      "Fleet-sizing (min N at P_D >= 0.9, refine x2) and energy-frontier\n"
      "studies through `optimize`: coarse grid + refinement fanned out over\n"
      "the batch engine, cold vs warm solver memo, solver-thread scaling.\n"
      "Results must be byte-identical across every configuration.");

  const std::vector<ConfigSpec> configs = {
      {"memo cold, solver x1", 1, true},
      {"memo warm, solver x1", 1, false},
      {"memo warm, solver hw", 0, false},
  };

  Table table({"config", "candidates", "seconds", "candidates/s",
               "memo hits", "memo misses"});
  std::string reference_output;
  JsonValue bench_configs = JsonValue::Array();
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double best_rate = 0.0;
  std::int64_t frontier_size = 0;
  for (const ConfigSpec& spec : configs) {
    const RunResult run = RunConfig(spec);
    const double rate = static_cast<double>(run.evaluated) / run.seconds;
    table.BeginRow();
    table.AddCell(spec.label);
    table.AddInt(static_cast<int>(run.evaluated));
    table.AddNumber(run.seconds, 3);
    table.AddNumber(rate, 0);
    table.AddInt(static_cast<int>(run.memo_hits));
    table.AddInt(static_cast<int>(run.memo_misses));

    if (std::string(spec.label) == "memo cold, solver x1") {
      cold_seconds = run.seconds;
    }
    if (std::string(spec.label) == "memo warm, solver x1") {
      warm_seconds = run.seconds;
    }
    best_rate = std::max(best_rate, rate);
    frontier_size = run.frontier_size;
    JsonValue entry = JsonValue::Object();
    entry.Set("config", spec.label)
        .Set("candidates", run.evaluated)
        .Set("seconds", run.seconds)
        .Set("candidates_per_s", rate)
        .Set("memo_hits", static_cast<std::int64_t>(run.memo_hits))
        .Set("memo_misses", static_cast<std::int64_t>(run.memo_misses));
    bench_configs.Append(std::move(entry));

    if (reference_output.empty()) {
      reference_output = run.output;
    } else if (run.output != reference_output) {
      std::cerr << "DETERMINISM VIOLATION: optimizer output differs "
                   "between configs\n";
      return 1;
    }
  }
  bench::Emit(table, argc, argv);

  const double warm_speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  JsonValue bench_json = JsonValue::Object();
  bench_json.Set("bench", "optimize")
      .Set("configs", std::move(bench_configs))
      .Set("candidates_per_s", best_rate)
      .Set("frontier_size", frontier_size)
      .Set("speedup_warm_vs_cold", warm_speedup);
  std::cout << "BENCH_JSON " << bench_json.ToString() << "\n";
  if (frontier_size == 0) {
    std::cerr << "SANITY FAILURE: the energy study produced an empty "
                 "frontier\n";
    return 1;
  }
  return 0;
}
