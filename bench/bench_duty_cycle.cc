// E20 — duty-cycled sensing. The related work the paper contrasts with
// ([15], [19]: sleep scheduling for rare-event detection) trades energy
// for coverage by waking each node only a fraction d of periods. Under
// random (uncoordinated) duty cycling the group based detection model
// extends exactly: an awake-AND-detect event is Bernoulli(d * Pd), so the
// analysis just runs with Pd' = d * Pd. This experiment validates that
// mapping and tabulates the detection-vs-energy trade a designer faces —
// e.g. how many extra nodes buy back the probability lost to a 50% duty
// cycle.
#include "bench_util.h"
#include "core/ms_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E20", "Duty-cycled sensing (node-scheduling extension)",
      "Analysis with Pd' = d*Pd vs simulation with per-period sleeping\n"
      "(V = 10 m/s, k = 5 of M = 20, 10000 trials)");

  Table table({"N", "duty d", "analysis(Pd*d)", "simulation", "|diff|",
               "energy (node-periods awake)"});
  for (int nodes : {140, 240}) {
    for (double duty : {1.0, 0.75, 0.5, 0.25}) {
      SystemParams p = SystemParams::OnrDefaults();
      p.num_nodes = nodes;
      p.target_speed = 10.0;

      SystemParams scaled = p;
      scaled.detect_prob = p.detect_prob * duty;
      const double analysis =
          MsApproachAnalyze(scaled).detection_probability;

      TrialConfig config;
      config.params = p;
      config.duty_cycle = duty;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      table.BeginRow();
      table.AddInt(nodes);
      table.AddNumber(duty, 2);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(std::abs(analysis - sim.point), 4);
      table.AddNumber(nodes * 20 * duty, 0);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
