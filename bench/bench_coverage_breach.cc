// E26 — sensing voids and the maximal breach path. Quantifies the paper's
// "void sensing areas" premise: at ONR densities only a few percent of the
// field is covered, and an adversary who KNOWS the deployment can cross
// while staying several sensing ranges away from every node — the paper's
// detection guarantees are inherently statements about uninformed targets.
// Covered fraction is also checked against the Poisson-process closed
// form 1 - exp(-N pi Rs^2 / S).
#include "bench_util.h"
#include "common/rng.h"
#include "coverage/coverage.h"
#include "prob/stats.h"
#include "sim/deployment.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E26", "Coverage voids and maximal breach distance",
      "32 km field, Rs = 1 km, 15 deployments per N, 200x200 grid");

  Table table({"N", "covered fraction", "Poisson estimate",
               "mean breach (m)", "breach / Rs"});
  const Field field = Field::Square(32000.0);
  const double rs = 1000.0;
  const Rng base(1618);

  for (int nodes : {60, 120, 240, 480}) {
    MeanVarAccumulator covered;
    MeanVarAccumulator breach;
    double poisson = 0.0;
    for (int rep = 0; rep < 15; ++rep) {
      Rng rng = base.Substream(nodes * 32 + rep);
      const std::vector<Vec2> deployment =
          DeployUniform(field, nodes, rng);
      const CoverageStats stats = EstimateCoverage(field, deployment, rs);
      covered.Add(stats.covered_fraction);
      poisson = stats.poisson_estimate;
      breach.Add(MaximalBreachDistance(field, deployment));
    }
    table.BeginRow();
    table.AddInt(nodes);
    table.AddNumber(covered.Mean(), 4);
    table.AddNumber(poisson, 4);
    table.AddNumber(breach.Mean(), 0);
    table.AddNumber(breach.Mean() / rs, 2);
  }
  bench::Emit(table, argc, argv);
  return 0;
}
