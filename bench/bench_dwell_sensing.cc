// E17 — footnote-1 ablation: the paper assumes Pd is independent of how
// long the target overlaps a sensor's disk within a period ("will be
// revisited in future work"). Here the simulator uses a dwell-time sensor
// (P[detect] = 1 - exp(-rate * dwell)) calibrated so a full-diameter
// crossing is detected with probability Pd_full, and we measure how far
// the constant-Pd analysis drifts.
//
// Expected: dwell sensing is strictly harsher (grazing passes get chords
// << 2Rs and the end caps contribute zero dwell in the entry period), so
// the simulated probability falls below the Pd = Pd_full analysis; the
// gap narrows as Pd_full -> 1 and is the model error a practitioner
// should budget for when their sensing algorithm integrates evidence.
#include "bench_util.h"
#include "core/ms_approach.h"
#include "sim/monte_carlo.h"
#include "sim/sensing.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E17", "Footnote 1 ablation (dwell-dependent Pd)",
      "Constant-Pd analysis vs dwell-time-sensing simulation\n"
      "(V = 10 m/s, k = 5 of M = 20, 10000 trials; sensor calibrated so a\n"
      "full-diameter crossing is detected with probability Pd_full)");

  Table table({"N", "Pd_full", "analysis(const Pd)", "sim(dwell)",
               "analysis-sim"});
  for (int nodes : {120, 240}) {
    for (double pd_full : {0.9, 0.97, 0.995}) {
      SystemParams p = SystemParams::OnrDefaults();
      p.num_nodes = nodes;
      p.target_speed = 10.0;
      p.detect_prob = pd_full;
      const double analysis = MsApproachAnalyze(p).detection_probability;

      const DwellTimeSensing sensing = DwellTimeSensing::Calibrated(
          p.sensing_range, pd_full, p.target_speed);
      TrialConfig config;
      config.params = p;
      config.sensing = &sensing;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      table.BeginRow();
      table.AddInt(nodes);
      table.AddNumber(pd_full, 3);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(analysis - sim.point, 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
