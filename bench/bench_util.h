// Shared helpers for the experiment harnesses.
//
// Every bench binary prints a header naming the experiment and the paper
// artifact it regenerates, then one table with the same rows/series the
// paper plots. Passing a file path as argv[1] additionally writes the table
// as CSV for plotting.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/stopwatch.h"
#include "common/table.h"

namespace sparsedet::bench {

// This lap's interval as seconds. Stopwatch::Lap() returns integer
// nanoseconds from a monotonic clock and restarts the watch, so calling
// this between phases partitions a run without re-reading the clock twice.
inline double LapSeconds(Stopwatch& watch) {
  return static_cast<double>(watch.Lap()) * 1e-9;
}

inline void PrintHeader(const std::string& experiment_id,
                        const std::string& artifact,
                        const std::string& description) {
  std::cout << "== " << experiment_id << ": " << artifact << " ==\n"
            << description << "\n\n";
}

// Prints the table and optionally writes CSV to argv[1].
inline void Emit(const Table& table, int argc, char** argv) {
  table.PrintText(std::cout);
  if (argc > 1) {
    const std::string path = argv[1];
    if (table.WriteCsvFile(path)) {
      std::cout << "\ncsv written to " << path << "\n";
    } else {
      std::cerr << "failed to write csv to " << path << "\n";
    }
  }
  std::cout << std::endl;
}

}  // namespace sparsedet::bench
