// E14 — the paper's future-work item: "relax the assumption to address the
// case when the target travels in varying speeds". We simulate a target
// whose per-period speed is scaled by an independent uniform draw from
// [1-w, 1+w] around the nominal V and compare against the constant-speed
// analysis at the same mean V.
//
// Expected behaviour: the ARegion's rectangular part depends linearly on
// the traversed distance, whose mean is unchanged, so mild speed jitter
// leaves the detection probability close to the constant-speed analysis;
// large jitter shifts period-overlap structure and opens a modest gap.
#include "bench_util.h"
#include "core/ms_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E14", "Section 6 future work (varying target speed)",
      "Constant-speed analysis vs simulation with per-period speed factor\n"
      "uniform in [1-w, 1+w] (V = 10 m/s nominal, 10000 trials)");

  Table table({"N", "jitter w", "analysis(const V)", "sim(varying V)",
               "analysis-sim"});
  for (int nodes : {120, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;
    const double analysis = MsApproachAnalyze(p).detection_probability;

    for (double w : {0.0, 0.2, 0.5, 0.8}) {
      const VaryingSpeedMotion motion(1.0 - w, 1.0 + w);
      TrialConfig config;
      config.params = p;
      config.motion = &motion;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      table.BeginRow();
      table.AddInt(nodes);
      table.AddNumber(w, 1);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(analysis - sim.point, 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
