// E27 — ROC comparison: the paper's k-of-M count rule vs a CUSUM
// likelihood-ratio detector, both driven by the same per-period report
// counts. Sweeping k (count rule) and the CUSUM threshold h traces two
// receiver operating characteristics over (P[system FA per window],
// P[detect target]); whichever curve sits higher at a given FA budget is
// the better detector. Expectation: CUSUM edges out k-of-M at tight FA
// budgets (it weights report bursts by evidence instead of flat counting)
// while both converge when detection saturates.
#include <atomic>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "detect/cusum.h"
#include "sim/trial.h"

using namespace sparsedet;

namespace {

struct RocPoint {
  double fa = 0.0;
  double detect = 0.0;
};

// P[FA per window] and P[detect] for a predicate over per-period counts.
template <typename Detector>
RocPoint Measure(const SystemParams& params, double pf,
                 const Detector& make_detector, int trials) {
  TrialConfig with_target;
  with_target.params = params;
  with_target.false_alarm_prob = pf;
  TrialConfig no_target = with_target;

  std::atomic<int> detects{0};
  std::atomic<int> false_alarms{0};
  const Rng base(606);
  ParallelFor(static_cast<std::size_t>(trials), [&](std::size_t i) {
    Rng rng = base.Substream(i);
    {
      const TrialResult trial = RunTrial(with_target, rng);
      std::vector<int> counts(params.window_periods, 0);
      for (const SimReport& r : trial.reports) ++counts[r.period];
      auto detector = make_detector();
      for (int c : counts) detector.ProcessCount(c);
      if (detector.triggered()) detects.fetch_add(1);
    }
    {
      const TrialResult trial = RunNoTargetTrial(no_target, rng);
      std::vector<int> counts(params.window_periods, 0);
      for (const SimReport& r : trial.reports) ++counts[r.period];
      auto detector = make_detector();
      for (int c : counts) detector.ProcessCount(c);
      if (detector.triggered()) false_alarms.fetch_add(1);
    }
  });
  return {static_cast<double>(false_alarms.load()) / trials,
          static_cast<double>(detects.load()) / trials};
}

// Adapter giving the k-of-M count rule the detector interface.
class CountRule {
 public:
  explicit CountRule(int k) : k_(k) {}
  bool ProcessCount(int reports) {
    total_ += reports;
    triggered_ = triggered_ || total_ >= k_;
    return triggered_;
  }
  bool triggered() const { return triggered_; }

 private:
  int k_;
  int total_ = 0;
  bool triggered_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E27", "ROC: k-of-M count rule vs CUSUM likelihood detector",
      "N = 140, V = 10 m/s, pf = 1e-3, 8000 target + 8000 no-target windows "
      "per point");

  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = 140;
  p.target_speed = 10.0;
  const double pf = 1e-3;
  const int trials = 8000;

  Table table({"detector", "setting", "P[FA/window]", "P[detect]"});
  for (int k : {3, 4, 5, 6, 8, 10}) {
    const RocPoint point =
        Measure(p, pf, [k] { return CountRule(k); }, trials);
    table.BeginRow();
    table.AddCell("k-of-M");
    table.AddCell("k=" + std::to_string(k));
    table.AddNumber(point.fa, 4);
    table.AddNumber(point.detect, 4);
  }

  CusumDetector::Options base;
  base.num_nodes = p.num_nodes;
  base.p0 = pf;
  base.p1 = CusumH1Rate(p, pf);
  for (double h : {2.0, 4.0, 6.0, 9.0, 13.0, 18.0}) {
    CusumDetector::Options opt = base;
    opt.threshold = h;
    const RocPoint point =
        Measure(p, pf, [opt] { return CusumDetector(opt); }, trials);
    table.BeginRow();
    table.AddCell("CUSUM");
    table.AddCell("h=" + FormatDouble(h, 1));
    table.AddNumber(point.fa, 4);
    table.AddNumber(point.detect, 4);
  }
  bench::Emit(table, argc, argv);
  return 0;
}
