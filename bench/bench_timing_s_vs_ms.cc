// E5 — Section 3.4.5 claim: the capped S-approach explodes (the paper ran
// it for days and often killed it) while the M-S-approach finishes in
// well under a minute.
//
// Part 1 (google-benchmark): wall-clock of the M-S-approach (both the
// paper-literal transition-matrix path and the direct path) and of the
// S-approach's Algorithm-1 literal enumeration for growing caps G.
// Part 2: a projection table that extrapolates the literal enumeration to
// the G that 99% accuracy actually requires (Figure 8), reproducing the
// "many days vs 1 minute" comparison without actually burning days.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/stopwatch.h"
#include "core/ms_approach.h"
#include "core/s_approach.h"

namespace {

using namespace sparsedet;

SystemParams Onr(int nodes, double speed) {
  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = nodes;
  p.target_speed = speed;
  return p;
}

void BM_MsApproachDirect(benchmark::State& state) {
  const SystemParams p = Onr(240, static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MsApproachAnalyze(p).detection_probability);
  }
}
BENCHMARK(BM_MsApproachDirect)->Arg(10)->Arg(4);

void BM_MsApproachTransitionMatrices(benchmark::State& state) {
  const SystemParams p = Onr(240, static_cast<double>(state.range(0)));
  MsApproachOptions opt;
  opt.use_transition_matrices = true;  // paper-literal Eq. 12
  for (auto _ : state) {
    benchmark::DoNotOptimize(MsApproachAnalyze(p, opt).detection_probability);
  }
}
BENCHMARK(BM_MsApproachTransitionMatrices)->Arg(10)->Arg(4);

void BM_SApproachConvolution(benchmark::State& state) {
  const SystemParams p = Onr(240, 10.0);
  SApproachOptions opt;
  opt.cap = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SApproachAnalyze(p, opt).detection_probability);
  }
}
BENCHMARK(BM_SApproachConvolution)->Arg(3)->Arg(6)->Arg(9);

void BM_SApproachLiteralEnumeration(benchmark::State& state) {
  // V = 4 m/s gives ms = 9 — the regime the paper calls infeasible.
  const SystemParams p = Onr(240, 4.0);
  SApproachOptions opt;
  opt.cap = static_cast<int>(state.range(0));
  opt.literal_enumeration = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SApproachAnalyze(p, opt).detection_probability);
  }
}
BENCHMARK(BM_SApproachLiteralEnumeration)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void PrintProjection() {
  const SystemParams p = Onr(240, 4.0);  // ms = 9
  const int required_g = SApproachRequiredCap(p, 0.99);
  const MsRequiredCaps ms_caps = MsRequiredCapsFor(p, 0.99);

  // Measure the literal enumeration at a feasible cap, then scale by the
  // paper's ms^(2G) cost model.
  SApproachOptions probe;
  probe.cap = 4;
  probe.literal_enumeration = true;
  Stopwatch sw;
  (void)SApproachAnalyze(p, probe);
  // Lap() yields this phase's nanoseconds and restarts the watch, so the
  // M-S measurement below needs no explicit Restart().
  const double probe_seconds = static_cast<double>(sw.Lap()) * 1e-9;
  const double scale = SApproachCostModel(p.Ms(), required_g) /
                       SApproachCostModel(p.Ms(), probe.cap);
  const double projected_seconds = probe_seconds * scale;

  MsApproachOptions ms_opt;
  ms_opt.gh = ms_caps.gh;
  ms_opt.g = ms_caps.g;
  (void)MsApproachAnalyze(p, ms_opt);
  const double ms_seconds = static_cast<double>(sw.Lap()) * 1e-9;

  std::printf(
      "\n== E5: Section 3.4.5 'many days vs 1 minute' projection ==\n"
      "scenario: N = 240, V = 4 m/s (ms = %d), 99%% accuracy target\n"
      "S-approach   : requires G = %d; literal enumeration measured at "
      "G = 4: %.3f s;\n"
      "               projected at required G (x ms^(2dG) = %.2e): %.3e s "
      "(~%.1f days)\n"
      "M-S-approach : gh = %d, g = %d, measured: %.6f s\n",
      p.Ms(), required_g, probe_seconds, scale, projected_seconds,
      projected_seconds / 86400.0, ms_caps.gh, ms_caps.g, ms_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintProjection();
  return 0;
}
