// E6 — Section 3.2: the Temporal approach needs to remember how many
// sensors sit in each of the last ms overlapping DRs, so its Markov state
// space multiplies by (cap+1)^ms — "millions or more states". This table
// reproduces that argument across target speeds (ms values) and per-region
// caps and contrasts it with the M-S-approach's M*Z + 1 states.
#include "bench_util.h"
#include "core/t_approach.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E6", "Section 3.2 (T-approach state explosion)",
      "Markov state counts: T-approach vs M-S-approach (N = 240, M = 20)");

  Table table({"V (m/s)", "ms", "cap", "T-approach states", "M-S states",
               "ratio"});
  for (double speed : {25.0, 10.0, 4.0, 2.0}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = 240;
    p.target_speed = speed;
    p.window_periods = speed <= 2.0 ? 40 : 20;  // keep M > ms
    for (int cap : {2, 3, 4}) {
      const double t_states = TApproachStateCount(p, cap);
      const double ms_states = MsApproachStateCount(p, cap);
      table.BeginRow();
      table.AddNumber(speed, 0);
      table.AddInt(p.Ms());
      table.AddInt(cap);
      table.AddCell(FormatDouble(t_states, 0));
      table.AddCell(FormatDouble(ms_states, 0));
      table.AddCell(FormatDouble(t_states / ms_states, 0));
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
