// E15 — deployment-regularity ablation. The analysis assumes uniform
// random deployment (Section 2, justified by sensor drift in undersea
// fields). Planned deployments are closer to a grid; a grid removes the
// clumping that makes some corridors over-covered and others empty, which
// changes the report-count distribution even at equal density. This sweep
// measures the gap between the uniform-deployment analysis and simulations
// on jittered grids of increasing regularity.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/ms_approach.h"
#include "geometry/field.h"
#include "geometry/segment.h"
#include "sim/deployment.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

namespace {

// Detection probability over grid deployments, with the same toroidal
// sensing geometry the library's trial runner defaults to (9-image test).
double GridDetectionProbability(const SystemParams& p, double jitter,
                                int trials, std::uint64_t seed) {
  const Field field(p.field_width, p.field_height);
  const Rng base(seed);
  std::atomic<long long> hits{0};
  ParallelFor(static_cast<std::size_t>(trials), [&](std::size_t i) {
    Rng rng = base.Substream(i);
    const std::vector<Vec2> nodes =
        DeployJitteredGrid(field, p.num_nodes, jitter, rng);
    const StraightLineMotion motion;
    const std::vector<Vec2> path =
        motion.SamplePath(field, p.window_periods, p.StepLength(), rng);
    int reports = 0;
    for (int period = 0; period < p.window_periods; ++period) {
      const double ox =
          std::floor(path[period].x / field.width()) * field.width();
      const double oy =
          std::floor(path[period].y / field.height()) * field.height();
      const Segment seg({path[period].x - ox, path[period].y - oy},
                        {path[period + 1].x - ox, path[period + 1].y - oy});
      for (const Vec2& node : nodes) {
        bool covered = false;
        for (int dx = -1; dx <= 1 && !covered; ++dx) {
          for (int dy = -1; dy <= 1 && !covered; ++dy) {
            covered = seg.WithinDistance({node.x + dx * field.width(),
                                          node.y + dy * field.height()},
                                         p.sensing_range);
          }
        }
        if (covered && rng.Bernoulli(p.detect_prob)) ++reports;
      }
    }
    if (reports >= p.threshold_reports) hits.fetch_add(1);
  });
  return static_cast<double>(hits.load()) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E15", "Deployment-regularity ablation",
      "Uniform-deployment analysis vs jittered-grid simulation\n"
      "(V = 10 m/s, k = 5 of M = 20, 10000 trials; jitter 0.5 = full cell "
      "spread, 0 = exact grid)");

  Table table({"N", "deployment", "analysis(uniform)", "simulation",
               "sim-analysis"});
  for (int nodes : {120, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;
    const double analysis = MsApproachAnalyze(p).detection_probability;

    TrialConfig uniform_config;
    uniform_config.params = p;
    MonteCarloOptions mc;
    mc.trials = 10000;
    const double uniform_sim =
        EstimateDetectionProbability(uniform_config, mc).point;
    table.BeginRow();
    table.AddInt(nodes);
    table.AddCell("uniform random");
    table.AddNumber(analysis, 4);
    table.AddNumber(uniform_sim, 4);
    table.AddNumber(uniform_sim - analysis, 4);

    for (double jitter : {0.5, 0.25, 0.0}) {
      const double sim = GridDetectionProbability(p, jitter, 10000, 99);
      table.BeginRow();
      table.AddInt(nodes);
      table.AddCell("grid jitter " + FormatDouble(jitter, 2));
      table.AddNumber(analysis, 4);
      table.AddNumber(sim, 4);
      table.AddNumber(sim - analysis, 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
