// E4 — Figure 9(c): the straight-line analysis compared against a
// simulation in which the target performs the paper's Random Walk (every
// period the heading changes by a uniform draw from [-pi/4, pi/4]).
//
// Expected shape (paper): the analysis stays close (max error ~2.4%) and
// errs on the HIGH side — a turning target re-covers area it already
// explored, so its effective Aggregate Region shrinks and the simulated
// detection probability drops slightly below the straight-line analysis.
#include <numbers>

#include "bench_util.h"
#include "core/ms_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E4", "Figure 9(c)",
      "Straight-line analysis vs Random-Walk simulation (turn in "
      "[-pi/4, pi/4] per period)\n"
      "(k = 5 of M = 20, Pd = 0.9, 10000 trials)");

  const RandomWalkMotion random_walk(std::numbers::pi / 4.0);

  Table table({"V (m/s)", "N", "analysis(straight)", "sim(random walk)",
               "analysis-sim"});
  for (double speed : {4.0, 10.0}) {
    for (int nodes = 60; nodes <= 240; nodes += 20) {
      SystemParams p = SystemParams::OnrDefaults();
      p.num_nodes = nodes;
      p.target_speed = speed;

      const double analysis = MsApproachAnalyze(p).detection_probability;

      TrialConfig config;
      config.params = p;
      config.motion = &random_walk;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      table.BeginRow();
      table.AddNumber(speed, 0);
      table.AddInt(nodes);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(analysis - sim.point, 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
