// E23 — track estimation quality after group detection. Each reporting
// node is within Rs of the true track, so the least-squares track fit's
// error should scale like Rs / sqrt(#reports); denser networks both detect
// more often AND localize better. Reported: speed error, heading error and
// mid-window position error versus the ground-truth track, over detected
// trials only.
#include <atomic>
#include <cmath>
#include <mutex>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "detect/kalman.h"
#include "detect/track_estimate.h"
#include "prob/stats.h"
#include "sim/trial.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E23", "Track estimation from accepted report chains",
      "Least-squares constant-velocity fit vs ground truth, detected trials\n"
      "only (V = 10 m/s, k = 5 of M = 20, 5000 trials per N)");

  Table table({"N", "P[fit possible]", "LSQ |V| err (m/s)",
               "Kalman |V| err (m/s)", "heading err (deg)",
               "mid-window pos err (m)", "mean reports used"});
  for (int nodes : {100, 140, 180, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;
    TrialConfig config;
    config.params = p;
    // Estimation needs consistent coordinates: use the real planar field
    // (no toroidal wrap), accepting the boundary-reduced detection rate.
    config.geometry = SensingGeometry::kPlanar;

    std::mutex mu;
    MeanVarAccumulator speed_err;
    MeanVarAccumulator kalman_speed_err;
    MeanVarAccumulator heading_err;
    MeanVarAccumulator pos_err;
    MeanVarAccumulator support;
    std::atomic<int> usable{0};
    const int trials = 5000;
    const Rng base(271828);

    ParallelFor(static_cast<std::size_t>(trials), [&](std::size_t i) {
      Rng rng = base.Substream(i);
      const TrialResult trial = RunTrial(config, rng);
      if (trial.total_true_reports < p.threshold_reports) return;
      // Need two distinct periods for an observable velocity.
      int min_p = 1 << 30;
      int max_p = -1;
      for (const SimReport& r : trial.reports) {
        min_p = std::min(min_p, r.period);
        max_p = std::max(max_p, r.period);
      }
      if (max_p <= min_p) return;
      usable.fetch_add(1);

      const TrackEstimate fit =
          FitConstantVelocityTrack(trial.reports, p.period_length);
      KalmanTracker::Options kf_options;
      kf_options.measurement_std = p.sensing_range / 2.0;
      const KalmanTrackResult kalman =
          RunKalmanTracker(trial.reports, p.period_length, kf_options);
      const Vec2 true_velocity =
          (trial.target_path[1] - trial.target_path[0]) / p.period_length;
      const double mid_time = 10.0 * p.period_length;
      const Vec2 true_mid = trial.target_path[10];

      const double sp_err = std::abs(fit.Speed() - p.target_speed);
      const double kf_sp_err =
          std::abs(kalman.velocity.Norm() - p.target_speed);
      const double angle = std::abs(std::atan2(
          true_velocity.Cross(fit.velocity), true_velocity.Dot(fit.velocity)));
      const double position_error = fit.PositionAt(mid_time).DistanceTo(true_mid);

      std::lock_guard<std::mutex> lock(mu);
      speed_err.Add(sp_err);
      kalman_speed_err.Add(kf_sp_err);
      heading_err.Add(angle * 180.0 / 3.14159265358979);
      pos_err.Add(position_error);
      support.Add(fit.support);
    });

    table.BeginRow();
    table.AddInt(nodes);
    table.AddNumber(static_cast<double>(usable.load()) / trials, 4);
    table.AddNumber(speed_err.Mean(), 2);
    table.AddNumber(kalman_speed_err.Mean(), 2);
    table.AddNumber(heading_err.Mean(), 2);
    table.AddNumber(pos_err.Mean(), 1);
    table.AddNumber(support.Mean(), 2);
  }
  bench::Emit(table, argc, argv);
  return 0;
}
