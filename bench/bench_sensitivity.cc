// E21 — parameter elasticities: which knob buys the most detection
// probability? The paper's purpose ("understand the impact of various
// system parameters ... in an easy way") made quantitative: percent change
// in P[detect] per percent change of each parameter, at two operating
// points (a marginal sparse network and a comfortable one).
#include "bench_util.h"
#include "core/sensitivity.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E21", "Parameter elasticities of the detection probability",
      "(dP/P)/(dx/x) by central differences on the M-S-approach");

  Table table({"operating point", "parameter", "value", "dP/dx",
               "elasticity"});
  for (int nodes : {100, 240}) {
    SystemParams p = SystemParams::OnrDefaults();
    p.num_nodes = nodes;
    p.target_speed = 10.0;
    const SensitivityReport report = AnalyzeSensitivity(p);
    const std::string label =
        "N=" + std::to_string(nodes) +
        " (P=" + FormatDouble(report.detection_probability, 3) + ")";
    for (const ParameterSensitivity& s : report.entries) {
      table.BeginRow();
      table.AddCell(label);
      table.AddCell(s.parameter);
      table.AddNumber(s.value, 1);
      table.AddCell(FormatDouble(s.derivative, 6));
      table.AddNumber(s.elasticity, 3);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
