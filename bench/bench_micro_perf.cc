// Micro performance suite (google-benchmark): regression guard for the
// hot paths — geometry decomposition, stage pmf construction, the full
// M-S analysis, the memo-cache hit/key paths, ParallelFor dispatch, one
// Monte-Carlo trial, gating and track fitting. Not a paper experiment;
// keeps the library honest as it evolves.
#include <benchmark/benchmark.h>

#include <atomic>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/ms_approach.h"
#include "core/region_pmf.h"
#include "detect/track_estimate.h"
#include "detect/track_gate.h"
#include "geometry/region_decomposition.h"
#include "prob/memo_cache.h"
#include "prob/pmf.h"
#include "sim/trial.h"

namespace {

using namespace sparsedet;

SystemParams Onr(int nodes, double speed) {
  SystemParams p = SystemParams::OnrDefaults();
  p.num_nodes = nodes;
  p.target_speed = speed;
  return p;
}

// Disables the process-wide memo cache for one benchmark's scope so the
// compute benchmarks keep measuring computation, not the cache hit path.
class ScopedMemoOff {
 public:
  ScopedMemoOff() : prev_(prob::MemoCache::Global().capacity()) {
    prob::MemoCache::Global().SetCapacity(0);
  }
  ~ScopedMemoOff() { prob::MemoCache::Global().SetCapacity(prev_); }

 private:
  std::size_t prev_;
};

void BM_RegionDecomposition(benchmark::State& state) {
  const double speed = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RegionDecomposition(1000.0, speed, 60.0).ms());
  }
}
BENCHMARK(BM_RegionDecomposition)->Arg(10)->Arg(4)->Arg(1);

void BM_CappedRegionPmf(benchmark::State& state) {
  const ScopedMemoOff memo_off;
  const RegionDecomposition decomp(1000.0, 10.0, 60.0);
  const int cap = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CappedRegionReportPmf(
        240, 32000.0 * 32000.0, decomp.area_h(), 0.9, cap));
  }
}
BENCHMARK(BM_CappedRegionPmf)->Arg(3)->Arg(6)->Arg(12);

// Same call served from a warm memo cache: the cost of one canonical key
// build + sharded lookup + Pmf copy-out. The gap to BM_CappedRegionPmf is
// what each sweep point saves.
void BM_CappedRegionPmfMemoHit(benchmark::State& state) {
  const RegionDecomposition decomp(1000.0, 10.0, 60.0);
  prob::MemoCache::Global().SetCapacity(4096);
  CappedRegionReportPmf(240, 32000.0 * 32000.0, decomp.area_h(), 0.9, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CappedRegionReportPmf(
        240, 32000.0 * 32000.0, decomp.area_h(), 0.9, 6));
  }
}
BENCHMARK(BM_CappedRegionPmfMemoHit);

void BM_MemoKeyBuild(benchmark::State& state) {
  for (auto _ : state) {
    prob::MemoKey key("bench/key");
    key.AddInt(240).AddDouble(32000.0 * 32000.0).AddDouble(0.9).AddInt(6);
    benchmark::DoNotOptimize(key.bytes().size());
  }
}
BENCHMARK(BM_MemoKeyBuild);

// Dispatch + join cost of the work-stealing loop on a trivial body, per
// worker count; the floor any parallelized hot path must amortize.
void BM_ParallelForDispatch(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    ParallelFor(
        1024, [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); },
        threads);
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

void BM_PmfConvolvePower(benchmark::State& state) {
  const Pmf step({0.4, 0.3, 0.2, 0.1});
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(step.ConvolvePower(n).TotalMass());
  }
}
BENCHMARK(BM_PmfConvolvePower)->Arg(16)->Arg(64)->Arg(256);

void BM_FullMsAnalysis(benchmark::State& state) {
  const ScopedMemoOff memo_off;
  const SystemParams p = Onr(240, state.range(0) == 0 ? 10.0 : 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MsApproachAnalyze(p).detection_probability);
  }
}
BENCHMARK(BM_FullMsAnalysis)->Arg(0)->Arg(1);

// The same analysis with a warm memo: the per-point cost of a k-sweep
// after the first threshold (tail sum + result assembly only).
void BM_FullMsAnalysisMemoHit(benchmark::State& state) {
  const SystemParams p = Onr(240, 10.0);
  prob::MemoCache::Global().SetCapacity(4096);
  MsApproachAnalyze(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MsApproachAnalyze(p).detection_probability);
  }
}
BENCHMARK(BM_FullMsAnalysisMemoHit);

void BM_SingleTrial(benchmark::State& state) {
  TrialConfig config;
  config.params = Onr(static_cast<int>(state.range(0)), 10.0);
  const Rng base(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Rng rng = base.Substream(i++);
    benchmark::DoNotOptimize(RunTrial(config, rng).total_true_reports);
  }
}
BENCHMARK(BM_SingleTrial)->Arg(60)->Arg(240);

std::vector<SimReport> MakeReports(int count) {
  std::vector<SimReport> reports;
  Rng rng(7);
  for (int i = 0; i < count; ++i) {
    reports.push_back({.period = i % 20,
                       .node = i,
                       .node_pos = {rng.Uniform(0.0, 32000.0),
                                    rng.Uniform(0.0, 32000.0)},
                       .is_false_alarm = false});
  }
  return reports;
}

void BM_TrackGateChain(benchmark::State& state) {
  const std::vector<SimReport> reports =
      MakeReports(static_cast<int>(state.range(0)));
  const TrackGateParams gate{.speed = 10.0,
                             .period_length = 60.0,
                             .sensing_range = 1000.0,
                             .slack = 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(LongestTrackConsistentChain(reports, gate));
  }
}
BENCHMARK(BM_TrackGateChain)->Arg(20)->Arg(100)->Arg(400);

void BM_TrackFit(benchmark::State& state) {
  std::vector<SimReport> reports;
  for (int i = 0; i < 20; ++i) {
    reports.push_back({.period = i,
                       .node = i,
                       .node_pos = {600.0 * i, 100.0},
                       .is_false_alarm = false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FitConstantVelocityTrack(reports, 60.0).Speed());
  }
}
BENCHMARK(BM_TrackFit);

}  // namespace

BENCHMARK_MAIN();
