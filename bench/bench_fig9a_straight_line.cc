// E2 — Figure 9(a): detection probability of a straight-line target,
// analytical M-S-approach (normalized, gh = g = 3) vs. 10 000-trial
// Monte-Carlo simulation, for V = 4 and 10 m/s and N = 60 .. 240.
//
// Expected shape (paper): the two curves coincide (sub-1% gaps), detection
// probability grows with N, and the faster target is detected more often.
#include "bench_util.h"
#include "core/ms_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main(int argc, char** argv) {
  bench::PrintHeader(
      "E2", "Figure 9(a)",
      "Detection probability, straight-line target: analysis vs simulation\n"
      "(k = 5 of M = 20 periods, Pd = 0.9, 10000 trials, 95% Wilson CI)");

  Table table({"V (m/s)", "N", "analysis", "simulation", "ci_lo", "ci_hi",
               "|diff|"});
  for (double speed : {4.0, 10.0}) {
    for (int nodes = 60; nodes <= 240; nodes += 20) {
      SystemParams p = SystemParams::OnrDefaults();
      p.num_nodes = nodes;
      p.target_speed = speed;

      const double analysis = MsApproachAnalyze(p).detection_probability;

      TrialConfig config;
      config.params = p;
      MonteCarloOptions mc;
      mc.trials = 10000;
      const ProportionEstimate sim = EstimateDetectionProbability(config, mc);

      table.BeginRow();
      table.AddNumber(speed, 0);
      table.AddInt(nodes);
      table.AddNumber(analysis, 4);
      table.AddNumber(sim.point, 4);
      table.AddNumber(sim.lo, 4);
      table.AddNumber(sim.hi, 4);
      table.AddNumber(std::abs(analysis - sim.point), 4);
    }
  }
  bench::Emit(table, argc, argv);
  return 0;
}
