#include "prob/joint_pmf.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "simd/simd.h"

namespace sparsedet {

JointPmf::JointPmf(int max_m, int max_n)
    : max_m_(max_m),
      max_n_(max_n),
      mass_(static_cast<std::size_t>(max_m + 1) *
                static_cast<std::size_t>(max_n + 1),
            0.0) {
  SPARSEDET_REQUIRE(max_m >= 0 && max_n >= 0, "joint pmf caps must be >= 0");
}

JointPmf JointPmf::DeltaZero(int max_m, int max_n) {
  JointPmf j(max_m, max_n);
  j.At(0, 0) = 1.0;
  return j;
}

double& JointPmf::At(int m, int n) {
  SPARSEDET_REQUIRE(m >= 0 && m <= max_m_ && n >= 0 && n <= max_n_,
                    "joint pmf index out of range");
  return mass_[Index(m, n)];
}

double JointPmf::At(int m, int n) const {
  SPARSEDET_REQUIRE(m >= 0 && m <= max_m_ && n >= 0 && n <= max_n_,
                    "joint pmf index out of range");
  return mass_[Index(m, n)];
}

double JointPmf::TotalMass() const {
  return std::accumulate(mass_.begin(), mass_.end(), 0.0);
}

double JointPmf::JointTail(int m_min, int n_min) const {
  double sum = 0.0;
  for (int m = std::max(m_min, 0); m <= max_m_; ++m) {
    for (int n = std::max(n_min, 0); n <= max_n_; ++n) {
      sum += mass_[Index(m, n)];
    }
  }
  return sum;
}

Pmf JointPmf::MarginalM() const {
  std::vector<double> out(static_cast<std::size_t>(max_m_) + 1, 0.0);
  for (int m = 0; m <= max_m_; ++m) {
    for (int n = 0; n <= max_n_; ++n) out[m] += mass_[Index(m, n)];
  }
  return Pmf(std::move(out));
}

Pmf JointPmf::MarginalN() const {
  std::vector<double> out(static_cast<std::size_t>(max_n_) + 1, 0.0);
  for (int n = 0; n <= max_n_; ++n) {
    for (int m = 0; m <= max_m_; ++m) out[n] += mass_[Index(m, n)];
  }
  return Pmf(std::move(out));
}

JointPmf JointPmf::ConvolveWith(const JointPmf& other, bool saturate_m,
                                bool saturate_n) const {
  JointPmf out(max_m_, max_n_);
  // The grid is row-major in n, so for fixed (m1, n1, m2) the in-range n2
  // run is one contiguous axpy into out's row m at offset n1, followed by
  // the n-saturating tail into (m, max_n_) in ascending n2 — exactly the
  // per-element order of the historical quadruple loop, so the result is
  // bit-identical across SIMD backends and to the pre-SIMD code.
  const simd::Kernels& kern = simd::Active();
  for (int m1 = 0; m1 <= max_m_; ++m1) {
    for (int n1 = 0; n1 <= max_n_; ++n1) {
      const double a = mass_[Index(m1, n1)];
      if (a == 0.0) continue;
      for (int m2 = 0; m2 <= other.max_m_; ++m2) {
        int m = m1 + m2;
        if (m > max_m_) {
          if (!saturate_m) continue;
          m = max_m_;
        }
        const double* brow = &other.mass_[other.Index(m2, 0)];
        double* orow = &out.mass_[out.Index(m, 0)];
        const int len = std::min(other.max_n_, max_n_ - n1) + 1;
        kern.axpy(a, brow, orow + n1, static_cast<std::size_t>(len));
        if (saturate_n) {
          double& top = orow[max_n_];
          for (int n2 = len; n2 <= other.max_n_; ++n2) top += a * brow[n2];
        }
      }
    }
  }
  return out;
}

void JointPmf::AccumulateScaled(const JointPmf& other, double scale) {
  SPARSEDET_REQUIRE(max_m_ == other.max_m_ && max_n_ == other.max_n_,
                    "joint pmf accumulation needs matching caps");
  simd::Active().axpy(scale, other.mass_.data(), mass_.data(), mass_.size());
}

JointPmf JointPmf::Normalized() const {
  const double total = TotalMass();
  SPARSEDET_REQUIRE(total > 0.0, "cannot normalize a zero-mass joint pmf");
  JointPmf out = *this;
  for (double& m : out.mass_) m /= total;
  return out;
}

}  // namespace sparsedet
