#include "prob/joint_pmf.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace sparsedet {

JointPmf::JointPmf(int max_m, int max_n)
    : max_m_(max_m),
      max_n_(max_n),
      mass_(static_cast<std::size_t>(max_m + 1) *
                static_cast<std::size_t>(max_n + 1),
            0.0) {
  SPARSEDET_REQUIRE(max_m >= 0 && max_n >= 0, "joint pmf caps must be >= 0");
}

JointPmf JointPmf::DeltaZero(int max_m, int max_n) {
  JointPmf j(max_m, max_n);
  j.At(0, 0) = 1.0;
  return j;
}

double& JointPmf::At(int m, int n) {
  SPARSEDET_REQUIRE(m >= 0 && m <= max_m_ && n >= 0 && n <= max_n_,
                    "joint pmf index out of range");
  return mass_[Index(m, n)];
}

double JointPmf::At(int m, int n) const {
  SPARSEDET_REQUIRE(m >= 0 && m <= max_m_ && n >= 0 && n <= max_n_,
                    "joint pmf index out of range");
  return mass_[Index(m, n)];
}

double JointPmf::TotalMass() const {
  return std::accumulate(mass_.begin(), mass_.end(), 0.0);
}

double JointPmf::JointTail(int m_min, int n_min) const {
  double sum = 0.0;
  for (int m = std::max(m_min, 0); m <= max_m_; ++m) {
    for (int n = std::max(n_min, 0); n <= max_n_; ++n) {
      sum += mass_[Index(m, n)];
    }
  }
  return sum;
}

Pmf JointPmf::MarginalM() const {
  std::vector<double> out(static_cast<std::size_t>(max_m_) + 1, 0.0);
  for (int m = 0; m <= max_m_; ++m) {
    for (int n = 0; n <= max_n_; ++n) out[m] += mass_[Index(m, n)];
  }
  return Pmf(std::move(out));
}

Pmf JointPmf::MarginalN() const {
  std::vector<double> out(static_cast<std::size_t>(max_n_) + 1, 0.0);
  for (int n = 0; n <= max_n_; ++n) {
    for (int m = 0; m <= max_m_; ++m) out[n] += mass_[Index(m, n)];
  }
  return Pmf(std::move(out));
}

JointPmf JointPmf::ConvolveWith(const JointPmf& other, bool saturate_m,
                                bool saturate_n) const {
  JointPmf out(max_m_, max_n_);
  for (int m1 = 0; m1 <= max_m_; ++m1) {
    for (int n1 = 0; n1 <= max_n_; ++n1) {
      const double a = mass_[Index(m1, n1)];
      if (a == 0.0) continue;
      for (int m2 = 0; m2 <= other.max_m_; ++m2) {
        for (int n2 = 0; n2 <= other.max_n_; ++n2) {
          const double b = other.mass_[other.Index(m2, n2)];
          if (b == 0.0) continue;
          int m = m1 + m2;
          int n = n1 + n2;
          if (m > max_m_) {
            if (!saturate_m) continue;
            m = max_m_;
          }
          if (n > max_n_) {
            if (!saturate_n) continue;
            n = max_n_;
          }
          out.mass_[out.Index(m, n)] += a * b;
        }
      }
    }
  }
  return out;
}

JointPmf JointPmf::Normalized() const {
  const double total = TotalMass();
  SPARSEDET_REQUIRE(total > 0.0, "cannot normalize a zero-mass joint pmf");
  JointPmf out = *this;
  for (double& m : out.mass_) m /= total;
  return out;
}

}  // namespace sparsedet
