#include "prob/combinatorics.h"

#include <array>
#include <cmath>

#include "common/check.h"

namespace sparsedet {
namespace {

constexpr int kTableSize = 128;
constexpr int kBigTableSize = 4096;

const std::array<double, kTableSize>& LogFactorialTable() {
  static const std::array<double, kTableSize> table = [] {
    std::array<double, kTableSize> t{};
    t[0] = 0.0;
    for (int n = 1; n < kTableSize; ++n) {
      t[n] = t[n - 1] + std::log(static_cast<double>(n));
    }
    return t;
  }();
  return table;
}

// Cached lgamma values for kTableSize <= n < kBigTableSize: paper-sized
// problems (N up to a few hundred nodes, scaling benches far beyond) sit
// past the cumulative-sum table, and LogChoose is called per (n, k) in
// every binomial row. Each entry is the *same* LogGamma(n + 1) the live
// call would compute, so caching is bit-invisible; it only removes the
// repeated lgamma_r evaluations from the stage-pmf hot path.
const std::array<double, kBigTableSize - kTableSize>& BigLogFactorialTable() {
  static const std::array<double, kBigTableSize - kTableSize> table = [] {
    std::array<double, kBigTableSize - kTableSize> t{};
    for (int n = kTableSize; n < kBigTableSize; ++n) {
      t[n - kTableSize] = LogGamma(static_cast<double>(n) + 1.0);
    }
    return t;
  }();
  return table;
}

}  // namespace

double LogGamma(double x) {
  SPARSEDET_REQUIRE(x > 0.0, "LogGamma requires x > 0");
#if defined(__GLIBC__) || defined(__APPLE__)
  // lgamma() writes the global `signgam`, which races when engine workers
  // evaluate PMFs concurrently; lgamma_r takes the sign as an out-param.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double LogFactorial(int n) {
  SPARSEDET_REQUIRE(n >= 0, "factorial of a negative number");
  if (n < kTableSize) return LogFactorialTable()[n];
  if (n < kBigTableSize) return BigLogFactorialTable()[n - kTableSize];
  return LogGamma(static_cast<double>(n) + 1.0);
}

double LogChoose(int n, int k) {
  SPARSEDET_REQUIRE(k >= 0 && k <= n, "LogChoose requires 0 <= k <= n");
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double Choose(int n, int k) {
  SPARSEDET_REQUIRE(k >= 0 && k <= n, "Choose requires 0 <= k <= n");
  if (k == 0 || k == n) return 1.0;
  return std::exp(LogChoose(n, k));
}

}  // namespace sparsedet
