// Pmf: probability mass function on {0, 1, 2, ...} as a dense vector.
//
// This is the workhorse of the analytical models: per-stage report-count
// distributions are Pmfs, and chaining sensing periods is convolution.
// A Pmf is allowed to be *sub-stochastic* (total mass < 1) — the paper's
// capped enumerations deliberately drop the mass of configurations with
// more than g sensors per region and renormalize at the very end (Eq. 13),
// so the type tracks mass rather than enforcing it.
#pragma once

#include <cstddef>
#include <vector>

namespace sparsedet {

class Pmf {
 public:
  // The zero distribution P[X = 0] = 1.
  Pmf();
  // Takes the mass vector; requires every entry >= 0 and at least one entry.
  explicit Pmf(std::vector<double> mass);

  static Pmf Delta(int value);  // point mass at `value`

  std::size_t size() const { return mass_.size(); }
  int MaxValue() const { return static_cast<int>(mass_.size()) - 1; }
  // P[X = k]; 0 beyond the stored support.
  double operator[](std::size_t k) const {
    return k < mass_.size() ? mass_[k] : 0.0;
  }
  const std::vector<double>& mass() const { return mass_; }

  double TotalMass() const;
  // P[X >= k].
  double TailSum(int k) const;
  // P[X <= k].
  double HeadSum(int k) const;
  double Mean() const;
  double Variance() const;

  // Distribution of X + Y for independent X ~ *this, Y ~ other. If
  // `max_value >= 0`, the support is truncated at max_value and the excess
  // mass *dropped* (matching the paper's finite Markov state space when the
  // top states are not merged) unless `saturate` is true, in which case the
  // excess mass accumulates at max_value (matching a merged ">= top" state).
  Pmf ConvolveWith(const Pmf& other, int max_value = -1,
                   bool saturate = false) const;

  // n-fold convolution of *this with itself (n >= 0; n = 0 gives Delta(0)).
  Pmf ConvolvePower(int n, int max_value = -1, bool saturate = false) const;

  // Scales all mass so TotalMass() == 1. Requires TotalMass() > 0.
  Pmf Normalized() const;

  // Distribution of B * X where B ~ Bernoulli(keep_prob) independent of X:
  // with probability 1 - keep_prob the outcome collapses to 0. This is the
  // "thinning" used to model unreliable sensors (a dead sensor generates
  // no reports regardless of its position). Requires keep_prob in [0, 1].
  Pmf ThinnedBy(double keep_prob) const;

  // Drops trailing zero entries (keeps at least one entry).
  Pmf Trimmed() const;

 private:
  std::vector<double> mass_;
};

// The raw-buffer kernel under ConvolveWith, shared with the arena-backed
// region-table chains: out[i + j] += a[i] * b[j] for every (i, j) with
// i + j < out_size; when `saturate` is true the overflowing terms
// accumulate into out[out_size - 1] instead of being dropped. `out` must
// hold out_size entries and is accumulated into (callers zero it first
// when they want a plain convolution). Runs i-major with the inner j run
// vectorized, which keeps the per-element accumulation order — and hence
// the bits — identical to the historical scalar double loop.
void ConvolveAccumulate(const double* a, std::size_t na, const double* b,
                        std::size_t nb, double* out, std::size_t out_size,
                        bool saturate);

}  // namespace sparsedet
