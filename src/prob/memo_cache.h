// Process-wide sharded memo cache for solver sub-results.
//
// A parameter sweep evaluates hundreds of nearby (N, v, k, ...) points, and
// most of the expensive sub-results — per-NEDR Region(i) report PMFs,
// capped-region convolution chains, S-approach region enumerations — depend
// only on a small parameter tuple that repeats across sweep points and
// across batch-engine requests. The memo cache keys those tuples
// canonically (bit-exact doubles, fixed-width integers, a per-call-site
// type tag) and shares the computed values process-wide, so a 200-point
// sweep derives each sub-PMF once instead of 200 times.
//
// Concurrency and determinism:
//   * The cache is sharded (FNV-1a over the key bytes picks the shard);
//     each shard is an independent mutex-guarded LRU list, so parallel
//     workers rarely contend on the same lock.
//   * Values are immutable (`shared_ptr<const T>`) and computed by pure
//     functions of their key, so a hit returns a value bitwise identical to
//     what a fresh compute would produce — cold vs. warm cache cannot
//     change solver output, only its speed.
//   * compute() runs outside any shard lock. Two threads may race to
//     compute the same key; the first insert wins and the loser adopts the
//     winner's value, so all callers share one instance.
//   * Inserts are skipped while a resilience::CancelToken is installed on
//     the calling thread. A deadline-bearing solve therefore never
//     populates the cache: either its compute() throws Cancelled (no value
//     exists), or the completed value is discarded after use. This keeps
//     "cancelled solves never warm the cache" a structural guarantee
//     instead of a races-permitting best effort. Lookups still hit.
//
// Capacity is counted in entries (the `--memo-cache-entries` knob); 0
// disables the cache entirely (every call computes). Approximate byte usage
// is tracked per entry via a caller-supplied estimator for the obs gauges.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sparsedet::prob {

// Canonical, injective key builder. Every field is encoded as a one-byte
// type tag plus a fixed-width little-endian payload, and the constructor
// tag names the call site's value type, so keys from different memoized
// functions can never alias even when their parameters coincide.
class MemoKey {
 public:
  explicit MemoKey(std::string_view tag);

  MemoKey& AddInt(std::int64_t value);
  // Doubles are keyed by their IEEE-754 bit pattern: two inputs share a key
  // only when they are bit-identical, which is exactly the determinism
  // contract (no epsilon aliasing that could return a near-miss value).
  MemoKey& AddDouble(double value);
  MemoKey& AddBool(bool value);

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

struct MemoCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  // Completed computes whose insert was suppressed because a CancelToken
  // forbidding memo inserts was installed (deadline-bearing solve) or the
  // cache is disabled.
  std::uint64_t skipped_inserts = 0;
  // Entries loaded from a disk snapshot (never counted as inserts).
  std::uint64_t restored = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t capacity_entries = 0;
  // The snapshot last loaded into this cache; all zero when none was.
  std::uint64_t snapshot_entries = 0;
  std::uint64_t snapshot_bytes = 0;
  std::int64_t snapshot_loaded_unix_ms = 0;
};

// Per-shard occupancy, for the admin plane's /statusz (a skewed shard is
// the first symptom of a bad key distribution).
struct MemoShardStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

class MemoCache {
 public:
  static constexpr std::size_t kDefaultCapacityEntries = 4096;

  explicit MemoCache(std::size_t capacity_entries = kDefaultCapacityEntries);

  // The process-wide instance shared by every solve and engine request.
  // Intentionally leaked so worker threads draining during process exit
  // never race static destruction.
  static MemoCache& Global();

  // Resizing evicts LRU entries as needed; 0 disables caching.
  void SetCapacity(std::size_t capacity_entries);
  std::size_t capacity() const;

  void Clear();
  MemoCacheStats Stats() const;
  // One entry per shard, in shard order. Takes each shard mutex briefly.
  std::vector<MemoShardStats> ShardStats();

  // Snapshot plumbing (prob/memo_snapshot.h drives these). ForEach visits
  // every resident entry shard by shard, LRU first within a shard, without
  // copying values; the callback must not re-enter the cache. RestoreEntry
  // inserts an entry loaded from disk, bypassing the cancel-token gate and
  // the insert counter (it lands in `restored` instead); recency follows
  // call order, so replaying a ForEach dump restores the LRU order too.
  void ForEach(const std::function<void(const std::string& key,
                                        const std::shared_ptr<const void>&,
                                        std::size_t bytes)>& fn);
  void RestoreEntry(const std::string& key, std::shared_ptr<const void> value,
                    std::size_t bytes);

  // Records what LoadMemoSnapshot brought in, for the obs gauges and the
  // {"cmd":"stats"} snapshot block.
  void NoteSnapshotLoaded(std::uint64_t entries, std::uint64_t bytes,
                          std::int64_t loaded_unix_ms);

  // Returns the cached value for `key`, or computes, (maybe) inserts, and
  // returns it. `bytes_of` estimates the value's heap footprint for the
  // obs gauges; omit it for flat value types.
  template <typename T, typename Compute>
  std::shared_ptr<const T> GetOrCompute(
      const MemoKey& key, Compute&& compute,
      const std::function<std::size_t(const T&)>& bytes_of = nullptr) {
    if (std::shared_ptr<const void> found = Lookup(key.bytes())) {
      return std::static_pointer_cast<const T>(std::move(found));
    }
    auto value = std::make_shared<const T>(compute());
    const std::size_t bytes =
        sizeof(T) + (bytes_of ? bytes_of(*value) : std::size_t{0});
    std::shared_ptr<const void> resident =
        Insert(key.bytes(), value, bytes);
    if (resident != nullptr) {
      return std::static_pointer_cast<const T>(std::move(resident));
    }
    return value;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
  };

  std::shared_ptr<const void> Lookup(const std::string& key);
  // Returns the entry now resident under `key` (an earlier racer's value if
  // one beat us), or nullptr when the insert was suppressed.
  std::shared_ptr<const void> Insert(const std::string& key,
                                     std::shared_ptr<const void> value,
                                     std::size_t bytes);
  Shard& ShardFor(const std::string& key);
  void EvictLockedToCapacity(Shard& shard, std::size_t per_shard_capacity);

  static constexpr std::size_t kShardCount = 16;
  std::vector<Shard> shards_;
  std::atomic<std::size_t> capacity_entries_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> skipped_inserts_{0};
  std::atomic<std::uint64_t> restored_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> snapshot_entries_{0};
  std::atomic<std::uint64_t> snapshot_bytes_{0};
  std::atomic<std::int64_t> snapshot_loaded_unix_ms_{0};
};

}  // namespace sparsedet::prob
