#include "prob/memo_cache.h"

#include <algorithm>
#include <cstring>

#include "resilience/cancel.h"

namespace sparsedet::prob {
namespace {

// Field type tags keep the encoding injective: an int64 field can never be
// confused with a double field whose payload happens to match.
constexpr char kTagInt = 'i';
constexpr char kTagDouble = 'd';
constexpr char kTagBool = 'b';

void AppendFixed64(std::string* out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, sizeof(buf));
}

// FNV-1a: stable across runs and platforms, unlike std::hash, so shard
// assignment (and thus any contention pattern) is reproducible.
std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

MemoKey::MemoKey(std::string_view tag) {
  AppendFixed64(&bytes_, tag.size());
  bytes_.append(tag.data(), tag.size());
}

MemoKey& MemoKey::AddInt(std::int64_t value) {
  bytes_.push_back(kTagInt);
  AppendFixed64(&bytes_, static_cast<std::uint64_t>(value));
  return *this;
}

MemoKey& MemoKey::AddDouble(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  bytes_.push_back(kTagDouble);
  AppendFixed64(&bytes_, bits);
  return *this;
}

MemoKey& MemoKey::AddBool(bool value) {
  bytes_.push_back(kTagBool);
  bytes_.push_back(value ? '\1' : '\0');
  return *this;
}

MemoCache::MemoCache(std::size_t capacity_entries)
    : shards_(kShardCount), capacity_entries_(capacity_entries) {}

MemoCache& MemoCache::Global() {
  static MemoCache* cache = new MemoCache();  // leaked: see header
  return *cache;
}

void MemoCache::SetCapacity(std::size_t capacity_entries) {
  capacity_entries_.store(capacity_entries, std::memory_order_relaxed);
  const std::size_t per_shard =
      capacity_entries == 0
          ? 0
          : std::max<std::size_t>(1, capacity_entries / kShardCount);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    EvictLockedToCapacity(shard, per_shard);
  }
}

std::size_t MemoCache::capacity() const {
  return capacity_entries_.load(std::memory_order_relaxed);
}

void MemoCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) {
      entries_.fetch_sub(1, std::memory_order_relaxed);
      bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    }
    shard.index.clear();
    shard.lru.clear();
  }
}

MemoCacheStats MemoCache::Stats() const {
  MemoCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.skipped_inserts = skipped_inserts_.load(std::memory_order_relaxed);
  stats.restored = restored_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.capacity_entries = capacity_entries_.load(std::memory_order_relaxed);
  stats.snapshot_entries = snapshot_entries_.load(std::memory_order_relaxed);
  stats.snapshot_bytes = snapshot_bytes_.load(std::memory_order_relaxed);
  stats.snapshot_loaded_unix_ms =
      snapshot_loaded_unix_ms_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<MemoShardStats> MemoCache::ShardStats() {
  std::vector<MemoShardStats> out;
  out.reserve(shards_.size());
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    MemoShardStats s;
    s.entries = shard.lru.size();
    for (const Entry& entry : shard.lru) s.bytes += entry.bytes;
    out.push_back(s);
  }
  return out;
}

void MemoCache::ForEach(
    const std::function<void(const std::string&,
                             const std::shared_ptr<const void>&, std::size_t)>&
        fn) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // LRU first (list back), so a saver that writes entries in visit order
    // and a restorer that replays them via RestoreEntry (each push_front)
    // reproduce the same recency ordering.
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      fn(it->key, it->value, it->bytes);
    }
  }
}

void MemoCache::RestoreEntry(const std::string& key,
                             std::shared_ptr<const void> value,
                             std::size_t bytes) {
  const std::size_t total_capacity = capacity();
  if (total_capacity == 0) return;
  const std::size_t per_shard =
      std::max<std::size_t>(1, total_capacity / kShardCount);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.find(key) != shard.index.end()) return;
  shard.lru.push_front(Entry{key, std::move(value), bytes});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  restored_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  EvictLockedToCapacity(shard, per_shard);
}

void MemoCache::NoteSnapshotLoaded(std::uint64_t entries, std::uint64_t bytes,
                                   std::int64_t loaded_unix_ms) {
  snapshot_entries_.store(entries, std::memory_order_relaxed);
  snapshot_bytes_.store(bytes, std::memory_order_relaxed);
  snapshot_loaded_unix_ms_.store(loaded_unix_ms, std::memory_order_relaxed);
}

MemoCache::Shard& MemoCache::ShardFor(const std::string& key) {
  return shards_[Fnv1a(key) % kShardCount];
}

std::shared_ptr<const void> MemoCache::Lookup(const std::string& key) {
  if (capacity() == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

std::shared_ptr<const void> MemoCache::Insert(
    const std::string& key, std::shared_ptr<const void> value,
    std::size_t bytes) {
  const std::size_t total_capacity = capacity();
  // Never let a deadline-bearing solve warm the cache; see header. Tokens
  // that exist only for disconnect-style abandonment explicitly allow
  // inserts (a *completed* compute under one is still pure and valid).
  const resilience::CancelToken* token = resilience::CurrentCancelToken();
  if (total_capacity == 0 ||
      (token != nullptr && !token->memo_inserts_allowed())) {
    skipped_inserts_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::size_t per_shard =
      std::max<std::size_t>(1, total_capacity / kShardCount);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A concurrent compute for the same key beat us; share its value.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }
  shard.lru.push_front(Entry{key, std::move(value), bytes});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  inserts_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  EvictLockedToCapacity(shard, per_shard);
  return shard.lru.front().value;
}

void MemoCache::EvictLockedToCapacity(Shard& shard,
                                      std::size_t per_shard_capacity) {
  while (shard.lru.size() > per_shard_capacity) {
    const Entry& victim = shard.lru.back();
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.index.erase(std::string_view(victim.key));
    shard.lru.pop_back();
  }
}

}  // namespace sparsedet::prob
