// Goodness-of-fit between an empirical sample histogram and a reference
// pmf. Used to validate the simulator against the exact analytical
// report-count distribution at the whole-distribution level, not just the
// detection-probability tail.
#pragma once

#include <cstdint>
#include <vector>

#include "prob/pmf.h"

namespace sparsedet {

struct ChiSquareResult {
  double statistic = 0.0;       // sum (obs - exp)^2 / exp over merged bins
  int degrees_of_freedom = 0;   // merged bins - 1
  double p_value = 0.0;         // P[chi2_dof >= statistic]
  int bins_used = 0;
};

// Pearson chi-square test of `counts` (histogram over {0, 1, ...}) against
// `reference` (normalized internally). Bins with expected count below
// `min_expected` are merged into their right neighbor (the standard rule
// of thumb); mass of the reference beyond the histogram support forms a
// final tail bin. Requires a positive total count and at least two merged
// bins. The test is valid for samples drawn independently.
ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<std::int64_t>& counts,
                                       const Pmf& reference,
                                       double min_expected = 5.0);

// Regularized upper incomplete gamma Q(s, x) = Gamma(s, x) / Gamma(s),
// which equals the chi-square survival function with dof = 2s, x = stat/2.
// Requires s > 0, x >= 0.
double RegularizedGammaQ(double s, double x);

// Chi-square survival function P[X >= x] for `dof` degrees of freedom.
double ChiSquareSurvival(double x, int dof);

}  // namespace sparsedet
