// Log-space combinatorics. All heavy binomial work in the analytical models
// goes through these helpers so that quantities like C(240, 6) * p^6 stay
// accurate for tiny p.
#pragma once

namespace sparsedet {

// ln Γ(x). Thread-safe: avoids the global `signgam` that glibc's lgamma()
// writes (engine workers evaluate PMFs concurrently). Requires x > 0.
double LogGamma(double x);

// ln(n!). Requires n >= 0. Exact table for small n, lgamma beyond.
double LogFactorial(int n);

// ln C(n, k). Requires 0 <= k <= n.
double LogChoose(int n, int k);

// C(n, k) as a double (may overflow to inf for huge n; fine for our sizes).
// Requires 0 <= k <= n.
double Choose(int n, int k);

}  // namespace sparsedet
