#include "prob/memo_snapshot.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.h"
#include "prob/memo_cache.h"

namespace sparsedet::prob {
namespace {

constexpr char kMagic[8] = {'S', 'P', 'D', 'M', 'E', 'M', 'O', '\x01'};
constexpr std::uint32_t kVersion = 1;

void AppendFixed32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendFixed64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t Fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Cursor over an in-memory snapshot image; every read is bounds-checked so
// a truncated or corrupt file turns into Error, never UB.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint32_t ReadFixed32() {
    std::uint32_t v = 0;
    const std::string_view raw = Take(4, "u32");
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(raw[i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t ReadFixed64() {
    std::uint64_t v = 0;
    const std::string_view raw = Take(8, "u64");
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(raw[i]))
           << (8 * i);
    }
    return v;
  }

  std::string_view Take(std::size_t n, const char* what) {
    if (n > data_.size() - pos_) {
      throw Error(std::string("memo snapshot truncated reading ") + what);
    }
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

struct CodecRegistry {
  std::mutex mutex;
  std::map<std::string, MemoCodec> codecs;
};

CodecRegistry& Registry() {
  static CodecRegistry* registry = new CodecRegistry();  // leaked: static-
  return *registry;  // destruction order vs. registrars is a non-problem
}

bool FindCodec(const std::string& tag, MemoCodec* out) {
  CodecRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.codecs.find(tag);
  if (it == registry.codecs.end()) return false;
  *out = it->second;
  return true;
}

std::int64_t NowUnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void MemoAppendU64(std::string* out, std::uint64_t v) {
  AppendFixed64(out, v);
}

void MemoAppendDouble(std::string* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendFixed64(out, bits);
}

std::uint64_t MemoDecoder::ReadU64() {
  if (remaining() < 8) throw Error("memo codec: truncated value");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double MemoDecoder::ReadDouble() {
  const std::uint64_t bits = ReadU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void RegisterMemoCodec(const std::string& tag, MemoCodec codec) {
  CodecRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.codecs[tag] = std::move(codec);
}

std::string MemoKeyTag(std::string_view key_bytes) {
  // MemoKey bytes start with [8-byte LE tag length][tag bytes].
  if (key_bytes.size() < 8) return std::string();
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(static_cast<unsigned char>(key_bytes[i]))
           << (8 * i);
  }
  if (len > key_bytes.size() - 8) return std::string();
  return std::string(key_bytes.substr(8, len));
}

MemoSnapshotInfo SaveMemoSnapshot(MemoCache& cache, const std::string& path) {
  MemoSnapshotInfo info;
  std::string payload;
  std::uint64_t entry_count = 0;
  cache.ForEach([&](const std::string& key,
                    const std::shared_ptr<const void>& value,
                    std::size_t /*bytes*/) {
    MemoCodec codec;
    if (!FindCodec(MemoKeyTag(key), &codec)) {
      ++info.skipped;
      return;
    }
    const std::string encoded = codec.encode(value.get());
    AppendFixed64(&payload, key.size());
    payload.append(key);
    AppendFixed64(&payload, encoded.size());
    payload.append(encoded);
    ++entry_count;
  });

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  AppendFixed32(&header, kVersion);
  AppendFixed64(&header, entry_count);
  AppendFixed64(&header, payload.size());
  AppendFixed64(&header, Fnv1a(payload));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("memo snapshot: cannot open " + tmp + " for writing");
    }
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw Error("memo snapshot: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("memo snapshot: rename " + tmp + " -> " + path + " failed");
  }
  info.entries = entry_count;
  info.bytes = header.size() + payload.size();
  return info;
}

MemoSnapshotInfo LoadMemoSnapshot(MemoCache& cache, const std::string& path) {
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw Error("memo snapshot: cannot open " + path);
    }
    std::vector<char> buf(1 << 16);
    while (in.read(buf.data(), static_cast<std::streamsize>(buf.size())) ||
           in.gcount() > 0) {
      image.append(buf.data(), static_cast<std::size_t>(in.gcount()));
    }
  }

  ByteReader reader(image);
  const std::string_view magic = reader.Take(sizeof(kMagic), "magic");
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    throw Error("memo snapshot: bad magic in " + path);
  }
  const std::uint32_t version = reader.ReadFixed32();
  if (version != kVersion) {
    throw Error("memo snapshot: unsupported version " +
                std::to_string(version) + " in " + path);
  }
  const std::uint64_t entry_count = reader.ReadFixed64();
  const std::uint64_t payload_size = reader.ReadFixed64();
  const std::uint64_t checksum = reader.ReadFixed64();
  if (payload_size != reader.remaining()) {
    throw Error("memo snapshot: payload size mismatch in " + path);
  }
  const std::string_view payload =
      reader.Take(static_cast<std::size_t>(payload_size), "payload");
  if (Fnv1a(payload) != checksum) {
    throw Error("memo snapshot: checksum mismatch in " + path);
  }

  MemoSnapshotInfo info;
  info.bytes = image.size();
  ByteReader entries(payload);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t key_len = entries.ReadFixed64();
    const std::string key(
        entries.Take(static_cast<std::size_t>(key_len), "key"));
    const std::uint64_t val_len = entries.ReadFixed64();
    const std::string_view encoded =
        entries.Take(static_cast<std::size_t>(val_len), "value");
    MemoCodec codec;
    if (!FindCodec(MemoKeyTag(key), &codec)) {
      ++info.skipped;  // snapshot from a binary with more codecs: skip
      continue;
    }
    std::size_t bytes = 0;
    std::shared_ptr<const void> value = codec.decode(encoded, &bytes);
    cache.RestoreEntry(key, std::move(value), bytes);
    ++info.entries;
  }
  if (entries.remaining() != 0) {
    throw Error("memo snapshot: trailing bytes after entries in " + path);
  }
  cache.NoteSnapshotLoaded(info.entries, info.bytes, NowUnixMillis());
  return info;
}

}  // namespace sparsedet::prob
