// Numerically stable Binomial(n, p) pmf / cdf.
//
// The paper's Eqs. 1-2 (single-period model) and every "probability that m
// of N sensors fall in an area" term are binomial; p can be as small as
// 1e-5 for sparse deployments, so all pmf evaluation is done in log space.
#pragma once

#include <vector>

namespace sparsedet {

// P[X = k] for X ~ Binomial(n, p). Requires n >= 0, 0 <= k, 0 <= p <= 1.
// Returns 0 for k > n.
double BinomialPmf(int n, int k, double p);

// P[X <= k]. Requires n >= 0, 0 <= p <= 1; k < 0 yields 0, k >= n yields 1.
double BinomialCdf(int n, int k, double p);

// P[X >= k] = 1 - P[X <= k-1], summed from the small tail for stability.
double BinomialSurvival(int n, int k, double p);

// The full pmf vector [P(0), ..., P(max_k)], max_k <= n (defaults to n).
std::vector<double> BinomialPmfVector(int n, double p, int max_k = -1);

}  // namespace sparsedet
