#include "prob/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sparsedet {

ProportionEstimate WilsonInterval(std::int64_t successes, std::int64_t trials,
                                  double z) {
  SPARSEDET_REQUIRE(trials > 0, "Wilson interval needs at least one trial");
  SPARSEDET_REQUIRE(successes >= 0 && successes <= trials,
                    "successes must be in [0, trials]");
  SPARSEDET_REQUIRE(z > 0.0, "z must be positive");

  ProportionEstimate est;
  est.successes = successes;
  est.trials = trials;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  est.point = p;

  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  est.lo = std::max(0.0, center - half);
  est.hi = std::min(1.0, center + half);
  return est;
}

void MeanVarAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double MeanVarAccumulator::Mean() const { return mean_; }

double MeanVarAccumulator::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double MeanVarAccumulator::StdDev() const { return std::sqrt(Variance()); }

}  // namespace sparsedet
