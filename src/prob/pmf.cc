#include "prob/pmf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "resilience/cancel.h"
#include "simd/simd.h"

namespace sparsedet {

Pmf::Pmf() : mass_{1.0} {}

Pmf::Pmf(std::vector<double> mass) : mass_(std::move(mass)) {
  SPARSEDET_REQUIRE(!mass_.empty(), "a pmf needs at least one entry");
  for (double m : mass_) {
    SPARSEDET_REQUIRE(m >= 0.0 && std::isfinite(m),
                      "pmf entries must be finite and non-negative");
  }
}

Pmf Pmf::Delta(int value) {
  SPARSEDET_REQUIRE(value >= 0, "pmf support starts at 0");
  std::vector<double> mass(static_cast<std::size_t>(value) + 1, 0.0);
  mass.back() = 1.0;
  return Pmf(std::move(mass));
}

double Pmf::TotalMass() const {
  return std::accumulate(mass_.begin(), mass_.end(), 0.0);
}

double Pmf::TailSum(int k) const {
  if (k <= 0) return TotalMass();
  double sum = 0.0;
  for (std::size_t i = static_cast<std::size_t>(k); i < mass_.size(); ++i) {
    sum += mass_[i];
  }
  return sum;
}

double Pmf::HeadSum(int k) const {
  if (k < 0) return 0.0;
  const std::size_t end =
      std::min(mass_.size(), static_cast<std::size_t>(k) + 1);
  return std::accumulate(mass_.begin(), mass_.begin() + end, 0.0);
}

double Pmf::Mean() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    sum += static_cast<double>(i) * mass_[i];
  }
  return sum;
}

double Pmf::Variance() const {
  const double mu = Mean();
  double sum = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    const double d = static_cast<double>(i) - mu;
    sum += d * d * mass_[i];
  }
  return sum;
}

Pmf Pmf::ConvolveWith(const Pmf& other, int max_value, bool saturate) const {
  const std::size_t full = mass_.size() + other.mass_.size() - 1;
  const std::size_t out_size =
      max_value < 0 ? full
                    : std::min(full, static_cast<std::size_t>(max_value) + 1);
  std::vector<double> out(out_size, 0.0);
  ConvolveAccumulate(mass_.data(), mass_.size(), other.mass_.data(),
                     other.mass_.size(), out.data(), out_size, saturate);
  return Pmf(std::move(out));
}

void ConvolveAccumulate(const double* a, std::size_t na, const double* b,
                        std::size_t nb, double* out, std::size_t out_size,
                        bool saturate) {
  const simd::Kernels& kern = simd::Active();
  double* const last = out + (out_size - 1);
  for (std::size_t i = 0; i < na; ++i) {
    resilience::CancellationPoint();
    const double ai = a[i];
    if (ai == 0.0) continue;
    if (i < out_size) {
      // In-range targets i .. i+len-1 form one contiguous axpy run; the
      // vector lanes perform the same multiply-then-add per element as
      // the scalar reference, so this stays bit-identical across
      // backends (and to the pre-SIMD double loop).
      const std::size_t len = std::min(nb, out_size - i);
      kern.axpy(ai, b, out + i, len);
      if (saturate) {
        // The overflow tail keeps strict ascending-j order into the top
        // bin, matching the historical interleaving (the in-range run
        // ends exactly where the tail begins).
        for (std::size_t j = len; j < nb; ++j) *last += ai * b[j];
      }
    } else if (saturate) {
      for (std::size_t j = 0; j < nb; ++j) *last += ai * b[j];
    }
  }
}

Pmf Pmf::ConvolvePower(int n, int max_value, bool saturate) const {
  SPARSEDET_REQUIRE(n >= 0, "convolution power must be >= 0");
  // Exponentiation by squaring keeps the number of convolutions O(log n);
  // with truncation the intermediate supports stay bounded anyway.
  Pmf result = Pmf::Delta(0);
  Pmf base = *this;
  int e = n;
  while (e > 0) {
    if (e & 1) result = result.ConvolveWith(base, max_value, saturate);
    e >>= 1;
    if (e > 0) base = base.ConvolveWith(base, max_value, saturate);
  }
  return result;
}

Pmf Pmf::Normalized() const {
  const double total = TotalMass();
  SPARSEDET_REQUIRE(total > 0.0, "cannot normalize a zero-mass pmf");
  std::vector<double> out(mass_);
  for (double& m : out) m /= total;
  return Pmf(std::move(out));
}

Pmf Pmf::ThinnedBy(double keep_prob) const {
  SPARSEDET_REQUIRE(keep_prob >= 0.0 && keep_prob <= 1.0,
                    "keep probability must be in [0, 1]");
  std::vector<double> out(mass_.size());
  simd::Active().scale(keep_prob, mass_.data(), out.data(), mass_.size());
  // The collapsed outcomes keep the total mass constant (sub-stochastic
  // pmfs stay sub-stochastic with the same total).
  out[0] += (1.0 - keep_prob) * TotalMass();
  return Pmf(std::move(out));
}

Pmf Pmf::Trimmed() const {
  std::size_t last = mass_.size();
  while (last > 1 && mass_[last - 1] == 0.0) --last;
  return Pmf(std::vector<double>(mass_.begin(), mass_.begin() + last));
}

}  // namespace sparsedet
