#include "prob/gof.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "prob/combinatorics.h"

namespace sparsedet {
namespace {

// Lower regularized incomplete gamma P(s, x) by series expansion;
// converges quickly for x < s + 1.
double GammaPSeries(double s, double x) {
  double term = 1.0 / s;
  double sum = term;
  for (int n = 1; n < 1000; ++n) {
    term *= x / (s + n);
    sum += term;
    if (term < sum * 1e-16) break;
  }
  return sum * std::exp(-x + s * std::log(x) - LogGamma(s));
}

// Upper regularized incomplete gamma Q(s, x) by continued fraction
// (Lentz); converges quickly for x >= s + 1.
double GammaQContinuedFraction(double s, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -i * (i - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(-x + s * std::log(x) - LogGamma(s)) * h;
}

}  // namespace

double RegularizedGammaQ(double s, double x) {
  SPARSEDET_REQUIRE(s > 0.0, "gamma shape must be positive");
  SPARSEDET_REQUIRE(x >= 0.0, "gamma argument must be >= 0");
  if (x == 0.0) return 1.0;
  if (x < s + 1.0) return std::clamp(1.0 - GammaPSeries(s, x), 0.0, 1.0);
  return std::clamp(GammaQContinuedFraction(s, x), 0.0, 1.0);
}

double ChiSquareSurvival(double x, int dof) {
  SPARSEDET_REQUIRE(dof >= 1, "chi-square needs dof >= 1");
  SPARSEDET_REQUIRE(x >= 0.0, "chi-square statistic must be >= 0");
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<std::int64_t>& counts,
                                       const Pmf& reference,
                                       double min_expected) {
  SPARSEDET_REQUIRE(min_expected > 0.0, "min expected count must be > 0");
  std::int64_t total = 0;
  for (std::int64_t c : counts) {
    SPARSEDET_REQUIRE(c >= 0, "histogram counts must be >= 0");
    total += c;
  }
  SPARSEDET_REQUIRE(total > 0, "histogram must contain samples");
  const double ref_mass = reference.TotalMass();
  SPARSEDET_REQUIRE(ref_mass > 0.0, "reference pmf must have positive mass");

  // Expected counts per value; the reference tail beyond the histogram's
  // support joins the last value's bin. Observed values beyond the
  // reference support are impossible under H0 — give them a bin with the
  // (tiny) residual expected mass so they inflate the statistic instead of
  // crashing.
  const std::size_t support =
      std::max(counts.size(), reference.size());
  std::vector<double> expected(support, 0.0);
  std::vector<double> observed(support, 0.0);
  for (std::size_t v = 0; v < support; ++v) {
    expected[v] = static_cast<double>(total) * reference[v] / ref_mass;
    observed[v] = v < counts.size() ? static_cast<double>(counts[v]) : 0.0;
  }

  // Merge low-expectation bins left to right.
  std::vector<double> merged_expected;
  std::vector<double> merged_observed;
  double acc_e = 0.0;
  double acc_o = 0.0;
  for (std::size_t v = 0; v < support; ++v) {
    acc_e += expected[v];
    acc_o += observed[v];
    if (acc_e >= min_expected) {
      merged_expected.push_back(acc_e);
      merged_observed.push_back(acc_o);
      acc_e = 0.0;
      acc_o = 0.0;
    }
  }
  if (acc_e > 0.0 || acc_o > 0.0) {
    if (!merged_expected.empty()) {
      merged_expected.back() += acc_e;
      merged_observed.back() += acc_o;
    } else {
      merged_expected.push_back(acc_e);
      merged_observed.push_back(acc_o);
    }
  }
  SPARSEDET_REQUIRE(merged_expected.size() >= 2,
                    "need at least two bins after merging");

  ChiSquareResult result;
  result.bins_used = static_cast<int>(merged_expected.size());
  for (std::size_t b = 0; b < merged_expected.size(); ++b) {
    const double diff = merged_observed[b] - merged_expected[b];
    result.statistic += diff * diff / merged_expected[b];
  }
  result.degrees_of_freedom = result.bins_used - 1;
  result.p_value =
      ChiSquareSurvival(result.statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace sparsedet
