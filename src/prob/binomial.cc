#include "prob/binomial.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "prob/combinatorics.h"

namespace sparsedet {
namespace {

void CheckArgs(int n, double p) {
  SPARSEDET_REQUIRE(n >= 0, "binomial n must be >= 0");
  SPARSEDET_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p must be in [0, 1]");
}

}  // namespace

double BinomialPmf(int n, int k, double p) {
  CheckArgs(n, p);
  SPARSEDET_REQUIRE(k >= 0, "binomial k must be >= 0");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogChoose(n, k) + k * std::log(p) +
                         (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(int n, int k, double p) {
  CheckArgs(n, p);
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // Sum whichever tail has fewer terms; both are monotone so plain
  // accumulation is fine at our sizes (n <= a few thousand).
  if (k <= n / 2) {
    double sum = 0.0;
    for (int i = 0; i <= k; ++i) sum += BinomialPmf(n, i, p);
    return std::min(sum, 1.0);
  }
  double upper = 0.0;
  for (int i = k + 1; i <= n; ++i) upper += BinomialPmf(n, i, p);
  return std::clamp(1.0 - upper, 0.0, 1.0);
}

double BinomialSurvival(int n, int k, double p) {
  CheckArgs(n, p);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (k > n / 2) {
    double sum = 0.0;
    for (int i = k; i <= n; ++i) sum += BinomialPmf(n, i, p);
    return std::min(sum, 1.0);
  }
  return std::clamp(1.0 - BinomialCdf(n, k - 1, p), 0.0, 1.0);
}

std::vector<double> BinomialPmfVector(int n, double p, int max_k) {
  CheckArgs(n, p);
  if (max_k < 0 || max_k > n) max_k = n;
  std::vector<double> pmf(static_cast<std::size_t>(max_k) + 1);
  for (int k = 0; k <= max_k; ++k) pmf[k] = BinomialPmf(n, k, p);
  return pmf;
}

}  // namespace sparsedet
