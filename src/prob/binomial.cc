#include "prob/binomial.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/check.h"
#include "prob/combinatorics.h"

namespace sparsedet {
namespace {

void CheckArgs(int n, double p) {
  SPARSEDET_REQUIRE(n >= 0, "binomial n must be >= 0");
  SPARSEDET_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p must be in [0, 1]");
}

std::vector<double> ComputeBinomialPmfVector(int n, double p, int max_k) {
  std::vector<double> pmf(static_cast<std::size_t>(max_k) + 1);
  if (p == 0.0 || p == 1.0) {
    for (int k = 0; k <= max_k; ++k) pmf[k] = BinomialPmf(n, k, p);
    return pmf;
  }
  // Hoist log(p) / log1p(-p) out of the loop. The per-k expression keeps
  // the exact shape of BinomialPmf's — (LogChoose + k*log_p) + (n-k)*log_q
  // — so every entry is bit-identical to a direct BinomialPmf call; only
  // the redundant transcendental evaluations go away.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  for (int k = 0; k <= max_k; ++k) {
    pmf[k] = std::exp(LogChoose(n, k) + k * log_p + (n - k) * log_q);
  }
  return pmf;
}

// Thread-local memo for BinomialPmfVector. A single M-S solve rebuilds
// the same handful of (n, p, max_k) rows — six stage pmfs share one Pd and
// one node count — and cold sweeps repeat them per solve, with the exp()
// calls dominating stage construction. Entries hold the exact vector
// ComputeBinomialPmfVector produces (p keyed by its bit pattern), so a hit
// returns bit-identical values and caching is behaviorally invisible.
// Thread-local keeps it lock-free under engine workers; direct-mapped
// keeps memory bounded.
struct BinomialRowSlot {
  int n = -1;
  int max_k = -1;
  std::uint64_t p_bits = 0;
  std::vector<double> row;
};
constexpr std::size_t kBinomialRowSlots = 64;

}  // namespace

double BinomialPmf(int n, int k, double p) {
  CheckArgs(n, p);
  SPARSEDET_REQUIRE(k >= 0, "binomial k must be >= 0");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogChoose(n, k) + k * std::log(p) +
                         (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(int n, int k, double p) {
  CheckArgs(n, p);
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // Sum whichever tail has fewer terms; both are monotone so plain
  // accumulation is fine at our sizes (n <= a few thousand).
  if (k <= n / 2) {
    double sum = 0.0;
    for (int i = 0; i <= k; ++i) sum += BinomialPmf(n, i, p);
    return std::min(sum, 1.0);
  }
  double upper = 0.0;
  for (int i = k + 1; i <= n; ++i) upper += BinomialPmf(n, i, p);
  return std::clamp(1.0 - upper, 0.0, 1.0);
}

double BinomialSurvival(int n, int k, double p) {
  CheckArgs(n, p);
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (k > n / 2) {
    double sum = 0.0;
    for (int i = k; i <= n; ++i) sum += BinomialPmf(n, i, p);
    return std::min(sum, 1.0);
  }
  return std::clamp(1.0 - BinomialCdf(n, k - 1, p), 0.0, 1.0);
}

std::vector<double> BinomialPmfVector(int n, double p, int max_k) {
  CheckArgs(n, p);
  if (max_k < 0 || max_k > n) max_k = n;
  std::uint64_t p_bits = 0;
  static_assert(sizeof(p_bits) == sizeof(p));
  std::memcpy(&p_bits, &p, sizeof(p));
  thread_local std::array<BinomialRowSlot, kBinomialRowSlots> cache;
  std::uint64_t h = p_bits * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(n)) * 0x85EBCA77ull;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(max_k)) << 17;
  h ^= h >> 29;
  BinomialRowSlot& slot = cache[h % kBinomialRowSlots];
  if (slot.n == n && slot.max_k == max_k && slot.p_bits == p_bits) {
    return slot.row;
  }
  std::vector<double> pmf = ComputeBinomialPmfVector(n, p, max_k);
  slot.n = n;
  slot.max_k = max_k;
  slot.p_bits = p_bits;
  slot.row = pmf;
  return pmf;
}

}  // namespace sparsedet
