// Estimation statistics for the Monte-Carlo experiments.
#pragma once

#include <cstdint>

namespace sparsedet {

// A binomial proportion with a Wilson score confidence interval. This is
// what every simulation experiment reports: detection probability out of
// `trials` independent trials.
struct ProportionEstimate {
  std::int64_t successes = 0;
  std::int64_t trials = 0;
  double point = 0.0;  // successes / trials
  double lo = 0.0;     // Wilson lower bound
  double hi = 0.0;     // Wilson upper bound
};

// Wilson score interval at confidence given by the normal quantile `z`
// (1.96 ~ 95%, 2.576 ~ 99%, 3.29 ~ 99.9%). Requires trials > 0,
// 0 <= successes <= trials, z > 0.
ProportionEstimate WilsonInterval(std::int64_t successes, std::int64_t trials,
                                  double z = 1.96);

// Streaming mean / variance (Welford). Used for latency and hop statistics.
class MeanVarAccumulator {
 public:
  void Add(double x);
  std::int64_t count() const { return count_; }
  double Mean() const;
  // Unbiased sample variance; 0 with fewer than two samples.
  double Variance() const;
  double StdDev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sparsedet
