// Poisson pmf / tails. Used by the false-alarm analysis (expected number of
// node-level false alarms per window) and as a sanity approximation for
// sparse binomials in tests.
#pragma once

#include <vector>

namespace sparsedet {

// P[X = k] for X ~ Poisson(lambda). Requires lambda >= 0, k >= 0.
double PoissonPmf(double lambda, int k);

// P[X <= k]; k < 0 yields 0.
double PoissonCdf(double lambda, int k);

// P[X >= k].
double PoissonSurvival(double lambda, int k);

// [P(0), ..., P(max_k)].
std::vector<double> PoissonPmfVector(double lambda, int max_k);

}  // namespace sparsedet
