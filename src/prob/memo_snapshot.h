// Disk snapshot/restore for the process-wide MemoCache.
//
// A serve process accumulates most of its value in the memo cache: the
// per-region PMFs and convolution chains that make warm requests ~1000x
// faster than cold ones. Restarting the server throws that away. The
// snapshot writes every resident memo entry to disk on drain and reloads
// it on start, so a restarted server answers its first batch at warm-cache
// speed.
//
// Format (all integers little-endian fixed width):
//   [8]  magic   "SPDMEMO\x01"
//   [4]  version (currently 1)
//   [8]  entry_count
//   [8]  payload_size           (bytes of the entries section)
//   [8]  payload FNV-1a checksum
//   then entry_count entries:
//   [8]  key_len   [key_len]  key bytes (the MemoKey canonical encoding)
//   [8]  val_len   [val_len]  value bytes (per-tag codec output)
//
// Values are type-erased in the cache, so each memoized call site
// registers a codec for its MemoKey tag (the tag is recoverable from the
// key bytes). Entries whose tag has no registered codec are skipped on
// save and on load — a snapshot written by a newer binary degrades to a
// partial warm-up instead of an error.
//
// Saves are atomic: written to `<path>.tmp` then renamed over `<path>`, so
// a crash mid-save never corrupts the previous snapshot. Loads verify
// magic, version, and checksum and throw common::Error (sparsedet::Error)
// on any mismatch; callers decide whether a bad snapshot is fatal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace sparsedet::prob {

class MemoCache;

struct MemoCodec {
  // Serializes the (type-erased) cached value. The pointer is the T* the
  // call site inserted; the codec knows its concrete type from the tag.
  std::function<std::string(const void*)> encode;
  // Parses a value previously produced by encode. Returns the restored
  // value and the byte estimate to charge the cache (mirror the bytes_of
  // estimator used at the original insert site). Throws Error on malformed
  // input.
  std::function<std::shared_ptr<const void>(std::string_view encoded,
                                            std::size_t* bytes)>
      decode;
};

// Registers the codec for a MemoKey tag. Call once per tag, typically from
// a static registrar next to the memoized call site. Re-registering a tag
// replaces the codec (last wins), which keeps tests simple.
void RegisterMemoCodec(const std::string& tag, MemoCodec codec);

// Shared primitives for codec implementations: fixed-width little-endian
// integers and bit-exact doubles, matching the container format.
void MemoAppendU64(std::string* out, std::uint64_t v);
void MemoAppendDouble(std::string* out, double v);

// Bounds-checked cursor over an encoded value; throws Error on truncation.
class MemoDecoder {
 public:
  explicit MemoDecoder(std::string_view data) : data_(data) {}

  std::uint64_t ReadU64();
  double ReadDouble();
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// Extracts the constructor tag from MemoKey canonical bytes; empty on
// malformed input.
std::string MemoKeyTag(std::string_view key_bytes);

struct MemoSnapshotInfo {
  std::uint64_t entries = 0;  // entries written/restored (codec-covered)
  std::uint64_t skipped = 0;  // entries without a codec, skipped
  std::uint64_t bytes = 0;    // snapshot file size in bytes
};

// Writes every codec-covered entry of `cache` to `path` atomically.
// Throws Error on I/O failure.
MemoSnapshotInfo SaveMemoSnapshot(MemoCache& cache, const std::string& path);

// Restores a snapshot previously written by SaveMemoSnapshot into `cache`
// and records it via NoteSnapshotLoaded. Throws Error when the file cannot
// be read, fails checksum/magic/version verification, or an entry is
// malformed.
MemoSnapshotInfo LoadMemoSnapshot(MemoCache& cache, const std::string& path);

}  // namespace sparsedet::prob
