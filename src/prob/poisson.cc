#include "prob/poisson.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "prob/combinatorics.h"

namespace sparsedet {

double PoissonPmf(double lambda, int k) {
  SPARSEDET_REQUIRE(lambda >= 0.0, "Poisson rate must be >= 0");
  SPARSEDET_REQUIRE(k >= 0, "Poisson k must be >= 0");
  if (lambda == 0.0) return k == 0 ? 1.0 : 0.0;
  return std::exp(k * std::log(lambda) - lambda - LogFactorial(k));
}

double PoissonCdf(double lambda, int k) {
  SPARSEDET_REQUIRE(lambda >= 0.0, "Poisson rate must be >= 0");
  if (k < 0) return 0.0;
  double sum = 0.0;
  for (int i = 0; i <= k; ++i) sum += PoissonPmf(lambda, i);
  return std::min(sum, 1.0);
}

double PoissonSurvival(double lambda, int k) {
  if (k <= 0) return 1.0;
  return std::clamp(1.0 - PoissonCdf(lambda, k - 1), 0.0, 1.0);
}

std::vector<double> PoissonPmfVector(double lambda, int max_k) {
  SPARSEDET_REQUIRE(max_k >= 0, "max_k must be >= 0");
  std::vector<double> pmf(static_cast<std::size_t>(max_k) + 1);
  for (int k = 0; k <= max_k; ++k) pmf[k] = PoissonPmf(lambda, k);
  return pmf;
}

}  // namespace sparsedet
