// Joint pmf over pairs (m, n) of non-negative integers.
//
// Used by the paper's Section-4 extension, where the Markov state tracks
// both the total number of detection reports (m) and the number of distinct
// reporting nodes (n), with n saturating at the decision threshold h
// ("state m:h means *at least* h nodes generated m reports").
#pragma once

#include <cstddef>
#include <vector>

#include "prob/pmf.h"

namespace sparsedet {

class JointPmf {
 public:
  // Zero-mass grid with support {0..max_m} x {0..max_n}.
  JointPmf(int max_m, int max_n);

  // Point mass at (0, 0).
  static JointPmf DeltaZero(int max_m, int max_n);

  int max_m() const { return max_m_; }
  int max_n() const { return max_n_; }

  double& At(int m, int n);
  double At(int m, int n) const;

  double TotalMass() const;

  // P[M >= m_min and N >= n_min].
  double JointTail(int m_min, int n_min) const;

  Pmf MarginalM() const;
  Pmf MarginalN() const;

  // Distribution of the component-wise sum of independent draws, with each
  // axis independently saturating at its cap (mass beyond max accumulates
  // at max) or truncating (mass dropped). The result keeps this grid's
  // caps. Saturation on the n axis is what implements "at least h nodes".
  JointPmf ConvolveWith(const JointPmf& other, bool saturate_m,
                        bool saturate_n) const;

  // Scales so TotalMass() == 1; requires positive mass.
  JointPmf Normalized() const;

  // this += scale * other, element-wise over the whole grid; both grids
  // must share the same caps. The vectorized form of the region chains'
  // "out += p_n * n_fold" accumulation.
  void AccumulateScaled(const JointPmf& other, double scale);

 private:
  std::size_t Index(int m, int n) const {
    return static_cast<std::size_t>(m) * (max_n_ + 1) +
           static_cast<std::size_t>(n);
  }

  int max_m_;
  int max_n_;
  std::vector<double> mass_;
};

}  // namespace sparsedet
