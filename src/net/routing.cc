#include "net/routing.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace sparsedet {
namespace {

void CheckIds(const Topology& topology, int src, int dst) {
  SPARSEDET_REQUIRE(src >= 0 && src < topology.num_nodes(),
                    "src node id out of range");
  SPARSEDET_REQUIRE(dst >= 0 && dst < topology.num_nodes(),
                    "dst node id out of range");
}

}  // namespace

RouteResult GreedyForward(const Topology& topology, int src, int dst,
                          int max_hops) {
  CheckIds(topology, src, dst);
  SPARSEDET_REQUIRE(max_hops >= 1, "max_hops must be >= 1");

  RouteResult result;
  result.path.push_back(src);
  if (src == dst) {
    result.delivered = true;
    return result;
  }

  const Vec2 goal = topology.positions()[dst];
  int current = src;
  double current_dist = (topology.positions()[src] - goal).Norm();
  for (int hop = 0; hop < max_hops; ++hop) {
    int best = -1;
    double best_dist = current_dist;
    for (int neighbor : topology.Neighbors(current)) {
      const double d = (topology.positions()[neighbor] - goal).Norm();
      if (d < best_dist) {
        best_dist = d;
        best = neighbor;
      }
    }
    if (best < 0) {
      // Void: no strictly closer neighbor. Report whether a path exists.
      result.stuck_in_void = ShortestPath(topology, current, dst).delivered;
      return result;
    }
    current = best;
    current_dist = best_dist;
    result.path.push_back(current);
    ++result.hops;
    if (current == dst) {
      result.delivered = true;
      return result;
    }
  }
  return result;  // hop budget exhausted
}

RouteResult ShortestPath(const Topology& topology, int src, int dst) {
  CheckIds(topology, src, dst);

  RouteResult result;
  if (src == dst) {
    result.delivered = true;
    result.path.push_back(src);
    return result;
  }

  std::vector<int> parent(static_cast<std::size_t>(topology.num_nodes()), -1);
  std::queue<int> frontier;
  parent[src] = src;
  frontier.push(src);
  while (!frontier.empty() && parent[dst] < 0) {
    const int u = frontier.front();
    frontier.pop();
    for (int v : topology.Neighbors(u)) {
      if (parent[v] < 0) {
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  if (parent[dst] < 0) return result;  // disconnected

  std::vector<int> reverse_path;
  for (int v = dst; v != src; v = parent[v]) reverse_path.push_back(v);
  reverse_path.push_back(src);
  std::reverse(reverse_path.begin(), reverse_path.end());
  result.path = std::move(reverse_path);
  result.hops = static_cast<int>(result.path.size()) - 1;
  result.delivered = true;
  return result;
}

}  // namespace sparsedet
