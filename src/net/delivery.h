// Deployment-wide delivery statistics toward a base station (E10).
#pragma once

#include <vector>

#include "net/topology.h"

namespace sparsedet {

struct DeliveryStats {
  int num_sources = 0;              // nodes evaluated (all but the base)
  double delivered_fraction = 0.0;  // routes that reached the base
  double greedy_void_fraction = 0.0;  // greedy stuck although connected
  double mean_hops = 0.0;           // over delivered routes
  int max_hops = 0;
  double mean_latency = 0.0;        // seconds, over delivered routes
  double max_latency = 0.0;
  // Fraction of *all* sources whose report arrives within one sensing
  // period — the quantity the paper's "ignore the communication stack"
  // argument rests on.
  double within_period_fraction = 0.0;
};

// Routes every node to `base` (a node id of `topology`) and aggregates.
// `per_hop_latency` is the per-hop MAC+processing delay in seconds;
// `period_length` the sensing period the within-period check uses.
// `use_greedy` selects greedy geographic forwarding vs BFS shortest path.
DeliveryStats EvaluateDelivery(const Topology& topology, int base,
                               double per_hop_latency, double period_length,
                               bool use_greedy);

}  // namespace sparsedet
