#include "net/topology.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace sparsedet {

Topology::Topology(std::vector<Vec2> positions, double comm_range)
    : positions_(std::move(positions)), comm_range_(comm_range) {
  SPARSEDET_REQUIRE(!positions_.empty(), "topology needs at least one node");
  SPARSEDET_REQUIRE(comm_range > 0.0, "comm range must be positive");
  const int n = num_nodes();
  adjacency_.resize(static_cast<std::size_t>(n));
  const double r2 = comm_range_ * comm_range_;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if ((positions_[i] - positions_[j]).NormSquared() <= r2) {
        adjacency_[i].push_back(j);
        adjacency_[j].push_back(i);
      }
    }
  }
}

const std::vector<int>& Topology::Neighbors(int node) const {
  SPARSEDET_REQUIRE(node >= 0 && node < num_nodes(), "node id out of range");
  return adjacency_[node];
}

std::vector<int> Topology::HopCountsFrom(int src) const {
  SPARSEDET_REQUIRE(src >= 0 && src < num_nodes(), "node id out of range");
  std::vector<int> dist(static_cast<std::size_t>(num_nodes()), -1);
  std::queue<int> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int v : adjacency_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

Topology::Components Topology::ConnectedComponents() const {
  Components comp;
  comp.id.assign(static_cast<std::size_t>(num_nodes()), -1);
  for (int start = 0; start < num_nodes(); ++start) {
    if (comp.id[start] >= 0) continue;
    std::queue<int> frontier;
    comp.id[start] = comp.count;
    frontier.push(start);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int v : adjacency_[u]) {
        if (comp.id[v] < 0) {
          comp.id[v] = comp.count;
          frontier.push(v);
        }
      }
    }
    ++comp.count;
  }
  return comp;
}

bool Topology::IsConnected() const {
  return ConnectedComponents().count == 1;
}

int Topology::LargestComponentSize() const {
  const Components comp = ConnectedComponents();
  std::vector<int> sizes(static_cast<std::size_t>(comp.count), 0);
  for (int id : comp.id) ++sizes[id];
  return *std::max_element(sizes.begin(), sizes.end());
}

double Topology::AverageDegree() const {
  std::size_t edges2 = 0;
  for (const auto& adj : adjacency_) edges2 += adj.size();
  return static_cast<double>(edges2) / static_cast<double>(num_nodes());
}

}  // namespace sparsedet
