// Communication topology of a deployment.
//
// The paper assumes communication range > 2 * sensing range, so the sparse
// field is still connected through multi-hop networking, and asserts that a
// report reaches the base station within one sensing period (~6 hops for
// the ONR deployment). This substrate turns those assertions into
// measurable quantities on concrete deployments (experiment E10).
#pragma once

#include <vector>

#include "geometry/vec2.h"

namespace sparsedet {

class Topology {
 public:
  // Nodes communicate iff their distance is <= comm_range. Positions may
  // include the base station (by convention the caller appends it last).
  // Requires at least one node and comm_range > 0.
  Topology(std::vector<Vec2> positions, double comm_range);

  int num_nodes() const { return static_cast<int>(positions_.size()); }
  const std::vector<Vec2>& positions() const { return positions_; }
  double comm_range() const { return comm_range_; }
  const std::vector<int>& Neighbors(int node) const;

  // BFS hop distance from `src` to every node; -1 where unreachable.
  std::vector<int> HopCountsFrom(int src) const;

  // Connected-component id per node (0-based) and the component count.
  struct Components {
    std::vector<int> id;
    int count = 0;
  };
  Components ConnectedComponents() const;

  bool IsConnected() const;
  int LargestComponentSize() const;

  double AverageDegree() const;

 private:
  std::vector<Vec2> positions_;
  double comm_range_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace sparsedet
