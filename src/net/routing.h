// Geographic forwarding over a Topology.
//
// The paper cites GF / GPSR as the class of routing protocols that carry a
// detection report to the base station "easily within a single sensing
// period". We implement greedy geographic forwarding (each hop moves to
// the neighbor strictly closest to the destination) plus an optional
// shortest-path fallback so the experiments can separate geographic voids
// (greedy failure) from true disconnection.
#pragma once

#include <vector>

#include "net/topology.h"

namespace sparsedet {

struct RouteResult {
  bool delivered = false;
  int hops = 0;            // path length when delivered
  std::vector<int> path;   // node ids, src first; dst last when delivered
  bool stuck_in_void = false;  // greedy failed although a path exists
};

// Greedy geographic forwarding from `src` to `dst`. Fails (stuck) when no
// neighbor is strictly closer to the destination. `max_hops` bounds the
// walk (routing loops are impossible under strict progress, but the bound
// keeps the API total). Requires valid node ids and max_hops >= 1.
RouteResult GreedyForward(const Topology& topology, int src, int dst,
                          int max_hops = 1 << 20);

// BFS shortest path (minimum hops); delivered == false iff disconnected.
RouteResult ShortestPath(const Topology& topology, int src, int dst);

}  // namespace sparsedet
