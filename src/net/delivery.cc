#include "net/delivery.h"

#include <algorithm>

#include "common/check.h"
#include "net/routing.h"

namespace sparsedet {

DeliveryStats EvaluateDelivery(const Topology& topology, int base,
                               double per_hop_latency, double period_length,
                               bool use_greedy) {
  SPARSEDET_REQUIRE(base >= 0 && base < topology.num_nodes(),
                    "base node id out of range");
  SPARSEDET_REQUIRE(per_hop_latency >= 0.0, "per-hop latency must be >= 0");
  SPARSEDET_REQUIRE(period_length > 0.0, "period length must be positive");

  DeliveryStats stats;
  int delivered = 0;
  int voids = 0;
  int within = 0;
  long long hop_sum = 0;
  for (int node = 0; node < topology.num_nodes(); ++node) {
    if (node == base) continue;
    ++stats.num_sources;
    const RouteResult route = use_greedy
                                  ? GreedyForward(topology, node, base)
                                  : ShortestPath(topology, node, base);
    if (route.stuck_in_void) ++voids;
    if (!route.delivered) continue;
    ++delivered;
    hop_sum += route.hops;
    stats.max_hops = std::max(stats.max_hops, route.hops);
    const double latency = route.hops * per_hop_latency;
    stats.max_latency = std::max(stats.max_latency, latency);
    if (latency <= period_length) ++within;
  }

  if (stats.num_sources > 0) {
    const double n = static_cast<double>(stats.num_sources);
    stats.delivered_fraction = delivered / n;
    stats.greedy_void_fraction = voids / n;
    stats.within_period_fraction = within / n;
  }
  if (delivered > 0) {
    stats.mean_hops = static_cast<double>(hop_sum) / delivered;
    stats.mean_latency = stats.mean_hops * per_hop_latency;
  }
  return stats;
}

}  // namespace sparsedet
