// Per-hop latency under MAC contention.
//
// The delivery experiments use a constant per-hop latency; this module
// derives that number from first principles instead. Model: slotted
// CSMA/CA-style channel. A node with c contenders in range transmits in a
// slot with probability p_tx; the attempt succeeds when none of the
// contenders transmits in the same slot. The number of slots until success
// is geometric with
//   P[success per slot] = p_tx * (1 - p_tx)^c,
// so the expected per-hop latency is slot_time / (p_tx (1 - p_tx)^c),
// maximized over p_tx at p_tx = 1/(c+1) (the classical optimum). The model
// gives experiments a principled latency-vs-density curve and shows when
// the paper's "well within one period" premise survives contention.
#pragma once

#include "net/topology.h"

namespace sparsedet {

struct MacModel {
  double slot_time = 0.05;  // seconds per contention slot
  // Transmission probability per slot; <= 0 selects the per-node optimum
  // 1 / (contenders + 1).
  double p_tx = -1.0;
};

// Expected slots until a successful transmission with `contenders`
// competing neighbors. Requires contenders >= 0; p_tx (if fixed) in (0, 1).
double ExpectedSlotsPerHop(int contenders, const MacModel& model);

// Expected one-hop latency in seconds for a node with `contenders`.
double ExpectedHopLatency(int contenders, const MacModel& model);

// Expected per-hop latency averaged over all nodes of a topology, each
// contending with its own neighbors. This is the number to feed into
// EvaluateDelivery / TransportOptions.
double MeanHopLatency(const Topology& topology, const MacModel& model);

}  // namespace sparsedet
