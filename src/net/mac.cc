#include "net/mac.h"

#include <cmath>

#include "common/check.h"

namespace sparsedet {

double ExpectedSlotsPerHop(int contenders, const MacModel& model) {
  SPARSEDET_REQUIRE(contenders >= 0, "contender count must be >= 0");
  double p = model.p_tx;
  if (p <= 0.0) {
    p = 1.0 / (contenders + 1.0);  // throughput-optimal choice
  }
  SPARSEDET_REQUIRE(p > 0.0 && p < 1.0 + 1e-12,
                    "transmission probability must be in (0, 1]");
  const double success =
      p * std::pow(1.0 - p, static_cast<double>(contenders));
  SPARSEDET_REQUIRE(success > 0.0,
                    "transmission never succeeds under this MAC setting");
  return 1.0 / success;
}

double ExpectedHopLatency(int contenders, const MacModel& model) {
  SPARSEDET_REQUIRE(model.slot_time > 0.0, "slot time must be positive");
  return model.slot_time * ExpectedSlotsPerHop(contenders, model);
}

double MeanHopLatency(const Topology& topology, const MacModel& model) {
  SPARSEDET_REQUIRE(model.slot_time > 0.0, "slot time must be positive");
  double sum = 0.0;
  for (int node = 0; node < topology.num_nodes(); ++node) {
    sum += ExpectedHopLatency(
        static_cast<int>(topology.Neighbors(node).size()), model);
  }
  return sum / topology.num_nodes();
}

}  // namespace sparsedet
