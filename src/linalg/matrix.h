// Dense row-major matrix, sized for Markov transition matrices of a few
// hundred to a few thousand states.
#pragma once

#include <cstddef>
#include <vector>

namespace sparsedet {

class DenseMatrix {
 public:
  // Zero-initialized rows x cols matrix; both must be > 0.
  DenseMatrix(std::size_t rows, std::size_t cols);

  static DenseMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  // Contiguous row r (row-major storage), for the vectorized kernels.
  const double* RowData(std::size_t r) const { return data_.data() + r * cols_; }
  double* RowData(std::size_t r) { return data_.data() + r * cols_; }

  // Bounds-checked access.
  double At(std::size_t r, std::size_t c) const;
  void Set(std::size_t r, std::size_t c, double v);

  // this * other; requires cols() == other.rows().
  DenseMatrix Multiply(const DenseMatrix& other) const;

  // Row vector times matrix: v * this; requires v.size() == rows().
  std::vector<double> LeftApply(const std::vector<double>& v) const;

  // this^n for a square matrix; n >= 0 (n = 0 gives the identity).
  DenseMatrix Power(int n) const;

  // True if every row sums to `target` within `tol` and all entries are
  // non-negative. Transition matrices of the paper's truncated chains are
  // *sub*-stochastic, so callers can pass target <= 1 semantics through
  // RowSumsAtMostOne instead.
  bool IsRowStochastic(double tol = 1e-9) const;
  bool RowSumsAtMostOne(double tol = 1e-9) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace sparsedet
