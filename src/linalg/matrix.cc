#include "linalg/matrix.h"

#include <cmath>

#include "common/check.h"
#include "simd/simd.h"

namespace sparsedet {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  SPARSEDET_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be > 0");
}

DenseMatrix DenseMatrix::Identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double DenseMatrix::At(std::size_t r, std::size_t c) const {
  SPARSEDET_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

void DenseMatrix::Set(std::size_t r, std::size_t c, double v) {
  SPARSEDET_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  (*this)(r, c) = v;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  SPARSEDET_REQUIRE(cols_ == other.rows_,
                    "matrix product dimension mismatch");
  DenseMatrix out(rows_, other.cols_);
  // (i, k)-major with the contiguous row run vectorized: per-element this
  // is the same multiply-then-add in the same order as the historical
  // scalar loop, so the product is bit-identical across SIMD backends.
  const simd::Kernels& kern = simd::Active();
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      kern.axpy(a, other.RowData(k), out.RowData(i), other.cols_);
    }
  }
  return out;
}

std::vector<double> DenseMatrix::LeftApply(const std::vector<double>& v) const {
  SPARSEDET_REQUIRE(v.size() == rows_, "vector-matrix dimension mismatch");
  std::vector<double> out(cols_, 0.0);
  const simd::Kernels& kern = simd::Active();
  for (std::size_t i = 0; i < rows_; ++i) {
    const double a = v[i];
    if (a == 0.0) continue;
    kern.axpy(a, RowData(i), out.data(), cols_);
  }
  return out;
}

DenseMatrix DenseMatrix::Power(int n) const {
  SPARSEDET_REQUIRE(rows_ == cols_, "matrix power needs a square matrix");
  SPARSEDET_REQUIRE(n >= 0, "matrix power exponent must be >= 0");
  DenseMatrix result = Identity(rows_);
  DenseMatrix base = *this;
  int e = n;
  while (e > 0) {
    if (e & 1) result = result.Multiply(base);
    e >>= 1;
    if (e > 0) base = base.Multiply(base);
  }
  return result;
}

bool DenseMatrix::IsRowStochastic(double tol) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const double v = (*this)(i, j);
      if (v < 0.0) return false;
      sum += v;
    }
    if (std::abs(sum - 1.0) > tol) return false;
  }
  return true;
}

bool DenseMatrix::RowSumsAtMostOne(double tol) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const double v = (*this)(i, j);
      if (v < 0.0) return false;
      sum += v;
    }
    if (sum > 1.0 + tol) return false;
  }
  return true;
}

}  // namespace sparsedet
