// Node-level sensing models.
//
// The paper's model (Section 2): if the target is within a sensor's sensing
// range at any time during a sensing period — i.e. the sensor lies inside
// the period's Detectable Region — the sensor reports with probability Pd,
// independent of the dwell length. A graded model (probability decaying
// with distance to the track) is provided for ablations that probe the
// paper's stated "Pd independent of overlap length" simplification.
#pragma once

#include "geometry/segment.h"
#include "geometry/vec2.h"

namespace sparsedet {

class SensingModel {
 public:
  virtual ~SensingModel() = default;

  // Probability that the sensor at `sensor` generates a detection report
  // for a target moving along `path` during one sensing period.
  virtual double DetectionProbability(Vec2 sensor,
                                      const Segment& path) const = 0;
};

// The paper's model: Pd inside range, 0 outside.
class DiskSensing final : public SensingModel {
 public:
  // Requires range > 0, pd in [0, 1].
  DiskSensing(double range, double pd);

  double DetectionProbability(Vec2 sensor, const Segment& path) const override;

  double range() const { return range_; }
  double pd() const { return pd_; }

 private:
  double range_;
  double pd_;
};

// Dwell-time model — the refinement the paper's footnote 1 defers to
// future work ("Pd is independent of the length the target overlaps with
// the sensing range ... will be revisited"): the sensing algorithm
// integrates evidence while the target is inside the disk, so
//   P[detect in a period] = 1 - exp(-rate * dwell_seconds),
// with dwell = (chord length of the path segment inside the disk) / V.
// `rate` has units 1/s; `reference_dwell_pd` helpers calibrate it so that
// a target crossing the full diameter at speed V yields a chosen Pd.
class DwellTimeSensing final : public SensingModel {
 public:
  // Requires range > 0, rate >= 0, speed > 0.
  DwellTimeSensing(double range, double rate, double speed);

  // Calibrated so a full-diameter crossing (dwell = 2*range/speed) is
  // detected with probability `pd_full_crossing`.
  static DwellTimeSensing Calibrated(double range, double pd_full_crossing,
                                     double speed);

  double DetectionProbability(Vec2 sensor, const Segment& path) const override;

  double rate() const { return rate_; }

 private:
  double range_;
  double rate_;
  double speed_;
};

// Distance-graded model: full pd within `inner_range`, linear decay to 0 at
// `outer_range`. inner_range < outer_range required.
class GradedSensing final : public SensingModel {
 public:
  GradedSensing(double inner_range, double outer_range, double pd);

  double DetectionProbability(Vec2 sensor, const Segment& path) const override;

 private:
  double inner_;
  double outer_;
  double pd_;
};

}  // namespace sparsedet
