// Target motion models.
//
// A motion model produces the target's positions at sensing-period
// boundaries: `periods + 1` points, so the segment between consecutive
// points is the path traversed in one period. The paper's analysis assumes
// a straight track at constant speed; the simulator also implements the
// Random Walk pattern used by Figure 9(c) (direction change within
// [-pi/4, pi/4] per period), a waypoint patrol, and a varying-speed model
// (the paper's future-work item).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "geometry/field.h"
#include "geometry/vec2.h"

namespace sparsedet {

// What happens when the target would leave the field.
enum class BoundaryPolicy {
  kUnbounded,  // keep going; sensors exist only inside the field. This is
               // what the boundary-free analysis corresponds to.
  kReflect,    // bounce off the field edge
};

class MotionModel {
 public:
  virtual ~MotionModel() = default;

  // Positions at period boundaries 0 .. periods (periods + 1 entries).
  // Requires periods >= 1 and step_length > 0 (= V * t).
  virtual std::vector<Vec2> SamplePath(const Field& field, int periods,
                                       double step_length, Rng& rng) const = 0;
};

// Straight line: uniform random start in the field, uniform random heading.
class StraightLineMotion final : public MotionModel {
 public:
  explicit StraightLineMotion(BoundaryPolicy policy = BoundaryPolicy::kUnbounded)
      : policy_(policy) {}

  std::vector<Vec2> SamplePath(const Field& field, int periods,
                               double step_length, Rng& rng) const override;

 private:
  BoundaryPolicy policy_;
};

// Random walk: every period the heading changes by a uniform draw from
// [-max_turn, +max_turn] (paper: pi/4).
class RandomWalkMotion final : public MotionModel {
 public:
  explicit RandomWalkMotion(double max_turn,
                            BoundaryPolicy policy = BoundaryPolicy::kUnbounded);

  std::vector<Vec2> SamplePath(const Field& field, int periods,
                               double step_length, Rng& rng) const override;

 private:
  double max_turn_;
  BoundaryPolicy policy_;
};

// Deterministic patrol along fixed waypoints at constant speed, starting at
// the first waypoint (cycling if the path is exhausted). Used by the
// border-surveillance example.
class WaypointMotion final : public MotionModel {
 public:
  // Requires at least two waypoints, consecutive ones distinct.
  explicit WaypointMotion(std::vector<Vec2> waypoints);

  std::vector<Vec2> SamplePath(const Field& field, int periods,
                               double step_length, Rng& rng) const override;

 private:
  std::vector<Vec2> waypoints_;
};

// Straight line whose per-period speed is scaled by an independent uniform
// draw from [speed_factor_lo, speed_factor_hi] (paper future work:
// "relax the assumption to address the case when the target travels in
// varying speeds").
class VaryingSpeedMotion final : public MotionModel {
 public:
  VaryingSpeedMotion(double speed_factor_lo, double speed_factor_hi,
                     BoundaryPolicy policy = BoundaryPolicy::kUnbounded);

  std::vector<Vec2> SamplePath(const Field& field, int periods,
                               double step_length, Rng& rng) const override;

 private:
  double lo_;
  double hi_;
  BoundaryPolicy policy_;
};

}  // namespace sparsedet
