// Sensor deployment generators.
#pragma once

#include <vector>

#include "common/rng.h"
#include "geometry/field.h"
#include "geometry/vec2.h"

namespace sparsedet {

// N i.i.d. uniform positions in the field — the paper's deployment
// assumption (Section 2). Requires n >= 0.
std::vector<Vec2> DeployUniform(const Field& field, int n, Rng& rng);

// Near-regular grid with per-node uniform jitter of +/- jitter_fraction of
// the cell size in each axis (jitter_fraction in [0, 0.5]). Used by the
// ablation experiments to probe how sensitive the analysis (which assumes
// uniform randomness) is to deployment regularity. Requires n >= 1.
std::vector<Vec2> DeployJitteredGrid(const Field& field, int n,
                                     double jitter_fraction, Rng& rng);

}  // namespace sparsedet
