#include "sim/deployment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sparsedet {

std::vector<Vec2> DeployUniform(const Field& field, int n, Rng& rng) {
  SPARSEDET_REQUIRE(n >= 0, "node count must be >= 0");
  std::vector<Vec2> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nodes.push_back(field.SamplePoint(rng));
  return nodes;
}

std::vector<Vec2> DeployJitteredGrid(const Field& field, int n,
                                     double jitter_fraction, Rng& rng) {
  SPARSEDET_REQUIRE(n >= 1, "grid deployment needs at least one node");
  SPARSEDET_REQUIRE(jitter_fraction >= 0.0 && jitter_fraction <= 0.5,
                    "jitter fraction must be in [0, 0.5]");
  // Choose a cols x rows grid with aspect ratio close to the field's and
  // cols * rows >= n; emit the first n cells.
  const double aspect = field.width() / field.height();
  int cols = std::max(1, static_cast<int>(std::ceil(
                             std::sqrt(static_cast<double>(n) * aspect))));
  int rows = (n + cols - 1) / cols;
  const double cell_w = field.width() / cols;
  const double cell_h = field.height() / rows;

  std::vector<Vec2> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int r = i / cols;
    const int c = i % cols;
    const double cx = (c + 0.5) * cell_w;
    const double cy = (r + 0.5) * cell_h;
    const double dx = rng.Uniform(-jitter_fraction, jitter_fraction) * cell_w;
    const double dy = rng.Uniform(-jitter_fraction, jitter_fraction) * cell_h;
    nodes.push_back({std::clamp(cx + dx, 0.0, field.width()),
                     std::clamp(cy + dy, 0.0, field.height())});
  }
  return nodes;
}

}  // namespace sparsedet
