// Parallel Monte-Carlo estimation of detection probabilities.
//
// Reproduces the paper's validation methodology: 10 000 independent trials,
// each with freshly drawn node locations and target start/heading; the
// detection probability is the fraction of trials whose report sequence
// satisfies the decision rule. Trials use per-trial RNG substreams, so the
// estimate is bit-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <functional>

#include "prob/stats.h"
#include "sim/trial.h"

namespace sparsedet {

struct MonteCarloOptions {
  int trials = 10000;
  std::uint64_t seed = 20080617;  // default: ICDCS'08 conference date
  std::size_t threads = 0;        // 0 = hardware concurrency
  double z = 1.96;                // Wilson interval confidence quantile
};

// Fraction of trials for which `accept(trial)` is true. `accept` must be
// safe to call concurrently from multiple threads.
ProportionEstimate EstimateTrialProbability(
    const TrialConfig& config, const MonteCarloOptions& options,
    const std::function<bool(const TrialResult&)>& accept);

// The paper's decision rule on true reports only: at least k detection
// reports within the M-period window.
ProportionEstimate EstimateDetectionProbability(
    const TrialConfig& config, const MonteCarloOptions& options = {});

// Section-4 extension rule: at least k reports from at least h distinct
// nodes. Requires h >= 1.
ProportionEstimate EstimateKNodeDetectionProbability(
    const TrialConfig& config, int h, const MonteCarloOptions& options = {});

// Mean number of true reports per window (for model cross-checks).
double EstimateMeanReports(const TrialConfig& config,
                           const MonteCarloOptions& options = {});

}  // namespace sparsedet
