#include "sim/trace_io.h"

#include "common/check.h"
#include "common/table.h"

namespace sparsedet {

TraceFiles SaveTrialTrace(const TrialResult& trial,
                          const std::string& prefix) {
  SPARSEDET_REQUIRE(!prefix.empty(), "trace prefix must be non-empty");
  TraceFiles files{.nodes_path = prefix + "_nodes.csv",
                   .path_path = prefix + "_path.csv",
                   .reports_path = prefix + "_reports.csv"};

  Table nodes({"node", "x", "y", "alive"});
  for (std::size_t i = 0; i < trial.node_positions.size(); ++i) {
    nodes.BeginRow();
    nodes.AddInt(static_cast<long long>(i));
    nodes.AddNumber(trial.node_positions[i].x, 2);
    nodes.AddNumber(trial.node_positions[i].y, 2);
    nodes.AddInt(i < trial.node_alive.size() && !trial.node_alive[i] ? 0
                                                                     : 1);
  }
  SPARSEDET_REQUIRE(nodes.WriteCsvFile(files.nodes_path),
                    "cannot write " + files.nodes_path);

  Table path({"period_boundary", "x", "y"});
  for (std::size_t i = 0; i < trial.target_path.size(); ++i) {
    path.BeginRow();
    path.AddInt(static_cast<long long>(i));
    path.AddNumber(trial.target_path[i].x, 2);
    path.AddNumber(trial.target_path[i].y, 2);
  }
  SPARSEDET_REQUIRE(path.WriteCsvFile(files.path_path),
                    "cannot write " + files.path_path);

  Table reports({"period", "node", "x", "y", "false_alarm"});
  for (const SimReport& r : trial.reports) {
    reports.BeginRow();
    reports.AddInt(r.period);
    reports.AddInt(r.node);
    reports.AddNumber(r.node_pos.x, 2);
    reports.AddNumber(r.node_pos.y, 2);
    reports.AddInt(r.is_false_alarm ? 1 : 0);
  }
  SPARSEDET_REQUIRE(reports.WriteCsvFile(files.reports_path),
                    "cannot write " + files.reports_path);
  return files;
}

}  // namespace sparsedet
