#include "sim/trial.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "geometry/field.h"
#include "geometry/segment.h"
#include "sim/deployment.h"

namespace sparsedet {
namespace {

Field MakeField(const SystemParams& params) {
  return Field(params.field_width, params.field_height);
}

// Detection probability of `sensor` against one period's path segment,
// honoring the trial's sensing geometry. For the toroidal geometry the
// segment is translated so its start lies inside the field and the sensor
// is tested at its nine wrap images; valid while a period's segment is
// shorter than the field (checked), which holds for every scenario in the
// paper by orders of magnitude.
double GeometryAwareProbability(const SensingModel& sensing, Vec2 sensor,
                                const Segment& segment,
                                SensingGeometry geometry, const Field& field) {
  if (geometry == SensingGeometry::kPlanar) {
    return sensing.DetectionProbability(sensor, segment);
  }
  const double w = field.width();
  const double h = field.height();
  SPARSEDET_DCHECK(segment.Length() < std::min(w, h),
                   "toroidal sensing requires per-period steps shorter "
                   "than the field");
  const double ox = std::floor(segment.a.x / w) * w;
  const double oy = std::floor(segment.a.y / h) * h;
  const Segment local({segment.a.x - ox, segment.a.y - oy},
                      {segment.b.x - ox, segment.b.y - oy});
  double best = 0.0;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      const Vec2 image{sensor.x + dx * w, sensor.y + dy * h};
      best = std::max(best, sensing.DetectionProbability(image, local));
      if (best >= 1.0) return best;
    }
  }
  return best;
}

std::vector<bool> DrawAliveFlags(const TrialConfig& config, Rng& rng) {
  std::vector<bool> alive(static_cast<std::size_t>(config.params.num_nodes),
                          true);
  if (config.node_reliability < 1.0) {
    for (std::size_t i = 0; i < alive.size(); ++i) {
      alive[i] = rng.Bernoulli(config.node_reliability);
    }
  }
  return alive;
}

// Per-period death process. Returns {} when disabled so that no randomness
// is drawn and existing seeds keep reproducing the published trajectories.
// A node already dead from the reliability draw gets death period 0
// (again without consuming randomness).
std::vector<int> DrawDeathPeriods(const TrialConfig& config,
                                  const std::vector<bool>& alive, Rng& rng) {
  if (config.node_death_prob <= 0.0) return {};
  const int m = config.params.window_periods;
  std::vector<int> death(alive.size(), m);
  for (std::size_t node = 0; node < alive.size(); ++node) {
    if (!alive[node]) {
      death[node] = 0;
      continue;
    }
    for (int period = 0; period < m; ++period) {
      if (rng.Bernoulli(config.node_death_prob)) {
        death[node] = period;
        break;
      }
    }
  }
  return death;
}

// Alive for the whole of `period`: functional up front and not yet dead.
bool AliveAt(const TrialResult& result, int node, int period) {
  if (!result.node_alive[node]) return false;
  return result.death_period.empty() || period < result.death_period[node];
}

void AddFalseAlarms(const TrialConfig& config,
                    const std::vector<Vec2>& nodes, Rng& rng,
                    TrialResult& result) {
  // A sleeping node's sensing hardware cannot false-alarm either.
  const double pf = config.false_alarm_prob * config.duty_cycle;
  if (pf <= 0.0) return;
  for (int period = 0; period < config.params.window_periods; ++period) {
    for (int node = 0; node < static_cast<int>(nodes.size()); ++node) {
      if (AliveAt(result, node, period) && rng.Bernoulli(pf)) {
        result.reports.push_back({.period = period,
                                  .node = node,
                                  .node_pos = nodes[node],
                                  .is_false_alarm = true});
      }
    }
  }
}

// Drops each report independently with report_loss_prob and recomputes the
// true-report tallies from the survivors. No-op (and no randomness) when
// the loss process is off.
void ApplyReportLoss(const TrialConfig& config, Rng& rng,
                     TrialResult& result) {
  if (config.report_loss_prob <= 0.0) return;
  std::vector<SimReport> kept;
  kept.reserve(result.reports.size());
  for (const SimReport& report : result.reports) {
    if (rng.Bernoulli(config.report_loss_prob)) {
      ++result.lost_reports;
    } else {
      kept.push_back(report);
    }
  }
  result.reports = std::move(kept);
  std::fill(result.true_reports_per_period.begin(),
            result.true_reports_per_period.end(), 0);
  result.total_true_reports = 0;
  std::unordered_set<int> reporting_nodes;
  for (const SimReport& report : result.reports) {
    if (report.is_false_alarm) continue;
    ++result.true_reports_per_period[report.period];
    ++result.total_true_reports;
    reporting_nodes.insert(report.node);
  }
  result.distinct_true_nodes = static_cast<int>(reporting_nodes.size());
}

void CheckResilienceProbs(const TrialConfig& config) {
  SPARSEDET_REQUIRE(
      config.node_death_prob >= 0.0 && config.node_death_prob <= 1.0,
      "node death probability must be in [0, 1]");
  SPARSEDET_REQUIRE(
      config.report_loss_prob >= 0.0 && config.report_loss_prob <= 1.0,
      "report loss probability must be in [0, 1]");
}

// Keeps result.reports ordered by period (stable within a period).
void SortReports(TrialResult& result) {
  std::stable_sort(result.reports.begin(), result.reports.end(),
                   [](const SimReport& a, const SimReport& b) {
                     return a.period < b.period;
                   });
}

}  // namespace

TrialResult RunTrial(const TrialConfig& config, Rng& rng) {
  config.params.Validate();
  SPARSEDET_REQUIRE(
      config.false_alarm_prob >= 0.0 && config.false_alarm_prob <= 1.0,
      "false alarm probability must be in [0, 1]");
  SPARSEDET_REQUIRE(
      config.node_reliability >= 0.0 && config.node_reliability <= 1.0,
      "node reliability must be in [0, 1]");
  SPARSEDET_REQUIRE(config.duty_cycle >= 0.0 && config.duty_cycle <= 1.0,
                    "duty cycle must be in [0, 1]");
  CheckResilienceProbs(config);

  const Field field = MakeField(config.params);
  const StraightLineMotion default_motion;
  const DiskSensing default_sensing(config.params.sensing_range,
                                    config.params.detect_prob);
  const MotionModel& motion =
      config.motion != nullptr ? *config.motion : default_motion;
  const SensingModel& sensing =
      config.sensing != nullptr ? *config.sensing : default_sensing;

  TrialResult result;
  result.node_positions = DeployUniform(field, config.params.num_nodes, rng);
  result.node_alive = DrawAliveFlags(config, rng);
  result.death_period = DrawDeathPeriods(config, result.node_alive, rng);
  result.target_path =
      motion.SamplePath(field, config.params.window_periods,
                        config.params.StepLength(), rng);
  result.true_reports_per_period.assign(config.params.window_periods, 0);

  std::unordered_set<int> reporting_nodes;
  for (int period = 0; period < config.params.window_periods; ++period) {
    const Segment path_segment(result.target_path[period],
                               result.target_path[period + 1]);
    for (int node = 0; node < config.params.num_nodes; ++node) {
      if (!AliveAt(result, node, period)) continue;
      // An asleep node cannot sense: detection requires awake AND detect,
      // i.e. Bernoulli(duty * p).
      const double p = config.duty_cycle *
                       GeometryAwareProbability(sensing,
                                                result.node_positions[node],
                                                path_segment, config.geometry,
                                                field);
      if (p > 0.0 && rng.Bernoulli(p)) {
        result.reports.push_back({.period = period,
                                  .node = node,
                                  .node_pos = result.node_positions[node],
                                  .is_false_alarm = false});
        ++result.true_reports_per_period[period];
        ++result.total_true_reports;
        reporting_nodes.insert(node);
      }
    }
  }
  result.distinct_true_nodes = static_cast<int>(reporting_nodes.size());

  AddFalseAlarms(config, result.node_positions, rng, result);
  ApplyReportLoss(config, rng, result);
  SortReports(result);
  return result;
}

TrialResult RunNoTargetTrial(const TrialConfig& config, Rng& rng) {
  config.params.Validate();
  SPARSEDET_REQUIRE(
      config.false_alarm_prob >= 0.0 && config.false_alarm_prob <= 1.0,
      "false alarm probability must be in [0, 1]");
  SPARSEDET_REQUIRE(
      config.node_reliability >= 0.0 && config.node_reliability <= 1.0,
      "node reliability must be in [0, 1]");
  SPARSEDET_REQUIRE(config.duty_cycle >= 0.0 && config.duty_cycle <= 1.0,
                    "duty cycle must be in [0, 1]");
  CheckResilienceProbs(config);

  const Field field = MakeField(config.params);
  TrialResult result;
  result.node_positions = DeployUniform(field, config.params.num_nodes, rng);
  result.node_alive = DrawAliveFlags(config, rng);
  result.death_period = DrawDeathPeriods(config, result.node_alive, rng);
  result.true_reports_per_period.assign(config.params.window_periods, 0);
  AddFalseAlarms(config, result.node_positions, rng, result);
  ApplyReportLoss(config, rng, result);
  SortReports(result);
  return result;
}

}  // namespace sparsedet
