// One Monte-Carlo trial: deploy sensors, move a target for M periods,
// generate detection reports (paper Section 4, "Simulation Configuration").
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/params.h"
#include "sim/motion.h"
#include "sim/sensing.h"

namespace sparsedet {

// A node-level detection report as the base station would receive it.
struct SimReport {
  int period = 0;  // sensing period index, 0-based
  int node = 0;    // reporting node id
  Vec2 node_pos;   // the node's (known) position
  bool is_false_alarm = false;
};

// How sensor-to-track distances treat the field boundary.
//
// The paper's analysis is boundary-free: every sensor sees the full
// Detectable Region area no matter where the track runs. kToroidal
// realizes exactly that (the field wraps, so a track leaving one edge
// re-enters the opposite one), which is why it is the default and why the
// analysis-vs-simulation experiments match the paper. kPlanar keeps the
// field as a plain rectangle — tracks can exit into sensor-free space, and
// the measured detection probability drops below the analysis near the
// borders; experiment E12 quantifies that gap.
enum class SensingGeometry {
  kToroidal,
  kPlanar,
};

struct TrialConfig {
  SystemParams params;
  // Non-owning; must outlive the calls. Defaults (null) mean: straight-line
  // motion with kUnbounded boundary and disk sensing from `params`.
  const MotionModel* motion = nullptr;
  const SensingModel* sensing = nullptr;
  SensingGeometry geometry = SensingGeometry::kToroidal;
  // Per-node per-period false-positive probability.
  double false_alarm_prob = 0.0;
  // Probability that a node is functional for the whole window (failure
  // injection; 1.0 = the paper's model). Dead nodes generate neither
  // detections nor false alarms.
  double node_reliability = 1.0;
  // Duty cycling (cf. the node-scheduling literature the paper contrasts
  // with): each node is awake in each period independently with this
  // probability; asleep nodes neither sense nor false-alarm that period.
  // Analytically equivalent to scaling Pd and pf by the duty cycle.
  double duty_cycle = 1.0;
  // Per-period node death process: at the start of each period every node
  // still alive dies independently with this probability and stays dead
  // for the rest of the window (battery exhaustion / destruction). 0 = off
  // (the paper's model). Composes with node_reliability, which kills a
  // node for the whole window up front.
  double node_death_prob = 0.0;
  // I.i.d. report transport loss: each generated report (true or false
  // alarm) is dropped before reaching the base station with this
  // probability. 0 = off.
  double report_loss_prob = 0.0;
};

struct TrialResult {
  std::vector<SimReport> reports;       // ordered by period
  std::vector<bool> node_alive;         // failure-injection outcome per node
  // Per-node period at whose start the node died (M = survived the whole
  // window). Empty when node_death_prob == 0 — the death process draws no
  // randomness then, keeping existing seeds reproducible.
  std::vector<int> death_period;
  std::vector<int> true_reports_per_period;  // size M
  int total_true_reports = 0;
  int distinct_true_nodes = 0;
  int lost_reports = 0;  // reports dropped by report_loss_prob
  std::vector<Vec2> node_positions;
  std::vector<Vec2> target_path;  // M + 1 period-boundary positions
};

// Runs a single trial with randomness drawn from `rng`.
TrialResult RunTrial(const TrialConfig& config, Rng& rng);

// Runs a trial with no target present (false alarms only). Used by the
// system-level false-alarm experiments. Requires false_alarm_prob > 0 to
// be meaningful, though 0 is accepted.
TrialResult RunNoTargetTrial(const TrialConfig& config, Rng& rng);

}  // namespace sparsedet
