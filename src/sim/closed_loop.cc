#include "sim/closed_loop.h"

#include <algorithm>

#include "common/check.h"

namespace sparsedet {

FailureTrajectory::FailureTrajectory(int n, const SensorFailureModel& model,
                                     std::uint64_t seed) {
  SPARSEDET_REQUIRE(n >= 1, "trajectory needs at least one node");
  model.Validate();
  Rng base(seed);
  lifetimes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Rng node = base.Substream(static_cast<std::uint64_t>(i));
    lifetimes_.push_back(model.LifetimeFromUniform(node.UniformDouble()));
  }
}

int FailureTrajectory::AliveAt(double t_seconds) const {
  int alive = 0;
  for (double life : lifetimes_) {
    if (life > t_seconds) ++alive;
  }
  return alive;
}

int QuiescentReportCount(int alive, int periods, double q_eff, Rng& rng) {
  SPARSEDET_REQUIRE(alive >= 0, "alive must be >= 0");
  SPARSEDET_REQUIRE(periods >= 0, "periods must be >= 0");
  const double q = std::clamp(q_eff, 0.0, 1.0);
  const long slots = static_cast<long>(alive) * periods;
  int count = 0;
  for (long s = 0; s < slots; ++s) {
    if (rng.Bernoulli(q)) ++count;
  }
  return count;
}

}  // namespace sparsedet
