// Trial trace export: writes one trial's deployment, target path and
// report stream as CSV so external tooling (plotting scripts, GIS) can
// visualize a scenario. Three sections are written to separate files
// sharing a path prefix: <prefix>_nodes.csv, <prefix>_path.csv,
// <prefix>_reports.csv.
#pragma once

#include <string>

#include "sim/trial.h"

namespace sparsedet {

struct TraceFiles {
  std::string nodes_path;
  std::string path_path;
  std::string reports_path;
};

// Writes the three CSV files; returns the paths. Throws InvalidArgument if
// any file cannot be opened.
TraceFiles SaveTrialTrace(const TrialResult& trial,
                          const std::string& prefix);

}  // namespace sparsedet
