#include "sim/multi_target.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "geometry/field.h"
#include "geometry/segment.h"
#include "sim/deployment.h"

namespace sparsedet {
namespace {

// Same wrap-image sensing test the single-target trial uses (trial.cc);
// duplicated here in simplified form because the multi-target trial also
// defaults to the analysis-matching toroidal geometry.
double GeometryProbability(const SensingModel& sensing, Vec2 sensor,
                           const Segment& segment, SensingGeometry geometry,
                           const Field& field) {
  if (geometry == SensingGeometry::kPlanar) {
    return sensing.DetectionProbability(sensor, segment);
  }
  const double w = field.width();
  const double h = field.height();
  const double ox = std::floor(segment.a.x / w) * w;
  const double oy = std::floor(segment.a.y / h) * h;
  const Segment local({segment.a.x - ox, segment.a.y - oy},
                      {segment.b.x - ox, segment.b.y - oy});
  double best = 0.0;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      best = std::max(best, sensing.DetectionProbability(
                                {sensor.x + dx * w, sensor.y + dy * h},
                                local));
      if (best >= 1.0) return best;
    }
  }
  return best;
}

}  // namespace

MultiTargetResult RunParallelTargetsTrial(const TrialConfig& config,
                                          int num_targets, double separation,
                                          Rng& rng) {
  config.params.Validate();
  SPARSEDET_REQUIRE(num_targets >= 1, "need at least one target");
  SPARSEDET_REQUIRE(separation >= 0.0, "separation must be >= 0");

  const Field field(config.params.field_width, config.params.field_height);
  const DiskSensing default_sensing(config.params.sensing_range,
                                    config.params.detect_prob);
  const SensingModel& sensing =
      config.sensing != nullptr ? *config.sensing : default_sensing;

  MultiTargetResult result;
  result.node_positions = DeployUniform(field, config.params.num_nodes, rng);
  result.per_target_reports.assign(num_targets, 0);

  // Parallel tracks: common heading, starts offset along the perpendicular.
  const Vec2 start = field.SamplePoint(rng);
  const double heading = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  const Vec2 dir = Vec2::FromAngle(heading);
  const Vec2 normal{-dir.y, dir.x};
  const double step = config.params.StepLength();
  const int periods = config.params.window_periods;

  result.target_paths.resize(num_targets);
  for (int t = 0; t < num_targets; ++t) {
    Vec2 pos = start + normal * (separation * t);
    auto& path = result.target_paths[t];
    path.reserve(periods + 1);
    path.push_back(pos);
    for (int p = 0; p < periods; ++p) {
      pos += dir * step;
      path.push_back(pos);
    }
  }

  for (int period = 0; period < periods; ++period) {
    for (int node = 0; node < config.params.num_nodes; ++node) {
      bool sensed_any = false;
      for (int t = 0; t < num_targets; ++t) {
        const Segment seg(result.target_paths[t][period],
                          result.target_paths[t][period + 1]);
        const double p =
            GeometryProbability(sensing, result.node_positions[node], seg,
                                config.geometry, field);
        if (p > 0.0 && rng.Bernoulli(p)) {
          ++result.per_target_reports[t];
          sensed_any = true;
        }
      }
      if (sensed_any) {
        result.merged_reports.push_back({.period = period,
                                         .node = node,
                                         .node_pos =
                                             result.node_positions[node],
                                         .is_false_alarm = false});
      }
    }
    if (config.false_alarm_prob > 0.0) {
      for (int node = 0; node < config.params.num_nodes; ++node) {
        if (rng.Bernoulli(config.false_alarm_prob)) {
          result.merged_reports.push_back({.period = period,
                                           .node = node,
                                           .node_pos =
                                               result.node_positions[node],
                                           .is_false_alarm = true});
        }
      }
    }
  }
  return result;
}

}  // namespace sparsedet
