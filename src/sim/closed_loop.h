// Seeded sensor-failure trajectories and the quiescent report counts that
// feed the live-population estimator.
//
// A FailureTrajectory realizes the SensorFailureModel once: each of the N
// nodes draws a lifetime through its own Rng substream, so the trajectory
// is a pure function of (n, model, seed) — independent of thread count,
// call order, or how many epochs are later inspected. The closed-loop
// adapt scenario walks AliveAt() epoch by epoch while the controller only
// ever sees the report-count observable, exactly as a base station would.
//
// QuiescentReportCount models the estimator's input channel: with no
// target present, every live node independently emits a report each period
// with probability q (its false-alarm/heartbeat rate) and the report
// survives transport with probability 1 - loss. The count over one epoch
// is Binomial(alive * periods, q_eff), sampled with a per-epoch substream
// so the whole closed loop stays byte-identical across schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/survival.h"

namespace sparsedet {

// Per-node lifetimes drawn from `model` — one substream per node index.
class FailureTrajectory {
 public:
  // Requires n >= 1 and a validated model.
  FailureTrajectory(int n, const SensorFailureModel& model,
                    std::uint64_t seed);

  // Number of nodes still alive at time t (lifetime > t).
  int AliveAt(double t_seconds) const;

  int size() const { return static_cast<int>(lifetimes_.size()); }
  const std::vector<double>& lifetimes() const { return lifetimes_; }

 private:
  std::vector<double> lifetimes_;
};

// One epoch's quiescent (target-absent) report count: Binomial draw with
// alive * periods slots at success probability q_eff = q * (1 - loss).
// `rng` should be a fresh per-epoch substream; probabilities are clamped
// to [0, 1]. Requires alive >= 0 and periods >= 0.
int QuiescentReportCount(int alive, int periods, double q_eff, Rng& rng);

}  // namespace sparsedet
