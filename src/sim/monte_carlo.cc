#include "sim/monte_carlo.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "obs/timer.h"
#include "resilience/cancel.h"

namespace sparsedet {
namespace {

// Per-trial cost estimate for the ParallelFor serial guard: a trial
// deploys N sensors and checks each against the track every period, so
// cost scales with N * M (~15 ns per sensor-period on the CI hardware).
// Only trial counts so small that the whole run is cheaper than thread
// dispatch end up serial.
std::size_t TrialCostHintNs(const TrialConfig& config) {
  return 15 * static_cast<std::size_t>(std::max(1, config.params.num_nodes)) *
         static_cast<std::size_t>(std::max(1, config.params.window_periods));
}

}  // namespace

ProportionEstimate EstimateTrialProbability(
    const TrialConfig& config, const MonteCarloOptions& options,
    const std::function<bool(const TrialResult&)>& accept) {
  SPARSEDET_REQUIRE(options.trials >= 1, "need at least one trial");
  config.params.Validate();

  const Rng base(options.seed);
  std::atomic<std::int64_t> successes{0};
  // ParallelFor re-installs the caller's cancel token inside every worker
  // and checks it between chunks; the extra per-trial CancellationPoint
  // keeps the deadline granularity at one trial even for large chunks.
  {
    obs::ObsTimer timer(obs::Phase::kMcTrials);
    ParallelOptions opts;
    opts.threads = options.threads;
    opts.work_ns_hint = TrialCostHintNs(config);
    ParallelFor(
        static_cast<std::size_t>(options.trials), opts,
        [&](std::size_t i) {
          resilience::CancellationPoint();
          Rng rng = base.Substream(i);
          const TrialResult trial = RunTrial(config, rng);
          if (accept(trial)) {
            successes.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }
  return WilsonInterval(successes.load(), options.trials, options.z);
}

ProportionEstimate EstimateDetectionProbability(
    const TrialConfig& config, const MonteCarloOptions& options) {
  const int k = config.params.threshold_reports;
  return EstimateTrialProbability(
      config, options,
      [k](const TrialResult& trial) { return trial.total_true_reports >= k; });
}

ProportionEstimate EstimateKNodeDetectionProbability(
    const TrialConfig& config, int h, const MonteCarloOptions& options) {
  SPARSEDET_REQUIRE(h >= 1, "h must be >= 1");
  const int k = config.params.threshold_reports;
  return EstimateTrialProbability(config, options,
                                  [k, h](const TrialResult& trial) {
                                    return trial.total_true_reports >= k &&
                                           trial.distinct_true_nodes >= h;
                                  });
}

double EstimateMeanReports(const TrialConfig& config,
                           const MonteCarloOptions& options) {
  SPARSEDET_REQUIRE(options.trials >= 1, "need at least one trial");
  config.params.Validate();
  const Rng base(options.seed);
  std::atomic<std::int64_t> total{0};
  obs::ObsTimer timer(obs::Phase::kMcTrials);
  ParallelOptions opts;
  opts.threads = options.threads;
  opts.work_ns_hint = TrialCostHintNs(config);
  ParallelFor(
      static_cast<std::size_t>(options.trials), opts,
      [&](std::size_t i) {
        resilience::CancellationPoint();
        Rng rng = base.Substream(i);
        const TrialResult trial = RunTrial(config, rng);
        total.fetch_add(trial.total_true_reports, std::memory_order_relaxed);
      });
  return static_cast<double>(total.load()) /
         static_cast<double>(options.trials);
}

}  // namespace sparsedet
