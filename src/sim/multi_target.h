// Multiple simultaneous targets — the situation the paper defers to future
// work (Section 2: "we plan to deal with multiple targets that might be
// near each other and/or crossing. If more than one target exist but are
// far from each other, our analysis still holds per target").
//
// Targets move on parallel straight tracks at a controlled perpendicular
// separation, so experiments can sweep the separation from "far apart"
// (per-target analysis valid, tracks resolvable) to "near/crossing" (the
// regime the paper excludes).
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/trial.h"

namespace sparsedet {

struct MultiTargetResult {
  // Reports attributable to each target: a node-period sensing event
  // counts toward every target whose Detectable Region contained the node
  // that period.
  std::vector<int> per_target_reports;
  // One merged report per (node, period) that sensed anything — what the
  // base station actually receives (plus injected false alarms).
  std::vector<SimReport> merged_reports;
  std::vector<std::vector<Vec2>> target_paths;
  std::vector<Vec2> node_positions;
};

// Runs one trial with `num_targets` parallel straight-line targets whose
// tracks are `separation` apart (perpendicular offset); the first target's
// start and heading are uniform random. Sensing per (node, period, target)
// is independent Bernoulli(Pd-like) through config.sensing, matching the
// single-target trial semantics. Requires num_targets >= 1,
// separation >= 0; config.motion is ignored (tracks are parallel straight
// lines by construction).
MultiTargetResult RunParallelTargetsTrial(const TrialConfig& config,
                                          int num_targets, double separation,
                                          Rng& rng);

}  // namespace sparsedet
