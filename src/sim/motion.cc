#include "sim/motion.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sparsedet {
namespace {

void CheckPathArgs(int periods, double step_length) {
  SPARSEDET_REQUIRE(periods >= 1, "a path needs at least one period");
  SPARSEDET_REQUIRE(step_length > 0.0, "step length must be positive");
}

// Advances one step of `len` along `heading`, applying the boundary policy.
// kReflect mirrors the position at the offending edge and flips the
// corresponding heading component; one mirror pass per axis is enough
// because a step is much shorter than the field.
Vec2 Step(Vec2 pos, double& heading, double len, const Field& field,
          BoundaryPolicy policy) {
  Vec2 next = pos + Vec2::FromAngle(heading) * len;
  if (policy == BoundaryPolicy::kUnbounded) return next;

  double dir_x = std::cos(heading);
  double dir_y = std::sin(heading);
  if (next.x < 0.0) {
    next.x = -next.x;
    dir_x = -dir_x;
  } else if (next.x > field.width()) {
    next.x = 2.0 * field.width() - next.x;
    dir_x = -dir_x;
  }
  if (next.y < 0.0) {
    next.y = -next.y;
    dir_y = -dir_y;
  } else if (next.y > field.height()) {
    next.y = 2.0 * field.height() - next.y;
    dir_y = -dir_y;
  }
  heading = std::atan2(dir_y, dir_x);
  return next;
}

}  // namespace

std::vector<Vec2> StraightLineMotion::SamplePath(const Field& field,
                                                 int periods,
                                                 double step_length,
                                                 Rng& rng) const {
  CheckPathArgs(periods, step_length);
  std::vector<Vec2> path;
  path.reserve(static_cast<std::size_t>(periods) + 1);
  Vec2 pos = field.SamplePoint(rng);
  double heading = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  path.push_back(pos);
  for (int p = 0; p < periods; ++p) {
    pos = Step(pos, heading, step_length, field, policy_);
    path.push_back(pos);
  }
  return path;
}

RandomWalkMotion::RandomWalkMotion(double max_turn, BoundaryPolicy policy)
    : max_turn_(max_turn), policy_(policy) {
  SPARSEDET_REQUIRE(max_turn >= 0.0 && max_turn <= std::numbers::pi,
                    "max turn must be in [0, pi]");
}

std::vector<Vec2> RandomWalkMotion::SamplePath(const Field& field, int periods,
                                               double step_length,
                                               Rng& rng) const {
  CheckPathArgs(periods, step_length);
  std::vector<Vec2> path;
  path.reserve(static_cast<std::size_t>(periods) + 1);
  Vec2 pos = field.SamplePoint(rng);
  double heading = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  path.push_back(pos);
  for (int p = 0; p < periods; ++p) {
    pos = Step(pos, heading, step_length, field, policy_);
    path.push_back(pos);
    heading += rng.Uniform(-max_turn_, max_turn_);
  }
  return path;
}

WaypointMotion::WaypointMotion(std::vector<Vec2> waypoints)
    : waypoints_(std::move(waypoints)) {
  SPARSEDET_REQUIRE(waypoints_.size() >= 2,
                    "waypoint motion needs at least two waypoints");
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    SPARSEDET_REQUIRE(waypoints_[i].DistanceTo(waypoints_[i - 1]) > 0.0,
                      "consecutive waypoints must be distinct");
  }
}

std::vector<Vec2> WaypointMotion::SamplePath(const Field& /*field*/,
                                             int periods, double step_length,
                                             Rng& /*rng*/) const {
  CheckPathArgs(periods, step_length);
  std::vector<Vec2> path;
  path.reserve(static_cast<std::size_t>(periods) + 1);

  std::size_t leg = 0;  // current leg: waypoints_[leg] -> waypoints_[leg+1]
  Vec2 pos = waypoints_[0];
  path.push_back(pos);
  for (int p = 0; p < periods; ++p) {
    double remaining = step_length;
    while (remaining > 0.0) {
      const Vec2 target = waypoints_[leg + 1];
      const double to_target = pos.DistanceTo(target);
      if (to_target > remaining) {
        pos = pos + (target - pos) * (remaining / to_target);
        remaining = 0.0;
      } else {
        pos = target;
        remaining -= to_target;
        leg = (leg + 1) % (waypoints_.size() - 1);
        if (leg == 0) pos = waypoints_[0];  // cycle back to the start
      }
    }
    path.push_back(pos);
  }
  return path;
}

VaryingSpeedMotion::VaryingSpeedMotion(double speed_factor_lo,
                                       double speed_factor_hi,
                                       BoundaryPolicy policy)
    : lo_(speed_factor_lo), hi_(speed_factor_hi), policy_(policy) {
  SPARSEDET_REQUIRE(speed_factor_lo > 0.0 && speed_factor_hi >= speed_factor_lo,
                    "speed factors must satisfy 0 < lo <= hi");
}

std::vector<Vec2> VaryingSpeedMotion::SamplePath(const Field& field,
                                                 int periods,
                                                 double step_length,
                                                 Rng& rng) const {
  CheckPathArgs(periods, step_length);
  std::vector<Vec2> path;
  path.reserve(static_cast<std::size_t>(periods) + 1);
  Vec2 pos = field.SamplePoint(rng);
  double heading = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  path.push_back(pos);
  for (int p = 0; p < periods; ++p) {
    const double len = step_length * rng.Uniform(lo_, hi_);
    pos = Step(pos, heading, len, field, policy_);
    path.push_back(pos);
  }
  return path;
}

}  // namespace sparsedet
