#include "sim/sensing.h"

#include <cmath>

#include "common/check.h"
#include "geometry/chord.h"

namespace sparsedet {

DiskSensing::DiskSensing(double range, double pd) : range_(range), pd_(pd) {
  SPARSEDET_REQUIRE(range > 0.0, "sensing range must be positive");
  SPARSEDET_REQUIRE(pd >= 0.0 && pd <= 1.0, "Pd must be in [0, 1]");
}

double DiskSensing::DetectionProbability(Vec2 sensor,
                                         const Segment& path) const {
  return path.WithinDistance(sensor, range_) ? pd_ : 0.0;
}

DwellTimeSensing::DwellTimeSensing(double range, double rate, double speed)
    : range_(range), rate_(rate), speed_(speed) {
  SPARSEDET_REQUIRE(range > 0.0, "sensing range must be positive");
  SPARSEDET_REQUIRE(rate >= 0.0, "detection rate must be >= 0");
  SPARSEDET_REQUIRE(speed > 0.0, "target speed must be positive");
}

DwellTimeSensing DwellTimeSensing::Calibrated(double range,
                                              double pd_full_crossing,
                                              double speed) {
  SPARSEDET_REQUIRE(pd_full_crossing >= 0.0 && pd_full_crossing < 1.0,
                    "full-crossing Pd must be in [0, 1)");
  // 1 - exp(-rate * 2*range/speed) = pd  =>  rate = -ln(1-pd)*speed/(2r).
  const double rate =
      -std::log1p(-pd_full_crossing) * speed / (2.0 * range);
  return DwellTimeSensing(range, rate, speed);
}

double DwellTimeSensing::DetectionProbability(Vec2 sensor,
                                              const Segment& path) const {
  const double chord = SegmentDiskIntersectionLength(path, sensor, range_);
  if (chord <= 0.0) {
    // A sensor can be inside the DR without the *segment* entering its
    // disk only in the end caps; there the dwell in this period is zero.
    return 0.0;
  }
  const double dwell = chord / speed_;
  return 1.0 - std::exp(-rate_ * dwell);
}

GradedSensing::GradedSensing(double inner_range, double outer_range, double pd)
    : inner_(inner_range), outer_(outer_range), pd_(pd) {
  SPARSEDET_REQUIRE(inner_range > 0.0, "inner range must be positive");
  SPARSEDET_REQUIRE(outer_range > inner_range,
                    "outer range must exceed inner range");
  SPARSEDET_REQUIRE(pd >= 0.0 && pd <= 1.0, "Pd must be in [0, 1]");
}

double GradedSensing::DetectionProbability(Vec2 sensor,
                                           const Segment& path) const {
  const double d = path.DistanceTo(sensor);
  if (d <= inner_) return pd_;
  if (d >= outer_) return 0.0;
  return pd_ * (outer_ - d) / (outer_ - inner_);
}

}  // namespace sparsedet
