// Per-tenant admission control for the TCP front-end.
//
// Each tenant (the request's "tenant" field; empty = the default tenant)
// gets a token bucket refilled at `qps` tokens per second with capacity
// `burst`. A request consumes one token; an empty bucket means a
// 429-style structured rejection before the request ever reaches the
// engine, so one chatty tenant cannot crowd out the others even when the
// shared `--max-queue` backpressure has headroom left.
//
// Buckets are created lazily on first sight of a tenant and never
// expire — the tenant universe is assumed small (it is an operator-
// assigned routing label, not user input).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/json.h"

namespace sparsedet::server {

class TokenBucket {
 public:
  // `rate_per_sec` tokens accrue continuously up to `burst`. The bucket
  // starts full.
  TokenBucket(double rate_per_sec, double burst);

  // Consumes one token if available; `now_ns` is a monotonic clock reading
  // supplied by the caller (keeps the bucket testable without sleeping).
  bool TryAcquire(std::int64_t now_ns);

  double tokens() const { return tokens_; }

 private:
  double rate_per_sec_;
  double burst_;
  double tokens_;
  std::int64_t last_refill_ns_;
  bool primed_ = false;
};

class TenantGovernor {
 public:
  // qps <= 0 disables admission control (every request admitted). burst <=
  // 0 defaults to max(1, qps).
  TenantGovernor(double qps, double burst);

  bool enabled() const { return qps_ > 0.0; }

  // True when `tenant` may proceed at `now_ns`. The event-loop thread owns
  // admission; the internal mutex only exists so the admin plane can read
  // bucket state concurrently (StateJson below).
  bool Admit(const std::string& tenant, std::int64_t now_ns);

  std::size_t tenant_count() const;

  // Per-tenant bucket state for /statusz:
  // {"enabled":..,"qps":..,"burst":..,"tenants":[
  //   {"tenant":"..","tokens":..,"admitted":..,"rejected":..}, ...]}
  // Tenants appear in name order (std::map), so the rendering is stable.
  JsonValue StateJson() const;

 private:
  struct TenantState {
    explicit TenantState(const TokenBucket& b) : bucket(b) {}
    TokenBucket bucket;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };

  double qps_;
  double burst_;
  mutable std::mutex mutex_;
  std::map<std::string, TenantState> buckets_;
};

}  // namespace sparsedet::server
