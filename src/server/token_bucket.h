// Per-tenant admission control for the TCP front-end.
//
// Each tenant (the request's "tenant" field; empty = the default tenant)
// gets a token bucket refilled at `qps` tokens per second with capacity
// `burst`. A request consumes one token; an empty bucket means a
// 429-style structured rejection before the request ever reaches the
// engine, so one chatty tenant cannot crowd out the others even when the
// shared `--max-queue` backpressure has headroom left.
//
// Buckets are created lazily on first sight of a tenant and never
// expire — the tenant universe is assumed small (it is an operator-
// assigned routing label, not user input).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sparsedet::server {

class TokenBucket {
 public:
  // `rate_per_sec` tokens accrue continuously up to `burst`. The bucket
  // starts full.
  TokenBucket(double rate_per_sec, double burst);

  // Consumes one token if available; `now_ns` is a monotonic clock reading
  // supplied by the caller (keeps the bucket testable without sleeping).
  bool TryAcquire(std::int64_t now_ns);

  double tokens() const { return tokens_; }

 private:
  double rate_per_sec_;
  double burst_;
  double tokens_;
  std::int64_t last_refill_ns_;
  bool primed_ = false;
};

class TenantGovernor {
 public:
  // qps <= 0 disables admission control (every request admitted). burst <=
  // 0 defaults to max(1, qps).
  TenantGovernor(double qps, double burst);

  bool enabled() const { return qps_ > 0.0; }

  // True when `tenant` may proceed at `now_ns`. Single-threaded (the
  // event-loop thread owns admission).
  bool Admit(const std::string& tenant, std::int64_t now_ns);

  std::size_t tenant_count() const { return buckets_.size(); }

 private:
  double qps_;
  double burst_;
  std::map<std::string, TokenBucket> buckets_;
};

}  // namespace sparsedet::server
