// Minimal HTTP/1.1 admin server for the out-of-band observability plane.
//
// Deliberately tiny: GET-only, Connection: close, one dedicated thread
// handling requests serially. That is the right shape for an admin
// surface — a scraper hits it every few seconds, a human a few times a
// day — and it keeps the server fully independent of the data plane: a
// saturated epoll loop, a full engine queue, or a draining listener never
// delays a /metrics scrape, because the admin thread shares nothing with
// them but the (lock-free or briefly-locked) state the handlers read.
//
// Handlers are registered per exact path before Start() and run on the
// admin thread; they must be thread-safe against the data plane and fast
// (they hold the accept loop). Unknown paths get 404, non-GET methods 405,
// malformed requests 400.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

namespace sparsedet::server {

struct AdminHttpOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read back via port()
};

struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminHttpServer {
 public:
  explicit AdminHttpServer(const AdminHttpOptions& options);
  // Stops the thread and closes the listener.
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  // `query` is the raw query string (no leading '?'; empty when absent).
  using Handler = std::function<AdminResponse(std::string_view query)>;
  // Register before Start(); exact-match on the request path.
  void Handle(const std::string& path, Handler handler);

  // Binds + listens + launches the serving thread. Throws Error on
  // bind/listen failure.
  void Start();
  // Idempotent; joins the serving thread. In-flight requests finish.
  void Stop();

  int port() const { return port_; }

  // Exposed for tests: status line reason phrases and response framing.
  static std::string RenderResponse(const AdminResponse& response);

 private:
  void Serve();
  void HandleClient(int fd);

  AdminHttpOptions options_;
  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

}  // namespace sparsedet::server
