#include "server/token_bucket.h"

#include <algorithm>

namespace sparsedet::server {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec),
      burst_(burst),
      tokens_(burst),
      last_refill_ns_(0) {}

bool TokenBucket::TryAcquire(std::int64_t now_ns) {
  if (!primed_) {
    // First call anchors the refill clock; the bucket starts full.
    last_refill_ns_ = now_ns;
    primed_ = true;
  }
  if (now_ns > last_refill_ns_) {
    const double elapsed_s =
        static_cast<double>(now_ns - last_refill_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_sec_);
    last_refill_ns_ = now_ns;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

TenantGovernor::TenantGovernor(double qps, double burst)
    : qps_(qps), burst_(burst > 0.0 ? burst : std::max(1.0, qps)) {}

bool TenantGovernor::Admit(const std::string& tenant, std::int64_t now_ns) {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_.emplace(tenant, TenantState(TokenBucket(qps_, burst_)))
             .first;
  }
  TenantState& state = it->second;
  const bool admitted = state.bucket.TryAcquire(now_ns);
  if (admitted) {
    ++state.admitted;
  } else {
    ++state.rejected;
  }
  return admitted;
}

std::size_t TenantGovernor::tenant_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

JsonValue TenantGovernor::StateJson() const {
  JsonValue tenants = JsonValue::Array();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, state] : buckets_) {
      JsonValue entry = JsonValue::Object();
      entry.Set("tenant", name)
          .Set("tokens", state.bucket.tokens())
          .Set("admitted", static_cast<std::int64_t>(state.admitted))
          .Set("rejected", static_cast<std::int64_t>(state.rejected));
      tenants.Append(std::move(entry));
    }
  }
  JsonValue json = JsonValue::Object();
  json.Set("enabled", enabled())
      .Set("qps", qps_)
      .Set("burst", burst_)
      .Set("tenants", std::move(tenants));
  return json;
}

}  // namespace sparsedet::server
