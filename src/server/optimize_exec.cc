#include "server/optimize_exec.h"

#include <chrono>
#include <utility>

#include "adapt/adapt.h"
#include "obs/log.h"
#include "opt/backend.h"
#include "opt/optimizer.h"

namespace sparsedet::server {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

OptimizeExecutor::OptimizeExecutor(engine::BatchEngine& engine,
                                   TenantGovernor& governor)
    : engine_(engine),
      governor_(governor),
      jobs_total_(&engine.registry().counter("opt_server_jobs_total")),
      queue_depth_(&engine.registry().gauge("opt_server_queue_depth")),
      running_(&engine.registry().gauge("opt_server_running")) {}

OptimizeExecutor::~OptimizeExecutor() { Stop(); }

void OptimizeExecutor::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  worker_ = std::thread([this] { Loop(); });
}

void OptimizeExecutor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

void OptimizeExecutor::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

void OptimizeExecutor::Submit(
    JsonValue command, std::string tenant,
    std::shared_ptr<const resilience::CancelToken> cancel, Done done) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Job{std::move(command), std::move(tenant),
                         std::move(cancel), std::move(done)});
    queue_depth_->Set(static_cast<std::int64_t>(queue_.size()));
  }
  jobs_total_->Inc();
  cv_.notify_one();
}

void OptimizeExecutor::Loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Stop drains: every submitted job still answers (the server's
      // outstanding-response accounting depends on it).
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<std::int64_t>(queue_.size()));
    }
    running_->Set(1);
    std::string response = RunJob(job);
    running_->Set(0);
    if (job.done) job.done(std::move(response));
  }
}

std::string OptimizeExecutor::RunJob(Job& job) {
  opt::AsyncEngineBackend backend(engine_, job.cancel);
  opt::OptimizerHooks hooks;
  hooks.cancel = job.cancel;
  // One governor token per inner-solve batch, from the same bucket that
  // admits the tenant's regular requests. The wait loop polls so a
  // disconnect or deadline mid-wait still resolves: cancellation throws
  // (caught by the command handler into an error response), deadline
  // expiry returns false (a degraded partial result). A server drain
  // refuses outright: the job winds down to a partial within one batch.
  const std::string tenant = job.tenant;
  hooks.admit = [this, tenant, cancel = job.cancel](
                    std::size_t batch_size,
                    const resilience::Deadline& deadline) {
    (void)batch_size;
    if (draining_.load(std::memory_order_acquire)) return false;
    if (!governor_.enabled()) return true;
    while (!governor_.Admit(tenant, NowNs())) {
      if (cancel != nullptr) cancel->ThrowIfCancelled();
      if (deadline.set() && deadline.Expired()) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  };
  const JsonValue* cmd =
      job.command.is_object() ? job.command.Find("cmd") : nullptr;
  const bool is_adapt =
      cmd != nullptr && cmd->is_string() && cmd->AsString() == "adapt";
  JsonValue response =
      is_adapt ? adapt::HandleAdaptCommand(job.command, backend,
                                           &engine_.registry(), hooks)
               : opt::HandleOptimizeCommand(job.command, backend,
                                            &engine_.registry(), hooks);
  // A response rendered during a SIGTERM drain is a partial by decree,
  // whatever the run itself thinks: tag it so clients never mistake a
  // drained answer for a complete one.
  if (draining_.load(std::memory_order_acquire)) {
    if (const JsonValue* result = response.Find("result")) {
      JsonValue patched = *result;
      patched.Set("degraded", true);
      response.Set("result", std::move(patched));
    }
  }
  if (const JsonValue* error = response.Find("error")) {
    obs::LogWarn(is_adapt ? "adapt" : "optimize", "job_failed",
                 JsonValue::Object().Set("error", *error));
  }
  return response.ToString();
}

JsonValue OptimizeExecutor::StatuszJson() const {
  JsonValue obj = JsonValue::Object();
  std::lock_guard<std::mutex> lock(mutex_);
  obj.Set("jobs_total", static_cast<std::int64_t>(jobs_total_->Value()))
      .Set("queue_depth", static_cast<std::int64_t>(queue_.size()))
      .Set("running", running_->Value());
  return obj;
}

}  // namespace sparsedet::server
