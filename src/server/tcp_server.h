// Network-native serve mode: a concurrent TCP front-end for BatchEngine.
//
// The server speaks exactly the stdio `serve` protocol — one JSONL request
// per line, one JSONL response per line, {"cmd":"stats"} answered
// in-stream — over any number of concurrent connections, each of which
// may pipeline requests without waiting for responses. Responses on a
// connection always come back in that connection's request order, byte-
// identical to what the stdio loop would have produced for the same lines
// (server-side admission rejections aside, which stdio has no analog for).
//
// Architecture: one epoll event-loop thread owns every socket. Inbound
// bytes run through framing::LineDecoder (bounded, hostile-input safe);
// each complete line is assigned a per-connection sequence number and
// either rejected at admission (tenant quota — see token_bucket.h) or
// planned into the engine via BatchEngine::SubmitLineAsync, whose
// callback delivers the rendered response on the engine's emitter thread.
// A per-connection reorder buffer merges engine responses with
// server-side rejections in sequence order; the event loop is woken
// through an eventfd and performs all socket writes (non-blocking,
// EPOLLOUT-driven), so the emitter thread never blocks on a slow client.
//
// Cancellation: each connection owns a CancelToken (created with
// allow_memo_inserts, so serving still warms the solver memo cache). On
// disconnect the token is cancelled with CancelReason::kDisconnect, which
// stops that connection's in-flight solves at their next cancellation
// point; their results are dropped, never cached.
//
// Drain: RequestDrain() (async-signal-safe; call it from SIGTERM/SIGINT
// handlers) makes Run() stop accepting, stop reading, flush every
// in-flight response to its socket, persist the memo-cache snapshot when
// configured, and return. Already-admitted requests complete normally.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/engine.h"
#include "server/admin_http.h"
#include "server/optimize_exec.h"
#include "server/token_bucket.h"

namespace sparsedet::server {

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port back via port()
  std::size_t max_connections = 64;  // excess connections are rejected
  double tenant_qps = 0.0;    // per-tenant admission rate; 0 = unlimited
  double tenant_burst = 0.0;  // bucket capacity; 0 = max(1, tenant_qps)
  std::int64_t idle_timeout_ms = 0;  // close silent connections; 0 = off
  // Per-line byte bound, mirroring EngineOptions::max_line_bytes so both
  // transports reject the same inputs.
  std::size_t max_line_bytes = 1 << 20;
  // Memo-cache snapshot file: loaded (if present) by Start(), written
  // atomically when Run() drains. Empty = disabled.
  std::string memo_snapshot_path;
  bool cancel_on_disconnect = true;

  // Out-of-band admin plane (admin_http.h): /metrics, /healthz, /statusz,
  // /tracez on a dedicated thread, reachable while the data plane is
  // saturated or draining. -1 = disabled (the default); 0 = ephemeral.
  int admin_port = -1;
  std::string admin_host = "127.0.0.1";
};

class TcpServer {
 public:
  // The engine must outlive the server. The server registers its own
  // server_* counters in engine.registry(), so they show up in
  // {"cmd":"stats"} responses alongside the engine's.
  TcpServer(engine::BatchEngine& engine, const TcpServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds + listens, loads the memo snapshot when configured, and starts
  // the engine's emitter thread. Throws Error on bind/listen failure.
  void Start();

  // The bound port (after Start()); useful with options.port == 0.
  int port() const { return port_; }
  // The bound admin port (after Start()); -1 when the admin plane is off.
  int admin_port() const { return admin_ != nullptr ? admin_->port() : -1; }

  // Runs the event loop until RequestDrain(); returns after every
  // in-flight response is flushed and the snapshot (if configured) is
  // written.
  void Run();

  // Async-signal-safe drain trigger (one write(2) to an eventfd).
  void RequestDrain();

 private:
  struct Conn;

  void Accept();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);
  // Feeds decoded lines into admission + the engine.
  void ProcessLines(const std::shared_ptr<Conn>& conn);
  // Stashes a response for `seq` and appends every now-contiguous response
  // to the connection's outbound buffer. Called from the event loop (local
  // rejections) and the engine emitter thread (engine responses).
  void DeliverResponse(const std::shared_ptr<Conn>& conn, std::uint64_t seq,
                       std::string&& text);
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn, bool disconnect);
  void UpdateWriteInterest(const std::shared_ptr<Conn>& conn,
                           bool want_write);
  void CloseIdleConns(std::int64_t now_ns);
  void WakeLoop();
  void StartAdmin();
  JsonValue StatuszJson() const;
  JsonValue AdaptStatuszJson() const;

  engine::BatchEngine& engine_;
  TcpServerOptions options_;
  TenantGovernor governor_;
  // {"cmd":"optimize"} / {"cmd":"adapt"} worker (see optimize_exec.h):
  // created by Start(), drained after the data plane drains, stopped
  // before teardown.
  std::unique_ptr<OptimizeExecutor> optimize_exec_;
  std::unique_ptr<AdminHttpServer> admin_;
  std::int64_t start_ns_ = 0;  // Start() stamp; /statusz uptime base

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: emitter-thread delivery + drain requests
  int port_ = 0;
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;

  // Responses admitted to the engine but not yet called back. Drain
  // completes when this reaches zero and every outbuf is flushed.
  std::atomic<std::uint64_t> outstanding_{0};

  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  // by fd
  int next_conn_id_ = 1;

  // server_* metric handles (registered in the engine's registry).
  obs::Counter* connections_total_;
  obs::Counter* connections_rejected_;
  obs::Counter* idle_closed_;
  obs::Counter* disconnects_;
  obs::Counter* requests_total_;
  obs::Counter* responses_total_;
  obs::Counter* tenant_rejected_;
  obs::Gauge* connections_active_;
  obs::Gauge* drain_state_;  // 0 = serving, 1 = draining, 2 = drained
  // End-to-end latency split (microsecond buckets), fed by the engine's
  // completion hook: plan -> response, submit -> worker pickup, solve.
  obs::Histogram* request_us_;
  obs::Histogram* queue_wait_us_;
  obs::Histogram* solve_us_;
};

}  // namespace sparsedet::server
