#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/framing.h"
#include "common/json.h"
#include "common/version.h"
#include "obs/log.h"
#include "prob/memo_cache.h"
#include "prob/memo_snapshot.h"
#include "resilience/cancel.h"

namespace sparsedet::server {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct TcpServer::Conn {
  explicit Conn(std::size_t max_line_bytes) : decoder(max_line_bytes) {}

  // Event-loop-thread state.
  int fd = -1;
  int id = 0;
  framing::LineDecoder decoder;
  std::shared_ptr<resilience::CancelToken> token;
  std::int64_t last_activity_ns = 0;
  int line_number = 0;        // 1-based input line counter (engine ids)
  std::uint64_t next_seq = 0;  // next sequence number to assign
  bool want_write = false;     // EPOLLOUT registered
  bool read_open = true;       // false after EOF or drain

  // Requests admitted to the engine whose callback has not yet fired.
  std::atomic<int> pending{0};

  // Shared with the engine emitter thread (response delivery).
  std::mutex mutex;
  std::uint64_t next_emit = 0;  // next sequence number to append to outbuf
  std::map<std::uint64_t, std::string> ready;  // out-of-order responses
  std::string outbuf;
  bool closed = false;
};

TcpServer::TcpServer(engine::BatchEngine& engine,
                     const TcpServerOptions& options)
    : engine_(engine),
      options_(options),
      governor_(options.tenant_qps, options.tenant_burst),
      connections_total_(
          &engine.registry().counter("server_connections_total")),
      connections_rejected_(
          &engine.registry().counter("server_connections_rejected_total")),
      idle_closed_(&engine.registry().counter("server_idle_closed_total")),
      disconnects_(&engine.registry().counter("server_disconnects_total")),
      requests_total_(&engine.registry().counter("server_requests_total")),
      responses_total_(&engine.registry().counter("server_responses_total")),
      tenant_rejected_(
          &engine.registry().counter("server_tenant_rejected_total")),
      connections_active_(&engine.registry().gauge("server_connections_active")),
      drain_state_(&engine.registry().gauge("server_drain_state")),
      request_us_(&engine.registry().histogram(
          "server_request_us", {}, obs::DefaultLatencyBoundsUs())),
      queue_wait_us_(&engine.registry().histogram(
          "server_queue_wait_us", {}, obs::DefaultLatencyBoundsUs())),
      solve_us_(&engine.registry().histogram(
          "server_solve_us", {}, obs::DefaultLatencyBoundsUs())) {
  // Split the end-to-end latency the completion hook reports into queue
  // wait vs solve: BENCH_PR6's ~280 ms p50 at 32 pipelined connections is
  // indistinguishable from slow solves without this split.
  engine_.SetCompletionHook([this](const obs::CompletedSpan& span) {
    request_us_->Record(span.total_ns / 1000);
    queue_wait_us_->Record(span.queue_wait_ns / 1000);
    solve_us_->Record(span.solve_ns / 1000);
  });
}

TcpServer::~TcpServer() {
  // The admin thread serves handlers that read `this`; stop it before any
  // other teardown. Likewise the completion hook captures `this` and runs
  // on the engine's emitter thread, which the engine keeps past our
  // lifetime — detach it.
  admin_.reset();
  // The executor's done callbacks touch outstanding_ and the wake fd; its
  // worker must be gone before members are torn down.
  optimize_exec_.reset();
  engine_.SetCompletionHook(nullptr);
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closed = true;
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw Error("serve-tcp: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw Error("serve-tcp: invalid host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw Error("serve-tcp: cannot bind " + options_.host + ":" +
                std::to_string(options_.port) + " (" +
                std::strerror(errno) + ")");
  }
  if (::listen(listen_fd_, 128) != 0) {
    throw Error("serve-tcp: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (wake_fd_ < 0 || epoll_fd_ < 0) {
    throw Error("serve-tcp: eventfd/epoll setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (!options_.memo_snapshot_path.empty()) {
    try {
      const prob::MemoSnapshotInfo info = prob::LoadMemoSnapshot(
          prob::MemoCache::Global(), options_.memo_snapshot_path);
      obs::LogInfo("server", "snapshot_restored",
                   JsonValue::Object()
                       .Set("path", options_.memo_snapshot_path)
                       .Set("entries", static_cast<std::int64_t>(info.entries))
                       .Set("bytes", static_cast<std::int64_t>(info.bytes)));
    } catch (const Error& e) {
      // A missing or stale snapshot is a cold start, not a failure.
      obs::LogWarn("server", "snapshot_not_loaded",
                   JsonValue::Object()
                       .Set("path", options_.memo_snapshot_path)
                       .Set("reason", std::string(e.what())));
    }
  }
  engine_.StartAsync();
  optimize_exec_ = std::make_unique<OptimizeExecutor>(engine_, governor_);
  optimize_exec_->Start();
  drain_state_->Set(0);
  start_ns_ = NowNs();
  if (options_.admin_port >= 0) StartAdmin();
  obs::LogInfo("server", "started",
               JsonValue::Object()
                   .Set("host", options_.host)
                   .Set("port", port_)
                   .Set("admin_port", admin_port()));
}

void TcpServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    // write(2) is async-signal-safe; the eventfd wakes the loop.
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void TcpServer::WakeLoop() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void TcpServer::Run() {
  std::vector<epoll_event> events(64);
  for (;;) {
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      // /healthz must report draining before the listener closes, so a
      // balancer polling it never routes to a port about to disappear.
      drain_state_->Set(1);
      obs::LogInfo("server", "drain_started",
                   JsonValue::Object().Set(
                       "outstanding", static_cast<std::int64_t>(
                                          outstanding_.load(
                                              std::memory_order_acquire))));
      // Long commands in flight wind down to degraded partials within one
      // inner-solve batch, and every response they render from here on is
      // tagged degraded — it flushes before the final stats line because
      // the loop below only exits once outstanding_ is zero and all
      // connection buffers are empty.
      if (optimize_exec_ != nullptr) optimize_exec_->BeginDrain();
      // Stop accepting and stop reading; admitted work runs to completion.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      for (auto& [fd, conn] : conns_) {
        conn->read_open = false;
        UpdateWriteInterest(conn, conn->want_write);
      }
    }
    if (draining_ && outstanding_.load(std::memory_order_acquire) == 0) {
      bool all_flushed = true;
      for (auto it = conns_.begin(); it != conns_.end();) {
        const std::shared_ptr<Conn> conn = it->second;
        ++it;
        FlushConn(conn);  // may erase conn from conns_
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->outbuf.empty() || !conn->ready.empty()) {
          all_flushed = false;
        }
      }
      if (all_flushed) break;
    }

    int timeout_ms = 1000;
    if (options_.idle_timeout_ms > 0) {
      timeout_ms = static_cast<int>(
          std::min<std::int64_t>(options_.idle_timeout_ms, 500));
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("serve-tcp: epoll_wait failed");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        Accept();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drainv = 0;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        // The emitter delivered responses; flush any conn with output.
        for (auto it = conns_.begin(); it != conns_.end();) {
          auto conn = it->second;  // FlushConn may erase from conns_
          ++it;
          FlushConn(conn);
        }
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      const std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn, /*disconnect=*/true);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
    if (options_.idle_timeout_ms > 0) CloseIdleConns(NowNs());
  }

  // Drained: close remaining sockets, persist the memo snapshot.
  for (auto& [fd, conn] : conns_) {
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->closed = true;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
  }
  conns_.clear();
  connections_active_->Set(0);
  // outstanding_ hit zero, so the executor's queue is empty and idle; Stop
  // joins its worker before the engine stops emitting.
  if (optimize_exec_ != nullptr) optimize_exec_->Stop();
  engine_.DrainAsync();
  if (!options_.memo_snapshot_path.empty()) {
    try {
      const prob::MemoSnapshotInfo info = prob::SaveMemoSnapshot(
          prob::MemoCache::Global(), options_.memo_snapshot_path);
      obs::LogInfo("server", "snapshot_saved",
                   JsonValue::Object()
                       .Set("path", options_.memo_snapshot_path)
                       .Set("entries", static_cast<std::int64_t>(info.entries))
                       .Set("bytes", static_cast<std::int64_t>(info.bytes)));
    } catch (const Error& e) {
      obs::LogError("server", "snapshot_not_saved",
                    JsonValue::Object()
                        .Set("path", options_.memo_snapshot_path)
                        .Set("reason", std::string(e.what())));
    }
  }
  drain_state_->Set(2);
  obs::LogInfo("server", "drained");
}

void TcpServer::Accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error
    if (draining_) {
      ::close(fd);
      continue;
    }
    if (conns_.size() >= options_.max_connections) {
      // 429-style structured rejection on the wire before closing; the
      // socket is fresh, so one best-effort write is all it gets.
      JsonValue response = JsonValue::Object();
      response.Set("error", "too many connections")
          .Set("error_code", "max_connections");
      const std::string text = response.ToString() + "\n";
      framing::WriteAllFd(fd, text.data(), text.size());
      ::close(fd);
      connections_rejected_->Inc();
      continue;
    }
    auto conn = std::make_shared<Conn>(options_.max_line_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity_ns = NowNs();
    if (options_.cancel_on_disconnect) {
      // No deadline, and memo inserts stay allowed: a disconnect abandons
      // the response, it does not invalidate completed sub-results.
      conn->token = std::make_shared<resilience::CancelToken>(
          resilience::Deadline(), nullptr, /*allow_memo_inserts=*/true);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(fd, std::move(conn));
    connections_total_->Inc();
    connections_active_->Set(static_cast<std::int64_t>(conns_.size()));
  }
}

void TcpServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  if (!conn->read_open) return;
  char buf[1 << 16];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->last_activity_ns = NowNs();
      conn->decoder.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn, /*disconnect=*/true);
    return;
  }
  ProcessLines(conn);
  if (eof) {
    conn->read_open = false;
    if (conn->pending.load(std::memory_order_acquire) > 0) {
      // The peer went away with responses still owed: abandon the work.
      CloseConn(conn, /*disconnect=*/true);
      return;
    }
    bool done;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      done = conn->outbuf.empty() && conn->ready.empty();
    }
    if (done) CloseConn(conn, /*disconnect=*/false);
    // Otherwise FlushConn closes it once the last response is written.
  }
}

void TcpServer::ProcessLines(const std::shared_ptr<Conn>& conn) {
  std::string line;
  bool truncated = false;
  while (conn->decoder.Next(&line, &truncated)) {
    if (!truncated && IsBlank(line)) continue;
    const std::uint64_t seq = conn->next_seq++;
    ++conn->line_number;
    requests_total_->Inc();

    // {"cmd":"optimize"} / {"cmd":"adapt"} run for seconds-to-minutes and
    // their inner solves complete on the engine's emitter thread, so they
    // can run on neither of our threads — route them to the executor,
    // holding the connection's sequence slot and the server's outstanding
    // count exactly like an engine request so pipelining order and drain
    // both account for them. Tenant quota applies per inner-solve batch
    // inside the executor instead of once here. Same cheap substring guard
    // the engine uses.
    if (!truncated && optimize_exec_ != nullptr &&
        line.find("\"cmd\"") != std::string::npos) {
      bool routed = false;
      try {
        JsonValue json = ParseJson(line, /*max_depth=*/64);
        const JsonValue* cmd =
            json.is_object() ? json.Find("cmd") : nullptr;
        if (cmd != nullptr && cmd->is_string() &&
            (cmd->AsString() == "optimize" || cmd->AsString() == "adapt")) {
          std::string tenant;
          if (const JsonValue* t = json.Find("tenant");
              t != nullptr && t->is_string()) {
            tenant = t->AsString();
          }
          conn->pending.fetch_add(1, std::memory_order_acq_rel);
          outstanding_.fetch_add(1, std::memory_order_acq_rel);
          const std::shared_ptr<Conn> owner = conn;
          optimize_exec_->Submit(
              std::move(json), std::move(tenant), conn->token,
              [this, owner, seq](std::string text) {
                DeliverResponse(owner, seq, std::move(text));
                owner->pending.fetch_sub(1, std::memory_order_acq_rel);
                outstanding_.fetch_sub(1, std::memory_order_acq_rel);
                WakeLoop();
              });
          routed = true;
        }
      } catch (const Error&) {
        // Not valid JSON: fall through, the engine renders the parse error.
      }
      if (routed) continue;
    }

    // Admission control wants the tenant, which needs a parse; malformed
    // and command lines skip the quota (the engine reports the former, the
    // latter is an operator path). The line is parsed again at plan time —
    // acceptable: admission happens once per request, solves dominate.
    if (!truncated && governor_.enabled()) {
      bool rejected = false;
      try {
        const JsonValue json = ParseJson(line, /*max_depth=*/64);
        if (json.is_object() && json.Find("cmd") == nullptr) {
          std::string tenant;
          if (const JsonValue* t = json.Find("tenant");
              t != nullptr && t->is_string()) {
            tenant = t->AsString();
          }
          if (!governor_.Admit(tenant, NowNs())) {
            JsonValue response = JsonValue::Object();
            if (const JsonValue* id = json.Find("id");
                id != nullptr && (id->is_string() || id->is_number())) {
              response.Set("id", *id);
            } else {
              response.Set("id", conn->line_number);
            }
            response.Set("error", "tenant quota exceeded")
                .Set("error_code", "quota_exceeded");
            if (!tenant.empty()) response.Set("tenant", tenant);
            tenant_rejected_->Inc();
            DeliverResponse(conn, seq, response.ToString());
            rejected = true;
          }
        }
      } catch (const Error&) {
        // Not valid JSON: fall through, the engine renders the parse error.
      }
      if (rejected) continue;
    }

    conn->pending.fetch_add(1, std::memory_order_acq_rel);
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    const std::shared_ptr<Conn> owner = conn;
    engine_.SubmitLineAsync(
        line, conn->line_number, conn->token, truncated,
        [this, owner, seq](std::string text) {
          DeliverResponse(owner, seq, std::move(text));
          owner->pending.fetch_sub(1, std::memory_order_acq_rel);
          outstanding_.fetch_sub(1, std::memory_order_acq_rel);
          WakeLoop();
        });
  }
}

void TcpServer::DeliverResponse(const std::shared_ptr<Conn>& conn,
                                std::uint64_t seq, std::string&& text) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;  // disconnected: drop the response
    conn->ready.emplace(seq, std::move(text));
    // Append every now-contiguous response in sequence order, so pipelined
    // responses leave in exactly the order the requests arrived.
    for (auto it = conn->ready.find(conn->next_emit);
         it != conn->ready.end(); it = conn->ready.find(conn->next_emit)) {
      conn->outbuf += it->second;
      conn->outbuf += '\n';
      conn->ready.erase(it);
      ++conn->next_emit;
      responses_total_->Inc();
    }
  }
  WakeLoop();
}

void TcpServer::HandleWritable(const std::shared_ptr<Conn>& conn) {
  FlushConn(conn);
}

void TcpServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool close_dead = false;
  bool close_done = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    while (!conn->outbuf.empty()) {
      const framing::WriteResult result = framing::WriteSomeFd(
          conn->fd, conn->outbuf.data(), conn->outbuf.size());
      if (result.written > 0) {
        conn->last_activity_ns = NowNs();
        conn->outbuf.erase(0, result.written);
      }
      if (result.error) {
        close_dead = true;
        break;
      }
      if (result.would_block) break;
    }
    if (!close_dead) {
      const bool want = !conn->outbuf.empty();
      if (want != conn->want_write) UpdateWriteInterest(conn, want);
      close_done = !conn->read_open && conn->outbuf.empty() &&
                   conn->ready.empty() &&
                   conn->pending.load(std::memory_order_acquire) == 0;
    }
  }
  if (close_dead) {
    CloseConn(conn, /*disconnect=*/true);
  } else if (close_done) {
    CloseConn(conn, /*disconnect=*/false);
  }
}

void TcpServer::UpdateWriteInterest(const std::shared_ptr<Conn>& conn,
                                    bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->want_write = want_write;
}

void TcpServer::CloseIdleConns(std::int64_t now_ns) {
  const std::int64_t limit_ns = options_.idle_timeout_ms * 1000000;
  std::vector<std::shared_ptr<Conn>> idle;
  for (auto& [fd, conn] : conns_) {
    if (conn->pending.load(std::memory_order_acquire) > 0) continue;
    bool has_output;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      has_output = !conn->outbuf.empty() || !conn->ready.empty();
    }
    if (has_output) continue;
    // Covers true silence and slowloris trickles alike: a connection that
    // has not completed a request in `idle_timeout_ms` is evicted even if
    // it dribbles a byte of a partial frame now and then — activity is
    // only refreshed by reads, and a perpetual partial line never makes
    // progress, so the decoder's has_partial() state ages out with it.
    if (now_ns - conn->last_activity_ns > limit_ns &&
        !conn->decoder.has_partial()) {
      idle.push_back(conn);
    } else if (now_ns - conn->last_activity_ns > 2 * limit_ns) {
      idle.push_back(conn);  // partial frame but no progress: slowloris
    }
  }
  for (const auto& conn : idle) {
    idle_closed_->Inc();
    CloseConn(conn, /*disconnect=*/true);
  }
}

void TcpServer::StartAdmin() {
  AdminHttpOptions admin_options;
  admin_options.host = options_.admin_host;
  admin_options.port = options_.admin_port;
  admin_ = std::make_unique<AdminHttpServer>(admin_options);

  // Prometheus text exposition, the same rendering `metrics-dump` prints.
  admin_->Handle("/metrics", [this](std::string_view) {
    AdminResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = engine_.MetricsSnapshot().ToPrometheus();
    return response;
  });

  // Liveness by default (200 as long as the process can answer, with the
  // drain state in the body); readiness with ?ready (503 once draining,
  // the signal a balancer uses to stop routing here).
  admin_->Handle("/healthz", [this](std::string_view query) {
    const std::int64_t state = drain_state_->Value();
    const char* status =
        state == 0 ? "serving" : (state == 1 ? "draining" : "drained");
    AdminResponse response;
    response.content_type = "application/json";
    if (query == "ready" && state != 0) response.status = 503;
    JsonValue body = JsonValue::Object();
    body.Set("status", status).Set("ok", state == 0);
    response.body = body.ToString() + "\n";
    return response;
  });

  admin_->Handle("/statusz", [this](std::string_view) {
    AdminResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson().ToString() + "\n";
    return response;
  });

  admin_->Handle("/tracez", [this](std::string_view) {
    AdminResponse response;
    response.content_type = "application/json";
    response.body = engine_.trace_ring().ToJson().ToString() + "\n";
    return response;
  });

  admin_->Start();
}

JsonValue TcpServer::StatuszJson() const {
  JsonValue build = JsonValue::Object();
  build.Set("name", kBuildName).Set("version", kVersion);

  JsonValue server = JsonValue::Object();
  server
      .Set("max_connections",
           static_cast<std::int64_t>(options_.max_connections))
      .Set("tenant_qps", options_.tenant_qps)
      .Set("tenant_burst", options_.tenant_burst)
      .Set("idle_timeout_ms", options_.idle_timeout_ms)
      .Set("max_line_bytes",
           static_cast<std::int64_t>(options_.max_line_bytes))
      .Set("memo_snapshot_path", options_.memo_snapshot_path)
      .Set("cancel_on_disconnect", options_.cancel_on_disconnect);

  const prob::MemoCacheStats memo = prob::MemoCache::Global().Stats();
  JsonValue memo_json = JsonValue::Object();
  memo_json
      .Set("capacity", static_cast<std::int64_t>(memo.capacity_entries))
      .Set("entries", static_cast<std::int64_t>(memo.entries))
      .Set("bytes", static_cast<std::int64_t>(memo.bytes))
      .Set("snapshot_age_ms",
           memo.snapshot_loaded_unix_ms > 0
               ? std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                         .count() -
                     memo.snapshot_loaded_unix_ms
               : -1);
  JsonValue shards = JsonValue::Array();
  for (const prob::MemoShardStats& shard :
       prob::MemoCache::Global().ShardStats()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("entries", static_cast<std::int64_t>(shard.entries))
        .Set("bytes", static_cast<std::int64_t>(shard.bytes));
    shards.Append(std::move(entry));
  }
  memo_json.Set("shards", std::move(shards));

  JsonValue log_json = JsonValue::Object();
  log_json
      .Set("lines_written",
           static_cast<std::int64_t>(obs::StructuredLog::Global()
                                         .lines_written()))
      .Set("lines_suppressed",
           static_cast<std::int64_t>(obs::StructuredLog::Global()
                                         .lines_suppressed()));

  JsonValue json = JsonValue::Object();
  json.Set("build", std::move(build))
      .Set("uptime_ms", (NowNs() - start_ns_) / 1'000'000)
      .Set("host", options_.host)
      .Set("port", port_)
      .Set("admin_port", admin_ != nullptr ? admin_->port() : -1)
      .Set("drain_state", drain_state_->Value())
      .Set("connections_active", connections_active_->Value())
      .Set("engine", engine_.OptionsJson())
      .Set("server", std::move(server))
      .Set("tenants", governor_.StateJson())
      .Set("memo_cache", std::move(memo_json))
      .Set("optimize", optimize_exec_ != nullptr
                           ? optimize_exec_->StatuszJson()
                           : JsonValue::Object().Set("running", 0))
      .Set("adapt", AdaptStatuszJson())
      .Set("log", std::move(log_json));
  obs::SloTracker* slo = engine_.slo();
  if (slo != nullptr) {
    json.Set("slo", slo->StatusJson(NowNs()));
  } else {
    JsonValue off = JsonValue::Object();
    off.Set("enabled", false);
    json.Set("slo", std::move(off));
  }
  return json;
}

JsonValue TcpServer::AdaptStatuszJson() const {
  // The self-healing loop's deployment-health view: how many adapt runs
  // and epochs this process has served, and the live-population / setting
  // gauges as of the most recent epoch. Reads the shared adapt_* handles
  // (creating zero-valued ones if no adapt command has run yet).
  obs::MetricsRegistry& registry = engine_.registry();
  JsonValue obj = JsonValue::Object();
  obj.Set("runs_total",
          static_cast<std::int64_t>(
              registry.counter("adapt_runs_total").Value()))
      .Set("epochs_total",
           static_cast<std::int64_t>(
               registry.counter("adapt_epochs_total").Value()))
      .Set("retunes_total",
           static_cast<std::int64_t>(
               registry.counter("adapt_retunes_total").Value()))
      .Set("active", registry.gauge("adapt_active").Value())
      .Set("live_population",
           registry.gauge("adapt_live_population").Value())
      .Set("estimated_population",
           registry.gauge("adapt_estimated_population").Value())
      .Set("current_k", registry.gauge("adapt_current_k").Value())
      .Set("current_window", registry.gauge("adapt_current_window").Value());
  return obj;
}

void TcpServer::CloseConn(const std::shared_ptr<Conn>& conn,
                          bool disconnect) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
  }
  if (disconnect && conn->token != nullptr) {
    // Stops this connection's in-flight solves at their next cancellation
    // point; the engine reports them "disconnected" and never caches them.
    conn->token->Cancel(resilience::CancelReason::kDisconnect);
  }
  if (disconnect) disconnects_->Inc();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  connections_active_->Set(static_cast<std::int64_t>(conns_.size()));
}

}  // namespace sparsedet::server
