// Off-loop execution of the long commands — {"cmd": "optimize"} and
// {"cmd": "adapt"} — for the TCP server.
//
// A long command runs hundreds-to-thousands of inner solves and takes
// seconds to minutes — orders of magnitude past anything else on the
// command path. The stdio serve loop can afford to run it inline (the
// engine is idle between its lines); the TCP server cannot run it on
// either of its threads: on the event loop it would freeze every
// connection for the whole run, and on the engine's emitter thread it
// would deadlock — the run blocks waiting for inner-solve callbacks that
// fire on that very thread.
//
// So long commands get a dedicated executor: one worker thread and a FIFO
// job queue. Jobs run through AsyncEngineBackend (inner solves interleave
// with regular connection traffic on the shared engine, all against the
// shared memo cache) under the submitting connection's cancel token, so a
// disconnect aborts the run between batches. Per-tenant admission is
// applied per inner-solve *batch* via the shared admit hook — one governor
// token per batch, the same bucket that gates the tenant's regular
// requests — so a tenant's long command and its plain traffic share one
// quota.
//
// Drain: when the server starts a SIGTERM drain it calls BeginDrain().
// From that point the admit hook refuses every further batch, so running
// and queued jobs wind down to valid *partial* results within one batch,
// and every response rendered during the drain is tagged
// "degraded": true — a drained answer must never be mistaken for a
// complete one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "resilience/cancel.h"
#include "server/token_bucket.h"

namespace sparsedet::server {

class OptimizeExecutor {
 public:
  // Both references must outlive the executor. Registers opt_server_*
  // metrics in the engine's registry.
  OptimizeExecutor(engine::BatchEngine& engine, TenantGovernor& governor);
  ~OptimizeExecutor();

  OptimizeExecutor(const OptimizeExecutor&) = delete;
  OptimizeExecutor& operator=(const OptimizeExecutor&) = delete;

  void Start();
  // Drains the queue (every submitted job still gets its callback), then
  // joins the worker. Idempotent.
  void Stop();

  // Flags a server drain in progress: every subsequent inner-solve batch
  // is refused (jobs finish as degraded partials within one batch) and
  // every response rendered from now on carries "degraded": true. One-way;
  // safe to call from any thread.
  void BeginDrain();

  using Done = std::function<void(std::string response)>;
  // Enqueues one parsed {"cmd":"optimize"} or {"cmd":"adapt"} command.
  // `cancel` (optional) aborts the run between inner-solve batches — pass
  // the connection token so a disconnect stops paying for an answer nobody
  // will read. `done` runs on the executor thread with the rendered
  // response line (no trailing newline) and must not block.
  void Submit(JsonValue command, std::string tenant,
              std::shared_ptr<const resilience::CancelToken> cancel,
              Done done);

  // {"jobs_total", "queue_depth", "running"} for /statusz.
  JsonValue StatuszJson() const;

 private:
  struct Job {
    JsonValue command;
    std::string tenant;
    std::shared_ptr<const resilience::CancelToken> cancel;
    Done done;
  };

  void Loop();
  std::string RunJob(Job& job);

  engine::BatchEngine& engine_;
  TenantGovernor& governor_;

  obs::Counter* jobs_total_;
  obs::Gauge* queue_depth_;
  obs::Gauge* running_;

  std::atomic<bool> draining_{false};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  bool started_ = false;
  std::thread worker_;
};

}  // namespace sparsedet::server
