// Off-loop execution of {"cmd": "optimize"} commands for the TCP server.
//
// An optimize command runs thousands of inner solves and takes seconds to
// minutes — three orders of magnitude past anything else on the command
// path. The stdio serve loop can afford to run it inline (the engine is
// idle between its lines); the TCP server cannot run it on either of its
// threads: on the event loop it would freeze every connection for the
// whole search, and on the engine's emitter thread it would deadlock —
// the optimizer blocks waiting for inner-solve callbacks that fire on that
// very thread.
//
// So optimize commands get a dedicated executor: one worker thread and a
// FIFO job queue. Jobs run through AsyncEngineBackend (inner solves
// interleave with regular connection traffic on the shared engine, all
// against the shared memo cache) under the submitting connection's cancel
// token, so a disconnect aborts the search between batches. Per-tenant
// admission is applied per inner-solve *batch* via the optimizer's admit
// hook — one governor token per batch, the same bucket that gates the
// tenant's regular requests — so a tenant's optimize run and its plain
// traffic share one quota.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "resilience/cancel.h"
#include "server/token_bucket.h"

namespace sparsedet::server {

class OptimizeExecutor {
 public:
  // Both references must outlive the executor. Registers opt_server_*
  // metrics in the engine's registry.
  OptimizeExecutor(engine::BatchEngine& engine, TenantGovernor& governor);
  ~OptimizeExecutor();

  OptimizeExecutor(const OptimizeExecutor&) = delete;
  OptimizeExecutor& operator=(const OptimizeExecutor&) = delete;

  void Start();
  // Drains the queue (every submitted job still gets its callback), then
  // joins the worker. Idempotent.
  void Stop();

  using Done = std::function<void(std::string response)>;
  // Enqueues one parsed {"cmd":"optimize"} command. `cancel` (optional)
  // aborts the search between inner-solve batches — pass the connection
  // token so a disconnect stops paying for an answer nobody will read.
  // `done` runs on the executor thread with the rendered response line (no
  // trailing newline) and must not block.
  void Submit(JsonValue command, std::string tenant,
              std::shared_ptr<const resilience::CancelToken> cancel,
              Done done);

  // {"jobs_total", "queue_depth", "running"} for /statusz.
  JsonValue StatuszJson() const;

 private:
  struct Job {
    JsonValue command;
    std::string tenant;
    std::shared_ptr<const resilience::CancelToken> cancel;
    Done done;
  };

  void Loop();
  std::string RunJob(Job& job);

  engine::BatchEngine& engine_;
  TenantGovernor& governor_;

  obs::Counter* jobs_total_;
  obs::Gauge* queue_depth_;
  obs::Gauge* running_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stop_ = false;
  bool started_ = false;
  std::thread worker_;
};

}  // namespace sparsedet::server
