#include "server/admin_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/framing.h"

namespace sparsedet::server {
namespace {

// An admin request is one short GET line plus a handful of headers.
constexpr std::size_t kMaxRequestBytes = 8 * 1024;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

AdminHttpServer::AdminHttpServer(const AdminHttpOptions& options)
    : options_(options) {}

AdminHttpServer::~AdminHttpServer() { Stop(); }

void AdminHttpServer::Handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

void AdminHttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw Error("admin: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw Error("admin: invalid host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw Error("admin: cannot bind " + options_.host + ":" +
                std::to_string(options_.port) + " (" + std::strerror(errno) +
                ")");
  }
  if (::listen(listen_fd_, 16) != 0) throw Error("admin: listen() failed");
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  thread_ = std::thread([this] { Serve(); });
}

void AdminHttpServer::Stop() {
  if (listen_fd_ >= 0) {
    // shutdown() kicks the blocking accept() out; the thread sees the
    // error, checks the closed listener, and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminHttpServer::Serve() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (Stop) or hard failure
    }
    HandleClient(fd);
    ::close(fd);
  }
}

std::string AdminHttpServer::RenderResponse(const AdminResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void AdminHttpServer::HandleClient(int fd) {
  // A client that dribbles or stalls must not wedge the admin thread.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // timeout, reset, or EOF before the headers ended
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  AdminResponse response;
  const std::size_t line_end = request.find("\r\n");
  const std::string_view line =
      line_end == std::string::npos
          ? std::string_view()
          : std::string_view(request).substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (line.substr(0, sp1) != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view query;
    if (const std::size_t q = target.find('?');
        q != std::string_view::npos) {
      query = target.substr(q + 1);
      target = target.substr(0, q);
    }
    const auto it = handlers_.find(std::string(target));
    if (it == handlers_.end()) {
      response.status = 404;
      response.body = "no such endpoint\n";
    } else {
      response = it->second(query);
    }
  }

  const std::string out = RenderResponse(response);
  framing::WriteAllFd(fd, out.data(), out.size());
}

}  // namespace sparsedet::server
