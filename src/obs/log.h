// Leveled, rate-limited structured JSONL logging for the serving stack.
//
// One process-wide logger (plus freely constructible instances for tests)
// replaces the ad-hoc stderr prints in the engine and server paths. Every
// emitted line is one JSON object with a fixed prefix of reserved keys —
//
//   {"ts_ms":<unix ms>,"seq":<monotonic>,"level":"info",
//    "component":"server","event":"snapshot_restored", ...fields...}
//
// — so transcripts are greppable by event and machine-parseable without a
// schema registry. Guarantees:
//
//   * one writer: a mutex serializes emission, so lines never interleave
//     and `seq` is strictly monotonic in file order;
//   * monotonic timestamps: `ts_ms` is clamped to never regress below the
//     previous emitted line (wall clocks step; transcripts must not);
//   * rate limiting: at most `max_per_key_per_sec` lines per
//     (component, event) key per wall second. Suppressed lines are
//     counted and reported on the key's next emitted line as a
//     "suppressed" field, so bursts stay visible without flooding;
//   * determinism for tests: the wall clock is injectable, which makes
//     the rate limiter (and `ts_ms` itself) a pure function of the
//     injected time series.
//
// Emission is cheap but not hot-path-free (a mutex and a flush); callers
// log operator-relevant events (startup, drain, snapshot IO, worker
// respawns), not per-request traffic — that is what spans and metrics are
// for.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/json.h"

namespace sparsedet::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Stable lowercase name, e.g. "warn".
const char* LogLevelName(LogLevel level);
// Parses "debug" | "info" | "warn" | "error"; false on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* level);

struct LogOptions {
  std::string path;  // JSONL file (truncated on Configure); empty = stderr
  LogLevel min_level = LogLevel::kInfo;
  // Per-(component, event) emission cap per wall second; 0 = unlimited.
  std::uint64_t max_per_key_per_sec = 50;
};

class StructuredLog {
 public:
  // A fresh logger writing to stderr at info level.
  StructuredLog();
  ~StructuredLog();

  StructuredLog(const StructuredLog&) = delete;
  StructuredLog& operator=(const StructuredLog&) = delete;

  // The process-wide logger the convenience functions below hit.
  // Intentionally leaked: worker threads may log during process exit.
  static StructuredLog& Global();

  // Replaces sink/level/limit. Reopens (truncates) `options.path` when
  // nonempty; throws Error when the file cannot be opened. Resets the
  // rate-limiter state but not `seq` (a transcript may span Configures).
  void Configure(const LogOptions& options);

  // Test hook: a unix-milliseconds source replacing the wall clock.
  // nullptr restores the real clock.
  void SetClockForTest(std::function<std::int64_t()> clock);

  // Emits one line. `fields` must be a JSON object (default empty); its
  // keys are appended after the reserved prefix keys. Below min_level or
  // over the key's per-second budget the line is dropped (and counted).
  void Write(LogLevel level, std::string_view component,
             std::string_view event, JsonValue fields = JsonValue::Object());

  // Lifetime emission counters (post-filter), for /statusz and tests.
  std::uint64_t lines_written() const;
  std::uint64_t lines_suppressed() const;

 private:
  std::int64_t NowMillisLocked();

  mutable std::mutex mutex_;
  LogOptions options_;
  std::FILE* file_ = nullptr;  // owned iff options_.path nonempty
  std::function<std::int64_t()> clock_;
  std::uint64_t seq_ = 0;
  std::int64_t last_ts_ms_ = 0;  // monotonic clamp
  std::uint64_t written_ = 0;
  std::uint64_t suppressed_total_ = 0;
  struct KeyBudget {
    std::int64_t second = -1;   // wall second of the open budget window
    std::uint64_t emitted = 0;  // lines emitted in that window
    std::uint64_t suppressed = 0;  // dropped since the last emitted line
  };
  std::map<std::string, KeyBudget, std::less<>> budgets_;
};

// Convenience wrappers over Global().
void LogDebug(std::string_view component, std::string_view event,
              JsonValue fields = JsonValue::Object());
void LogInfo(std::string_view component, std::string_view event,
             JsonValue fields = JsonValue::Object());
void LogWarn(std::string_view component, std::string_view event,
             JsonValue fields = JsonValue::Object());
void LogError(std::string_view component, std::string_view event,
              JsonValue fields = JsonValue::Object());

}  // namespace sparsedet::obs
