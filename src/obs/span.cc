#include "obs/span.h"

#include <utility>

namespace sparsedet::obs {

JsonValue RequestSpan::ToJson() const {
  JsonValue units_json = JsonValue::Array();
  for (const Unit& unit : units) {
    JsonValue entry = JsonValue::Object();
    entry.Set("source", unit.source);
    if (unit.source != "cache_hit") {
      entry.Set("queue_wait_ns", unit.queue_wait_ns)
          .Set("solve_ns", unit.solve_ns);
    }
    if (unit.attempts > 1) entry.Set("attempts", unit.attempts);
    units_json.Append(std::move(entry));
  }
  JsonValue json = JsonValue::Object();
  json.Set("trace_id", static_cast<std::int64_t>(trace_id));
  if (deadline_ms > 0) json.Set("deadline_ms", deadline_ms);
  if (!outcome.empty()) json.Set("outcome", outcome);
  json.Set("cache_lookup_ns", cache_lookup_ns)
      .Set("queue_wait_ns", queue_wait_ns)
      .Set("solve_ns", solve_ns)
      .Set("serialize_ns", serialize_ns)
      .Set("units", std::move(units_json));
  return json;
}

JsonValue RequestSpan::ToFileJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("trace_id", static_cast<std::int64_t>(trace_id));
  if (!request_id.is_null()) json.Set("id", request_id);
  if (!op.empty()) json.Set("op", op);
  json.Set("line", line);
  const JsonValue body = ToJson();
  for (const auto& [key, value] : body.Fields()) {
    if (key == "trace_id") continue;  // already first
    json.Set(key, value);
  }
  return json;
}

}  // namespace sparsedet::obs
