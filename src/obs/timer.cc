#include "obs/timer.h"

#include <atomic>

namespace sparsedet::obs {
namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

}  // namespace

void InstallGlobalRegistry(MetricsRegistry* registry) {
  g_registry.store(registry, std::memory_order_release);
}

void UninstallGlobalRegistry(MetricsRegistry* registry) {
  MetricsRegistry* expected = registry;
  g_registry.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
}

MetricsRegistry* GlobalRegistry() {
  return g_registry.load(std::memory_order_acquire);
}

}  // namespace sparsedet::obs
