// Scoped phase timers and the process-wide registry install point.
//
// Core solvers must not depend on the engine, so they reach their metrics
// through a single global pointer: the engine installs its registry for
// the duration of a run, and every ObsTimer constructed while it is
// installed records into the matching per-phase histogram. When no
// registry is installed the timer is a no-op — it never reads the clock —
// so library users and the paper-figure benches pay one relaxed atomic
// load per instrumented scope and nothing else.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace sparsedet::obs {

// Nanoseconds on the monotonic clock; the time base for every span and
// phase histogram.
inline std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Installs `registry` as the process-wide phase-timer sink. The caller
// keeps ownership and must keep the registry alive until it uninstalls
// (and any thread that may be inside an instrumented scope has finished).
void InstallGlobalRegistry(MetricsRegistry* registry);

// Clears the global sink, but only if `registry` is still the one
// installed — two engines constructed in sequence each detach their own.
void UninstallGlobalRegistry(MetricsRegistry* registry);

// The installed registry, or nullptr.
MetricsRegistry* GlobalRegistry();

// Records the lifetime of a scope into a latency histogram.
class ObsTimer {
 public:
  // Phase form, used inside core/sim: resolves through the global
  // registry; a null registry makes the whole timer a no-op.
  explicit ObsTimer(Phase phase) {
    if (MetricsRegistry* registry = GlobalRegistry()) {
      histogram_ = &registry->phase(phase);
      start_ = NowNanos();
    }
  }

  // Direct-handle form, used by the engine on its own histograms; a null
  // histogram is a no-op.
  explicit ObsTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = NowNanos();
  }

  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;

  ~ObsTimer() {
    if (histogram_ != nullptr) histogram_->Record(NowNanos() - start_);
  }

 private:
  Histogram* histogram_ = nullptr;
  std::int64_t start_ = 0;
};

}  // namespace sparsedet::obs
