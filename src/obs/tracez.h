// Fixed-size in-memory ring of recently completed request spans, the
// backing store for the admin plane's /tracez endpoint.
//
// Two views, both bounded:
//
//   recent  — the last `capacity` completed spans in completion order
//             (a circular buffer; the oldest span is evicted first);
//   slowest — the `capacity` slowest spans seen since startup, ordered
//             slowest-first (so a latency spike an hour ago is still
//             inspectable after the recent ring has turned over).
//
// Record() takes one short mutex hold per completed request — a handful of
// integer moves, no allocation beyond the span's own strings — which is
// noise next to a solve. Rendering is snapshot-then-serialize, so a scrape
// never blocks the data path for longer than the copy.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace sparsedet::obs {

// One completed request, flattened for /tracez. `id` is the request id in
// display form (the string value for string ids, JSON text otherwise);
// `error_code` is empty for successful (including degraded) requests.
struct CompletedSpan {
  std::uint64_t trace_id = 0;
  std::string id;
  std::string op;
  bool ok = true;
  std::string error_code;
  std::int64_t queue_wait_ns = 0;
  std::int64_t solve_ns = 0;
  std::int64_t total_ns = 0;

  JsonValue ToJson() const;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(CompletedSpan span);

  // Completion-ordered, newest first.
  std::vector<CompletedSpan> Recent() const;
  // Duration-ordered, slowest first; ties break toward the earlier span.
  std::vector<CompletedSpan> Slowest() const;

  // {"capacity":N,"recorded":M,"recent":[...],"slowest":[...]}
  JsonValue ToJson() const;

  std::size_t capacity() const { return capacity_; }
  // Lifetime count of recorded spans (recorded - capacity have been
  // evicted from the recent ring).
  std::uint64_t recorded() const;

  static constexpr std::size_t kDefaultCapacity = 64;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::uint64_t recorded_ = 0;
  std::vector<CompletedSpan> recent_;  // circular; next_ is the write slot
  std::size_t next_ = 0;
  std::vector<CompletedSpan> slowest_;  // kept sorted slowest-first
};

}  // namespace sparsedet::obs
