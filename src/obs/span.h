// Per-request span records for the batch engine.
//
// Every engine request carries one RequestSpan: a deterministic trace id
// (assigned at plan time, in input order) plus the nanosecond durations of
// the four engine phases — queue-wait, cache-lookup, solve, serialize —
// and one entry per work unit saying where its result came from
// (cache_hit | computed | coalesced). Spans surface two ways: inline as a
// "trace" object on the response line (--trace) and as one JSON line per
// request in a trace file (--trace-file). Neither is on by default, so
// the determinism contract of the plain output stream is untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace sparsedet::obs {

struct RequestSpan {
  // How a work unit's result was obtained.
  struct Unit {
    std::string source;  // "cache_hit" | "computed" | "coalesced"
    std::int64_t queue_wait_ns = 0;  // 0 for cache hits
    std::int64_t solve_ns = 0;       // 0 for cache hits
    int attempts = 1;  // evaluation attempts (> 1 after transient retries)
  };

  std::uint64_t trace_id = 0;
  JsonValue request_id;  // echoed request id (null for unparseable lines)
  std::string op;        // empty for unparseable lines
  int line = 0;          // 1-based input line
  // Resilience annotations; defaults are omitted from the JSON so traces
  // from runs without deadlines/faults are byte-identical to older ones.
  std::int64_t deadline_ms = 0;  // request deadline; 0 = none
  std::string outcome;  // "" (ok) | "deadline_exceeded" | "degraded" | ...

  std::int64_t cache_lookup_ns = 0;
  std::int64_t queue_wait_ns = 0;  // summed over computed units
  std::int64_t solve_ns = 0;       // summed over computed units
  std::int64_t serialize_ns = 0;
  std::vector<Unit> units;

  // The inline "trace" object: trace_id, the four phase durations and the
  // per-unit entries.
  JsonValue ToJson() const;
  // The trace-file record: ToJson() plus id / op / line so a span is
  // attributable without joining against the response stream.
  JsonValue ToFileJson() const;
};

}  // namespace sparsedet::obs
