#include "obs/tracez.h"

#include <algorithm>
#include <utility>

namespace sparsedet::obs {

JsonValue CompletedSpan::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("trace_id", static_cast<std::int64_t>(trace_id))
      .Set("id", id)
      .Set("op", op)
      .Set("ok", ok);
  if (!error_code.empty()) json.Set("error_code", error_code);
  json.Set("queue_wait_ns", queue_wait_ns)
      .Set("solve_ns", solve_ns)
      .Set("total_ns", total_ns);
  return json;
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  recent_.reserve(capacity_);
  slowest_.reserve(capacity_ + 1);
}

void TraceRing::Record(CompletedSpan span) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (recent_.size() < capacity_) {
    recent_.push_back(span);
  } else {
    recent_[next_] = span;
    next_ = (next_ + 1) % capacity_;
  }
  // Keep slowest_ sorted slowest-first; upper_bound places equal durations
  // after the existing ones, so ties keep the earlier span ahead.
  if (slowest_.size() == capacity_ &&
      span.total_ns <= slowest_.back().total_ns) {
    return;
  }
  const auto pos = std::upper_bound(
      slowest_.begin(), slowest_.end(), span.total_ns,
      [](std::int64_t ns, const CompletedSpan& s) { return ns > s.total_ns; });
  slowest_.insert(pos, std::move(span));
  if (slowest_.size() > capacity_) slowest_.pop_back();
}

std::vector<CompletedSpan> TraceRing::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CompletedSpan> out;
  out.reserve(recent_.size());
  // next_ is the oldest slot once the ring has wrapped; walk backwards
  // from the newest.
  const std::size_t n = recent_.size();
  if (n == 0) return out;
  const std::size_t newest =
      n < capacity_ ? n - 1 : (next_ + capacity_ - 1) % n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(recent_[(newest + n - i) % n]);
  }
  return out;
}

std::vector<CompletedSpan> TraceRing::Slowest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slowest_;
}

JsonValue TraceRing::ToJson() const {
  JsonValue recent = JsonValue::Array();
  for (const CompletedSpan& span : Recent()) recent.Append(span.ToJson());
  JsonValue slowest = JsonValue::Array();
  for (const CompletedSpan& span : Slowest()) slowest.Append(span.ToJson());
  JsonValue json = JsonValue::Object();
  json.Set("capacity", static_cast<std::int64_t>(capacity_))
      .Set("recorded", static_cast<std::int64_t>(recorded()))
      .Set("recent", std::move(recent))
      .Set("slowest", std::move(slowest));
  return json;
}

std::uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

}  // namespace sparsedet::obs
