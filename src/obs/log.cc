#include "obs/log.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/error.h"

namespace sparsedet::obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warn") {
    *level = LogLevel::kWarn;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

StructuredLog::StructuredLog() = default;

StructuredLog::~StructuredLog() {
  if (file_ != nullptr) std::fclose(file_);
}

StructuredLog& StructuredLog::Global() {
  static StructuredLog* instance = new StructuredLog();
  return *instance;
}

void StructuredLog::Configure(const LogOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::FILE* next = nullptr;
  if (!options.path.empty()) {
    next = std::fopen(options.path.c_str(), "w");
    SPARSEDET_REQUIRE(next != nullptr,
                      "cannot open --log-file " + options.path);
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = next;
  options_ = options;
  budgets_.clear();
}

void StructuredLog::SetClockForTest(std::function<std::int64_t()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

std::int64_t StructuredLog::NowMillisLocked() {
  std::int64_t now =
      clock_ ? clock_()
             : std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count();
  // A stepped-back wall clock must not make the transcript non-monotone.
  if (now < last_ts_ms_) now = last_ts_ms_;
  last_ts_ms_ = now;
  return now;
}

void StructuredLog::Write(LogLevel level, std::string_view component,
                          std::string_view event, JsonValue fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(level) < static_cast<int>(options_.min_level)) return;

  const std::int64_t ts_ms = NowMillisLocked();
  std::uint64_t resumed_after = 0;
  if (options_.max_per_key_per_sec > 0) {
    std::string key;
    key.reserve(component.size() + 1 + event.size());
    key.append(component).push_back('/');
    key.append(event);
    KeyBudget& budget = budgets_[std::move(key)];
    const std::int64_t second = ts_ms / 1000;
    if (budget.second != second) {
      budget.second = second;
      budget.emitted = 0;
    }
    if (budget.emitted >= options_.max_per_key_per_sec) {
      ++budget.suppressed;
      ++suppressed_total_;
      return;
    }
    ++budget.emitted;
    resumed_after = budget.suppressed;
    budget.suppressed = 0;
  }

  JsonValue line = JsonValue::Object();
  line.Set("ts_ms", ts_ms)
      .Set("seq", static_cast<std::int64_t>(seq_++))
      .Set("level", LogLevelName(level))
      .Set("component", std::string(component))
      .Set("event", std::string(event));
  if (resumed_after > 0) {
    line.Set("suppressed", static_cast<std::int64_t>(resumed_after));
  }
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.Fields()) line.Set(key, value);
  }
  const std::string text = line.ToString() + "\n";
  std::FILE* sink = file_ != nullptr ? file_ : stderr;
  std::fwrite(text.data(), 1, text.size(), sink);
  std::fflush(sink);
  ++written_;
}

std::uint64_t StructuredLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

std::uint64_t StructuredLog::lines_suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_total_;
}

void LogDebug(std::string_view component, std::string_view event,
              JsonValue fields) {
  StructuredLog::Global().Write(LogLevel::kDebug, component, event,
                                std::move(fields));
}

void LogInfo(std::string_view component, std::string_view event,
             JsonValue fields) {
  StructuredLog::Global().Write(LogLevel::kInfo, component, event,
                                std::move(fields));
}

void LogWarn(std::string_view component, std::string_view event,
             JsonValue fields) {
  StructuredLog::Global().Write(LogLevel::kWarn, component, event,
                                std::move(fields));
}

void LogError(std::string_view component, std::string_view event,
              JsonValue fields) {
  StructuredLog::Global().Write(LogLevel::kError, component, event,
                                std::move(fields));
}

}  // namespace sparsedet::obs
