// Dependency-free observability primitives: named counters, gauges and
// fixed-bucket latency histograms behind a thread-safe registry.
//
// Hot-path contract: Inc() / Record() are a relaxed atomic add on a
// per-thread, cache-line-padded shard — no locks, no false sharing — so
// worker threads can instrument tight loops; Snapshot() merges the shards
// on the reader's side. Metric creation/lookup takes a mutex, so callers
// obtain handles once and keep them (see EngineMetrics, Phase).
//
// A snapshot serializes three ways: JSON (the engine's machine-readable
// stats surface, round-trippable via FromJson), Prometheus text exposition
// (for scraping), and a human-readable table (`sparsedet metrics-dump`).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/table.h"

namespace sparsedet::obs {

// Number of independent per-thread slots each metric keeps. Threads hash
// onto shards; 16 covers the worker pools this engine runs with.
inline constexpr std::size_t kShards = 16;

// This thread's shard index, assigned round-robin on first use.
std::size_t ThisThreadShard();

// Label set attached to a metric, e.g. {{"phase", "ms_head"}}. Order is
// part of the metric's identity and is preserved in every exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(std::uint64_t n = 1) {
    slots_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, kShards> slots_{};
};

// Point-in-time signed value (queue depth, cache size). Set/Add are rare
// relative to counter increments, so a single atomic suffices.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Merged view of one histogram: `counts[i]` holds observations with
// value <= bounds[i]; the final extra bucket holds the overflow.
struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;   // ascending upper bounds (+Inf implied)
  std::vector<std::uint64_t> counts;  // size bounds.size() + 1
  std::uint64_t total = 0;
  std::int64_t sum = 0;

  // q in [0, 1]; linear interpolation inside the covering bucket. The
  // overflow bucket clamps to the last finite bound; an empty histogram
  // yields 0.
  double Quantile(double q) const;

  // Element-wise sum; both snapshots must share bounds. Associative and
  // commutative, which is what makes shard merging order-independent.
  static HistogramSnapshot Merge(const HistogramSnapshot& a,
                                 const HistogramSnapshot& b);

  bool operator==(const HistogramSnapshot&) const = default;
};

// Fixed-bucket histogram; Record() is two relaxed atomic adds on this
// thread's shard after a binary search over the (immutable) bounds.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(std::int64_t value);
  HistogramSnapshot Snapshot() const;
  const std::vector<std::int64_t>& bounds() const { return bounds_; }

 private:
  std::vector<std::int64_t> bounds_;
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<std::int64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

// Exponential-ish 1us .. 10s bucket bounds in nanoseconds, the default for
// every latency histogram in this codebase.
std::vector<std::int64_t> DefaultLatencyBoundsNs();

// The same shape in microseconds (1us .. 10s), for the server-side
// end-to-end histograms whose values are recorded in us.
std::vector<std::int64_t> DefaultLatencyBoundsUs();

// The profiled phases. Engine phases first, then the solver stages the
// paper's S-vs-M-S timing comparison (Section 5) attributes cost to.
enum class Phase {
  kQueueWait,    // submit -> worker pickup
  kCacheLookup,  // canonical key + LRU probe, coordinator side
  kSolve,        // one work-unit evaluation end to end
  kSerialize,    // response line -> JSON text
  kMsHead,       // M-S-approach Head-stage NEDR pmf
  kMsBody,       // M-S-approach Body-stage NEDR pmf
  kMsTail,       // M-S-approach Tail-stage NEDR pmfs
  kMsPropagate,  // Markov propagation, Eq. 12
  kSEnumeration,       // S-approach capped/exact enumeration
  kRegionDecomposition,  // Region(i) / NEDR geometry decomposition
  kMcTrials,     // Monte Carlo trial loop
};
inline constexpr std::size_t kNumPhases = 11;

// Stable short name, e.g. "ms_head"; used as the `phase` label value.
const char* PhaseName(Phase phase);

// Point-in-time copy of every registered metric, sorted by name then
// labels so every exposition is deterministic for deterministic values.
struct RegistrySnapshot {
  struct CounterValue {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    Labels labels;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    Labels labels;
    HistogramSnapshot histogram;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // {"counters": [{"name", "labels", "value"}, ...], "gauges": [...],
  //  "histograms": [{..., "le", "bucket_counts", "cumulative_counts",
  //                  "count", "sum_ns", "p50_ns", "p90_ns", "p99_ns"}, ...]}
  // `cumulative_counts[i]` is the Prometheus-style running total of
  // observations <= le[i] (last entry = +Inf = count); it is derived from
  // `bucket_counts` and ignored by FromJson, so the two expositions can
  // never disagree.
  JsonValue ToJson() const;
  // Inverse of ToJson (quantiles are recomputed from the buckets). Throws
  // InvalidArgument on malformed input.
  static RegistrySnapshot FromJson(const JsonValue& json);

  // Prometheus text exposition: one `# TYPE` line per metric name,
  // cumulative `_bucket{le=...}` counts, label values escaped.
  std::string ToPrometheus() const;

  // Human-readable rendering for `sparsedet metrics-dump`.
  Table ToTable() const;
};

// Owns every metric it hands out; handles stay valid for the registry's
// lifetime. Lookup is mutex-guarded; the returned objects are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by (name, labels).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<std::int64_t> bounds =
                           DefaultLatencyBoundsNs());

  // The pre-registered per-phase latency histogram
  // sparsedet_phase_duration_ns{phase=...}; lock-free array access, safe
  // on the hot path.
  Histogram& phase(Phase p) {
    return *phases_[static_cast<std::size_t>(p)];
  }

  RegistrySnapshot Snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };
  template <typename T>
  static T* FindOrNull(std::vector<Named<T>>& metrics,
                       const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
  std::array<Histogram*, kNumPhases> phases_{};
};

}  // namespace sparsedet::obs
