#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace sparsedet::obs {

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  SPARSEDET_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must be ascending");
  const std::size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) shard.counts[i].store(0);
  }
}

void Histogram::Record(std::int64_t value) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[ThisThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < snapshot.counts.size(); ++i) {
      snapshot.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snapshot.counts) snapshot.total += c;
  return snapshot;
}

double HistogramSnapshot::Quantile(double q) const {
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = cumulative;
    cumulative += static_cast<double>(counts[i]);
    if (cumulative >= rank) {
      const double lo =
          i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      // The overflow bucket has no finite upper edge; clamp to the last
      // bound rather than invent one.
      const double hi = i < bounds.size()
                            ? static_cast<double>(bounds[i])
                            : static_cast<double>(bounds.back());
      const double fraction =
          (rank - before) / static_cast<double>(counts[i]);
      return lo + fraction * (hi - lo);
    }
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

HistogramSnapshot HistogramSnapshot::Merge(const HistogramSnapshot& a,
                                           const HistogramSnapshot& b) {
  SPARSEDET_REQUIRE(a.bounds == b.bounds,
                    "cannot merge histograms with different bounds");
  HistogramSnapshot merged = a;
  for (std::size_t i = 0; i < merged.counts.size(); ++i) {
    merged.counts[i] += b.counts[i];
  }
  merged.total += b.total;
  merged.sum += b.sum;
  return merged;
}

std::vector<std::int64_t> DefaultLatencyBoundsNs() {
  return {1'000,          5'000,         10'000,        50'000,
          100'000,        500'000,       1'000'000,     5'000'000,
          10'000'000,     50'000'000,    100'000'000,   500'000'000,
          1'000'000'000,  5'000'000'000, 10'000'000'000};
}

std::vector<std::int64_t> DefaultLatencyBoundsUs() {
  std::vector<std::int64_t> bounds = DefaultLatencyBoundsNs();
  for (std::int64_t& b : bounds) b /= 1'000;
  return bounds;
}

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kCacheLookup:
      return "cache_lookup";
    case Phase::kSolve:
      return "solve";
    case Phase::kSerialize:
      return "serialize";
    case Phase::kMsHead:
      return "ms_head";
    case Phase::kMsBody:
      return "ms_body";
    case Phase::kMsTail:
      return "ms_tail";
    case Phase::kMsPropagate:
      return "ms_propagate";
    case Phase::kSEnumeration:
      return "s_enumeration";
    case Phase::kRegionDecomposition:
      return "region_decomposition";
    case Phase::kMcTrials:
      return "mc_trials";
  }
  return "?";
}

MetricsRegistry::MetricsRegistry() {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const Phase phase = static_cast<Phase>(i);
    phases_[i] = &histogram("sparsedet_phase_duration_ns",
                            {{"phase", PhaseName(phase)}});
  }
}

template <typename T>
T* MetricsRegistry::FindOrNull(std::vector<Named<T>>& metrics,
                               const std::string& name,
                               const Labels& labels) {
  for (Named<T>& named : metrics) {
    if (named.name == name && named.labels == labels) {
      return named.metric.get();
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Counter* existing = FindOrNull(counters_, name, labels)) {
    return *existing;
  }
  counters_.push_back({name, labels, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Gauge* existing = FindOrNull(gauges_, name, labels)) {
    return *existing;
  }
  gauges_.push_back({name, labels, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Histogram* existing = FindOrNull(histograms_, name, labels)) {
    return *existing;
  }
  histograms_.push_back(
      {name, labels, std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().metric;
}

namespace {

// Sort key: name, then labels lexicographically.
template <typename T>
bool IdentityLess(const T& a, const T& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

}  // namespace

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Named<Counter>& named : counters_) {
      snapshot.counters.push_back(
          {named.name, named.labels, named.metric->Value()});
    }
    for (const Named<Gauge>& named : gauges_) {
      snapshot.gauges.push_back(
          {named.name, named.labels, named.metric->Value()});
    }
    for (const Named<Histogram>& named : histograms_) {
      snapshot.histograms.push_back(
          {named.name, named.labels, named.metric->Snapshot()});
    }
  }
  std::sort(snapshot.counters.begin(), snapshot.counters.end(),
            IdentityLess<RegistrySnapshot::CounterValue>);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(),
            IdentityLess<RegistrySnapshot::GaugeValue>);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(),
            IdentityLess<RegistrySnapshot::HistogramValue>);
  return snapshot;
}

// ---- serialization --------------------------------------------------------

namespace {

JsonValue LabelsToJson(const Labels& labels) {
  JsonValue json = JsonValue::Object();
  for (const auto& [key, value] : labels) json.Set(key, value);
  return json;
}

Labels LabelsFromJson(const JsonValue& json) {
  SPARSEDET_REQUIRE(json.is_object(), "metric labels must be an object");
  Labels labels;
  for (const auto& [key, value] : json.Fields()) {
    SPARSEDET_REQUIRE(value.is_string(), "label values must be strings");
    labels.emplace_back(key, value.AsString());
  }
  return labels;
}

const JsonValue& Field(const JsonValue& json, const std::string& key) {
  SPARSEDET_REQUIRE(json.is_object(), "expected a metric object");
  const JsonValue* v = json.Find(key);
  SPARSEDET_REQUIRE(v != nullptr, "metric object missing \"" + key + "\"");
  return *v;
}

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ',';
    os << labels[i].first << "=\"" << EscapeLabelValue(labels[i].second)
       << '"';
  }
  os << '}';
  return os.str();
}

// Labels plus one extra entry (the histogram `le` bucket label).
std::string RenderLabelsWith(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

void EmitTypeLineOnce(std::ostream& os, std::string& last_typed,
                      const std::string& name, const char* type) {
  if (name == last_typed) return;
  os << "# TYPE " << name << ' ' << type << '\n';
  last_typed = name;
}

}  // namespace

JsonValue RegistrySnapshot::ToJson() const {
  JsonValue counters_json = JsonValue::Array();
  for (const CounterValue& c : counters) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", c.name)
        .Set("labels", LabelsToJson(c.labels))
        .Set("value", static_cast<std::int64_t>(c.value));
    counters_json.Append(std::move(entry));
  }
  JsonValue gauges_json = JsonValue::Array();
  for (const GaugeValue& g : gauges) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", g.name)
        .Set("labels", LabelsToJson(g.labels))
        .Set("value", g.value);
    gauges_json.Append(std::move(entry));
  }
  JsonValue histograms_json = JsonValue::Array();
  for (const HistogramValue& h : histograms) {
    JsonValue le = JsonValue::Array();
    for (std::int64_t bound : h.histogram.bounds) le.Append(bound);
    JsonValue bucket_counts = JsonValue::Array();
    JsonValue cumulative_counts = JsonValue::Array();
    std::uint64_t running = 0;
    for (std::uint64_t c : h.histogram.counts) {
      bucket_counts.Append(static_cast<std::int64_t>(c));
      running += c;
      cumulative_counts.Append(static_cast<std::int64_t>(running));
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("name", h.name)
        .Set("labels", LabelsToJson(h.labels))
        .Set("count", static_cast<std::int64_t>(h.histogram.total))
        .Set("sum_ns", h.histogram.sum)
        .Set("p50_ns", h.histogram.Quantile(0.5))
        .Set("p90_ns", h.histogram.Quantile(0.9))
        .Set("p99_ns", h.histogram.Quantile(0.99))
        .Set("le", std::move(le))
        .Set("bucket_counts", std::move(bucket_counts))
        .Set("cumulative_counts", std::move(cumulative_counts));
    histograms_json.Append(std::move(entry));
  }
  JsonValue json = JsonValue::Object();
  json.Set("counters", std::move(counters_json))
      .Set("gauges", std::move(gauges_json))
      .Set("histograms", std::move(histograms_json));
  return json;
}

RegistrySnapshot RegistrySnapshot::FromJson(const JsonValue& json) {
  SPARSEDET_REQUIRE(json.is_object(), "metrics snapshot must be an object");
  RegistrySnapshot snapshot;
  for (const JsonValue& entry : Field(json, "counters").Items()) {
    snapshot.counters.push_back(
        {Field(entry, "name").AsString(),
         LabelsFromJson(Field(entry, "labels")),
         static_cast<std::uint64_t>(Field(entry, "value").AsDouble())});
  }
  for (const JsonValue& entry : Field(json, "gauges").Items()) {
    snapshot.gauges.push_back(
        {Field(entry, "name").AsString(),
         LabelsFromJson(Field(entry, "labels")),
         static_cast<std::int64_t>(Field(entry, "value").AsDouble())});
  }
  for (const JsonValue& entry : Field(json, "histograms").Items()) {
    HistogramValue h;
    h.name = Field(entry, "name").AsString();
    h.labels = LabelsFromJson(Field(entry, "labels"));
    for (const JsonValue& bound : Field(entry, "le").Items()) {
      h.histogram.bounds.push_back(
          static_cast<std::int64_t>(bound.AsDouble()));
    }
    for (const JsonValue& count : Field(entry, "bucket_counts").Items()) {
      h.histogram.counts.push_back(
          static_cast<std::uint64_t>(count.AsDouble()));
    }
    SPARSEDET_REQUIRE(
        h.histogram.counts.size() == h.histogram.bounds.size() + 1,
        "histogram bucket_counts must have one more entry than le");
    h.histogram.total =
        static_cast<std::uint64_t>(Field(entry, "count").AsDouble());
    h.histogram.sum =
        static_cast<std::int64_t>(Field(entry, "sum_ns").AsDouble());
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

std::string RegistrySnapshot::ToPrometheus() const {
  std::ostringstream os;
  std::string last_typed;
  for (const CounterValue& c : counters) {
    EmitTypeLineOnce(os, last_typed, c.name, "counter");
    os << c.name << RenderLabels(c.labels) << ' ' << c.value << '\n';
  }
  for (const GaugeValue& g : gauges) {
    EmitTypeLineOnce(os, last_typed, g.name, "gauge");
    os << g.name << RenderLabels(g.labels) << ' ' << g.value << '\n';
  }
  for (const HistogramValue& h : histograms) {
    EmitTypeLineOnce(os, last_typed, h.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.histogram.counts.size(); ++i) {
      cumulative += h.histogram.counts[i];
      // Bounds are integral; render them without scientific notation so
      // scrapers see le="10000000000", not le="1e+10".
      const std::string le = i < h.histogram.bounds.size()
                                 ? std::to_string(h.histogram.bounds[i])
                                 : "+Inf";
      os << h.name << "_bucket" << RenderLabelsWith(h.labels, "le", le)
         << ' ' << cumulative << '\n';
    }
    os << h.name << "_sum" << RenderLabels(h.labels) << ' '
       << h.histogram.sum << '\n';
    os << h.name << "_count" << RenderLabels(h.labels) << ' '
       << h.histogram.total << '\n';
  }
  return os.str();
}

Table RegistrySnapshot::ToTable() const {
  Table table({"metric", "labels", "type", "value/count", "sum_ms",
               "p50_us", "p90_us", "p99_us"});
  auto labels_cell = [](const Labels& labels) {
    std::ostringstream os;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) os << ' ';
      os << labels[i].first << '=' << labels[i].second;
    }
    return os.str();
  };
  for (const CounterValue& c : counters) {
    table.BeginRow();
    table.AddCell(c.name);
    table.AddCell(labels_cell(c.labels));
    table.AddCell("counter");
    table.AddInt(static_cast<long long>(c.value));
    table.AddCell("-");
    table.AddCell("-");
    table.AddCell("-");
    table.AddCell("-");
  }
  for (const GaugeValue& g : gauges) {
    table.BeginRow();
    table.AddCell(g.name);
    table.AddCell(labels_cell(g.labels));
    table.AddCell("gauge");
    table.AddInt(static_cast<long long>(g.value));
    table.AddCell("-");
    table.AddCell("-");
    table.AddCell("-");
    table.AddCell("-");
  }
  for (const HistogramValue& h : histograms) {
    table.BeginRow();
    table.AddCell(h.name);
    table.AddCell(labels_cell(h.labels));
    table.AddCell("histogram");
    table.AddInt(static_cast<long long>(h.histogram.total));
    table.AddNumber(static_cast<double>(h.histogram.sum) * 1e-6, 3);
    table.AddNumber(h.histogram.Quantile(0.5) * 1e-3, 1);
    table.AddNumber(h.histogram.Quantile(0.9) * 1e-3, 1);
    table.AddNumber(h.histogram.Quantile(0.99) * 1e-3, 1);
  }
  return table;
}

}  // namespace sparsedet::obs
