#include "obs/slo.h"

#include <cmath>

#include "common/check.h"

namespace sparsedet::obs {

SloTracker::SloTracker(const SloOptions& options, MetricsRegistry* registry)
    : options_(options) {
  SPARSEDET_REQUIRE(options_.window_s > 0, "--slo-window-s must be positive");
  SPARSEDET_REQUIRE(options_.availability >= 0.0 &&
                        options_.availability < 1.0,
                    "--slo-availability must be in [0, 1)");
  SPARSEDET_REQUIRE(options_.p99_ms >= 0, "--slo-p99-ms must be >= 0");
  buckets_.resize(static_cast<std::size_t>(options_.window_s));
  if (registry == nullptr) return;
  if (options_.availability > 0.0) {
    availability_burn_gauge_ =
        &registry->gauge("slo_burn_rate", {{"slo", "availability"}});
    availability_budget_gauge_ = &registry->gauge(
        "slo_error_budget_remaining_ppm", {{"slo", "availability"}});
  }
  if (options_.p99_ms > 0) {
    latency_burn_gauge_ =
        &registry->gauge("slo_burn_rate", {{"slo", "latency_p99"}});
    latency_budget_gauge_ = &registry->gauge(
        "slo_error_budget_remaining_ppm", {{"slo", "latency_p99"}});
  }
  window_requests_gauge_ = &registry->gauge("slo_window_requests");
  window_errors_gauge_ = &registry->gauge("slo_window_errors");
  window_slow_gauge_ = &registry->gauge("slo_window_slow");
}

void SloTracker::Record(bool ok, std::int64_t latency_ns,
                        std::int64_t now_ns) {
  const std::int64_t second = now_ns / 1'000'000'000;
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket =
      buckets_[static_cast<std::size_t>(second % options_.window_s)];
  if (bucket.second != second) {
    bucket = Bucket{};
    bucket.second = second;
  }
  ++bucket.requests;
  if (!ok) ++bucket.errors;
  if (options_.p99_ms > 0 && latency_ns > options_.p99_ms * 1'000'000) {
    ++bucket.slow;
  }
}

SloTracker::Window SloTracker::SnapshotLocked(std::int64_t now_ns) const {
  const std::int64_t second = now_ns / 1'000'000'000;
  Window window;
  for (const Bucket& bucket : buckets_) {
    // A live bucket covers one of the last window_s seconds; anything
    // older is a stale slot awaiting reuse.
    if (bucket.second < 0 || bucket.second > second ||
        bucket.second <= second - options_.window_s) {
      continue;
    }
    window.requests += bucket.requests;
    window.errors += bucket.errors;
    window.slow += bucket.slow;
  }
  if (window.requests > 0) {
    const double total = static_cast<double>(window.requests);
    if (options_.availability > 0.0) {
      window.availability_burn =
          (static_cast<double>(window.errors) / total) /
          (1.0 - options_.availability);
    }
    if (options_.p99_ms > 0) {
      window.latency_burn =
          (static_cast<double>(window.slow) / total) / 0.01;
    }
  }
  return window;
}

SloTracker::Window SloTracker::Snapshot(std::int64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return SnapshotLocked(now_ns);
}

void SloTracker::Publish(std::int64_t now_ns) {
  if (window_requests_gauge_ == nullptr) return;
  const Window window = Snapshot(now_ns);
  auto milli = [](double x) {
    return static_cast<std::int64_t>(std::llround(x * 1'000.0));
  };
  auto budget_ppm = [](double burn) {
    return static_cast<std::int64_t>(std::llround((1.0 - burn) * 1e6));
  };
  if (availability_burn_gauge_ != nullptr) {
    availability_burn_gauge_->Set(milli(window.availability_burn));
    availability_budget_gauge_->Set(budget_ppm(window.availability_burn));
  }
  if (latency_burn_gauge_ != nullptr) {
    latency_burn_gauge_->Set(milli(window.latency_burn));
    latency_budget_gauge_->Set(budget_ppm(window.latency_burn));
  }
  window_requests_gauge_->Set(static_cast<std::int64_t>(window.requests));
  window_errors_gauge_->Set(static_cast<std::int64_t>(window.errors));
  window_slow_gauge_->Set(static_cast<std::int64_t>(window.slow));
}

JsonValue SloTracker::StatusJson(std::int64_t now_ns) const {
  const Window window = Snapshot(now_ns);
  JsonValue json = JsonValue::Object();
  json.Set("availability", options_.availability)
      .Set("p99_ms", options_.p99_ms)
      .Set("window_s", options_.window_s)
      .Set("requests", static_cast<std::int64_t>(window.requests))
      .Set("errors", static_cast<std::int64_t>(window.errors))
      .Set("slow", static_cast<std::int64_t>(window.slow))
      .Set("availability_burn", window.availability_burn)
      .Set("latency_burn", window.latency_burn);
  return json;
}

}  // namespace sparsedet::obs
