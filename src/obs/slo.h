// Rolling-window SLO tracking: availability and tail-latency objectives
// with Prometheus-style error-budget and burn-rate gauges.
//
// The tracker keeps one bucket per wall-clock second over a configurable
// window (default 5 minutes) and folds every completed request into the
// bucket for its completion second. From the window it derives, per
// objective:
//
//   burn rate       = (bad fraction observed) / (bad fraction allowed)
//                     — 1.0 means the error budget is being consumed at
//                     exactly the sustainable pace; 10.0 means the whole
//                     budget would be gone in window/10;
//   budget remaining = 1 - burn, i.e. the fraction of the window's budget
//                     still unspent (negative when the objective is
//                     already violated over the window).
//
// For `--slo-availability A`, the allowed bad fraction is (1 - A) and a
// request is bad when it completed with an error. For `--slo-p99-ms L`,
// the allowed bad fraction is 0.01 (it is a p99 objective) and a request
// is bad when it took longer than L milliseconds.
//
// Because the registry's Gauge is integral, burn rates are published in
// milli-units (burn x1000) and budgets in ppm:
//
//   slo_burn_rate{slo="availability"}               round(burn * 1000)
//   slo_burn_rate{slo="latency_p99"}                round(burn * 1000)
//   slo_error_budget_remaining_ppm{slo=...}         round((1-burn) * 1e6)
//   slo_window_requests / slo_window_errors / slo_window_slow
//
// Record() is mutex-guarded (one cheap fold per completed request, far off
// the solver hot path); Publish() recomputes the window sums and stores
// the gauges, and is called from the engine's stats/metrics snapshot path
// so /metrics and {"cmd":"stats"} always expose fresh values.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace sparsedet::obs {

struct SloOptions {
  // Availability objective in (0, 1), e.g. 0.999; 0 disables the
  // availability SLO.
  double availability = 0.0;
  // p99 latency objective in milliseconds; 0 disables the latency SLO.
  std::int64_t p99_ms = 0;
  // Rolling window length in seconds.
  std::int64_t window_s = 300;

  bool enabled() const { return availability > 0.0 || p99_ms > 0; }
};

class SloTracker {
 public:
  // `registry` may be null (tests that only exercise the math); when set,
  // the gauges above are registered immediately so they appear in every
  // snapshot from the first scrape on.
  SloTracker(const SloOptions& options, MetricsRegistry* registry);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // Folds one completed request into the bucket for `now_ns / 1e9`.
  void Record(bool ok, std::int64_t latency_ns, std::int64_t now_ns);

  // Window sums + derived rates at `now_ns`. Burn rates are 0 over an
  // empty window (no traffic consumes no budget).
  struct Window {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t slow = 0;
    double availability_burn = 0.0;
    double latency_burn = 0.0;
  };
  Window Snapshot(std::int64_t now_ns) const;

  // Recomputes the window and stores every gauge. No-op without a
  // registry.
  void Publish(std::int64_t now_ns);

  // {"availability":..,"p99_ms":..,"window_s":..,"requests":..,
  //  "errors":..,"slow":..,"availability_burn":..,"latency_burn":..}
  JsonValue StatusJson(std::int64_t now_ns) const;

  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    std::int64_t second = -1;  // wall second this bucket currently covers
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t slow = 0;
  };
  Window SnapshotLocked(std::int64_t now_ns) const;

  const SloOptions options_;
  mutable std::mutex mutex_;
  std::vector<Bucket> buckets_;  // ring keyed by second % window_s

  // Registered gauges; null without a registry.
  Gauge* availability_burn_gauge_ = nullptr;
  Gauge* latency_burn_gauge_ = nullptr;
  Gauge* availability_budget_gauge_ = nullptr;
  Gauge* latency_budget_gauge_ = nullptr;
  Gauge* window_requests_gauge_ = nullptr;
  Gauge* window_errors_gauge_ = nullptr;
  Gauge* window_slow_gauge_ = nullptr;
};

}  // namespace sparsedet::obs
