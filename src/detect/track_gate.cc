#include "detect/track_gate.h"

#include <algorithm>

#include "common/check.h"

namespace sparsedet {

bool PairFeasible(const SimReport& a, const SimReport& b,
                  const TrackGateParams& gate) {
  SPARSEDET_DCHECK(gate.speed > 0.0 && gate.period_length > 0.0 &&
                       gate.sensing_range > 0.0,
                   "gate parameters must be positive");
  const int dp = std::abs(a.period - b.period);
  const double reach = gate.speed * gate.period_length * (dp + 1) +
                       2.0 * gate.sensing_range + gate.slack;
  return a.node_pos.DistanceTo(b.node_pos) <= reach;
}

int LongestTrackConsistentChain(const std::vector<SimReport>& reports,
                                const TrackGateParams& gate) {
  if (reports.empty()) return 0;
  std::vector<SimReport> sorted = reports;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SimReport& a, const SimReport& b) {
                     return a.period < b.period;
                   });

  // chain[i]: longest feasible chain ending at report i.
  std::vector<int> chain(sorted.size(), 1);
  int best = 1;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (chain[j] + 1 > chain[i] && PairFeasible(sorted[j], sorted[i], gate)) {
        chain[i] = chain[j] + 1;
      }
    }
    best = std::max(best, chain[i]);
  }
  return best;
}

}  // namespace sparsedet
