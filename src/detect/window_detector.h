// Online base-station detector: sliding M-period window, k-report rule,
// optional track gating and distinct-node requirement.
//
// This is the deployed-system counterpart of the analytical models: reports
// stream in period by period; after each period the detector evaluates the
// current window. The count-only configuration is exactly the abstraction
// the paper analyzes; the gated configuration is what the abstraction
// stands for in real systems.
#pragma once

#include <deque>
#include <vector>

#include "detect/track_gate.h"
#include "sim/trial.h"

namespace sparsedet {

class WindowDetector {
 public:
  struct Options {
    int k = 5;           // reports needed within the window
    int window = 20;     // M sensing periods
    bool use_track_gate = false;
    TrackGateParams gate;  // used only when use_track_gate
    int h = 1;           // distinct reporting nodes needed (1 = paper base)
  };

  explicit WindowDetector(const Options& options);

  // Feeds the reports of `period` (consecutive, non-decreasing calls) and
  // returns whether the detection rule holds for the window ending at this
  // period. `period` must not decrease across calls.
  bool ProcessPeriod(int period, const std::vector<SimReport>& reports);

  // True once any processed window satisfied the rule.
  bool triggered() const { return triggered_; }

  // Number of windows (ProcessPeriod calls) that satisfied the rule so far.
  int trigger_count() const { return trigger_count_; }

  void Reset();

 private:
  bool EvaluateWindow() const;

  Options options_;
  std::deque<SimReport> window_;  // reports of the last `window` periods
  int last_period_ = -1;
  bool triggered_ = false;
  int trigger_count_ = 0;
};

// Convenience: run a full TrialResult through a detector and report whether
// it ever triggered.
bool DetectTrial(const TrialResult& trial, const WindowDetector::Options& options);

}  // namespace sparsedet
