#include "detect/track_count.h"

#include <algorithm>

#include "common/check.h"

namespace sparsedet {
namespace {

// Longest chain ending index bookkeeping so the chain itself can be
// removed: returns the indices (into `reports`) of one longest chain.
std::vector<std::size_t> LongestChainIndices(
    const std::vector<SimReport>& reports, const TrackGateParams& gate) {
  std::vector<std::size_t> order(reports.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return reports[a].period < reports[b].period;
                   });

  std::vector<int> best(reports.size(), 1);
  std::vector<int> parent(reports.size(), -1);
  std::size_t best_end = 0;
  int best_len = reports.empty() ? 0 : 1;
  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    const std::size_t i = order[oi];
    for (std::size_t oj = 0; oj < oi; ++oj) {
      const std::size_t j = order[oj];
      if (best[j] + 1 > best[i] &&
          PairFeasible(reports[j], reports[i], gate)) {
        best[i] = best[j] + 1;
        parent[i] = static_cast<int>(j);
      }
    }
    if (best[i] > best_len) {
      best_len = best[i];
      best_end = i;
    }
  }

  std::vector<std::size_t> chain;
  if (reports.empty()) return chain;
  for (int v = static_cast<int>(best_end); v >= 0; v = parent[v]) {
    chain.push_back(static_cast<std::size_t>(v));
  }
  return chain;
}

}  // namespace

int CountDisjointTracks(std::vector<SimReport> reports,
                        const TrackGateParams& gate, int k) {
  SPARSEDET_REQUIRE(k >= 1, "k must be >= 1");
  int tracks = 0;
  while (static_cast<int>(reports.size()) >= k) {
    const std::vector<std::size_t> chain = LongestChainIndices(reports, gate);
    if (static_cast<int>(chain.size()) < k) break;
    ++tracks;
    // Remove the chain's reports (indices are unique; erase descending).
    std::vector<std::size_t> sorted(chain);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    for (std::size_t idx : sorted) {
      reports.erase(reports.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  return tracks;
}

}  // namespace sparsedet
