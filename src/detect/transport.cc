#include "detect/transport.h"

#include <atomic>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel.h"
#include "net/routing.h"
#include "net/topology.h"

namespace sparsedet {

std::vector<TransportedReport> TransportReports(const TrialResult& trial,
                                                const SystemParams& params,
                                                const TransportOptions& options,
                                                Rng& rng) {
  params.Validate();
  SPARSEDET_REQUIRE(options.per_hop_latency >= 0.0,
                    "per-hop latency must be >= 0");
  SPARSEDET_REQUIRE(options.loss_per_hop >= 0.0 && options.loss_per_hop < 1.0,
                    "per-hop loss must be in [0, 1)");

  // Topology of this trial's deployment + the base station as last node.
  std::vector<Vec2> positions = trial.node_positions;
  positions.push_back(options.base_position);
  const Topology topology(std::move(positions), params.comm_range);
  const int base = topology.num_nodes() - 1;

  // Route cache: hop count per reporting node (-1 = unreachable).
  std::unordered_map<int, int> hops_to_base;
  auto hops_for = [&](int node) {
    const auto it = hops_to_base.find(node);
    if (it != hops_to_base.end()) return it->second;
    const RouteResult route = options.use_greedy
                                  ? GreedyForward(topology, node, base)
                                  : ShortestPath(topology, node, base);
    const int hops = route.delivered ? route.hops : -1;
    hops_to_base.emplace(node, hops);
    return hops;
  };

  std::vector<TransportedReport> out;
  out.reserve(trial.reports.size());
  for (const SimReport& report : trial.reports) {
    TransportedReport transported;
    transported.report = report;
    const int hops = hops_for(report.node);
    if (hops >= 0) {
      bool lost = false;
      for (int h = 0; h < hops && !lost; ++h) {
        lost = rng.Bernoulli(options.loss_per_hop);
      }
      if (!lost) {
        transported.delivered = true;
        transported.hops = hops;
        transported.arrival_period =
            report.period +
            static_cast<int>(std::floor(hops * options.per_hop_latency /
                                        params.period_length));
      }
    }
    out.push_back(transported);
  }
  return out;
}

ProportionEstimate EstimateDetectionWithTransport(
    const TrialConfig& config, const TransportOptions& transport,
    const MonteCarloOptions& options) {
  SPARSEDET_REQUIRE(options.trials >= 1, "need at least one trial");
  config.params.Validate();

  const int k = config.params.threshold_reports;
  const int window = config.params.window_periods;
  const Rng base(options.seed);
  std::atomic<std::int64_t> successes{0};
  ParallelFor(
      static_cast<std::size_t>(options.trials),
      [&](std::size_t i) {
        Rng rng = base.Substream(i);
        const TrialResult trial = RunTrial(config, rng);
        const std::vector<TransportedReport> transported =
            TransportReports(trial, config.params, transport, rng);
        int arrived_in_window = 0;
        for (const TransportedReport& t : transported) {
          if (t.delivered && t.arrival_period < window) ++arrived_in_window;
        }
        if (arrived_in_window >= k) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      },
      options.threads);
  return WilsonInterval(successes.load(), options.trials, options.z);
}

}  // namespace sparsedet
