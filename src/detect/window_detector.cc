#include "detect/window_detector.h"

#include <unordered_set>

#include "common/check.h"

namespace sparsedet {

WindowDetector::WindowDetector(const Options& options) : options_(options) {
  SPARSEDET_REQUIRE(options.k >= 1, "k must be >= 1");
  SPARSEDET_REQUIRE(options.window >= 1, "window must be >= 1");
  SPARSEDET_REQUIRE(options.h >= 1, "h must be >= 1");
}

void WindowDetector::Reset() {
  window_.clear();
  last_period_ = -1;
  triggered_ = false;
  trigger_count_ = 0;
}

bool WindowDetector::ProcessPeriod(int period,
                                   const std::vector<SimReport>& reports) {
  SPARSEDET_REQUIRE(period >= 0, "period must be >= 0");
  SPARSEDET_REQUIRE(period >= last_period_,
                    "periods must be fed in non-decreasing order");
  last_period_ = period;

  for (const SimReport& r : reports) {
    SPARSEDET_REQUIRE(r.period == period,
                      "report fed into the wrong period");
    window_.push_back(r);
  }
  // Evict reports older than the window.
  const int oldest_allowed = period - options_.window + 1;
  while (!window_.empty() && window_.front().period < oldest_allowed) {
    window_.pop_front();
  }

  const bool hit = EvaluateWindow();
  if (hit) {
    triggered_ = true;
    ++trigger_count_;
  }
  return hit;
}

bool WindowDetector::EvaluateWindow() const {
  if (static_cast<int>(window_.size()) < options_.k) return false;

  if (options_.h > 1) {
    std::unordered_set<int> nodes;
    for (const SimReport& r : window_) nodes.insert(r.node);
    if (static_cast<int>(nodes.size()) < options_.h) return false;
  }

  if (!options_.use_track_gate) return true;
  const std::vector<SimReport> reports(window_.begin(), window_.end());
  return LongestTrackConsistentChain(reports, options_.gate) >= options_.k;
}

bool DetectTrial(const TrialResult& trial,
                 const WindowDetector::Options& options) {
  WindowDetector detector(options);
  // Group trial reports by period and feed them in order; the trial's
  // report list is already period-sorted.
  int periods = static_cast<int>(trial.true_reports_per_period.size());
  if (periods == 0) periods = trial.reports.empty()
                                  ? 1
                                  : trial.reports.back().period + 1;
  std::size_t next = 0;
  for (int period = 0; period < periods; ++period) {
    std::vector<SimReport> batch;
    while (next < trial.reports.size() &&
           trial.reports[next].period == period) {
      batch.push_back(trial.reports[next]);
      ++next;
    }
    if (detector.ProcessPeriod(period, batch)) return true;
  }
  return detector.triggered();
}

}  // namespace sparsedet
