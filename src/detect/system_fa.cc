#include "detect/system_fa.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "detect/track_gate.h"
#include "sim/trial.h"

namespace sparsedet {

SystemFaEstimate EstimateSystemFaProbability(const SystemParams& params,
                                             double pf,
                                             const SystemFaOptions& options) {
  params.Validate();
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  SPARSEDET_REQUIRE(options.trials >= 1, "need at least one trial");

  TrialConfig config;
  config.params = params;
  config.false_alarm_prob = pf;
  const TrackGateParams gate = TrackGateParams::FromSystem(params);
  const int k = params.threshold_reports;

  const Rng base(options.seed);
  std::atomic<std::int64_t> count_only{0};
  std::atomic<std::int64_t> gated{0};
  ParallelFor(
      static_cast<std::size_t>(options.trials),
      [&](std::size_t i) {
        Rng rng = base.Substream(i);
        const TrialResult trial = RunNoTargetTrial(config, rng);
        if (static_cast<int>(trial.reports.size()) >= k) {
          count_only.fetch_add(1, std::memory_order_relaxed);
          if (LongestTrackConsistentChain(trial.reports, gate) >= k) {
            gated.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      options.threads);

  return {.count_only =
              WilsonInterval(count_only.load(), options.trials, options.z),
          .gated = WilsonInterval(gated.load(), options.trials, options.z)};
}

int MinimumGatedThreshold(const SystemParams& params, double pf,
                          double max_fa_prob, const SystemFaOptions& options) {
  params.Validate();
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  SPARSEDET_REQUIRE(max_fa_prob >= 0.0 && max_fa_prob <= 1.0,
                    "max_fa_prob must be in [0, 1]");
  SPARSEDET_REQUIRE(options.trials >= 1, "need at least one trial");

  TrialConfig config;
  config.params = params;
  config.false_alarm_prob = pf;
  const TrackGateParams gate = TrackGateParams::FromSystem(params);
  const int max_k = params.num_nodes * params.window_periods;

  // One shared window set: per trial, record the longest feasible chain;
  // P[FA at threshold k] is then the fraction of trials with chain >= k.
  std::vector<int> chain_lengths(static_cast<std::size_t>(options.trials), 0);
  const Rng base(options.seed);
  ParallelFor(
      static_cast<std::size_t>(options.trials),
      [&](std::size_t i) {
        Rng rng = base.Substream(i);
        const TrialResult trial = RunNoTargetTrial(config, rng);
        chain_lengths[i] = LongestTrackConsistentChain(trial.reports, gate);
      },
      options.threads);

  // Histogram -> survival counts.
  std::vector<std::int64_t> at_least(static_cast<std::size_t>(max_k) + 2, 0);
  for (int len : chain_lengths) {
    const int capped = std::min(len, max_k);
    ++at_least[capped];
  }
  for (int k = max_k; k >= 1; --k) at_least[k] += at_least[k + 1];

  for (int k = 1; k <= max_k; ++k) {
    const double p = static_cast<double>(at_least[k]) /
                     static_cast<double>(options.trials);
    if (p <= max_fa_prob) return k;
  }
  return max_k + 1;
}

}  // namespace sparsedet
