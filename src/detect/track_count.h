// Counting distinct target tracks in a report set — the multi-target
// question the paper defers ("we plan to deal with multiple targets that
// might be near each other and/or crossing").
//
// Greedy peeling: repeatedly extract the longest track-consistent chain;
// every chain of length >= k counts as one declared track and its reports
// are removed before the next extraction. Greedy peeling is the standard
// practical heuristic (optimal partition into chains is NP-hard); two
// well-separated targets produce two disjoint chains, while near/crossing
// targets merge into one — which is exactly the failure mode the paper
// flags (experiment E19 measures where the transition happens).
#pragma once

#include <vector>

#include "detect/track_gate.h"
#include "sim/trial.h"

namespace sparsedet {

// Number of disjoint track-consistent chains of length >= k that greedy
// peeling finds in `reports`. Requires k >= 1.
int CountDisjointTracks(std::vector<SimReport> reports,
                        const TrackGateParams& gate, int k);

}  // namespace sparsedet
