#include "detect/kalman.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sparsedet {

KalmanTracker::KalmanTracker(const Options& options) : options_(options) {
  SPARSEDET_REQUIRE(options.measurement_std > 0.0,
                    "measurement std must be positive");
  SPARSEDET_REQUIRE(options.process_noise >= 0.0,
                    "process noise must be >= 0");
}

void KalmanTracker::Initialize(Vec2 position, Vec2 velocity,
                               double position_std, double velocity_std) {
  SPARSEDET_REQUIRE(position_std > 0.0 && velocity_std > 0.0,
                    "prior standard deviations must be positive");
  x_ = {position.x, velocity.x, position_std * position_std, 0.0,
        velocity_std * velocity_std};
  y_ = {position.y, velocity.y, position_std * position_std, 0.0,
        velocity_std * velocity_std};
  initialized_ = true;
}

void KalmanTracker::StepAxis(AxisState& axis, double dt, double measurement) {
  // Predict: x' = F x with F = [[1, dt], [0, 1]]; P' = F P F^T + Q with
  // the white-noise-acceleration Q.
  const double q = options_.process_noise;
  const double pos_pred = axis.pos + dt * axis.vel;
  const double p00 = axis.p00 + 2.0 * dt * axis.p01 + dt * dt * axis.p11 +
                     q * dt * dt * dt / 3.0;
  const double p01 = axis.p01 + dt * axis.p11 + q * dt * dt / 2.0;
  const double p11 = axis.p11 + q * dt;

  // Update with measurement z of the position: H = [1 0].
  const double r = options_.measurement_std * options_.measurement_std;
  const double s = p00 + r;
  const double k_pos = p00 / s;
  const double k_vel = p01 / s;
  const double innovation = measurement - pos_pred;

  axis.pos = pos_pred + k_pos * innovation;
  axis.vel = axis.vel + k_vel * innovation;
  axis.p00 = (1.0 - k_pos) * p00;
  axis.p01 = (1.0 - k_pos) * p01;
  axis.p11 = p11 - k_vel * p01;
}

void KalmanTracker::PredictAndUpdate(double dt, Vec2 measurement) {
  SPARSEDET_REQUIRE(initialized_, "Initialize the tracker first");
  SPARSEDET_REQUIRE(dt > 0.0, "time step must be positive");
  StepAxis(x_, dt, measurement.x);
  StepAxis(y_, dt, measurement.y);
}

Vec2 KalmanTracker::position() const {
  SPARSEDET_REQUIRE(initialized_, "tracker not initialized");
  return {x_.pos, y_.pos};
}

Vec2 KalmanTracker::velocity() const {
  SPARSEDET_REQUIRE(initialized_, "tracker not initialized");
  return {x_.vel, y_.vel};
}

double KalmanTracker::position_std() const {
  SPARSEDET_REQUIRE(initialized_, "tracker not initialized");
  return std::sqrt(std::max(0.0, x_.p00));
}

double KalmanTracker::velocity_std() const {
  SPARSEDET_REQUIRE(initialized_, "tracker not initialized");
  return std::sqrt(std::max(0.0, x_.p11));
}

KalmanTrackResult RunKalmanTracker(const std::vector<SimReport>& reports,
                                   double period_length,
                                   const KalmanTracker::Options& options) {
  SPARSEDET_REQUIRE(period_length > 0.0, "period length must be positive");
  SPARSEDET_REQUIRE(reports.size() >= 2, "tracking needs >= 2 reports");

  std::vector<SimReport> sorted = reports;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SimReport& a, const SimReport& b) {
                     return a.period < b.period;
                   });
  SPARSEDET_REQUIRE(sorted.back().period > sorted.front().period,
                    "tracking needs reports from >= 2 periods");

  KalmanTracker tracker(options);
  // Wide prior: position at the first report with Rs-scale uncertainty,
  // zero velocity with a generous bound (targets are tens of m/s).
  tracker.Initialize(sorted.front().node_pos, {0.0, 0.0},
                     2.0 * options.measurement_std, 50.0);
  double time = (sorted.front().period + 0.5) * period_length;
  int updates = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const double t = (sorted[i].period + 0.5) * period_length;
    // Same-period reports fuse with a tiny positive dt (simultaneous
    // measurements a moment apart).
    const double dt = std::max(t - time, 1e-3);
    tracker.PredictAndUpdate(dt, sorted[i].node_pos);
    time = std::max(time, t);
    ++updates;
  }
  return {.position = tracker.position(),
          .velocity = tracker.velocity(),
          .position_std = tracker.position_std(),
          .last_time = time,
          .updates = updates};
}

}  // namespace sparsedet
