// Instantaneous detection — the baseline group based detection replaces.
//
// With M = 1 and k = 1 a single report triggers the system, so every
// node-level false alarm becomes a system-level false alarm (paper
// Section 3.1: "group based detection becomes instantaneous detection,
// which is unable to filter any false alarms").
#pragma once

#include "core/params.h"
#include "sim/trial.h"

namespace sparsedet {

// True iff any report (true or false) occurs in the trial.
bool InstantaneousDetect(const TrialResult& trial);

// Analytical probability that a target is detected instantaneously in at
// least one of the M periods it spends in the field (no false alarms):
// complement of "no report in any period". Under the paper's spatial
// model this is 1 - P[0 reports over the window].
double InstantaneousDetectionProbability(const SystemParams& params);

// Analytical system-level false alarm probability per window under
// instantaneous detection with node-level rate pf:
// 1 - (1 - pf)^(N * M).
double InstantaneousSystemFaProbability(const SystemParams& params, double pf);

}  // namespace sparsedet
