#include "detect/track_estimate.h"

#include <cmath>

#include "common/check.h"

namespace sparsedet {

TrackEstimate FitConstantVelocityTrack(const std::vector<SimReport>& reports,
                                       double period_length) {
  SPARSEDET_REQUIRE(period_length > 0.0, "period length must be positive");
  SPARSEDET_REQUIRE(reports.size() >= 2, "track fit needs >= 2 reports");

  // Simple linear regression per axis on report mid-period times.
  double sum_t = 0.0;
  double sum_tt = 0.0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_tx = 0.0;
  double sum_ty = 0.0;
  const double n = static_cast<double>(reports.size());
  int min_period = reports.front().period;
  int max_period = reports.front().period;
  for (const SimReport& r : reports) {
    const double t = (r.period + 0.5) * period_length;
    sum_t += t;
    sum_tt += t * t;
    sum_x += r.node_pos.x;
    sum_y += r.node_pos.y;
    sum_tx += t * r.node_pos.x;
    sum_ty += t * r.node_pos.y;
    min_period = std::min(min_period, r.period);
    max_period = std::max(max_period, r.period);
  }
  SPARSEDET_REQUIRE(max_period > min_period,
                    "velocity is unobservable from a single period");

  const double denom = n * sum_tt - sum_t * sum_t;
  SPARSEDET_CHECK(denom > 0.0, "degenerate time design matrix");

  TrackEstimate estimate;
  estimate.support = static_cast<int>(reports.size());
  estimate.velocity.x = (n * sum_tx - sum_t * sum_x) / denom;
  estimate.velocity.y = (n * sum_ty - sum_t * sum_y) / denom;
  estimate.position0.x = (sum_x - estimate.velocity.x * sum_t) / n;
  estimate.position0.y = (sum_y - estimate.velocity.y * sum_t) / n;

  double sq = 0.0;
  for (const SimReport& r : reports) {
    const double t = (r.period + 0.5) * period_length;
    sq += (r.node_pos - estimate.PositionAt(t)).NormSquared();
  }
  estimate.rms_residual = std::sqrt(sq / n);
  return estimate;
}

}  // namespace sparsedet
