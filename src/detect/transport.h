// Report transport: couples the sensing simulator to the multi-hop
// network substrate.
//
// The paper ignores the communication stack on the argument that any
// report reaches the base station within one sensing period. This module
// removes the idealization: every report of a trial is routed over that
// trial's own deployment (greedy geographic forwarding or BFS shortest
// path), arrives delayed by its hop latency, and is lost when its node
// cannot reach the base (or per-hop loss fires). The end-to-end detection
// probability with real transport quantifies exactly when the paper's
// premise holds (experiment E18).
#pragma once

#include <vector>

#include "common/rng.h"
#include "geometry/vec2.h"
#include "prob/stats.h"
#include "sim/monte_carlo.h"
#include "sim/trial.h"

namespace sparsedet {

struct TransportOptions {
  // Base station position; defaults to the middle of the south edge (the
  // geometry matching the paper's "~36 km maximum distance").
  Vec2 base_position{16000.0, 0.0};
  double per_hop_latency = 6.0;  // seconds per hop (MAC + processing)
  bool use_greedy = true;        // greedy GF; false = BFS shortest path
  double loss_per_hop = 0.0;     // independent per-hop delivery failure
};

struct TransportedReport {
  SimReport report;
  bool delivered = false;
  int hops = 0;
  // Sensing period at whose END the report is available to the detector:
  // generation period + floor(hops * per_hop_latency / t).
  int arrival_period = 0;
};

// Routes every report of `trial` to the base station over the trial's
// deployment. Routes are computed once per reporting node. `rng` drives
// the per-hop losses.
std::vector<TransportedReport> TransportReports(const TrialResult& trial,
                                                const SystemParams& params,
                                                const TransportOptions& options,
                                                Rng& rng);

// Monte-Carlo estimate of the end-to-end detection probability: at least k
// reports DELIVERED with arrival inside the M-period window. Compare with
// EstimateDetectionProbability (ideal transport) to isolate the network's
// cost.
ProportionEstimate EstimateDetectionWithTransport(
    const TrialConfig& config, const TransportOptions& transport,
    const MonteCarloOptions& options = {});

}  // namespace sparsedet
