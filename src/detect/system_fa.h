// System-level false alarm rates of the group based detector, measured by
// Monte-Carlo on no-target windows (experiment E9 and the paper's
// future-work item: the minimum k that bounds the system FA rate).
#pragma once

#include <cstdint>

#include "core/params.h"
#include "prob/stats.h"

namespace sparsedet {

struct SystemFaOptions {
  int trials = 10000;
  std::uint64_t seed = 97;
  std::size_t threads = 0;
  double z = 1.96;
};

struct SystemFaEstimate {
  ProportionEstimate count_only;  // k reports anywhere in the window
  ProportionEstimate gated;       // k reports forming a track-feasible chain
};

// P[system-level false alarm within one M-period window | no target], for
// node-level false alarm probability `pf` per node per period.
SystemFaEstimate EstimateSystemFaProbability(const SystemParams& params,
                                             double pf,
                                             const SystemFaOptions& options = {});

// Smallest k whose *gated* system FA probability is <= max_fa_prob,
// estimated by Monte-Carlo (one shared set of windows evaluated for all k,
// so the search is consistent). Returns k in [1, N*M + 1]; the sentinel
// N*M + 1 means no threshold met the target.
int MinimumGatedThreshold(const SystemParams& params, double pf,
                          double max_fa_prob,
                          const SystemFaOptions& options = {});

}  // namespace sparsedet
