#include "detect/instantaneous.h"

#include <cmath>

#include "common/check.h"
#include "core/s_approach.h"

namespace sparsedet {

bool InstantaneousDetect(const TrialResult& trial) {
  return !trial.reports.empty();
}

double InstantaneousDetectionProbability(const SystemParams& params) {
  return SApproachExactDetectionProbability(params, /*k=*/1);
}

double InstantaneousSystemFaProbability(const SystemParams& params,
                                        double pf) {
  params.Validate();
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  const double slots =
      static_cast<double>(params.num_nodes) * params.window_periods;
  return 1.0 - std::pow(1.0 - pf, slots);
}

}  // namespace sparsedet
