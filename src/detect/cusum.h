// CUSUM (cumulative sum) change detector over per-period report counts —
// a classical detection-theory baseline for the paper's k-of-M rule.
//
// Under H0 (no target) each of the N nodes reports with probability
// p0 = pf per period; under H1 (target present) with p1 > p0 (false alarm
// plus coverage). The per-period log-likelihood ratio of observing c
// reports is
//   llr(c) = c * ln(p1/p0) + (N - c) * ln((1-p1)/(1-p0)),
// and the CUSUM statistic S_t = max(0, S_{t-1} + llr(c_t)) alarms when it
// reaches a threshold h. Sweeping h traces an ROC that experiment E27
// compares against sweeping k in the paper's rule: does count-thresholding
// leave detection probability on the table relative to the likelihood
//-based optimum-style detector?
#pragma once

#include "core/params.h"

namespace sparsedet {

// llr(c) as above. Requires 0 < p0 < p1 < 1, n >= 1, 0 <= count <= n.
double CusumLlrIncrement(int count, int num_nodes, double p0, double p1);

class CusumDetector {
 public:
  struct Options {
    int num_nodes = 0;
    double p0 = 1e-3;       // per-node per-period report rate under H0
    double p1 = 5e-3;       // under H1
    double threshold = 5.0; // alarm level h (in nats)
  };

  // Requires num_nodes >= 1, 0 < p0 < p1 < 1, threshold > 0.
  explicit CusumDetector(const Options& options);

  // Feeds one period's report count; returns true while the statistic is
  // at or above the threshold.
  bool ProcessCount(int reports);

  double statistic() const { return statistic_; }
  bool triggered() const { return triggered_; }
  void Reset();

 private:
  Options options_;
  double statistic_ = 0.0;
  bool triggered_ = false;
};

// The H1 per-node report probability for a scenario: pf + Pd * |DR| / S
// (coverage of a random node by the target's per-period Detectable
// Region). Used to configure the detector from first principles.
double CusumH1Rate(const SystemParams& params, double pf);

}  // namespace sparsedet
