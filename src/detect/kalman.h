// Constant-velocity Kalman tracker over detection reports.
//
// The least-squares fit (track_estimate.h) is a batch estimator; a
// deployed base station tracks ONLINE, updating position/velocity and
// their uncertainty as each report arrives. The x and y axes decouple
// under a constant-velocity model with isotropic noise, so the filter is
// implemented as two independent 2-state (position, velocity) Kalman
// filters. Measurement noise: a reporting node is roughly uniform within
// Rs of the target, so each coordinate has variance Rs^2 / 4.
#pragma once

#include <vector>

#include "geometry/vec2.h"
#include "sim/trial.h"

namespace sparsedet {

class KalmanTracker {
 public:
  struct Options {
    double measurement_std = 500.0;  // per-axis, ~ Rs / 2
    // Continuous white-noise acceleration intensity (m^2/s^3); small for
    // the paper's constant-velocity targets, larger to track maneuvers.
    double process_noise = 1e-3;
  };

  // Requires measurement_std > 0 and process_noise >= 0.
  explicit KalmanTracker(const Options& options);

  // Starts the filter at `position` with velocity prior `velocity` and the
  // given standard deviations (> 0).
  void Initialize(Vec2 position, Vec2 velocity, double position_std,
                  double velocity_std);
  bool initialized() const { return initialized_; }

  // Advances the state dt seconds (> 0 required), then fuses a position
  // measurement. Requires Initialize first.
  void PredictAndUpdate(double dt, Vec2 measurement);

  Vec2 position() const;
  Vec2 velocity() const;
  // Per-axis posterior standard deviations (same for x and y by symmetry).
  double position_std() const;
  double velocity_std() const;

 private:
  struct AxisState {
    double pos = 0.0;
    double vel = 0.0;
    // Covariance [[p00, p01], [p01, p11]].
    double p00 = 0.0;
    double p01 = 0.0;
    double p11 = 0.0;
  };

  void StepAxis(AxisState& axis, double dt, double measurement);

  Options options_;
  bool initialized_ = false;
  AxisState x_;
  AxisState y_;
};

struct KalmanTrackResult {
  Vec2 position;       // at the last report's timestamp
  Vec2 velocity;
  double position_std = 0.0;
  double last_time = 0.0;  // seconds, mid-period of the last report
  int updates = 0;
};

// Convenience batch runner: initializes from the first report (zero
// velocity prior, wide covariance) and filters the rest at mid-period
// timestamps. Requires >= 2 reports spanning >= 2 periods and
// period_length > 0.
KalmanTrackResult RunKalmanTracker(const std::vector<SimReport>& reports,
                                   double period_length,
                                   const KalmanTracker::Options& options);

}  // namespace sparsedet
