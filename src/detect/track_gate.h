// Track-consistency gating.
//
// Group based detection accepts only report sequences "that can be mapped
// to a possible target track" (paper Section 1). For a target of speed V
// and sensor range Rs, two reports from periods p1 <= p2 at node positions
// x1, x2 can belong to the same track only if
//   |x1 - x2| <= V * t * (p2 - p1 + 1) + 2 * Rs + slack,
// because each reporting node is within Rs of the target's path segment in
// its period and the path endpoints are V*t*(p2-p1+1) apart at most.
//
// The gate scores a report set by the longest chain (ordered by period)
// whose *consecutive* members are pairwise feasible — the standard
// first-order gating used by deployed trackers (VigilNet-style). Full
// all-pairs consistency is NP-hard to optimize exactly; consecutive-pair
// chaining is the usual practical relaxation and is conservative in the
// right direction for false-alarm filtering experiments (it can only
// overcount feasible chains, never undercount true-target chains).
#pragma once

#include <vector>

#include "core/params.h"
#include "sim/trial.h"

namespace sparsedet {

struct TrackGateParams {
  double speed = 10.0;          // assumed maximum target speed V
  double period_length = 60.0;  // t
  double sensing_range = 1000.0;  // Rs
  double slack = 0.0;           // extra tolerance added to the gate

  static TrackGateParams FromSystem(const SystemParams& params) {
    return {.speed = params.target_speed,
            .period_length = params.period_length,
            .sensing_range = params.sensing_range,
            .slack = 0.0};
  }
};

// True iff two reports are pairwise track-feasible under `gate`.
bool PairFeasible(const SimReport& a, const SimReport& b,
                  const TrackGateParams& gate);

// Length of the longest track-consistent chain in `reports` (any order;
// sorted internally by period). O(n^2). Returns 0 for an empty set.
int LongestTrackConsistentChain(const std::vector<SimReport>& reports,
                                const TrackGateParams& gate);

}  // namespace sparsedet
