// Constant-velocity track estimation from detection reports.
//
// Once group based detection accepts a chain of reports, the natural next
// step of a deployed system is to estimate the target's track from the
// reporting nodes' positions (each is within Rs of the true track at its
// report time). A weighted least-squares fit of position against time per
// axis recovers position and velocity; the residual doubles as a
// consistency score. Reports are timestamped at the middle of their
// sensing period (the unbiased choice when detection can happen any time
// within the period).
#pragma once

#include <vector>

#include "geometry/vec2.h"
#include "sim/trial.h"

namespace sparsedet {

struct TrackEstimate {
  Vec2 position0;     // estimated position at time 0 (start of period 0)
  Vec2 velocity;      // estimated velocity, m/s
  int support = 0;    // reports used by the fit
  double rms_residual = 0.0;  // RMS distance of reports to the fitted track

  Vec2 PositionAt(double time_seconds) const {
    return position0 + velocity * time_seconds;
  }
  double Speed() const { return velocity.Norm(); }
};

// Least-squares constant-velocity fit. Requires at least two reports from
// at least two distinct periods (otherwise velocity is unobservable and
// InvalidArgument is thrown; callers should gate first).
TrackEstimate FitConstantVelocityTrack(const std::vector<SimReport>& reports,
                                       double period_length);

}  // namespace sparsedet
