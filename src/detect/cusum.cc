#include "detect/cusum.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sparsedet {
namespace {

void CheckRates(double p0, double p1) {
  SPARSEDET_REQUIRE(p0 > 0.0 && p1 < 1.0 && p0 < p1,
                    "CUSUM rates require 0 < p0 < p1 < 1");
}

}  // namespace

double CusumLlrIncrement(int count, int num_nodes, double p0, double p1) {
  CheckRates(p0, p1);
  SPARSEDET_REQUIRE(num_nodes >= 1, "need at least one node");
  SPARSEDET_REQUIRE(count >= 0 && count <= num_nodes,
                    "count must be in [0, N]");
  return count * std::log(p1 / p0) +
         (num_nodes - count) * std::log((1.0 - p1) / (1.0 - p0));
}

CusumDetector::CusumDetector(const Options& options) : options_(options) {
  CheckRates(options.p0, options.p1);
  SPARSEDET_REQUIRE(options.num_nodes >= 1, "need at least one node");
  SPARSEDET_REQUIRE(options.threshold > 0.0, "threshold must be positive");
}

void CusumDetector::Reset() {
  statistic_ = 0.0;
  triggered_ = false;
}

bool CusumDetector::ProcessCount(int reports) {
  statistic_ = std::max(
      0.0, statistic_ + CusumLlrIncrement(reports, options_.num_nodes,
                                          options_.p0, options_.p1));
  const bool hit = statistic_ >= options_.threshold;
  triggered_ = triggered_ || hit;
  return hit;
}

double CusumH1Rate(const SystemParams& params, double pf) {
  params.Validate();
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  return std::min(1.0, pf + params.detect_prob * params.DrArea() /
                               params.FieldArea());
}

}  // namespace sparsedet
