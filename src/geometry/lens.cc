#include "geometry/lens.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sparsedet {

double CircleLensArea(double d, double r) {
  SPARSEDET_REQUIRE(r > 0.0, "lens radius must be positive");
  SPARSEDET_REQUIRE(d >= 0.0, "lens center distance must be non-negative");
  if (d >= 2.0 * r) return 0.0;
  // Standard equal-radius lens formula:
  //   A = 2 r^2 acos(d / 2r) - (d/2) sqrt(4 r^2 - d^2)
  const double half = d / (2.0 * r);
  const double area =
      2.0 * r * r * std::acos(half) - 0.5 * d * std::sqrt(4.0 * r * r - d * d);
  return std::max(area, 0.0);
}

}  // namespace sparsedet
