// Region decomposition of a straight-line target track (paper Eqs. 6, 8, 10).
//
// A target moves at speed V for sensing periods of length t; sensors have
// range Rs. The Detectable Region (DR) of period p is the stadium around
// the segment traversed in period p. The paper decomposes the union of the
// M DRs — the Aggregate Region — into subareas classified by *how many
// periods a sensor placed there covers the target*:
//
//   ms            = ceil(2*Rs / (V*t)): number of periods the target takes
//                   to traverse 2*Rs; a sensor can cover the target for at
//                   most ms + 1 periods.
//   AreaH(i)      (Eq. 6)  subareas of the DR of period 1 (the Head NEDR —
//                   for period 1 the Newly Explored DR is the whole DR);
//                   a sensor in AreaH(i) covers the target for i periods,
//                   i = 1 .. ms+1.
//   AreaB(i)      (Eq. 8)  subareas of a Body-stage NEDR (the leading
//                   crescent of width V*t that a middle period adds).
//   AreaT(j, i)   (Eq. 10) subareas of the j-th Tail-stage NEDR (period
//                   M - ms + j); only ms+1-j subareas exist because fewer
//                   future periods remain, i = 1 .. ms+1-j.
//
// All quantities depend only on (Rs, V*t); the decomposition is
// deliberately independent of M. Closed forms follow from the equal-radius
// circle-lens area: with O(j) := |DR(1) ∩ DR(j)| = lens((j-2)*V*t, Rs) for
// j >= 2 and O(1) := |DR(1)|, convexity of the track gives the nesting
// DR(1)∩DR(j) ⊇ DR(1)∩DR(j+1), hence AreaH(i) = O(i) - O(i+1) for i <= ms
// and AreaH(ms+1) = O(ms+1) — exactly Eq. 6 after telescoping.
#pragma once

#include <vector>

namespace sparsedet {

class RegionDecomposition {
 public:
  // Requires Rs > 0, V > 0, t > 0.
  RegionDecomposition(double sensing_range, double speed,
                      double period_length);

  double sensing_range() const { return rs_; }
  double step_length() const { return vt_; }  // V*t

  // ms = ceil(2*Rs / (V*t)) >= 1.
  int ms() const { return ms_; }

  // |DR| of one period: 2*Rs*V*t + pi*Rs^2.
  double DrArea() const;
  // |NEDR| of a Body/Tail period: 2*Rs*V*t.
  double BodyNedrArea() const { return 2.0 * rs_ * vt_; }
  // |ARegion| for M periods: 2*M*Rs*V*t + pi*Rs^2. Requires periods >= 1.
  double ARegionArea(int periods) const;

  // AreaH(i), i in [1, ms+1]  (Eq. 6).
  double AreaH(int i) const;
  // AreaB(i), i in [1, ms+1]  (Eq. 8).
  double AreaB(int i) const;
  // AreaT(j, i), j in [1, ms], i in [1, ms+1-j]  (Eq. 10).
  double AreaT(int j, int i) const;

  // Region(i) of the S-approach for an M-period ARegion (M > ms): total
  // area over the whole ARegion in which a sensor covers the target for
  // exactly i periods, i in [1, ms+1]. Sums the Head subarea, M-ms-1 Body
  // subareas and the ms Tail subareas.
  std::vector<double> SApproachRegions(int periods) const;

  // The subarea sizes as probability-normalized vectors are what the
  // analysis consumes; expose the raw vectors too (index 0 <-> i = 1).
  const std::vector<double>& area_h() const { return area_h_; }
  const std::vector<double>& area_b() const { return area_b_; }
  std::vector<double> AreaTVector(int j) const;

 private:
  // |DR(1) ∩ DR(j)| for j >= 1 (O(1) = |DR(1)|).
  double Overlap(int j) const;

  double rs_;
  double vt_;
  int ms_;
  std::vector<double> area_h_;  // size ms+1
  std::vector<double> area_b_;  // size ms+1
};

}  // namespace sparsedet
