// Length of the part of a segment that lies inside a disk.
//
// Used by the dwell-time sensing model: the time a moving target spends
// inside a sensor's disk during one period is (chord length) / V, where
// the chord is the intersection of the period's path segment with the
// sensing disk.
#pragma once

#include "geometry/segment.h"
#include "geometry/vec2.h"

namespace sparsedet {

// |{p in segment : |p - center| <= radius}|. Requires radius > 0.
// Degenerate segments return 0 (a point has no length).
double SegmentDiskIntersectionLength(const Segment& segment, Vec2 center,
                                     double radius);

}  // namespace sparsedet
