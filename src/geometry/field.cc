#include "geometry/field.h"

#include "common/check.h"

namespace sparsedet {

Field::Field(double width, double height) : width_(width), height_(height) {
  SPARSEDET_REQUIRE(width > 0.0 && height > 0.0,
                    "field dimensions must be positive");
}

Vec2 Field::SamplePoint(Rng& rng) const {
  return {rng.Uniform(0.0, width_), rng.Uniform(0.0, height_)};
}

}  // namespace sparsedet
