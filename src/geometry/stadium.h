// Stadium (capsule): all points within `radius` of a segment.
//
// The Detectable Region of a target that moves along `axis` during one
// sensing period, observed by sensors of sensing range `radius`, is exactly
// this shape; its area 2*Rs*V*t + pi*Rs^2 appears throughout the paper.
#pragma once

#include "geometry/segment.h"
#include "geometry/vec2.h"

namespace sparsedet {

class Stadium {
 public:
  // Requires radius > 0. A zero-length axis yields a disk.
  Stadium(Segment axis, double radius);

  const Segment& axis() const { return axis_; }
  double radius() const { return radius_; }

  // 2 * radius * |axis| + pi * radius^2.
  double Area() const;

  bool Contains(Vec2 p) const { return axis_.WithinDistance(p, radius_); }

 private:
  Segment axis_;
  double radius_;
};

}  // namespace sparsedet
