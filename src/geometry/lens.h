// Circle-circle intersection ("lens") area.
#pragma once

namespace sparsedet {

// Area of the intersection of two circles of equal radius `r` whose centers
// are `d` apart. Equals pi*r^2 at d = 0 and 0 for d >= 2r.
//
// This is the overlap between the Detectable Regions of non-adjacent sensing
// periods along a straight track: the overlap of two collinear stadiums of
// radius r reduces to the lens of the two facing end-cap circles.
// Requires d >= 0 and r > 0.
double CircleLensArea(double d, double r);

}  // namespace sparsedet
