#include "geometry/region_decomposition.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "geometry/lens.h"

namespace sparsedet {

RegionDecomposition::RegionDecomposition(double sensing_range, double speed,
                                         double period_length)
    : rs_(sensing_range), vt_(speed * period_length) {
  SPARSEDET_REQUIRE(sensing_range > 0.0, "sensing range must be positive");
  SPARSEDET_REQUIRE(speed > 0.0, "target speed must be positive");
  SPARSEDET_REQUIRE(period_length > 0.0, "period length must be positive");

  ms_ = static_cast<int>(std::ceil(2.0 * rs_ / vt_));
  SPARSEDET_CHECK(ms_ >= 1, "ms must be at least 1");

  // AreaH via the telescoped form of Eq. 6: AreaH(i) = O(i) - O(i+1) for
  // i <= ms, AreaH(ms+1) = O(ms+1). O(ms+2) = lens(ms*V*t) = 0 because
  // ms*V*t >= 2*Rs by definition of ms, so the two forms agree at i = ms.
  area_h_.resize(static_cast<std::size_t>(ms_) + 1);
  for (int i = 1; i <= ms_; ++i) {
    area_h_[i - 1] = std::max(Overlap(i) - Overlap(i + 1), 0.0);
  }
  area_h_[ms_] = Overlap(ms_ + 1);

  // Eq. 8.
  area_b_.resize(static_cast<std::size_t>(ms_) + 1);
  for (int i = 1; i <= ms_; ++i) {
    area_b_[i - 1] = std::max(area_h_[i - 1] - area_h_[i], 0.0);
  }
  area_b_[ms_] = area_h_[ms_];
}

double RegionDecomposition::Overlap(int j) const {
  SPARSEDET_DCHECK(j >= 1, "overlap index must be >= 1");
  if (j == 1) return DrArea();
  return CircleLensArea(static_cast<double>(j - 2) * vt_, rs_);
}

double RegionDecomposition::DrArea() const {
  return 2.0 * rs_ * vt_ + std::numbers::pi * rs_ * rs_;
}

double RegionDecomposition::ARegionArea(int periods) const {
  SPARSEDET_REQUIRE(periods >= 1, "ARegion needs at least one period");
  return 2.0 * periods * rs_ * vt_ + std::numbers::pi * rs_ * rs_;
}

double RegionDecomposition::AreaH(int i) const {
  SPARSEDET_REQUIRE(i >= 1 && i <= ms_ + 1, "AreaH index out of [1, ms+1]");
  return area_h_[i - 1];
}

double RegionDecomposition::AreaB(int i) const {
  SPARSEDET_REQUIRE(i >= 1 && i <= ms_ + 1, "AreaB index out of [1, ms+1]");
  return area_b_[i - 1];
}

double RegionDecomposition::AreaT(int j, int i) const {
  SPARSEDET_REQUIRE(j >= 1 && j <= ms_, "AreaT stage out of [1, ms]");
  SPARSEDET_REQUIRE(i >= 1 && i <= ms_ + 1 - j,
                    "AreaT index out of [1, ms+1-j]");
  if (i <= ms_ - j) return area_b_[i - 1];
  // i == ms+1-j: everything that would cover the target for ms+1-j or more
  // periods is truncated by the end of the observation window (Eq. 10).
  double sum = 0.0;
  for (int m = ms_ + 1 - j; m <= ms_ + 1; ++m) sum += area_b_[m - 1];
  return sum;
}

std::vector<double> RegionDecomposition::AreaTVector(int j) const {
  SPARSEDET_REQUIRE(j >= 1 && j <= ms_, "AreaT stage out of [1, ms]");
  std::vector<double> v(static_cast<std::size_t>(ms_ + 1 - j));
  for (int i = 1; i <= ms_ + 1 - j; ++i) v[i - 1] = AreaT(j, i);
  return v;
}

std::vector<double> RegionDecomposition::SApproachRegions(int periods) const {
  SPARSEDET_REQUIRE(periods > ms_,
                    "the S-approach region split is defined for M > ms");
  std::vector<double> region(static_cast<std::size_t>(ms_) + 1, 0.0);
  for (int i = 1; i <= ms_ + 1; ++i) {
    region[i - 1] = area_h_[i - 1] +
                    static_cast<double>(periods - ms_ - 1) * area_b_[i - 1];
  }
  for (int j = 1; j <= ms_; ++j) {
    for (int i = 1; i <= ms_ + 1 - j; ++i) {
      region[i - 1] += AreaT(j, i);
    }
  }
  return region;
}

}  // namespace sparsedet
