#include "geometry/stadium.h"

#include <numbers>

#include "common/check.h"

namespace sparsedet {

Stadium::Stadium(Segment axis, double radius) : axis_(axis), radius_(radius) {
  SPARSEDET_REQUIRE(radius > 0.0, "stadium radius must be positive");
}

double Stadium::Area() const {
  return 2.0 * radius_ * axis_.Length() +
         std::numbers::pi * radius_ * radius_;
}

}  // namespace sparsedet
