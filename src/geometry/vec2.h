// 2-D vector/point value type.
#pragma once

#include <cmath>

namespace sparsedet {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double Cross(Vec2 o) const { return x * o.y - y * o.x; }
  constexpr double NormSquared() const { return x * x + y * y; }
  double Norm() const { return std::hypot(x, y); }

  double DistanceTo(Vec2 o) const { return (*this - o).Norm(); }

  // Unit vector at `angle` radians from the +x axis.
  static Vec2 FromAngle(double angle) {
    return {std::cos(angle), std::sin(angle)};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

}  // namespace sparsedet
