#include "geometry/segment.h"

#include <algorithm>

namespace sparsedet {

Vec2 Segment::ClosestPointTo(Vec2 p) const {
  const Vec2 d = b - a;
  const double len2 = d.NormSquared();
  if (len2 == 0.0) return a;  // degenerate segment (static target)
  const double s = std::clamp((p - a).Dot(d) / len2, 0.0, 1.0);
  return a + d * s;
}

bool Segment::WithinDistance(Vec2 p, double radius) const {
  const Vec2 c = ClosestPointTo(p);
  return (p - c).NormSquared() <= radius * radius;
}

}  // namespace sparsedet
