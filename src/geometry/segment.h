// Line segment and point-to-segment distance.
//
// The Detectable Region (DR) of a moving target in one sensing period is
// exactly the set of points within sensing range Rs of the segment the
// target traverses during that period, so point-to-segment distance is the
// primitive the simulator's sensing test reduces to.
#pragma once

#include "geometry/vec2.h"

namespace sparsedet {

struct Segment {
  Vec2 a;
  Vec2 b;

  constexpr Segment() = default;
  constexpr Segment(Vec2 a_in, Vec2 b_in) : a(a_in), b(b_in) {}

  double Length() const { return a.DistanceTo(b); }

  // Closest point on the segment to `p`.
  Vec2 ClosestPointTo(Vec2 p) const;

  // Euclidean distance from `p` to the segment (0 on the segment).
  double DistanceTo(Vec2 p) const { return p.DistanceTo(ClosestPointTo(p)); }

  // True iff `p` lies within `radius` of the segment, i.e. inside the
  // stadium (capsule) of this segment. Avoids the square root.
  bool WithinDistance(Vec2 p, double radius) const;
};

}  // namespace sparsedet
