#include "geometry/chord.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sparsedet {

double SegmentDiskIntersectionLength(const Segment& segment, Vec2 center,
                                     double radius) {
  SPARSEDET_REQUIRE(radius > 0.0, "disk radius must be positive");
  const Vec2 d = segment.b - segment.a;
  const double len2 = d.NormSquared();
  if (len2 == 0.0) return 0.0;

  // Parameterize p(u) = a + u*d, u in [0, 1]; solve |p(u) - c|^2 = r^2.
  const Vec2 f = segment.a - center;
  const double a_coef = len2;
  const double b_coef = 2.0 * f.Dot(d);
  const double c_coef = f.NormSquared() - radius * radius;
  const double disc = b_coef * b_coef - 4.0 * a_coef * c_coef;
  if (disc <= 0.0) {
    // No crossing: the segment is entirely inside or entirely outside.
    return c_coef <= 0.0 ? std::sqrt(len2) : 0.0;
  }
  const double sqrt_disc = std::sqrt(disc);
  const double u1 = std::clamp((-b_coef - sqrt_disc) / (2.0 * a_coef), 0.0,
                               1.0);
  const double u2 = std::clamp((-b_coef + sqrt_disc) / (2.0 * a_coef), 0.0,
                               1.0);
  return (u2 - u1) * std::sqrt(len2);
}

}  // namespace sparsedet
