// Rectangular sensor field.
#pragma once

#include "common/rng.h"
#include "geometry/vec2.h"

namespace sparsedet {

class Field {
 public:
  // Axis-aligned rectangle [0, width] x [0, height]. Both must be > 0.
  Field(double width, double height);

  // Convenience for the square fields used throughout the paper.
  static Field Square(double side) { return Field(side, side); }

  double width() const { return width_; }
  double height() const { return height_; }
  double Area() const { return width_ * height_; }

  bool Contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width_ && p.y >= 0.0 && p.y <= height_;
  }

  // Uniform random point in the rectangle.
  Vec2 SamplePoint(Rng& rng) const;

  Vec2 Center() const { return {width_ / 2.0, height_ / 2.0}; }

 private:
  double width_;
  double height_;
};

}  // namespace sparsedet
