// AVX2 backend: 4-wide double lanes, explicit multiply + add (never FMA —
// fused rounding would diverge from the scalar reference bit-for-bit).
// This translation unit is compiled with -mavx2 (see CMakeLists.txt) only
// on x86-64 hosts whose compiler accepts the flag; everywhere else it
// compiles to the null stub below.
#include "simd/simd.h"

#if defined(SPARSEDET_SIMD_BUILD_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace sparsedet::simd {
namespace {

void AxpyAvx2(double a, const double* src, double* dst, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    const __m256d d = _mm256_loadu_pd(dst + i);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, _mm256_mul_pd(va, s)));
  }
  for (; i < n; ++i) dst[i] += a * src[i];
}

void ScaleAvx2(double a, const double* src, double* dst, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(va, _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = a * src[i];
}

// Output-major 4-tap pass. The scalar reference is tap-major, but the two
// orders are bit-identical: every dst element still receives its tap
// contributions in ascending-t order, each one a separately rounded
// multiply + add, and element results never feed each other.
void Conv4Avx2(const double* taps, const double* src, std::size_t src_len,
               double* dst, std::size_t dst_len) {
  // Output index o = t + i; o in [0, src_len + 3) clipped to dst_len.
  const std::size_t out_end = std::min(dst_len, src_len + 3);
  // Partial-tap elements, ascending t per element.
  const auto edge = [&](std::size_t o_begin, std::size_t o_end) {
    for (std::size_t o = o_begin; o < o_end; ++o) {
      double acc = dst[o];
      const std::size_t t_lo = o >= src_len ? o - src_len + 1 : 0;
      const std::size_t t_hi = std::min<std::size_t>(3, o);
      for (std::size_t t = t_lo; t <= t_hi; ++t) acc += taps[t] * src[o - t];
      dst[o] = acc;
    }
  };
  // All four taps are in range for o in [3, min(src_len, dst_len)).
  const std::size_t interior_end = std::min(src_len, dst_len);
  edge(0, std::min<std::size_t>(3, out_end));
  if (interior_end > 3) {
    const __m256d p0 = _mm256_set1_pd(taps[0]);
    const __m256d p1 = _mm256_set1_pd(taps[1]);
    const __m256d p2 = _mm256_set1_pd(taps[2]);
    const __m256d p3 = _mm256_set1_pd(taps[3]);
    std::size_t o = 3;
    for (; o + 4 <= interior_end; o += 4) {
      __m256d acc = _mm256_loadu_pd(dst + o);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(p0, _mm256_loadu_pd(src + o)));
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(p1, _mm256_loadu_pd(src + o - 1)));
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(p2, _mm256_loadu_pd(src + o - 2)));
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(p3, _mm256_loadu_pd(src + o - 3)));
      _mm256_storeu_pd(dst + o, acc);
    }
    for (; o < interior_end; ++o) {
      double acc = dst[o];
      acc += taps[0] * src[o];
      acc += taps[1] * src[o - 1];
      acc += taps[2] * src[o - 2];
      acc += taps[3] * src[o - 3];
      dst[o] = acc;
    }
  }
  edge(std::max<std::size_t>(3, interior_end), out_end);
}

constexpr Kernels kAvx2Kernels{Backend::kAvx2, "avx2", AxpyAvx2, ScaleAvx2,
                               Conv4Avx2};

}  // namespace

const Kernels* Avx2KernelsOrNull() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

}  // namespace sparsedet::simd

#else  // !SPARSEDET_SIMD_BUILD_AVX2

namespace sparsedet::simd {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace sparsedet::simd

#endif
