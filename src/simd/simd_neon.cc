// NEON backend: 2-wide double lanes (AArch64 Advanced SIMD is mandatory,
// so no runtime cpuid is needed — availability is a compile-time fact).
// vmulq/vaddq are used explicitly instead of vfmaq: fused rounding would
// diverge from the scalar reference bit-for-bit.
#include "simd/simd.h"

#if defined(SPARSEDET_SIMD_BUILD_NEON)

#include <arm_neon.h>

#include <algorithm>

namespace sparsedet::simd {
namespace {

void AxpyNeon(double a, const double* src, double* dst, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t s = vld1q_f64(src + i);
    const float64x2_t d = vld1q_f64(dst + i);
    vst1q_f64(dst + i, vaddq_f64(d, vmulq_f64(va, s)));
  }
  for (; i < n; ++i) dst[i] += a * src[i];
}

void ScaleNeon(double a, const double* src, double* dst, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vmulq_f64(va, vld1q_f64(src + i)));
  }
  for (; i < n; ++i) dst[i] = a * src[i];
}

// Output-major 4-tap pass; see Conv4Avx2 for the bit-identity argument
// (each element's contributions apply in ascending-t order, one rounded
// multiply + add per contribution).
void Conv4Neon(const double* taps, const double* src, std::size_t src_len,
               double* dst, std::size_t dst_len) {
  const std::size_t out_end = std::min(dst_len, src_len + 3);
  const auto edge = [&](std::size_t o_begin, std::size_t o_end) {
    for (std::size_t o = o_begin; o < o_end; ++o) {
      double acc = dst[o];
      const std::size_t t_lo = o >= src_len ? o - src_len + 1 : 0;
      const std::size_t t_hi = std::min<std::size_t>(3, o);
      for (std::size_t t = t_lo; t <= t_hi; ++t) acc += taps[t] * src[o - t];
      dst[o] = acc;
    }
  };
  const std::size_t interior_end = std::min(src_len, dst_len);
  edge(0, std::min<std::size_t>(3, out_end));
  if (interior_end > 3) {
    const float64x2_t p0 = vdupq_n_f64(taps[0]);
    const float64x2_t p1 = vdupq_n_f64(taps[1]);
    const float64x2_t p2 = vdupq_n_f64(taps[2]);
    const float64x2_t p3 = vdupq_n_f64(taps[3]);
    std::size_t o = 3;
    for (; o + 2 <= interior_end; o += 2) {
      float64x2_t acc = vld1q_f64(dst + o);
      acc = vaddq_f64(acc, vmulq_f64(p0, vld1q_f64(src + o)));
      acc = vaddq_f64(acc, vmulq_f64(p1, vld1q_f64(src + o - 1)));
      acc = vaddq_f64(acc, vmulq_f64(p2, vld1q_f64(src + o - 2)));
      acc = vaddq_f64(acc, vmulq_f64(p3, vld1q_f64(src + o - 3)));
      vst1q_f64(dst + o, acc);
    }
    for (; o < interior_end; ++o) {
      double acc = dst[o];
      acc += taps[0] * src[o];
      acc += taps[1] * src[o - 1];
      acc += taps[2] * src[o - 2];
      acc += taps[3] * src[o - 3];
      dst[o] = acc;
    }
  }
  edge(std::max<std::size_t>(3, interior_end), out_end);
}

constexpr Kernels kNeonKernels{Backend::kNeon, "neon", AxpyNeon, ScaleNeon,
                               Conv4Neon};

}  // namespace

const Kernels* NeonKernelsOrNull() { return &kNeonKernels; }

}  // namespace sparsedet::simd

#else  // !SPARSEDET_SIMD_BUILD_NEON

namespace sparsedet::simd {
const Kernels* NeonKernelsOrNull() { return nullptr; }
}  // namespace sparsedet::simd

#endif
