// Portable SIMD layer for the solver's element-wise double kernels.
//
// Every hot loop in the analytical models reduces to two primitives over
// contiguous double buffers:
//
//   axpy:  dst[i] += a * src[i]      (convolution / propagation inner loop)
//   scale: dst[i]  = a * src[i]      (thinning, scaled copies)
//   conv4: dst[t+i] += taps[t]*src[i], t in 0..3  (fused 4-tap propagation)
//
// All are *element-wise*: lane i of the vectorized kernel performs exactly
// the multiply-then-add the scalar reference performs for index i, in the
// same rounding mode, with no fused multiply-add and no cross-lane
// reduction. That makes the vector backends bit-identical to the scalar
// reference — not merely close — which is what lets golden tables and the
// engine's byte-identity contract survive runtime dispatch. The project is
// compiled with -ffp-contract=off so the compiler cannot re-fuse the
// scalar reference either (see docs/PERFORMANCE.md, "FP-determinism
// contract").
//
// Reductions (TotalMass, TailSum, Mean, ...) are deliberately NOT offered
// here: a vector reduction reassociates the sum and changes bits, so they
// stay strict sequential scalar at the call sites.
//
// Backend selection: the best available backend is chosen once at startup
// (AVX2 via cpuid on x86-64, NEON on aarch64, scalar everywhere else).
// The SPARSEDET_SIMD environment variable overrides it:
//
//   SPARSEDET_SIMD=off|scalar   force the scalar reference
//   SPARSEDET_SIMD=avx2         request AVX2 (scalar if unavailable)
//   SPARSEDET_SIMD=neon         request NEON (scalar if unavailable)
//   SPARSEDET_SIMD=auto / unset best available
//
// An unavailable or unknown request degrades to scalar rather than
// erroring: the contract is that every backend produces identical bits, so
// degrading is always safe, and it lets one CI matrix run the same command
// line on every architecture.
#pragma once

#include <cstddef>

namespace sparsedet::simd {

enum class Backend {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// A resolved kernel table. Function pointers, not virtuals: the call sites
// hoist `const Kernels& k = Active()` out of their loops and pay one
// indirect call per contiguous run.
struct Kernels {
  Backend backend;
  const char* name;  // "scalar" | "avx2" | "neon"
  // dst[i] += a * src[i] for i in [0, n). src and dst must not overlap
  // except when they are equal-and-aliased is also forbidden (dst != src).
  void (*axpy)(double a, const double* src, double* dst, std::size_t n);
  // dst[i] = a * src[i] for i in [0, n). dst == src is allowed.
  void (*scale)(double a, const double* src, double* dst, std::size_t n);
  // Four shifted axpys fused into one pass:
  //
  //   for t in 0..3: dst[t + i] += taps[t] * src[i]
  //                  for i in [0, min(src_len, dst_len - t))
  //
  // i.e. the four-tap slice of an increment-propagation step. Each dst
  // element receives its (up to four) tap contributions in ascending-t
  // order, every contribution a separate multiply-then-add — the same
  // per-element operation sequence as four consecutive axpy calls — but
  // dst is loaded and stored once per pass instead of four times, which
  // is what makes the propagation hot loop memory-efficient. All four
  // taps are applied even when zero (a zero tap contributes an exact
  // +0.0, which cannot change any finite non-negative accumulator).
  // Writes touch dst[0, min(dst_len, src_len + 3)); src and dst must not
  // overlap.
  void (*conv4)(const double* taps, const double* src, std::size_t src_len,
                double* dst, std::size_t dst_len);
};

// The process-wide active kernel table (env override applied once, on
// first use). Safe to call concurrently from engine workers.
const Kernels& Active();

// The scalar reference table, always available — the "expected" side of
// the differential harness.
const Kernels& Scalar();

Backend ActiveBackend();
const char* BackendName(Backend backend);

// True when the backend's kernels exist in this binary *and* the CPU can
// run them. kScalar is always available.
bool BackendAvailable(Backend backend);

// Test hook: force the active table to `backend` (degrades to scalar when
// unavailable, mirroring the env override) and return the previously
// active backend so tests can restore it. Not thread-safe against
// concurrent solves; tests install it before spawning work.
Backend SetBackendForTest(Backend backend);

}  // namespace sparsedet::simd
