#include "simd/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sparsedet::simd {

// Defined in simd_avx2.cc / simd_neon.cc; return null when the backend was
// not compiled in or the CPU lacks the instructions.
const Kernels* Avx2KernelsOrNull();
const Kernels* NeonKernelsOrNull();

namespace {

void AxpyScalar(double a, const double* src, double* dst, std::size_t n) {
  // With -ffp-contract=off this compiles to a separate multiply and add
  // per element — the exact operation the vector lanes perform.
  for (std::size_t i = 0; i < n; ++i) dst[i] += a * src[i];
}

void ScaleScalar(double a, const double* src, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a * src[i];
}

// Tap-major reference: tap t is applied to every element before tap t+1,
// so each dst element accumulates its contributions in ascending-t order —
// the exact per-element sequence the vector backends reproduce.
void Conv4Scalar(const double* taps, const double* src, std::size_t src_len,
                 double* dst, std::size_t dst_len) {
  for (std::size_t t = 0; t < 4 && t < dst_len; ++t) {
    const double a = taps[t];
    const std::size_t len = std::min(src_len, dst_len - t);
    double* d = dst + t;
    for (std::size_t i = 0; i < len; ++i) d[i] += a * src[i];
  }
}

constexpr Kernels kScalarKernels{Backend::kScalar, "scalar", AxpyScalar,
                                 ScaleScalar, Conv4Scalar};

const Kernels* ResolveBackend(Backend backend) {
  switch (backend) {
    case Backend::kAvx2:
      return Avx2KernelsOrNull();
    case Backend::kNeon:
      return NeonKernelsOrNull();
    case Backend::kScalar:
      return &kScalarKernels;
  }
  return nullptr;
}

const Kernels* BestAvailable() {
  if (const Kernels* k = Avx2KernelsOrNull()) return k;
  if (const Kernels* k = NeonKernelsOrNull()) return k;
  return &kScalarKernels;
}

// Env override parsing happens once; SetBackendForTest mutates afterwards.
const Kernels* InitialKernels() {
  const char* env = std::getenv("SPARSEDET_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return BestAvailable();
  }
  if (std::strcmp(env, "avx2") == 0) {
    if (const Kernels* k = Avx2KernelsOrNull()) return k;
    return &kScalarKernels;
  }
  if (std::strcmp(env, "neon") == 0) {
    if (const Kernels* k = NeonKernelsOrNull()) return k;
    return &kScalarKernels;
  }
  // "off", "scalar", and anything unrecognized: the scalar reference is
  // always correct (all backends are bit-identical by contract).
  return &kScalarKernels;
}

std::atomic<const Kernels*>& ActivePtr() {
  static std::atomic<const Kernels*> active{InitialKernels()};
  return active;
}

}  // namespace

const Kernels& Active() {
  return *ActivePtr().load(std::memory_order_relaxed);
}

const Kernels& Scalar() { return kScalarKernels; }

Backend ActiveBackend() { return Active().backend; }

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool BackendAvailable(Backend backend) {
  return ResolveBackend(backend) != nullptr;
}

Backend SetBackendForTest(Backend backend) {
  const Kernels* next = ResolveBackend(backend);
  if (next == nullptr) next = &kScalarKernels;
  const Kernels* prev =
      ActivePtr().exchange(next, std::memory_order_relaxed);
  return prev->backend;
}

}  // namespace sparsedet::simd
