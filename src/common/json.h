// Minimal JSON value tree + serializer, for machine-readable CLI output.
//
// Only what the tooling needs: null, bool, finite numbers, strings, arrays
// and objects (insertion-ordered). No parsing — sparsedet only emits JSON.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace sparsedet {

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}                       // null
  JsonValue(bool b) : value_(b) {}                       // NOLINT(runtime/explicit)
  JsonValue(double d) : value_(d) {}                     // NOLINT
  JsonValue(int i) : value_(static_cast<double>(i)) {}   // NOLINT
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}   // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}     // NOLINT

  static JsonValue Array();
  static JsonValue Object();

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_array() const { return std::holds_alternative<ArrayType>(value_); }
  bool is_object() const { return std::holds_alternative<ObjectType>(value_); }

  // Array append; requires is_array().
  JsonValue& Append(JsonValue v);
  // Object insert-or-overwrite; requires is_object().
  JsonValue& Set(const std::string& key, JsonValue v);

  // Compact single-line serialization. Numbers use shortest round-trip
  // formatting; non-finite numbers serialize as null (JSON has no NaN).
  void Serialize(std::ostream& os) const;
  std::string ToString() const;

 private:
  using ArrayType = std::vector<JsonValue>;
  using ObjectType = std::vector<std::pair<std::string, JsonValue>>;
  std::variant<std::nullptr_t, bool, double, std::string, ArrayType,
               ObjectType>
      value_;
};

}  // namespace sparsedet
