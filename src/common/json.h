// Minimal JSON value tree, serializer and strict parser, for the
// machine-readable CLI output and the batch-engine request protocol.
//
// Only what the tooling needs: null, bool, finite numbers, strings, arrays
// and objects (insertion-ordered). The parser is strict RFC-8259: one value
// per input, no trailing garbage, no NaN/Inf, and every rejection carries a
// line:column position so batch users can fix their request files.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.h"

namespace sparsedet {

class JsonValue {
 public:
  using ArrayType = std::vector<JsonValue>;
  using ObjectType = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}                       // null
  JsonValue(bool b) : value_(b) {}                       // NOLINT(runtime/explicit)
  JsonValue(double d) : value_(d) {}                     // NOLINT
  JsonValue(int i) : value_(static_cast<double>(i)) {}   // NOLINT
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}   // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}     // NOLINT

  static JsonValue Array();
  static JsonValue Object();

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<ArrayType>(value_); }
  bool is_object() const { return std::holds_alternative<ObjectType>(value_); }

  // Scalar accessors; each requires the matching type.
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Container accessors. Size() requires an array or object; At() an array.
  std::size_t Size() const;
  const JsonValue& At(std::size_t index) const;
  // Object lookup; nullptr when the key is absent. Requires is_object().
  const JsonValue* Find(const std::string& key) const;
  // Insertion-ordered fields; requires is_object().
  const ObjectType& Fields() const;
  // Elements; requires is_array().
  const ArrayType& Items() const;

  // Array append; requires is_array().
  JsonValue& Append(JsonValue v);
  // Object insert-or-overwrite; requires is_object().
  JsonValue& Set(const std::string& key, JsonValue v);

  // Compact single-line serialization. Numbers use shortest round-trip
  // formatting; non-finite numbers serialize as null (JSON has no NaN).
  void Serialize(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, ArrayType,
               ObjectType>
      value_;
};

// Raised by ParseJson. `line` and `column` are 1-based positions into the
// parsed text; what() already embeds them.
class JsonParseError : public InvalidArgument {
 public:
  JsonParseError(const std::string& what, int line, int column)
      : InvalidArgument(what), line_(line), column_(column) {}
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

// Default nesting cap for ParseJson. Callers facing untrusted input (the
// engine's request path) pass a smaller `max_depth` so a deeply nested
// document is rejected before it can drive unbounded recursion/allocation.
constexpr int kDefaultMaxJsonDepth = 256;

// Parses exactly one JSON value from `text` (surrounding whitespace is
// allowed, anything else after the value is an error). Strict mode:
// duplicate object keys, NaN/Infinity literals, numbers that overflow a
// double, lone surrogates and control characters inside strings are all
// rejected. Nesting beyond `max_depth` levels (>= 1) is rejected. Throws
// JsonParseError.
JsonValue ParseJson(std::string_view text,
                    int max_depth = kDefaultMaxJsonDepth);

}  // namespace sparsedet
