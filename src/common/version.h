// Build identity surfaced by /statusz and `sparsedet --version`-style
// output. Bump the version when the wire protocol or response schema
// changes shape.
#pragma once

namespace sparsedet {

inline constexpr const char* kVersion = "1.0.0";
inline constexpr const char* kBuildName = "sparsedet";

}  // namespace sparsedet
