#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace sparsedet {

std::size_t DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threads) {
  if (n == 0) return;
  std::size_t workers = threads == 0 ? DefaultThreadCount() : threads;
  workers = std::min(workers, n);

  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  pool.reserve(workers);

  // Dynamic chunking: workers pull modest chunks so uneven trial costs do
  // not leave threads idle.
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 8));

  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk);
        if (begin >= n || failed.load(std::memory_order_relaxed)) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            body(i);
          } catch (...) {
            if (!failed.exchange(true)) first_error = std::current_exception();
            return;
          }
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (failed && first_error) std::rethrow_exception(first_error);
}

}  // namespace sparsedet
