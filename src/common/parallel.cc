#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "resilience/cancel.h"

namespace sparsedet {
namespace {

std::atomic<std::size_t> g_solver_threads{0};

// See SetParallelDispatchThresholdNs(); 100 us default per BENCH_PR5.json.
constexpr std::size_t kDefaultDispatchThresholdNs = 100000;
std::atomic<std::size_t> g_dispatch_threshold_ns{kDefaultDispatchThresholdNs};

// One contiguous sub-range of [0, n) owned by a worker. Workers claim
// chunks from their own shard under its mutex; thieves split off the upper
// half under the same mutex, so `next`/`end` never race.
struct alignas(64) Shard {
  std::mutex mutex;
  std::size_t next = 0;
  std::size_t end = 0;
};

struct LoopState {
  std::vector<Shard> shards;
  std::size_t grain = 1;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;  // guarded by error_mutex

  void Capture(std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error == nullptr) first_error = std::move(error);
    failed.store(true, std::memory_order_release);
  }
};

// Claims up to `grain` indices from the shard; false when it is empty.
bool ClaimChunk(Shard& shard, std::size_t grain, std::size_t* begin,
                std::size_t* end) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.next >= shard.end) return false;
  *begin = shard.next;
  *end = std::min(shard.end, shard.next + grain);
  shard.next = *end;
  return true;
}

// Steals the upper half of the fullest shard into [begin, end); false when
// every shard is empty.
bool StealChunk(LoopState& state, std::size_t self, std::size_t* begin,
                std::size_t* end) {
  const std::size_t count = state.shards.size();
  std::size_t victim = count;
  std::size_t best_remaining = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (i == self) continue;
    Shard& shard = state.shards[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::size_t remaining =
        shard.end > shard.next ? shard.end - shard.next : 0;
    if (remaining > best_remaining) {
      best_remaining = remaining;
      victim = i;
    }
  }
  if (victim == count) return false;
  Shard& shard = state.shards[victim];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.next >= shard.end) return false;  // drained since we looked
  const std::size_t remaining = shard.end - shard.next;
  const std::size_t take = std::max<std::size_t>(
      std::min(remaining, state.grain), remaining / 2);
  *begin = shard.end - take;
  *end = shard.end;
  shard.end = *begin;
  return true;
}

void WorkerLoop(LoopState& state, std::size_t self,
                const std::function<void(std::size_t)>& body) {
  Shard& own = state.shards[self];
  std::size_t begin = 0;
  std::size_t end = 0;
  for (;;) {
    if (state.failed.load(std::memory_order_acquire)) return;
    if (!ClaimChunk(own, state.grain, &begin, &end)) {
      if (!StealChunk(state, self, &begin, &end)) return;
      // Adopt the stolen range as the new own shard so follow-up claims
      // stay chunk-sized instead of re-stealing per chunk.
      {
        std::lock_guard<std::mutex> lock(own.mutex);
        own.next = begin;
        own.end = end;
      }
      continue;
    }
    try {
      resilience::CancellationPoint();
      for (std::size_t i = begin; i < end; ++i) body(i);
    } catch (...) {
      state.Capture(std::current_exception());
      return;
    }
  }
}

}  // namespace

std::size_t DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t SetSolverThreads(std::size_t threads) {
  return g_solver_threads.exchange(threads, std::memory_order_relaxed);
}

std::size_t SolverThreads() {
  const std::size_t configured =
      g_solver_threads.load(std::memory_order_relaxed);
  return configured == 0 ? DefaultThreadCount() : configured;
}

std::size_t SetParallelDispatchThresholdNs(std::size_t ns) {
  return g_dispatch_threshold_ns.exchange(
      ns == 0 ? kDefaultDispatchThresholdNs : ns, std::memory_order_relaxed);
}

std::size_t ParallelDispatchThresholdNs() {
  return g_dispatch_threshold_ns.load(std::memory_order_relaxed);
}

void ParallelFor(std::size_t n, const ParallelOptions& options,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Size-aware serial guard: when the caller can estimate per-index cost
  // and the whole loop is cheaper than the measured dispatch overhead,
  // forking can only lose — run inline.
  if (options.work_ns_hint > 0 &&
      n < ParallelDispatchThresholdNs() / options.work_ns_hint) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t requested =
      options.threads == 0 ? SolverThreads() : options.threads;
  // Never more workers than chunks of work: a 3-index loop at grain 1
  // involves at most 3 threads (2 spawned), and a loop that fits in one
  // chunk runs entirely inline.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t workers = std::min(requested, chunks);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  LoopState state;
  state.shards = std::vector<Shard>(workers);
  state.grain = grain;
  // Initial static partition: contiguous, near-equal shards. Stealing
  // rebalances from here, so the split only has to be roughly fair.
  const std::size_t base = n / workers;
  const std::size_t extra = n % workers;
  std::size_t start = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t size = base + (w < extra ? 1 : 0);
    state.shards[w].next = start;
    state.shards[w].end = start + size;
    start += size;
  }

  // Workers inherit the caller's cancellation target: the token lives in a
  // thread-local, so it must be re-installed inside each spawned thread.
  const resilience::CancelToken* cancel = resilience::CurrentCancelToken();
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back([&state, &body, cancel, w] {
      resilience::ScopedCancelScope scope(cancel);
      WorkerLoop(state, w, body);
    });
  }
  WorkerLoop(state, /*self=*/0, body);  // the caller is worker 0
  for (std::thread& t : pool) t.join();

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state.error_mutex);
    error = state.first_error;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threads) {
  ParallelOptions options;
  options.threads = threads;
  ParallelFor(n, options, body);
}

}  // namespace sparsedet
