// Precondition / invariant checking macros.
//
// SPARSEDET_REQUIRE(cond, msg)  — public-API precondition; throws
//                                 InvalidArgument with file:line context.
// SPARSEDET_CHECK(cond, msg)    — always-on internal invariant; throws
//                                 InternalError.
// SPARSEDET_DCHECK(cond, msg)   — debug-only internal invariant; compiles
//                                 out in NDEBUG builds.
#pragma once

#include <sstream>
#include <string>

#include "common/error.h"

namespace sparsedet::internal {

[[noreturn]] inline void ThrowInvalidArgument(const char* file, int line,
                                              const char* cond,
                                              const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed at " << file << ':' << line << ": (" << cond
     << ") " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void ThrowInternal(const char* file, int line,
                                       const char* cond,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed at " << file << ':' << line << ": (" << cond << ") "
     << msg;
  throw InternalError(os.str());
}

}  // namespace sparsedet::internal

#define SPARSEDET_REQUIRE(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::sparsedet::internal::ThrowInvalidArgument(__FILE__, __LINE__, #cond, \
                                                  (msg));                    \
    }                                                                        \
  } while (false)

#define SPARSEDET_CHECK(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::sparsedet::internal::ThrowInternal(__FILE__, __LINE__, #cond,   \
                                           (msg));                      \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define SPARSEDET_DCHECK(cond, msg) \
  do {                              \
  } while (false)
#else
#define SPARSEDET_DCHECK(cond, msg) SPARSEDET_CHECK(cond, msg)
#endif
