// Deterministic random number generation.
//
// All sparsedet randomness flows through `Rng`, a xoshiro256++ generator
// seeded through splitmix64. Two properties matter for reproducible
// experiments:
//   * an `Rng` is a small value type; copying one forks the stream;
//   * `Substream(label)` derives an independent generator from a parent seed
//     and an integer label, so Monte-Carlo trial i can always use
//     `base.Substream(i)` and produce the same numbers regardless of how
//     trials are scheduled across threads.
#pragma once

#include <array>
#include <cstdint>

namespace sparsedet {

// splitmix64 step: used for seeding and substream derivation.
// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c (public domain).
constexpr std::uint64_t SplitMix64Next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ uniform generator (Blackman & Vigna, public domain reference
// implementation). Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Uses rejection sampling, so
  // the result is exactly uniform.
  std::uint64_t UniformInt(std::uint64_t n);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // An independent generator derived deterministically from this
  // generator's *original seed* and `label`. Does not perturb this stream.
  Rng Substream(std::uint64_t label) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::array<std::uint64_t, 4> s_;
};

}  // namespace sparsedet
