#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace sparsedet::common {

namespace {
constexpr std::size_t kMinBlockDoubles = 1024;  // 8 KiB
}  // namespace

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

double* ScratchArena::Alloc(std::size_t n) {
  if (n == 0) n = 1;  // keep returned pointers distinct and dereferenceable
  // Bump within the current block when it fits.
  if (block_ < blocks_.size() && used_ + n <= blocks_[block_].capacity) {
    double* p = blocks_[block_].data.get() + used_;
    used_ += n;
    return p;
  }
  // Otherwise advance to the next block that fits (blocks retain their
  // capacity across frames, so steady state allocates nothing).
  std::size_t next = block_ < blocks_.size() ? block_ + 1 : blocks_.size();
  while (next < blocks_.size() && blocks_[next].capacity < n) ++next;
  if (next == blocks_.size()) {
    const std::size_t last_cap =
        blocks_.empty() ? 0 : blocks_.back().capacity;
    const std::size_t cap = std::max({n, 2 * last_cap, kMinBlockDoubles});
    blocks_.push_back(Block{std::make_unique<double[]>(cap), cap});
  }
  block_ = next;
  used_ = n;
  return blocks_[block_].data.get();
}

double* ScratchArena::Frame::AllocZeroed(std::size_t n) {
  double* p = Alloc(n);
  std::memset(p, 0, (n == 0 ? 1 : n) * sizeof(double));
  return p;
}

}  // namespace sparsedet::common
