// Thread-local scratch arena for the solver hot loops.
//
// The propagation and region-table kernels need short-lived double buffers
// (double-buffered Markov state vectors, n-fold convolution ping-pong).
// Allocating them per step was a measurable fraction of a cold solve, so
// they come from a per-thread bump arena instead: blocks are allocated
// once, grow geometrically, persist for the thread's lifetime, and a
// solve's allocations are released wholesale when its Frame closes.
//
// Usage:
//   common::ScratchArena::Frame frame;
//   double* buf = frame.Alloc(n);        // uninitialized
//   double* zed = frame.AllocZeroed(n);  // zero-filled
//
// Frames nest (inner solves open their own), pointers stay valid until the
// owning Frame is destroyed, and nothing here is thread-safe or needs to
// be — the arena is thread-local by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace sparsedet::common {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  static ScratchArena& ThreadLocal();

  // RAII watermark over the calling thread's arena.
  class Frame {
   public:
    Frame() : Frame(ThreadLocal()) {}
    explicit Frame(ScratchArena& arena)
        : arena_(arena),
          saved_block_(arena.block_),
          saved_used_(arena.used_) {}
    ~Frame() {
      arena_.block_ = saved_block_;
      arena_.used_ = saved_used_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    double* Alloc(std::size_t n) { return arena_.Alloc(n); }
    double* AllocZeroed(std::size_t n);

   private:
    ScratchArena& arena_;
    std::size_t saved_block_;
    std::size_t saved_used_;
  };

 private:
  struct Block {
    std::unique_ptr<double[]> data;
    std::size_t capacity = 0;
  };

  double* Alloc(std::size_t n);

  std::vector<Block> blocks_;
  std::size_t block_ = 0;  // blocks_[block_] is the current bump target
  std::size_t used_ = 0;   // doubles consumed in the current block
};

}  // namespace sparsedet::common
