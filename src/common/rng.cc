#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace sparsedet {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
  // xoshiro256++ must not start from the all-zero state; splitmix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SPARSEDET_REQUIRE(lo <= hi, "Uniform requires lo <= hi");
  return lo + (hi - lo) * UniformDouble();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  SPARSEDET_REQUIRE(n > 0, "UniformInt requires n > 0");
  // Rejection sampling over the largest multiple of n.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return draw % n;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Substream(std::uint64_t label) const {
  // Mix the original seed with the label through splitmix64 twice so that
  // adjacent labels give unrelated seeds.
  std::uint64_t sm = seed_ ^ (0x9e3779b97f4a7c15ULL * (label + 1));
  const std::uint64_t derived = SplitMix64Next(sm) ^ SplitMix64Next(sm);
  return Rng(derived);
}

}  // namespace sparsedet
