// Data-parallel helper for embarrassingly parallel loops (Monte-Carlo
// trials, per-NEDR stage pmfs, parameter sweeps).
//
// ParallelFor runs `body(i)` for every i in [0, n) on up to `threads`
// workers using chunked work stealing: the index range is split into one
// contiguous shard per worker (good locality), workers claim small chunks
// from their own shard, and a worker whose shard is exhausted steals the
// upper half of the fullest remaining shard. Uneven per-index costs (tail
// NEDR pmfs shrink with j; Monte-Carlo trials vary with the track drawn)
// therefore cannot leave workers idle behind one long static partition.
//
// Contracts:
//   * Results must be written to pre-sized storage indexed by `i` (or
//     accumulated commutatively); the helper performs no synchronization
//     beyond joining the workers, and callers that reduce must do so in
//     deterministic index order so output is byte-identical for any thread
//     count.
//   * The calling thread participates as worker 0, and no more workers are
//     spawned than there are chunks of work: ceil(n / grain) - 1 spawned
//     threads at most, zero when the loop fits in one chunk.
//   * Exceptions thrown by `body` are captured (first one wins, guarded by
//     a mutex — no racy exception_ptr writes) and rethrown on the calling
//     thread after all workers have stopped.
//   * Cancellation-aware: the caller's resilience::CancelToken (if any) is
//     re-installed inside every worker and checked via CancellationPoint()
//     between chunks, so a timed-out solve stops burning CPU on every
//     worker and the Cancelled exception surfaces on the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace sparsedet {

// Number of workers ParallelFor uses when no explicit count and no solver
// default is configured: std::thread::hardware_concurrency(), at least 1.
std::size_t DefaultThreadCount();

// Process-wide default worker count for ParallelFor calls with
// `threads == 0` (the "--solver-threads" knob). 0 restores the hardware
// default. Set once at startup / engine construction; reads are lock-free.
// Returns the previous setting so scoped owners (BatchEngine) can restore.
std::size_t SetSolverThreads(std::size_t threads);

// The resolved default: the configured solver-thread count, or
// DefaultThreadCount() when unconfigured. Always >= 1.
std::size_t SolverThreads();

// Minimum estimated total work (in nanoseconds) below which a ParallelFor
// call with a cost hint runs inline instead of spawning workers. The
// default (100 us) sits above the measured 9.6-74 us dispatch cost
// (BENCH_PR5.json BM_ParallelForDispatch), so a loop only forks when the
// parallel upside can actually repay the spawn/join overhead. Returns the
// previous threshold; 0 restores the default. Intended for tests and
// calibration, not per-call tuning.
std::size_t SetParallelDispatchThresholdNs(std::size_t ns);
std::size_t ParallelDispatchThresholdNs();

struct ParallelOptions {
  // Worker count; 0 uses SolverThreads(), 1 runs inline on the caller.
  std::size_t threads = 0;
  // Minimum indices per claimed chunk. Raise for very cheap bodies so the
  // per-chunk claim cost (one brief mutex acquisition) amortizes.
  std::size_t grain = 1;
  // Rough per-index cost estimate in nanoseconds; 0 = unknown. When given,
  // the loop stays serial whenever n * work_ns_hint falls below the
  // dispatch threshold — tiny paper-sized solves then skip the 9.6-74 us
  // spawn/join cost entirely. Results are byte-identical either way (the
  // ParallelFor contract already requires thread-count independence), so
  // the hint only ever changes speed, never output.
  std::size_t work_ns_hint = 0;
};

// Runs body(i) for all i in [0, n).
void ParallelFor(std::size_t n, const ParallelOptions& options,
                 const std::function<void(std::size_t)>& body);

// Shorthand keeping the original signature: `threads == 0` picks the
// solver default; `threads == 1` runs inline (useful for debugging and
// determinism tests — though results must not depend on thread count by
// construction).
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threads = 0);

}  // namespace sparsedet
