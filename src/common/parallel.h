// Minimal data-parallel helper for embarrassingly parallel loops
// (Monte-Carlo trials, parameter sweeps).
//
// ParallelFor partitions [0, n) into contiguous chunks, one per worker
// thread, and runs `body(i)` for every index. Results must be written to
// pre-sized storage indexed by `i`; the helper itself performs no
// synchronization beyond joining the workers. Exceptions thrown by `body`
// are captured and rethrown (the first one) on the calling thread.
#pragma once

#include <cstddef>
#include <functional>

namespace sparsedet {

// Number of workers ParallelFor uses when `threads == 0`:
// std::thread::hardware_concurrency(), at least 1.
std::size_t DefaultThreadCount();

// Runs body(i) for all i in [0, n). `threads == 0` picks the default;
// `threads == 1` runs inline (useful for debugging and determinism tests —
// though results must not depend on thread count by construction).
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t threads = 0);

}  // namespace sparsedet
