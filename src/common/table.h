// Console / CSV table output used by the bench binaries.
//
// Each experiment harness builds a `Table`, adds one row per sweep point,
// then calls PrintText (aligned columns, for humans) and optionally
// WriteCsv (for plotting). Cells are stored as preformatted strings; the
// numeric helpers pick a compact fixed-precision rendering.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace sparsedet {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  // Starts a new row; subsequent Add* calls fill it left to right.
  // Throws InvalidArgument if the previous row is incomplete.
  void BeginRow();
  void AddCell(std::string value);
  void AddNumber(double value, int precision = 4);
  void AddInt(long long value);

  const std::vector<std::string>& row(std::size_t i) const;

  // Aligned, human-readable rendering.
  void PrintText(std::ostream& os) const;
  // RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
  void WriteCsv(std::ostream& os) const;
  // Writes CSV to `path`, creating/truncating the file. Returns false and
  // leaves no partial output requirements if the file cannot be opened.
  bool WriteCsvFile(const std::string& path) const;

 private:
  void CheckRowComplete() const;

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 4);

}  // namespace sparsedet
