// Wall-clock stopwatch for the timing experiments (E5).
#pragma once

#include <chrono>

namespace sparsedet {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sparsedet
