// Wall-clock stopwatch for the timing experiments (E5).
#pragma once

#include <chrono>
#include <cstdint>

namespace sparsedet {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Nanoseconds since construction, the last Restart(), or the previous
  // Lap() — whichever came last. Restarts the watch, so consecutive calls
  // partition a run into per-phase intervals.
  std::int64_t Lap() {
    const Clock::time_point now = Clock::now();
    const std::int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count();
    start_ = now;
    return ns;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Stopwatch intervals must come from a monotonic clock");
  Clock::time_point start_;
};

}  // namespace sparsedet
