#include "common/framing.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

namespace sparsedet::framing {

LineDecoder::LineDecoder(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes) {}

void LineDecoder::Feed(const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == '\n') {
      buffer_.push_back('\n');
      truncated_lines_.push_back(dropping_);
      dropping_ = false;
      partial_kept_ = 0;
      continue;
    }
    if (dropping_) continue;
    if (max_line_bytes_ != 0 && partial_kept_ >= max_line_bytes_) {
      dropping_ = true;
      continue;
    }
    buffer_.push_back(c);
    ++partial_kept_;
  }
}

bool LineDecoder::Next(std::string* line, bool* truncated) {
  *truncated = false;
  // Scan only bytes not yet examined; Feed appends, so earlier bytes are
  // known newline-free.
  const std::size_t nl = buffer_.find('\n', scan_pos_);
  if (nl == std::string::npos) {
    scan_pos_ = buffer_.size();
    return false;
  }
  line->assign(buffer_, 0, nl);
  buffer_.erase(0, nl + 1);
  scan_pos_ = 0;
  *truncated = truncated_lines_.front();
  truncated_lines_.erase(truncated_lines_.begin());
  return true;
}

bool LineDecoder::has_partial() const {
  // Bytes after the last newline (or any dropped tail) form a partial.
  return partial_kept_ > 0 || dropping_;
}

bool ReadBoundedLine(std::istream& in, std::string& line,
                     std::size_t max_bytes, bool* truncated) {
  *truncated = false;
  if (max_bytes == 0) return static_cast<bool>(std::getline(in, line));
  line.clear();
  std::streambuf* buf = in.rdbuf();
  constexpr int kEof = std::char_traits<char>::eof();
  int ch = buf->sbumpc();
  if (ch == kEof) {
    in.setstate(std::ios::eofbit | std::ios::failbit);
    return false;
  }
  while (ch != kEof && ch != '\n') {
    if (line.size() < max_bytes) {
      line.push_back(static_cast<char>(ch));
    } else {
      *truncated = true;
    }
    ch = buf->sbumpc();
  }
  if (ch == kEof) in.setstate(std::ios::eofbit);
  return true;
}

namespace {

bool IsSocket(int fd) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return false;
  return S_ISSOCK(st.st_mode);
}

ssize_t WriteOnce(int fd, const char* data, std::size_t n, bool is_socket) {
  // MSG_NOSIGNAL turns a dead-peer SIGPIPE into a plain EPIPE error the
  // caller can handle; plain files/pipes take the write() path.
  return is_socket ? ::send(fd, data, n, MSG_NOSIGNAL)
                   : ::write(fd, data, n);
}

}  // namespace

bool WriteAllFd(int fd, const char* data, std::size_t n) {
  const bool is_socket = IsSocket(fd);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = WriteOnce(fd, data + done, n - done, is_socket);
    if (w > 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;  // 0 or a non-retryable error: the sink is gone
  }
  return true;
}

WriteResult WriteSomeFd(int fd, const char* data, std::size_t n) {
  WriteResult result;
  const bool is_socket = IsSocket(fd);
  while (result.written < n) {
    const ssize_t w =
        WriteOnce(fd, data + result.written, n - result.written, is_socket);
    if (w > 0) {
      result.written += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      result.would_block = true;
      return result;
    }
    result.error = true;
    return result;
  }
  return result;
}

FdWriterBuf::FdWriterBuf(int fd, std::size_t buffer_bytes)
    : fd_(fd), buffer_(buffer_bytes > 0 ? buffer_bytes : 1) {
  setp(buffer_.data(), buffer_.data() + buffer_.size());
}

FdWriterBuf::~FdWriterBuf() { FlushBuffer(); }

bool FdWriterBuf::FlushBuffer() {
  const std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
  if (pending > 0 && !failed_) {
    if (!WriteAllFd(fd_, pbase(), pending)) failed_ = true;
  }
  setp(buffer_.data(), buffer_.data() + buffer_.size());
  return !failed_;
}

int FdWriterBuf::overflow(int ch) {
  if (!FlushBuffer()) return traits_type::eof();
  if (ch != traits_type::eof()) {
    *pptr() = static_cast<char>(ch);
    pbump(1);
  }
  return ch == traits_type::eof() ? 0 : ch;
}

int FdWriterBuf::sync() { return FlushBuffer() ? 0 : -1; }

}  // namespace sparsedet::framing
