#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace sparsedet {

std::string FormatDouble(double value, int precision) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  SPARSEDET_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void Table::BeginRow() {
  CheckRowComplete();
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
}

void Table::AddCell(std::string value) {
  SPARSEDET_REQUIRE(!rows_.empty(), "call BeginRow before AddCell");
  SPARSEDET_REQUIRE(rows_.back().size() < columns_.size(),
                    "row already has a cell for every column");
  rows_.back().push_back(std::move(value));
}

void Table::AddNumber(double value, int precision) {
  AddCell(FormatDouble(value, precision));
}

void Table::AddInt(long long value) { AddCell(std::to_string(value)); }

const std::vector<std::string>& Table::row(std::size_t i) const {
  SPARSEDET_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

void Table::CheckRowComplete() const {
  SPARSEDET_REQUIRE(rows_.empty() || rows_.back().size() == columns_.size(),
                    "previous row is incomplete");
}

void Table::PrintText(std::ostream& os) const {
  CheckRowComplete();
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::WriteCsv(std::ostream& os) const {
  CheckRowComplete();
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << CsvEscape(cells[c]);
    }
    os << '\n';
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
}

bool Table::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteCsv(out);
  return static_cast<bool>(out);
}

}  // namespace sparsedet
