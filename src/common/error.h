// Error types used across the sparsedet libraries.
//
// Public API functions validate their preconditions and throw
// `InvalidArgument` (or a more specific subclass) on violation; internal
// invariants are enforced with the SPARSEDET_DCHECK macros in check.h.
#pragma once

#include <stdexcept>
#include <string>

namespace sparsedet {

// Base class for all sparsedet errors, so callers can catch one type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A caller-supplied argument violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// A computation left its documented domain (overflow, divergence, ...).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

// An internal invariant failed. Seeing this is always a sparsedet bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

}  // namespace sparsedet
