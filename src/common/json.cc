#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace sparsedet {

JsonValue JsonValue::Array() {
  JsonValue v;
  v.value_ = ArrayType{};
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.value_ = ObjectType{};
  return v;
}

bool JsonValue::AsBool() const {
  SPARSEDET_REQUIRE(is_bool(), "AsBool requires a JSON bool");
  return std::get<bool>(value_);
}

double JsonValue::AsDouble() const {
  SPARSEDET_REQUIRE(is_number(), "AsDouble requires a JSON number");
  return std::get<double>(value_);
}

const std::string& JsonValue::AsString() const {
  SPARSEDET_REQUIRE(is_string(), "AsString requires a JSON string");
  return std::get<std::string>(value_);
}

std::size_t JsonValue::Size() const {
  if (const ArrayType* arr = std::get_if<ArrayType>(&value_)) {
    return arr->size();
  }
  SPARSEDET_REQUIRE(is_object(), "Size requires a JSON array or object");
  return std::get<ObjectType>(value_).size();
}

const JsonValue& JsonValue::At(std::size_t index) const {
  SPARSEDET_REQUIRE(is_array(), "At requires a JSON array");
  const ArrayType& arr = std::get<ArrayType>(value_);
  SPARSEDET_REQUIRE(index < arr.size(), "JSON array index out of range");
  return arr[index];
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  SPARSEDET_REQUIRE(is_object(), "Find requires a JSON object");
  for (const auto& [existing_key, value] : std::get<ObjectType>(value_)) {
    if (existing_key == key) return &value;
  }
  return nullptr;
}

const JsonValue::ObjectType& JsonValue::Fields() const {
  SPARSEDET_REQUIRE(is_object(), "Fields requires a JSON object");
  return std::get<ObjectType>(value_);
}

const JsonValue::ArrayType& JsonValue::Items() const {
  SPARSEDET_REQUIRE(is_array(), "Items requires a JSON array");
  return std::get<ArrayType>(value_);
}

JsonValue& JsonValue::Append(JsonValue v) {
  SPARSEDET_REQUIRE(is_array(), "Append requires a JSON array");
  std::get<ArrayType>(value_).push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  SPARSEDET_REQUIRE(is_object(), "Set requires a JSON object");
  auto& fields = std::get<ObjectType>(value_);
  for (auto& [existing_key, existing_value] : fields) {
    if (existing_key == key) {
      existing_value = std::move(v);
      return *this;
    }
  }
  fields.emplace_back(key, std::move(v));
  return *this;
}

namespace {

void WriteEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char raw : s) {
    const unsigned char ch = static_cast<unsigned char>(raw);
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

void WriteNumber(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  // Exactly representable integers print as integers.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    os << buf;
    return;
  }
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, d);
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == d) {
      os << candidate;
      return;
    }
  }
  os << buf;
}

}  // namespace

void JsonValue::Serialize(std::ostream& os) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&value_)) {
    WriteNumber(os, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    WriteEscaped(os, *s);
  } else if (const ArrayType* arr = std::get_if<ArrayType>(&value_)) {
    os << '[';
    for (std::size_t i = 0; i < arr->size(); ++i) {
      if (i != 0) os << ',';
      (*arr)[i].Serialize(os);
    }
    os << ']';
  } else {
    const ObjectType& obj = std::get<ObjectType>(value_);
    os << '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i != 0) os << ',';
      WriteEscaped(os, obj[i].first);
      os << ':';
      obj[i].second.Serialize(os);
    }
    os << '}';
  }
}

std::string JsonValue::ToString() const {
  std::ostringstream os;
  Serialize(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue ParseDocument() {
    SkipWhitespace();
    JsonValue value = ParseValue(0);
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing garbage after JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    int line = 1;
    int column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << column << ": "
       << message;
    throw JsonParseError(os.str(), line, column);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Next() {
    if (AtEnd()) Fail("unexpected end of input");
    return text_[pos_++];
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void Expect(char c) {
    if (AtEnd() || Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void ExpectLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("invalid literal (expected " + std::string(word) + ")");
    }
    pos_ += word.size();
  }

  JsonValue ParseValue(int depth) {
    if (depth > max_depth_) Fail("nesting too deep");
    if (AtEnd()) Fail("unexpected end of input");
    switch (Peek()) {
      case 'n':
        ExpectLiteral("null");
        return JsonValue();
      case 't':
        ExpectLiteral("true");
        return JsonValue(true);
      case 'f':
        ExpectLiteral("false");
        return JsonValue(false);
      case '"':
        return JsonValue(ParseString());
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        if (Peek() == '-' || (Peek() >= '0' && Peek() <= '9')) {
          return JsonValue(ParseNumber());
        }
        // Common near-JSON inputs get a pointed message.
        if (text_.substr(pos_, 3) == "NaN" || text_.substr(pos_, 3) == "nan") {
          Fail("NaN is not valid JSON");
        }
        if (text_.substr(pos_, 8) == "Infinity" ||
            text_.substr(pos_, 9) == "-Infinity") {
          Fail("Infinity is not valid JSON");
        }
        Fail("unexpected character");
    }
  }

  JsonValue ParseArray(int depth) {
    Expect('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      SkipWhitespace();
      arr.Append(ParseValue(depth + 1));
      SkipWhitespace();
      if (AtEnd()) Fail("unterminated array");
      const char c = Next();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in array");
      }
    }
  }

  JsonValue ParseObject(int depth) {
    Expect('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') Fail("expected object key string");
      const std::string key = ParseString();
      if (obj.Find(key) != nullptr) {
        Fail("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      Expect(':');
      SkipWhitespace();
      obj.Set(key, ParseValue(depth + 1));
      SkipWhitespace();
      if (AtEnd()) Fail("unterminated object");
      const char c = Next();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
  }

  unsigned ParseHex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = Next();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        Fail("invalid \\u escape (expected 4 hex digits)");
      }
    }
    return value;
  }

  void AppendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (AtEnd()) Fail("unterminated string");
      const char c = Next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        Fail("raw control character in string (use \\u escape)");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = Next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = ParseHex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (AtEnd() || Peek() != '\\') Fail("lone high surrogate");
            ++pos_;
            if (AtEnd() || Peek() != 'u') Fail("lone high surrogate");
            ++pos_;
            const unsigned low = ParseHex4();
            if (low < 0xDC00 || low > 0xDFFF) Fail("invalid surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            Fail("lone low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          --pos_;
          Fail("invalid escape sequence");
      }
    }
  }

  double ParseNumber() {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]*.
    if (AtEnd() || Peek() < '0' || Peek() > '9') Fail("invalid number");
    if (Peek() == '0') {
      ++pos_;
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        Fail("leading zeros are not allowed");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    // Fraction.
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Fail("expected digits after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    // Exponent.
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        Fail("expected digits in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      Fail("number overflows a double");
    }
    return value;
  }

  std::string_view text_;
  int max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(std::string_view text, int max_depth) {
  if (max_depth < 1) {
    throw InvalidArgument("ParseJson max_depth must be >= 1");
  }
  Parser parser(text, max_depth);
  return parser.ParseDocument();
}

}  // namespace sparsedet
