#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace sparsedet {

JsonValue JsonValue::Array() {
  JsonValue v;
  v.value_ = ArrayType{};
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.value_ = ObjectType{};
  return v;
}

JsonValue& JsonValue::Append(JsonValue v) {
  SPARSEDET_REQUIRE(is_array(), "Append requires a JSON array");
  std::get<ArrayType>(value_).push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  SPARSEDET_REQUIRE(is_object(), "Set requires a JSON object");
  auto& fields = std::get<ObjectType>(value_);
  for (auto& [existing_key, existing_value] : fields) {
    if (existing_key == key) {
      existing_value = std::move(v);
      return *this;
    }
  }
  fields.emplace_back(key, std::move(v));
  return *this;
}

namespace {

void WriteEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char raw : s) {
    const unsigned char ch = static_cast<unsigned char>(raw);
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

void WriteNumber(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  // Exactly representable integers print as integers.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    os << buf;
    return;
  }
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, d);
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == d) {
      os << candidate;
      return;
    }
  }
  os << buf;
}

}  // namespace

void JsonValue::Serialize(std::ostream& os) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&value_)) {
    WriteNumber(os, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    WriteEscaped(os, *s);
  } else if (const ArrayType* arr = std::get_if<ArrayType>(&value_)) {
    os << '[';
    for (std::size_t i = 0; i < arr->size(); ++i) {
      if (i != 0) os << ',';
      (*arr)[i].Serialize(os);
    }
    os << ']';
  } else {
    const ObjectType& obj = std::get<ObjectType>(value_);
    os << '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i != 0) os << ',';
      WriteEscaped(os, obj[i].first);
      os << ':';
      obj[i].second.Serialize(os);
    }
    os << '}';
  }
}

std::string JsonValue::ToString() const {
  std::ostringstream os;
  Serialize(os);
  return os.str();
}

}  // namespace sparsedet
