// JSONL framing and fd-level write utilities shared by every serving
// front-end (the stdio `serve` loop and the TCP server).
//
// Three concerns live here so the two transports cannot drift apart:
//
//   * LineDecoder — incremental splitting of an arbitrary byte stream into
//     newline-terminated frames with the same max-line-bytes semantics the
//     engine's bounded getline enforces: an oversized line keeps its first
//     `max_line_bytes` bytes, is flagged truncated, and the excess is
//     dropped (never buffered), so a hostile peer cannot balloon memory.
//   * ReadBoundedLine — the istream flavor of the same contract, used by
//     the stdio path (moved here from the engine so there is exactly one
//     implementation of the bound).
//   * WriteAllFd / WriteSomeFd / FdWriterBuf — EINTR- and partial-write-
//     correct fd writers. WriteAllFd loops a blocking fd to completion;
//     WriteSomeFd is the non-blocking single-shot used by the TCP event
//     loop (reports would-block distinctly from error); FdWriterBuf is a
//     std::streambuf over WriteAllFd so stream-based code (the stdio serve
//     loop) gets the same guarantees through operator<<.
#pragma once

#include <cstddef>
#include <istream>
#include <streambuf>
#include <string>
#include <vector>

namespace sparsedet::framing {

// Incremental newline splitter with an allocation bound.
class LineDecoder {
 public:
  // `max_line_bytes` caps the bytes kept per line; 0 disables the bound.
  explicit LineDecoder(std::size_t max_line_bytes);

  // Appends raw bytes from the transport. Bytes beyond the per-line cap
  // are counted but not stored.
  void Feed(const char* data, std::size_t n);

  // Pops the next complete line (without its '\n') into `*line`; sets
  // `*truncated` when the line exceeded the cap (the returned prefix is
  // the first max_line_bytes bytes). Returns false when no complete line
  // is buffered yet.
  bool Next(std::string* line, bool* truncated);

  // A partial (unterminated) line is sitting in the buffer — used by idle
  // policing to spot slow writers that trickle a frame forever.
  bool has_partial() const;

  // Bytes currently buffered (bounded by completed lines + one capped
  // partial; dropped oversize bytes never count).
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;        // undelivered bytes, oldest first
  std::size_t scan_pos_ = 0;  // next byte to scan for '\n'
  // The in-progress (last, unterminated) line exceeded the cap and its
  // tail is being dropped until the next newline.
  bool dropping_ = false;
  // Completed-line truncation flags, oldest first (parallel to the
  // newline-terminated lines currently in buffer_).
  std::vector<bool> truncated_lines_;
  std::size_t partial_kept_ = 0;  // bytes of the current partial line kept
};

// getline with the same allocation bound as LineDecoder: keeps at most
// `max_bytes` of the line, consumes (and drops) the rest, and reports the
// truncation. 0 disables the bound. Matches std::getline semantics
// otherwise, including a final line without a trailing newline.
bool ReadBoundedLine(std::istream& in, std::string& line,
                     std::size_t max_bytes, bool* truncated);

// Writes all `n` bytes to a blocking fd, retrying on EINTR and short
// writes. Returns true on success, false on a real write error. Sockets
// are written with MSG_NOSIGNAL so a closed peer surfaces as EPIPE, not a
// process-killing SIGPIPE.
bool WriteAllFd(int fd, const char* data, std::size_t n);

// One write attempt against a non-blocking fd.
struct WriteResult {
  std::size_t written = 0;
  bool would_block = false;  // EAGAIN/EWOULDBLOCK: retry when writable
  bool error = false;        // connection is dead (EPIPE, ECONNRESET, ...)
};
WriteResult WriteSomeFd(int fd, const char* data, std::size_t n);

// std::streambuf over WriteAllFd: buffered, EINTR/partial-write safe, and
// sync() (stream flush) pushes every buffered byte to the fd before
// returning, so `out.flush()` after the final response is a hard
// guarantee, not a hint.
class FdWriterBuf : public std::streambuf {
 public:
  explicit FdWriterBuf(int fd, std::size_t buffer_bytes = 1 << 16);
  ~FdWriterBuf() override;

  FdWriterBuf(const FdWriterBuf&) = delete;
  FdWriterBuf& operator=(const FdWriterBuf&) = delete;

  // True once any write has failed; subsequent output is discarded (the
  // stdio serve loop treats a dead stdout like EOF).
  bool failed() const { return failed_; }

 protected:
  int overflow(int ch) override;
  int sync() override;

 private:
  bool FlushBuffer();

  int fd_;
  std::vector<char> buffer_;
  bool failed_ = false;
};

}  // namespace sparsedet::framing
