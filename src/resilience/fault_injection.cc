#include "resilience/fault_injection.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

namespace sparsedet::resilience {
namespace {

[[noreturn]] void FailConfigKey(const std::string& key,
                                const std::string& message) {
  std::ostringstream os;
  os << "fault-injection config field \"" << key << "\": " << message;
  throw InvalidArgument(os.str());
}

double GetConfigNumber(const JsonValue& obj, const std::string& key,
                       double fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailConfigKey(key, "expected a number");
  return v->AsDouble();
}

std::int64_t GetConfigInt(const JsonValue& obj, const std::string& key,
                          std::int64_t fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailConfigKey(key, "expected an integer");
  const double d = v->AsDouble();
  if (d != std::floor(d) || std::abs(d) > 9.0e15) {
    FailConfigKey(key, "expected an integer");
  }
  return static_cast<std::int64_t>(d);
}

double GetConfigProb(const JsonValue& obj, const std::string& key) {
  const double p = GetConfigNumber(obj, key, 0.0);
  if (p < 0.0 || p > 1.0) FailConfigKey(key, "expected in [0, 1]");
  return p;
}

int GetConfigEvery(const JsonValue& obj, const std::string& key) {
  const std::int64_t every = GetConfigInt(obj, key, 0);
  if (every < 0 || every > std::numeric_limits<int>::max()) {
    FailConfigKey(key, "expected >= 0");
  }
  return static_cast<int>(every);
}

}  // namespace

FaultInjectorConfig ParseFaultInjectorConfig(const std::string& text) {
  const JsonValue json = ParseJson(text);
  if (!json.is_object()) {
    throw InvalidArgument("fault-injection config must be a JSON object");
  }
  static const char* const kAllowed[] = {
      "seed",      "fail_every", "abort_every", "delay_every", "fail_prob",
      "abort_prob", "delay_prob", "delay_ms",    "max_faults"};
  for (const auto& [key, value] : json.Fields()) {
    bool known = false;
    for (const char* allowed : kAllowed) {
      if (key == allowed) {
        known = true;
        break;
      }
    }
    if (!known) FailConfigKey(key, "unknown field");
  }

  FaultInjectorConfig config;
  const std::int64_t seed =
      GetConfigInt(json, "seed", static_cast<std::int64_t>(config.seed));
  if (seed < 0) FailConfigKey("seed", "expected >= 0");
  config.seed = static_cast<std::uint64_t>(seed);
  config.fail_every = GetConfigEvery(json, "fail_every");
  config.abort_every = GetConfigEvery(json, "abort_every");
  config.delay_every = GetConfigEvery(json, "delay_every");
  config.fail_prob = GetConfigProb(json, "fail_prob");
  config.abort_prob = GetConfigProb(json, "abort_prob");
  config.delay_prob = GetConfigProb(json, "delay_prob");
  config.delay_ms = GetConfigInt(json, "delay_ms", config.delay_ms);
  if (config.delay_ms < 0) FailConfigKey("delay_ms", "expected >= 0");
  config.max_faults = GetConfigInt(json, "max_faults", config.max_faults);
  return config;
}

FaultInjector::FaultInjector(const FaultInjectorConfig& config, Hook hook)
    : config_(config),
      hook_(std::move(hook)),
      budget_(config.max_faults),
      rng_(config.seed) {}

bool FaultInjector::Triggered(std::uint64_t call, int every, double prob) {
  if (every > 0 && call % static_cast<std::uint64_t>(every) == 0) return true;
  if (prob > 0.0) {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    return rng_.Bernoulli(prob);
  }
  return false;
}

bool FaultInjector::TakeBudget() {
  if (config_.max_faults < 0) return true;
  // Decrement optimistically; a result below zero means the budget was
  // already spent.
  return budget_.fetch_sub(1, std::memory_order_relaxed) > 0;
}

void FaultInjector::OnEvaluate() {
  const std::uint64_t call =
      calls_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (Triggered(call, config_.delay_every, config_.delay_prob) &&
      TakeBudget()) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    if (hook_) hook_("delay");
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.delay_ms));
    return;
  }
  if (Triggered(call, config_.abort_every, config_.abort_prob) &&
      TakeBudget()) {
    aborts_.fetch_add(1, std::memory_order_relaxed);
    if (hook_) hook_("abort");
    throw WorkerAbort("injected fault: worker abort (call " +
                      std::to_string(call) + ")");
  }
  if (Triggered(call, config_.fail_every, config_.fail_prob) &&
      TakeBudget()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    if (hook_) hook_("fail");
    throw Transient("injected fault: transient solver failure (call " +
                    std::to_string(call) + ")");
  }
}

FaultInjector::Counts FaultInjector::counts() const {
  Counts counts;
  counts.failures = failures_.load(std::memory_order_relaxed);
  counts.aborts = aborts_.load(std::memory_order_relaxed);
  counts.delays = delays_.load(std::memory_order_relaxed);
  return counts;
}

}  // namespace sparsedet::resilience
