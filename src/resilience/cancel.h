// Deadlines and cooperative cancellation.
//
// A CancelToken is a latch shared between a coordinator (who cancels) and
// the code doing the work (who checks). Cancellation is cooperative: the
// solvers call CancellationPoint() inside their expensive loops, which
// consults a thread-local current token installed with ScopedCancelScope —
// the same install-point pattern obs uses for its global registry — so the
// numeric kernels stay free of any engine dependency.
//
// Cost model: CancellationPoint() with no token installed is one
// thread-local read. With a token it adds a relaxed atomic load; the
// deadline *clock* is only consulted every ~64 calls, so tokens whose
// deadline nobody has latched yet still expire promptly without a steady-
// clock read per loop iteration.
//
// Tokens chain: a per-attempt token created with a parent observes the
// parent's cancellation (and deadline) as well as its own, so cancelling
// one request's token stops every attempt spawned for it without touching
// unrelated work.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/error.h"

namespace sparsedet::resilience {

// A point in time on the steady clock; default-constructed = unset (never
// expires). Value type, freely copyable.
class Deadline {
 public:
  Deadline() = default;

  static Deadline AfterMillis(std::int64_t ms);
  static Deadline At(std::chrono::steady_clock::time_point tp);

  bool set() const { return set_; }
  bool Expired() const;
  std::chrono::steady_clock::time_point time_point() const { return tp_; }
  // Milliseconds until expiry, clamped at 0. A very large value when unset.
  std::int64_t RemainingMillis() const;

 private:
  bool set_ = false;
  std::chrono::steady_clock::time_point tp_{};
};

enum class CancelReason : int {
  kNone = 0,
  kDeadline,    // the token's (or an ancestor's) deadline expired
  kWatchdog,    // the worker-pool watchdog declared the task stuck
  kShutdown,    // the owning component is tearing down
  kUser,        // explicit external cancellation
  kDisconnect,  // the network peer that asked for the work went away
};

// "deadline", "watchdog", ... for error messages and span fields.
const char* CancelReasonName(CancelReason reason);

// Thrown by CancellationPoint() / ThrowIfCancelled().
class Cancelled : public Error {
 public:
  Cancelled(CancelReason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  CancelToken() = default;
  // `allow_memo_inserts` marks a token that exists purely so completed
  // work can be abandoned (e.g. a network connection token cancelled on
  // disconnect), not to bound computation time. Solves running under such
  // a token may still populate the solver memo cache: a compute that
  // *finishes* under it is a pure function of its key and therefore just
  // as valid as an uncancelled one, while a compute interrupted mid-way
  // throws Cancelled and never produces a value to insert. Deadline-
  // bearing tokens always forbid inserts (the PR 5 structural guarantee),
  // and the permission only survives chaining if every ancestor grants it.
  explicit CancelToken(Deadline deadline,
                       std::shared_ptr<const CancelToken> parent = nullptr,
                       bool allow_memo_inserts = false)
      : deadline_(deadline),
        parent_(std::move(parent)),
        memo_inserts_allowed_(
            !deadline.set() &&
            (parent_ != nullptr ? parent_->memo_inserts_allowed_
                                : allow_memo_inserts)) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // First reason wins; later calls are no-ops.
  void Cancel(CancelReason reason) const;

  // Flag-only check (this token or any ancestor); never reads the clock.
  bool IsCancelled() const;
  // kNone while not cancelled. Reflects an ancestor's reason if only the
  // ancestor is cancelled.
  CancelReason reason() const;

  const Deadline& deadline() const { return deadline_; }
  // True when work completed under this token may populate the solver
  // memo cache; see the constructor comment.
  bool memo_inserts_allowed() const { return memo_inserts_allowed_; }
  // The soonest deadline along the ancestor chain; unset if none carries
  // one.
  Deadline EffectiveDeadline() const;

  // Throws Cancelled if this token or an ancestor is cancelled, or if any
  // deadline along the chain has expired (latching kDeadline so subsequent
  // flag-only checks see it).
  void ThrowIfCancelled() const;

 private:
  // Mutable so expiry observed through a const chain can be latched.
  mutable std::atomic<int> reason_{0};
  Deadline deadline_;
  std::shared_ptr<const CancelToken> parent_;
  bool memo_inserts_allowed_ = false;
};

// Installs `token` as the current thread's cancellation target for the
// scope's lifetime; restores the previous target on destruction (scopes
// nest). `token` may be null (scope is then a no-op).
class ScopedCancelScope {
 public:
  explicit ScopedCancelScope(const CancelToken* token);
  ~ScopedCancelScope();

  ScopedCancelScope(const ScopedCancelScope&) = delete;
  ScopedCancelScope& operator=(const ScopedCancelScope&) = delete;

 private:
  const CancelToken* previous_;
};

// The token installed on this thread, or null.
const CancelToken* CurrentCancelToken();

// Cooperative check for solver loops: throws Cancelled when the current
// token is cancelled or (checked every ~64 calls) past its deadline. No-op
// when no token is installed.
void CancellationPoint();

// Flag-only, non-throwing form for skip-style loops.
bool CancellationRequested();

}  // namespace sparsedet::resilience
