#include "resilience/cancel.h"

#include <limits>
#include <string>

namespace sparsedet::resilience {

Deadline Deadline::AfterMillis(std::int64_t ms) {
  return At(std::chrono::steady_clock::now() + std::chrono::milliseconds(ms));
}

Deadline Deadline::At(std::chrono::steady_clock::time_point tp) {
  Deadline deadline;
  deadline.set_ = true;
  deadline.tp_ = tp;
  return deadline;
}

bool Deadline::Expired() const {
  return set_ && std::chrono::steady_clock::now() >= tp_;
}

std::int64_t Deadline::RemainingMillis() const {
  if (!set_) return std::numeric_limits<std::int64_t>::max();
  const auto remaining = tp_ - std::chrono::steady_clock::now();
  const std::int64_t ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
          .count();
  return ms < 0 ? 0 : ms;
}

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kWatchdog:
      return "watchdog";
    case CancelReason::kShutdown:
      return "shutdown";
    case CancelReason::kUser:
      return "user";
    case CancelReason::kDisconnect:
      return "disconnect";
  }
  return "?";
}

void CancelToken::Cancel(CancelReason reason) const {
  int expected = static_cast<int>(CancelReason::kNone);
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_release,
                                  std::memory_order_relaxed);
}

bool CancelToken::IsCancelled() const {
  if (reason_.load(std::memory_order_acquire) !=
      static_cast<int>(CancelReason::kNone)) {
    return true;
  }
  return parent_ != nullptr && parent_->IsCancelled();
}

CancelReason CancelToken::reason() const {
  const int own = reason_.load(std::memory_order_acquire);
  if (own != static_cast<int>(CancelReason::kNone)) {
    return static_cast<CancelReason>(own);
  }
  return parent_ != nullptr ? parent_->reason() : CancelReason::kNone;
}

Deadline CancelToken::EffectiveDeadline() const {
  Deadline soonest = deadline_;
  for (const CancelToken* token = parent_.get(); token != nullptr;
       token = token->parent_.get()) {
    const Deadline& d = token->deadline_;
    if (!d.set()) continue;
    if (!soonest.set() || d.time_point() < soonest.time_point()) soonest = d;
  }
  return soonest;
}

void CancelToken::ThrowIfCancelled() const {
  for (const CancelToken* token = this; token != nullptr;
       token = token->parent_.get()) {
    const int flagged = token->reason_.load(std::memory_order_acquire);
    if (flagged != static_cast<int>(CancelReason::kNone)) {
      const auto reason = static_cast<CancelReason>(flagged);
      throw Cancelled(reason, std::string("cancelled (") +
                                  CancelReasonName(reason) + ")");
    }
    if (token->deadline_.Expired()) {
      token->Cancel(CancelReason::kDeadline);
      throw Cancelled(CancelReason::kDeadline, "cancelled (deadline)");
    }
  }
}

namespace {

thread_local const CancelToken* tl_current_token = nullptr;
// Amortizes the deadline clock read in CancellationPoint().
thread_local unsigned tl_check_tick = 0;

}  // namespace

ScopedCancelScope::ScopedCancelScope(const CancelToken* token)
    : previous_(tl_current_token) {
  tl_current_token = token;
}

ScopedCancelScope::~ScopedCancelScope() { tl_current_token = previous_; }

const CancelToken* CurrentCancelToken() { return tl_current_token; }

void CancellationPoint() {
  const CancelToken* token = tl_current_token;
  if (token == nullptr) return;
  if (token->IsCancelled() || (++tl_check_tick & 0x3fU) == 0) {
    token->ThrowIfCancelled();
  }
}

bool CancellationRequested() {
  const CancelToken* token = tl_current_token;
  return token != nullptr && token->IsCancelled();
}

}  // namespace sparsedet::resilience
