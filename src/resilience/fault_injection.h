// Deterministic fault injection for exercising recovery paths.
//
// A FaultInjector sits at a well-defined site (the engine calls
// OnEvaluate() at the start of every work-unit evaluation attempt) and,
// per its config, injects one of three faults:
//   * a latency spike (sleep delay_ms),
//   * a solver exception (throw Transient — the retryable failure class),
//   * a worker crash (throw WorkerAbort — kills the pool thread; the
//     watchdog respawns it).
//
// Two trigger styles compose: counter-based ("every Nth call"), which is
// fully deterministic under a single worker thread and the backbone of the
// CI fault-smoke job, and probability-based, seeded so a given seed always
// injects the same schedule per call sequence. `max_faults` bounds the
// total injected so recovery tests terminate by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"

namespace sparsedet::resilience {

// A retryable injected failure ("the solver threw"). Catching code treats
// it like any transient backend error: retry with backoff, then give up.
class Transient : public Error {
 public:
  explicit Transient(const std::string& what) : Error(what) {}
};

// An injected worker crash. Deliberately escapes the engine's evaluation
// guard so the pool thread running the task dies (the WorkerPool watchdog
// joins and respawns it). Derives from Error, so catch sites that must not
// swallow it have to list it first — both sites that may see one do.
class WorkerAbort : public Error {
 public:
  explicit WorkerAbort(const std::string& what) : Error(what) {}
};

struct FaultInjectorConfig {
  std::uint64_t seed = 20080617;
  // Counter triggers: fire on every Nth OnEvaluate() call (0 = off).
  int fail_every = 0;   // throw Transient
  int abort_every = 0;  // throw WorkerAbort
  int delay_every = 0;  // sleep delay_ms
  // Probabilistic triggers, drawn from `seed` (0 = off).
  double fail_prob = 0.0;
  double abort_prob = 0.0;
  double delay_prob = 0.0;
  std::int64_t delay_ms = 5;
  // Total faults to inject across all kinds; < 0 = unbounded. A bound makes
  // "the batch eventually succeeds" deterministic in tests.
  std::int64_t max_faults = -1;
};

// Parses {"seed":..., "fail_every":..., ...} strictly: unknown keys, wrong
// types and out-of-domain values are rejected with InvalidArgument naming
// the key. An empty object disables every fault.
FaultInjectorConfig ParseFaultInjectorConfig(const std::string& text);

class FaultInjector {
 public:
  struct Counts {
    std::uint64_t failures = 0;
    std::uint64_t aborts = 0;
    std::uint64_t delays = 0;
  };

  // `hook`, when set, is called with "fail" | "abort" | "delay" as each
  // fault is injected (before the throw/sleep) — the engine uses it to
  // count injections in its metrics registry without this library
  // depending on obs.
  using Hook = std::function<void(const char* kind)>;

  explicit FaultInjector(const FaultInjectorConfig& config,
                         Hook hook = nullptr);

  // The injection site. May sleep, throw Transient, or throw WorkerAbort
  // (checked in that order; at most one fault fires per call).
  void OnEvaluate();

  Counts counts() const;

 private:
  // Decides one trigger: counter match on `every` or a seeded draw against
  // `prob`. `call` is the 1-based OnEvaluate sequence number.
  bool Triggered(std::uint64_t call, int every, double prob);
  // Consumes one unit of max_faults; false when the budget is spent.
  bool TakeBudget();

  FaultInjectorConfig config_;
  Hook hook_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::int64_t> budget_;
  std::mutex rng_mutex_;
  Rng rng_;
};

}  // namespace sparsedet::resilience
