#include "resilience/retry.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace sparsedet::resilience {

std::chrono::milliseconds RetryPolicy::Delay(int retry,
                                             std::uint64_t salt) const {
  SPARSEDET_REQUIRE(retry >= 1, "retry number must be >= 1");
  SPARSEDET_REQUIRE(base_delay_ms >= 0 && max_delay_ms >= 0,
                    "retry delays must be >= 0");
  SPARSEDET_REQUIRE(jitter >= 0.0 && jitter <= 1.0,
                    "retry jitter must be in [0, 1]");
  if (base_delay_ms == 0) return std::chrono::milliseconds(0);

  // base * 2^(retry-1), saturating well before overflow.
  double delay = static_cast<double>(base_delay_ms);
  for (int i = 1; i < retry && delay < 2.0 * max_delay_ms; ++i) delay *= 2.0;
  delay = std::min(delay, static_cast<double>(max_delay_ms));

  std::uint64_t state = salt ^ (0x9e3779b97f4a7c15ULL *
                                static_cast<std::uint64_t>(retry));
  const std::uint64_t bits = SplitMix64Next(state);
  const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
  const double factor = 1.0 - jitter + 2.0 * jitter * unit;
  const auto ms = static_cast<std::int64_t>(delay * factor);
  return std::chrono::milliseconds(std::max<std::int64_t>(0, ms));
}

}  // namespace sparsedet::resilience
