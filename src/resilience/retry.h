// Bounded retry with exponential backoff and deterministic jitter.
//
// The policy is a plain value: callers count attempts themselves and ask
// ShouldRetry / Delay. Jitter is derived from a splitmix64 hash of
// (salt, attempt) rather than a shared RNG so two engines retrying the
// same unit produce the same schedule — randomness in a component whose
// whole point is reproducible failure handling would be self-defeating.
#pragma once

#include <chrono>
#include <cstdint>

namespace sparsedet::resilience {

struct RetryPolicy {
  // Total evaluation attempts including the first; 1 disables retries.
  int max_attempts = 3;
  std::int64_t base_delay_ms = 1;
  std::int64_t max_delay_ms = 250;
  // Each delay is scaled by a deterministic factor in [1 - jitter,
  // 1 + jitter]; must be in [0, 1].
  double jitter = 0.25;

  // True when another attempt is allowed after `attempts_made` have run.
  bool ShouldRetry(int attempts_made) const {
    return attempts_made < max_attempts;
  }

  // Backoff before retry number `retry` (1-based: the delay between the
  // first failure and the second attempt is Delay(1, ...)). Exponential in
  // `retry`, capped at max_delay_ms, jittered deterministically by `salt`
  // (e.g. a hash of the work-unit key).
  std::chrono::milliseconds Delay(int retry, std::uint64_t salt = 0) const;
};

}  // namespace sparsedet::resilience
