#include "coverage/coverage.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <queue>

#include "common/check.h"

namespace sparsedet {
namespace {

// Distance from every grid-cell center to the nearest sensor.
std::vector<double> NearestSensorDistances(const Field& field,
                                           const std::vector<Vec2>& nodes,
                                           int grid_cells) {
  const double dx = field.width() / grid_cells;
  const double dy = field.height() / grid_cells;
  std::vector<double> dist(
      static_cast<std::size_t>(grid_cells) * grid_cells,
      std::numeric_limits<double>::infinity());
  for (int row = 0; row < grid_cells; ++row) {
    for (int col = 0; col < grid_cells; ++col) {
      const Vec2 center{(col + 0.5) * dx, (row + 0.5) * dy};
      double best = std::numeric_limits<double>::infinity();
      for (const Vec2& node : nodes) {
        best = std::min(best, (center - node).NormSquared());
      }
      dist[static_cast<std::size_t>(row) * grid_cells + col] =
          std::sqrt(best);
    }
  }
  return dist;
}

}  // namespace

CoverageStats EstimateCoverage(const Field& field,
                               const std::vector<Vec2>& nodes,
                               double sensing_range, int grid_cells) {
  SPARSEDET_REQUIRE(sensing_range > 0.0, "sensing range must be positive");
  SPARSEDET_REQUIRE(grid_cells >= 2, "grid must have >= 2 cells per axis");

  CoverageStats stats;
  stats.grid_cells = grid_cells;
  const std::vector<double> dist =
      NearestSensorDistances(field, nodes, grid_cells);
  long long covered = 0;
  for (double d : dist) covered += d <= sensing_range ? 1 : 0;
  stats.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(dist.size());
  stats.poisson_estimate =
      1.0 - std::exp(-static_cast<double>(nodes.size()) * std::numbers::pi *
                     sensing_range * sensing_range / field.Area());
  return stats;
}

double MaximalBreachDistance(const Field& field,
                             const std::vector<Vec2>& nodes,
                             int grid_cells) {
  return MaximalBreachPath(field, nodes, grid_cells).distance;
}

BreachResult MaximalBreachPath(const Field& field,
                               const std::vector<Vec2>& nodes,
                               int grid_cells) {
  SPARSEDET_REQUIRE(grid_cells >= 2, "grid must have >= 2 cells per axis");
  const double dx = field.width() / grid_cells;
  const double dy = field.height() / grid_cells;
  const auto center = [&](int row, int col) {
    return Vec2{(col + 0.5) * dx, (row + 0.5) * dy};
  };

  if (nodes.empty()) {
    BreachResult result;
    result.distance = std::numeric_limits<double>::infinity();
    const int row = grid_cells / 2;
    for (int col = 0; col < grid_cells; ++col) {
      result.path.push_back(center(row, col));
    }
    return result;
  }

  const std::vector<double> weight =
      NearestSensorDistances(field, nodes, grid_cells);
  const auto index = [grid_cells](int row, int col) {
    return static_cast<std::size_t>(row) * grid_cells + col;
  };

  // Bottleneck Dijkstra: value of a cell = max over paths from the west
  // edge of the minimum weight en route; process cells best-first. Being
  // best-first, the FIRST east-edge cell popped carries the global
  // optimum, so the search can stop there and backtrack parents.
  std::vector<double> value(weight.size(), -1.0);
  std::vector<std::int32_t> parent(weight.size(), -1);
  using Entry = std::pair<double, std::size_t>;  // (bottleneck, cell)
  std::priority_queue<Entry> frontier;
  for (int row = 0; row < grid_cells; ++row) {
    const std::size_t cell = index(row, 0);
    value[cell] = weight[cell];
    frontier.push({value[cell], cell});
  }
  const int drow[4] = {1, -1, 0, 0};
  const int dcol[4] = {0, 0, 1, -1};
  BreachResult result;
  while (!frontier.empty()) {
    const auto [bottleneck, cell] = frontier.top();
    frontier.pop();
    if (bottleneck < value[cell]) continue;  // stale entry
    const int row = static_cast<int>(cell) / grid_cells;
    const int col = static_cast<int>(cell) % grid_cells;
    if (col == grid_cells - 1) {
      result.distance = bottleneck;
      for (std::int64_t v = static_cast<std::int64_t>(cell); v >= 0;
           v = parent[v]) {
        const int r = static_cast<int>(v) / grid_cells;
        const int c = static_cast<int>(v) % grid_cells;
        result.path.push_back(center(r, c));
      }
      std::reverse(result.path.begin(), result.path.end());
      return result;
    }
    for (int dir = 0; dir < 4; ++dir) {
      const int nrow = row + drow[dir];
      const int ncol = col + dcol[dir];
      if (nrow < 0 || nrow >= grid_cells || ncol < 0 || ncol >= grid_cells) {
        continue;
      }
      const std::size_t next = index(nrow, ncol);
      const double through = std::min(bottleneck, weight[next]);
      if (through > value[next]) {
        value[next] = through;
        parent[next] = static_cast<std::int32_t>(cell);
        frontier.push({through, next});
      }
    }
  }
  return result;  // unreachable for a connected grid; keeps the API total
}

}  // namespace sparsedet
