// Coverage and exposure analysis of a sparse deployment.
//
// The paper's premise is that sparse fields have "void sensing areas";
// this module quantifies them with the two classic metrics:
//   * covered fraction — how much of the field lies within Rs of a sensor
//     (compare with the Poisson-process estimate 1 - exp(-N*pi*Rs^2 / S));
//   * maximal breach distance — over all left-to-right crossing paths, the
//     largest achievable minimum distance to any sensor (Meguerdichian et
//     al.'s "maximal breach path"). If it exceeds Rs, an adversary that
//     KNOWS the deployment can cross without ever being sensed — which is
//     why the paper's detection guarantees are inherently probabilistic
//     statements about uninformed targets.
//
// Both are computed on a regular grid: coverage by point sampling, breach
// by a bottleneck (maximize-the-minimum) Dijkstra over grid cells weighted
// with their distance to the nearest sensor.
#pragma once

#include <vector>

#include "geometry/field.h"
#include "geometry/vec2.h"

namespace sparsedet {

struct CoverageStats {
  double covered_fraction = 0.0;   // grid fraction within Rs of a sensor
  double poisson_estimate = 0.0;   // 1 - exp(-N pi Rs^2 / S)
  int grid_cells = 0;              // resolution used (per axis)
};

// Requires sensing_range > 0 and grid_cells >= 2.
CoverageStats EstimateCoverage(const Field& field,
                               const std::vector<Vec2>& nodes,
                               double sensing_range, int grid_cells = 200);

// Maximal breach distance for a west-to-east crossing: the maximum over
// paths (entering anywhere on the left edge, leaving anywhere on the
// right) of the minimum distance to any sensor along the path. An empty
// deployment yields +infinity (no sensor constrains the path). Requires
// grid_cells >= 2.
double MaximalBreachDistance(const Field& field,
                             const std::vector<Vec2>& nodes,
                             int grid_cells = 200);

struct BreachResult {
  double distance = 0.0;   // the bottleneck (min distance along the path)
  std::vector<Vec2> path;  // grid-cell centers, west edge to east edge
};

// Same as MaximalBreachDistance but also returns one optimal path — what
// an informed adversary would actually walk. Empty deployment yields an
// infinite distance and a straight west-east path. Requires
// grid_cells >= 2.
BreachResult MaximalBreachPath(const Field& field,
                               const std::vector<Vec2>& nodes,
                               int grid_cells = 200);

}  // namespace sparsedet
