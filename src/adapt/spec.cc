#include "adapt/spec.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "engine/request.h"

namespace sparsedet::adapt {
namespace {

[[noreturn]] void FailKey(const std::string& section, const std::string& key,
                          const std::string& message) {
  std::ostringstream os;
  os << "spec field \"" << (section.empty() ? key : section + "." + key)
     << "\": " << message;
  throw InvalidArgument(os.str());
}

// Strict typed field extraction, the request.cc idiom: every section lists
// its allowed keys so a typo is named instead of silently ignored.
void CheckKeys(const JsonValue& obj, const std::string& section,
               const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.Fields()) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::ostringstream os;
      os << "unknown spec field \""
         << (section.empty() ? key : section + "." + key) << "\"";
      throw InvalidArgument(os.str());
    }
  }
}

double GetNumber(const JsonValue& obj, const std::string& section,
                 const std::string& key, double fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailKey(section, key, "expected a number");
  return v->AsDouble();
}

int GetInt(const JsonValue& obj, const std::string& section,
           const std::string& key, int fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailKey(section, key, "expected an integer");
  const double d = v->AsDouble();
  if (d != std::floor(d) || std::abs(d) > 1e9) {
    FailKey(section, key, "expected an integer");
  }
  return static_cast<int>(d);
}

std::string GetString(const JsonValue& obj, const std::string& section,
                      const std::string& key, const std::string& fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) FailKey(section, key, "expected a string");
  return v->AsString();
}

// The optimizer's hostile-axis checks, restated for the (k, window) axes:
// everything here is reachable from an untrusted {"cmd":"adapt"} network
// request, so each axis must be provably small before anything is
// materialized.
opt::AxisSpec ParseAxis(const JsonValue& obj, const std::string& section) {
  if (!obj.is_object()) FailKey("search", section, "expected an object");
  CheckKeys(obj, "search." + section, {"from", "to", "step"});
  opt::AxisSpec axis;
  axis.set = true;
  const std::string prefix = "search." + section;
  const JsonValue* from = obj.Find("from");
  if (from == nullptr) FailKey(prefix, "from", "required");
  if (!from->is_number()) FailKey(prefix, "from", "expected a number");
  axis.from = from->AsDouble();
  const JsonValue* to = obj.Find("to");
  if (to == nullptr) FailKey(prefix, "to", "required");
  if (!to->is_number()) FailKey(prefix, "to", "expected a number");
  axis.to = to->AsDouble();
  axis.step = GetNumber(obj, prefix, "step", 1.0);
  if (!std::isfinite(axis.from) || std::abs(axis.from) > 1e9) {
    FailKey(prefix, "from", "expected finite in [-1e9, 1e9]");
  }
  if (!std::isfinite(axis.to) || std::abs(axis.to) > 1e9) {
    FailKey(prefix, "to", "expected finite in [-1e9, 1e9]");
  }
  if (!std::isfinite(axis.step) || !(axis.step > 0.0)) {
    FailKey(prefix, "step", "expected > 0");
  }
  if (axis.to < axis.from) FailKey(prefix, "to", "expected >= from");
  if (axis.from != std::floor(axis.from)) {
    FailKey(prefix, "from", "expected an integer");
  }
  if (axis.step != std::floor(axis.step)) {
    FailKey(prefix, "step", "expected an integer");
  }
  if (axis.from < 1.0) FailKey(prefix, "from", "expected >= 1");
  if (axis.from + axis.step == axis.from ||
      axis.to + axis.step == axis.to) {
    FailKey(prefix, "step", "too small to advance the axis");
  }
  if (axis.Count() > opt::kMaxGridCandidates) {
    std::ostringstream os;
    os << "axis expands to more than " << opt::kMaxGridCandidates
       << " values";
    FailKey(prefix, "step", os.str());
  }
  return axis;
}

JsonValue AxisToJson(const opt::AxisSpec& axis) {
  JsonValue json = JsonValue::Object();
  json.Set("from", axis.from).Set("to", axis.to).Set("step", axis.step);
  return json;
}

}  // namespace

std::string AdaptModeName(AdaptMode mode) {
  return mode == AdaptMode::kClosedLoop ? "closed_loop" : "analyze";
}

std::size_t AdaptSpec::EpochGridSize() const {
  return k.Count() * window.Count();
}

AdaptSpec ParseAdaptSpec(const JsonValue& json) {
  if (!json.is_object()) {
    throw InvalidArgument("adapt spec must be a JSON object");
  }
  CheckKeys(json, "",
            {"mode", "params", "options", "failure", "horizon_epochs",
             "epoch_periods", "constraints", "search", "controller",
             "estimator", "sim", "deadline_ms"});

  AdaptSpec spec;
  const std::string mode = GetString(json, "", "mode", "analyze");
  if (mode == "analyze") {
    spec.mode = AdaptMode::kAnalyze;
  } else if (mode == "closed_loop") {
    spec.mode = AdaptMode::kClosedLoop;
  } else {
    FailKey("", "mode", "expected \"analyze\" or \"closed_loop\"");
  }

  if (const JsonValue* params = json.Find("params")) {
    if (!params->is_object()) FailKey("", "params", "expected an object");
    spec.params = engine::ParseParamsSection(*params);
  }
  if (const JsonValue* options = json.Find("options")) {
    if (!options->is_object()) FailKey("", "options", "expected an object");
    spec.options = engine::ParseOptionsSection(*options);
  }

  if (const JsonValue* failure = json.Find("failure")) {
    if (!failure->is_object()) FailKey("", "failure", "expected an object");
    CheckKeys(*failure, "failure",
              {"model", "mean_lifetime_s", "shape", "report_loss"});
    const std::string model =
        GetString(*failure, "failure", "model", "exponential");
    if (model == "exponential") {
      spec.failure.kind = FailureKind::kExponential;
    } else if (model == "weibull") {
      spec.failure.kind = FailureKind::kWeibull;
    } else {
      FailKey("failure", "model", "expected \"exponential\" or \"weibull\"");
    }
    spec.failure.mean_lifetime_s = GetNumber(
        *failure, "failure", "mean_lifetime_s", spec.failure.mean_lifetime_s);
    spec.failure.weibull_shape =
        GetNumber(*failure, "failure", "shape", spec.failure.weibull_shape);
    spec.failure.report_loss_prob = GetNumber(
        *failure, "failure", "report_loss", spec.failure.report_loss_prob);
    try {
      spec.failure.Validate();
    } catch (const InvalidArgument& e) {
      FailKey("", "failure", e.what());
    }
  }

  spec.horizon_epochs =
      GetInt(json, "", "horizon_epochs", spec.horizon_epochs);
  if (spec.horizon_epochs < 1 || spec.horizon_epochs > kMaxHorizonEpochs) {
    std::ostringstream os;
    os << "expected in [1, " << kMaxHorizonEpochs << "]";
    FailKey("", "horizon_epochs", os.str());
  }
  spec.epoch_periods = GetInt(json, "", "epoch_periods", spec.epoch_periods);
  if (spec.epoch_periods < 0 || spec.epoch_periods > 100000) {
    FailKey("", "epoch_periods", "expected in [0, 100000]");
  }

  if (const JsonValue* constraints = json.Find("constraints")) {
    if (!constraints->is_object()) {
      FailKey("", "constraints", "expected an object");
    }
    CheckKeys(*constraints, "constraints", {"min_detection", "pf", "max_fa"});
    spec.min_detection = GetNumber(*constraints, "constraints",
                                   "min_detection", spec.min_detection);
    spec.pf = GetNumber(*constraints, "constraints", "pf", spec.pf);
    spec.max_fa =
        GetNumber(*constraints, "constraints", "max_fa", spec.max_fa);
    if (spec.min_detection < 0.0 || spec.min_detection > 1.0) {
      FailKey("constraints", "min_detection", "expected in [0, 1]");
    }
    if (spec.pf < 0.0 || spec.pf > 1.0) {
      FailKey("constraints", "pf", "expected in [0, 1]");
    }
    if (spec.max_fa < 0.0 || spec.max_fa > 1.0) {
      FailKey("constraints", "max_fa", "expected in [0, 1]");
    }
  }

  if (const JsonValue* search = json.Find("search")) {
    if (!search->is_object()) FailKey("", "search", "expected an object");
    CheckKeys(*search, "search", {"k", "window"});
    if (const JsonValue* axis = search->Find("k")) {
      spec.k = ParseAxis(*axis, "k");
    }
    if (const JsonValue* axis = search->Find("window")) {
      spec.window = ParseAxis(*axis, "window");
    }
  }

  if (const JsonValue* controller = json.Find("controller")) {
    if (!controller->is_object()) {
      FailKey("", "controller", "expected an object");
    }
    CheckKeys(*controller, "controller", {"margin", "min_dwell_epochs"});
    spec.margin = GetNumber(*controller, "controller", "margin", spec.margin);
    spec.min_dwell_epochs = GetInt(*controller, "controller",
                                   "min_dwell_epochs", spec.min_dwell_epochs);
    if (spec.margin < 0.0 || spec.margin > 1.0) {
      FailKey("controller", "margin", "expected in [0, 1]");
    }
    if (spec.min_dwell_epochs < 0 || spec.min_dwell_epochs > 1000) {
      FailKey("controller", "min_dwell_epochs", "expected in [0, 1000]");
    }
  }

  if (const JsonValue* estimator = json.Find("estimator")) {
    if (!estimator->is_object()) {
      FailKey("", "estimator", "expected an object");
    }
    CheckKeys(*estimator, "estimator", {"source", "windows", "z"});
    const std::string source =
        GetString(*estimator, "estimator", "source", "oracle");
    if (source == "oracle") {
      spec.estimate_from_reports = false;
    } else if (source == "reports") {
      spec.estimate_from_reports = true;
    } else {
      FailKey("estimator", "source", "expected \"oracle\" or \"reports\"");
    }
    spec.estimator_windows =
        GetInt(*estimator, "estimator", "windows", spec.estimator_windows);
    spec.estimator_z =
        GetNumber(*estimator, "estimator", "z", spec.estimator_z);
    if (spec.estimator_windows < 1 || spec.estimator_windows > 64) {
      FailKey("estimator", "windows", "expected in [1, 64]");
    }
    if (!(spec.estimator_z > 0.0) || spec.estimator_z > 10.0) {
      FailKey("estimator", "z", "expected in (0, 10]");
    }
  }

  if (const JsonValue* sim = json.Find("sim")) {
    if (!sim->is_object()) FailKey("", "sim", "expected an object");
    CheckKeys(*sim, "sim", {"seed", "trials"});
    const double seed = GetNumber(*sim, "sim", "seed",
                                  static_cast<double>(spec.sim_seed));
    if (seed < 0 || seed != std::floor(seed) || seed > 9.0e15) {
      FailKey("sim", "seed", "expected a non-negative integer");
    }
    spec.sim_seed = static_cast<std::uint64_t>(seed);
    spec.sim_trials = GetInt(*sim, "sim", "trials", spec.sim_trials);
    if (spec.sim_trials < 0 || spec.sim_trials > 1000000) {
      FailKey("sim", "trials", "expected in [0, 1000000]");
    }
  }

  const double deadline = GetNumber(json, "", "deadline_ms",
                                    static_cast<double>(spec.deadline_ms));
  // The 9.0e15 bound matches the engine request parser: every accepted
  // value is exactly representable in int64_t, so the cast below is safe.
  if (deadline < 0.0 || deadline != std::floor(deadline) ||
      deadline > 9.0e15) {
    FailKey("", "deadline_ms", "expected a non-negative integer");
  }
  spec.deadline_ms = static_cast<std::int64_t>(deadline);

  // The estimator can only invert the report PMF when there are reports
  // to observe: the quiescent rate is pf (thinned by transport loss).
  if (spec.estimate_from_reports && !(spec.pf > 0.0)) {
    FailKey("estimator", "source",
            "\"reports\" requires constraints.pf > 0 (the quiescent report "
            "rate); use estimator.source \"oracle\" for a lossless census");
  }

  // Total inner solves are bounded the same way the optimizer bounds its
  // grid: per-epoch candidates x horizon must fit the candidate cap.
  const std::size_t per_epoch = spec.EpochGridSize();
  if (per_epoch > opt::kMaxGridCandidates ||
      static_cast<std::size_t>(spec.horizon_epochs) >
          opt::kMaxGridCandidates / (per_epoch == 0 ? 1 : per_epoch)) {
    std::ostringstream os;
    os << "spec field \"search\": horizon x grid is "
       << static_cast<double>(per_epoch) * spec.horizon_epochs
       << " candidates, max " << opt::kMaxGridCandidates;
    throw InvalidArgument(os.str());
  }

  // The fixed scenario must itself be valid; per-candidate overrides are
  // re-validated (and invalid combinations dropped) during enumeration.
  spec.params.Validate();
  return spec;
}

JsonValue SpecToJson(const AdaptSpec& spec) {
  JsonValue params = JsonValue::Object();
  params.Set("field_width", spec.params.field_width)
      .Set("field_height", spec.params.field_height)
      .Set("nodes", spec.params.num_nodes)
      .Set("rs", spec.params.sensing_range)
      .Set("rc", spec.params.comm_range)
      .Set("pd", spec.params.detect_prob)
      .Set("period", spec.params.period_length)
      .Set("speed", spec.params.target_speed)
      .Set("window", spec.params.window_periods)
      .Set("k", spec.params.threshold_reports);

  JsonValue options = JsonValue::Object();
  options.Set("gh", spec.options.gh)
      .Set("g", spec.options.g)
      .Set("normalize", spec.options.normalize)
      .Set("reliability", spec.options.node_reliability);

  JsonValue failure = JsonValue::Object();
  failure.Set("model", std::string(FailureKindName(spec.failure.kind)))
      .Set("mean_lifetime_s", spec.failure.mean_lifetime_s)
      .Set("shape", spec.failure.weibull_shape)
      .Set("report_loss", spec.failure.report_loss_prob);

  JsonValue constraints = JsonValue::Object();
  constraints.Set("min_detection", spec.min_detection)
      .Set("pf", spec.pf)
      .Set("max_fa", spec.max_fa);

  JsonValue search = JsonValue::Object();
  if (spec.k.set) search.Set("k", AxisToJson(spec.k));
  if (spec.window.set) search.Set("window", AxisToJson(spec.window));

  JsonValue controller = JsonValue::Object();
  controller.Set("margin", spec.margin)
      .Set("min_dwell_epochs", spec.min_dwell_epochs);

  JsonValue estimator = JsonValue::Object();
  estimator
      .Set("source",
           std::string(spec.estimate_from_reports ? "reports" : "oracle"))
      .Set("windows", spec.estimator_windows)
      .Set("z", spec.estimator_z);

  JsonValue sim = JsonValue::Object();
  sim.Set("seed", static_cast<std::int64_t>(spec.sim_seed))
      .Set("trials", spec.sim_trials);

  JsonValue json = JsonValue::Object();
  json.Set("mode", AdaptModeName(spec.mode))
      .Set("params", std::move(params))
      .Set("options", std::move(options))
      .Set("failure", std::move(failure))
      .Set("horizon_epochs", spec.horizon_epochs)
      .Set("epoch_periods", spec.epoch_periods)
      .Set("constraints", std::move(constraints))
      .Set("search", std::move(search))
      .Set("controller", std::move(controller))
      .Set("estimator", std::move(estimator))
      .Set("sim", std::move(sim))
      .Set("deadline_ms", spec.deadline_ms);
  return json;
}

}  // namespace sparsedet::adapt
