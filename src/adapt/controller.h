// The (k, M) adaptation controller.
//
// Each epoch the controller sees the analytical evaluation of every
// candidate setting at the current population estimate and picks the one
// to run next epoch. The cost order is deliberate: a *shorter* window is
// cheaper (faster decisions, less report buffering), and within a window a
// *larger* k is cheaper (more false-alarm headroom at no detection cost we
// have not already paid). "Cheapest feasible" under this order is exactly
// the paper's sizing recipe, re-run against the live population.
//
// Hysteresis keeps the loop from thrashing on estimator noise:
//   * a feasible incumbent is kept for at least min_dwell_epochs after a
//     switch, and after that is abandoned only for a *strictly cheaper*
//     candidate that clears the floor with `margin` to spare;
//   * an infeasible incumbent is replaced immediately (holding a failing
//     setting to respect dwell would be backwards) by the cheapest
//     feasible candidate, preferring margin-clearing ones;
//   * when nothing is feasible the controller degrades predictably: the
//     maximum-detection candidate under the FA cap, flagged infeasible.
//
// Monotonicity (the property tests' contract): the controller abandons a
// chosen k only when the detection floor forces it — with a fixed window,
// the chosen k is the largest one meeting the floor, so as sensors die the
// sequence of chosen k values never decreases except when P_D demands it.
#pragma once

#include <vector>

namespace sparsedet::adapt {

struct ControllerConfig {
  double min_detection = 0.9;
  double max_fa = 1.0;
  double margin = 0.02;      // feasibility slack required to switch settings
  int min_dwell_epochs = 1;  // epochs a feasible incumbent is held
};

// One candidate setting evaluated at the current population estimate.
struct CandidateEval {
  int k = 0;
  int window = 0;
  double detection = 0.0;
  double system_fa = 0.0;
};

struct Decision {
  int k = 0;
  int window = 0;
  bool feasible = false;  // the chosen setting meets floor and FA cap
  bool retuned = false;   // the setting changed this epoch
  double detection = 0.0;
  double system_fa = 0.0;
};

// Strict deterministic "a is cheaper than b": shorter window first, then
// larger k.
bool CheaperSetting(const CandidateEval& a, const CandidateEval& b);

class AdaptController {
 public:
  AdaptController(const ControllerConfig& config, int initial_k,
                  int initial_window);

  // Picks next epoch's setting from this epoch's evaluations (at least
  // one required). Deterministic: depends only on the config, the
  // incumbent state and the evaluation list.
  Decision Decide(const std::vector<CandidateEval>& evals);

  int k() const { return k_; }
  int window() const { return window_; }

 private:
  ControllerConfig config_;
  int k_;
  int window_;
  // Epochs since the last switch; starts saturated so the first decision
  // may freely move off the spec's initial setting.
  int dwell_ = 1 << 20;
};

}  // namespace sparsedet::adapt
