#include "adapt/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sparsedet::adapt {

LivePopulationEstimator::LivePopulationEstimator(double report_prob,
                                                 int window_capacity,
                                                 double z)
    : q_(report_prob), capacity_(window_capacity), z_(z) {
  SPARSEDET_REQUIRE(q_ > 0.0 && q_ <= 1.0,
                    "estimator report probability must be in (0, 1]");
  SPARSEDET_REQUIRE(capacity_ >= 1, "estimator needs >= 1 window");
  SPARSEDET_REQUIRE(z_ > 0.0, "estimator z must be > 0");
}

void LivePopulationEstimator::Observe(double reports, int periods) {
  SPARSEDET_REQUIRE(reports >= 0.0, "report count must be >= 0");
  SPARSEDET_REQUIRE(periods >= 1, "window must span >= 1 period");
  windows_.push_back(Window{reports, periods});
  while (static_cast<int>(windows_.size()) > capacity_) {
    windows_.pop_front();
  }
}

void LivePopulationEstimator::Age(double ratio) {
  SPARSEDET_REQUIRE(ratio >= 0.0 && ratio <= 1.0,
                    "survival ratio must be in [0, 1]");
  for (Window& w : windows_) w.reports *= ratio;
}

PopulationEstimate LivePopulationEstimator::Estimate() const {
  SPARSEDET_REQUIRE(HasData(), "estimate requires at least one observation");
  double sum_reports = 0.0;
  double sum_periods = 0.0;
  for (const Window& w : windows_) {
    sum_reports += w.reports;
    sum_periods += w.periods;
  }
  const double denom = q_ * sum_periods;
  const double half = z_ * std::sqrt(sum_reports + z_ * z_ / 4.0);
  const double center = sum_reports + z_ * z_ / 2.0;
  PopulationEstimate est;
  est.live = sum_reports / denom;
  est.lo = std::max(0.0, (center - half) / denom);
  est.hi = (center + half) / denom;
  est.windows = static_cast<int>(windows_.size());
  return est;
}

}  // namespace sparsedet::adapt
