// The self-healing detection subsystem's problem specification.
//
// An AdaptSpec describes a *degrading* deployment and how to keep it
// meeting its detection floor: a failure model (exponential/Weibull node
// death plus report loss), a horizon of adaptation epochs, the (k, M)
// search axes the controller may retune over, the constraint envelope
// (min_detection, pf, max_fa) and the estimator/controller knobs.
//
// One spec per JSON object:
//
//   {"mode": "analyze",                  // analyze | closed_loop
//    "params":  {... fixed scenario, engine "params" schema ...},
//    "options": {... M-S solver options, engine "options" schema ...},
//    "failure": {"model": "exponential", // exponential | weibull
//                "mean_lifetime_s": 4e5, "shape": 1.0, "report_loss": 0.0},
//    "horizon_epochs": 12,
//    "epoch_periods": 0,                 // 0 = one decision window (M)
//    "constraints": {"min_detection": 0.9, "pf": 1e-3, "max_fa": 1.0},
//    "search": {"k":      {"from": 1, "to": 10, "step": 1},
//               "window": {"from": 10, "to": 40, "step": 5}},
//    "controller": {"margin": 0.02, "min_dwell_epochs": 1},
//    "estimator":  {"source": "oracle",  // oracle | reports
//                   "windows": 4, "z": 3.0},
//    "sim": {"seed": 20080617, "trials": 0},
//    "deadline_ms": 0}
//
// Modes: "analyze" propagates the *expected* survival curve through the
// controller (the AnalyzeDegrading view — reliability thinning, no
// randomness); "closed_loop" realizes one seeded failure trajectory and
// runs the controller against it, optionally validating each epoch's
// chosen setting by Monte Carlo (sim.trials > 0).
//
// Parsing is strict (unknown keys and wrong types are rejected with a
// message naming the offending key), mirroring the optimizer spec so a
// typo never silently adapts the default scenario.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"
#include "core/ms_approach.h"
#include "core/params.h"
#include "core/survival.h"
#include "opt/spec.h"

namespace sparsedet::adapt {

enum class AdaptMode { kAnalyze, kClosedLoop };

// "analyze" / "closed_loop".
std::string AdaptModeName(AdaptMode mode);

struct AdaptSpec {
  AdaptMode mode = AdaptMode::kAnalyze;

  // Fixed scenario baseline + solver options (engine request schema).
  SystemParams params = SystemParams::OnrDefaults();
  MsApproachOptions options;

  // The failure process the deployment degrades under.
  SensorFailureModel failure;

  // Adaptation cadence: the controller re-decides every epoch_periods
  // sensing periods (0 = one decision window, params.window_periods) for
  // horizon_epochs epochs.
  int horizon_epochs = 8;
  int epoch_periods = 0;

  // Constraint envelope. `pf` is the per-node per-period false alarm
  // probability: it feeds the count-only system-FA bound *and* is the
  // quiescent report rate the live-population estimator observes.
  double min_detection = 0.9;
  double pf = 0.0;
  double max_fa = 1.0;

  // Search axes the controller retunes over; an absent axis pins that
  // knob at the scenario value.
  opt::AxisSpec k;
  opt::AxisSpec window;

  // Hysteresis: switch away from a *feasible* incumbent only after
  // min_dwell_epochs epochs, and only to a strictly cheaper setting that
  // clears the floor by `margin`.
  double margin = 0.02;
  int min_dwell_epochs = 1;

  // Live-population estimator: "oracle" reads the true alive count (the
  // analysis view); "reports" runs method-of-moments on the quiescent
  // report counts of the last `windows` epochs at confidence z.
  bool estimate_from_reports = false;
  int estimator_windows = 4;
  double estimator_z = 3.0;

  // Closed-loop realization: trajectory + estimator seed, and per-epoch
  // Monte-Carlo validation trials (0 = skip validation).
  std::uint64_t sim_seed = 20080617;
  int sim_trials = 0;

  // Wall-clock budget for the whole run; 0 = none. Expiry yields a valid
  // partial result tagged "degraded": true, never a hang — enforced
  // between inner-solve batches, exactly like the optimizer.
  std::int64_t deadline_ms = 0;

  int EpochPeriods() const {
    return epoch_periods > 0 ? epoch_periods : params.window_periods;
  }

  // Candidates evaluated per epoch (product of the two axis counts).
  std::size_t EpochGridSize() const;
};

// Longest horizon a spec may request; with the per-epoch grid cap this
// bounds total inner solves the same way kMaxGridCandidates bounds the
// optimizer, so serve mode never accepts unbounded work.
inline constexpr int kMaxHorizonEpochs = 512;

// Parses and validates one spec object. Throws InvalidArgument with a
// key-specific message on unknown keys, type mismatches, out-of-domain
// values, or a horizon x grid product larger than opt::kMaxGridCandidates.
AdaptSpec ParseAdaptSpec(const JsonValue& json);

// The spec as canonical JSON (round-trips through ParseAdaptSpec); echoed
// in results so a stored adaptation trace is self-describing.
JsonValue SpecToJson(const AdaptSpec& spec);

}  // namespace sparsedet::adapt
