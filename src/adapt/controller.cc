#include "adapt/controller.h"

#include "common/check.h"

namespace sparsedet::adapt {
namespace {

bool Feasible(const ControllerConfig& c, const CandidateEval& e) {
  return e.detection >= c.min_detection && e.system_fa <= c.max_fa;
}

bool Comfortable(const ControllerConfig& c, const CandidateEval& e) {
  return e.detection >= c.min_detection + c.margin &&
         e.system_fa <= c.max_fa;
}

}  // namespace

bool CheaperSetting(const CandidateEval& a, const CandidateEval& b) {
  if (a.window != b.window) return a.window < b.window;
  return a.k > b.k;
}

AdaptController::AdaptController(const ControllerConfig& config,
                                 int initial_k, int initial_window)
    : config_(config), k_(initial_k), window_(initial_window) {}

Decision AdaptController::Decide(const std::vector<CandidateEval>& evals) {
  SPARSEDET_REQUIRE(!evals.empty(), "controller needs >= 1 candidate");

  const CandidateEval* incumbent = nullptr;
  const CandidateEval* best_feasible = nullptr;     // min cost, feasible
  const CandidateEval* best_comfortable = nullptr;  // min cost, margin clear
  const CandidateEval* best_capped = nullptr;       // max detection, fa <= cap
  const CandidateEval* best_any = nullptr;          // max detection overall
  for (const CandidateEval& e : evals) {
    if (e.k == k_ && e.window == window_) incumbent = &e;
    if (Feasible(config_, e) &&
        (best_feasible == nullptr || CheaperSetting(e, *best_feasible))) {
      best_feasible = &e;
    }
    if (Comfortable(config_, e) &&
        (best_comfortable == nullptr ||
         CheaperSetting(e, *best_comfortable))) {
      best_comfortable = &e;
    }
    if (e.system_fa <= config_.max_fa &&
        (best_capped == nullptr || e.detection > best_capped->detection)) {
      best_capped = &e;
    }
    if (best_any == nullptr || e.detection > best_any->detection) {
      best_any = &e;
    }
  }

  const CandidateEval* chosen = nullptr;
  bool feasible = true;
  if (incumbent != nullptr && Feasible(config_, *incumbent)) {
    chosen = incumbent;
    // A settled, passing incumbent moves only for a strictly cheaper
    // setting with margin to spare — estimator noise that nudges a
    // borderline candidate across the floor cannot flip the loop.
    if (dwell_ >= config_.min_dwell_epochs && best_comfortable != nullptr &&
        CheaperSetting(*best_comfortable, *incumbent)) {
      chosen = best_comfortable;
    }
  } else if (best_comfortable != nullptr) {
    chosen = best_comfortable;
  } else if (best_feasible != nullptr) {
    chosen = best_feasible;
  } else {
    // Nothing meets the floor: degrade predictably to the best detection
    // the FA cap allows (or the best outright if the cap excludes all).
    chosen = best_capped != nullptr ? best_capped : best_any;
    feasible = false;
  }

  Decision d;
  d.k = chosen->k;
  d.window = chosen->window;
  d.feasible = feasible && Feasible(config_, *chosen);
  d.retuned = chosen->k != k_ || chosen->window != window_;
  d.detection = chosen->detection;
  d.system_fa = chosen->system_fa;
  if (d.retuned) {
    k_ = chosen->k;
    window_ = chosen->window;
    dwell_ = 0;
  } else if (dwell_ < (1 << 20)) {
    ++dwell_;
  }
  return d;
}

}  // namespace sparsedet::adapt
