// Live-population estimation from quiescent report counts.
//
// A base station cannot poll dead sensors, but it *can* count the reports
// it receives. With no target present every live node emits a report each
// period with probability q (its false-alarm rate pf, thinned by transport
// loss), so the count over an epoch of P periods from A live nodes is
// Binomial(A * P, q) with mean A * P * q. Method of moments inverts that:
//
//   A_hat = sum(reports) / (q * sum(periods))
//
// over a sliding window of recent epochs. Because the population decays
// while the window accumulates, older counts overestimate the present:
// Age(ratio) multiplies every stored count by the one-step model survival
// ratio S(t_e) / S(t_{e-1}) before each new observation, re-expressing the
// history in present-population units.
//
// Confidence bounds come from the score interval for a Poisson-like count
// (exact enough at the small q this channel runs at):
//
//   [sum(R) + z^2/2 -+ z * sqrt(sum(R) + z^2/4)] / (q * sum(periods))
//
// which stays sane at zero observed reports (lo = 0, hi > 0) where the
// naive Wald interval collapses.
#pragma once

#include <deque>

namespace sparsedet::adapt {

struct PopulationEstimate {
  double live = 0.0;  // method-of-moments point estimate
  double lo = 0.0;    // score-interval confidence bounds at the given z
  double hi = 0.0;
  int windows = 0;    // epochs contributing to the estimate
};

class LivePopulationEstimator {
 public:
  // `report_prob` is q, the per-node per-period probability that a
  // quiescent report is received (pf thinned by transport loss); must be
  // in (0, 1]. `window_capacity` epochs are retained. `z` sets the
  // confidence level (z = 3 covers ~99.7%).
  LivePopulationEstimator(double report_prob, int window_capacity, double z);

  // Records one epoch's received report count over `periods` periods.
  void Observe(double reports, int periods);

  // Decays every stored count by `ratio` (the one-step survival ratio),
  // re-expressing history in present-population units. Call once per
  // epoch, before Observe.
  void Age(double ratio);

  bool HasData() const { return !windows_.empty(); }

  PopulationEstimate Estimate() const;

 private:
  struct Window {
    double reports = 0.0;
    int periods = 0;
  };

  double q_;
  int capacity_;
  double z_;
  std::deque<Window> windows_;
};

}  // namespace sparsedet::adapt
