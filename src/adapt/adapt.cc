#include "adapt/adapt.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adapt/controller.h"
#include "adapt/estimator.h"
#include "common/check.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/false_alarm_model.h"
#include "resilience/cancel.h"
#include "sim/closed_loop.h"

namespace sparsedet::adapt {
namespace {

JsonValue ParamsJson(const SystemParams& p) {
  JsonValue obj = JsonValue::Object();
  obj.Set("field_width", p.field_width)
      .Set("field_height", p.field_height)
      .Set("nodes", p.num_nodes)
      .Set("rs", p.sensing_range)
      .Set("rc", p.comm_range)
      .Set("pd", p.detect_prob)
      .Set("period", p.period_length)
      .Set("speed", p.target_speed)
      .Set("window", p.window_periods)
      .Set("k", p.threshold_reports);
  return obj;
}

JsonValue OptionsJson(const MsApproachOptions& o) {
  JsonValue obj = JsonValue::Object();
  obj.Set("gh", o.gh)
      .Set("g", o.g)
      .Set("normalize", o.normalize)
      .Set("reliability", o.node_reliability);
  return obj;
}

// One candidate as an engine request: a single-point sweep, the engine's
// cheapest unit (detection probability only). Consecutive epochs differ
// only in the population scalar, so these land on the same solver memo
// entries any optimizer or user sweep over the scenario would warm.
std::string SweepRequestLine(const SystemParams& p,
                             const MsApproachOptions& o, std::uint64_t id) {
  JsonValue sweep = JsonValue::Object();
  sweep.Set("param", "nodes")
      .Set("from", p.num_nodes)
      .Set("to", p.num_nodes)
      .Set("step", 1);
  JsonValue req = JsonValue::Object();
  req.Set("id", static_cast<std::int64_t>(id))
      .Set("op", "sweep")
      .Set("params", ParamsJson(p))
      .Set("options", OptionsJson(o))
      .Set("sweep", std::move(sweep));
  return req.ToString();
}

// Monte-Carlo validation of one epoch's chosen setting at the realized
// alive count (transport loss included; death is already realized in the
// alive count, so the per-period death process stays off).
std::string SimulateRequestLine(const SystemParams& p, int trials,
                                std::uint64_t seed, double report_loss,
                                std::uint64_t id) {
  JsonValue sim = JsonValue::Object();
  sim.Set("trials", trials)
      .Set("seed", static_cast<std::int64_t>(seed))
      .Set("loss", report_loss);
  JsonValue req = JsonValue::Object();
  req.Set("id", static_cast<std::int64_t>(id))
      .Set("op", "simulate")
      .Set("params", ParamsJson(p))
      .Set("sim", std::move(sim));
  return req.ToString();
}

// The detection probability out of a single-point sweep response, or a
// negative value when the engine answered with a per-request error.
double ExtractSweepDetection(const JsonValue& response) {
  const JsonValue* result =
      response.is_object() ? response.Find("result") : nullptr;
  if (result == nullptr) return -1.0;
  const JsonValue* points = result->Find("points");
  SPARSEDET_CHECK(points != nullptr && points->is_array() &&
                      points->Size() == 1,
                  "inner solve response missing its sweep point");
  const JsonValue* detection = points->At(0).Find("detection_probability");
  SPARSEDET_CHECK(detection != nullptr && detection->is_number(),
                  "inner solve response missing detection_probability");
  return detection->AsDouble();
}

// The optimizer's structured error vocabulary, so clients branch on the
// same codes for every long-command kind.
const char* CancelErrorCode(resilience::CancelReason reason) {
  switch (reason) {
    case resilience::CancelReason::kDeadline:
      return "deadline_exceeded";
    case resilience::CancelReason::kWatchdog:
      return "watchdog_cancelled";
    case resilience::CancelReason::kDisconnect:
      return "disconnected";
    default:
      return "cancelled";
  }
}

// Decrements adapt_active on every exit path, exception-safe.
struct ActiveGuard {
  explicit ActiveGuard(obs::Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add(1);
  }
  ~ActiveGuard() {
    if (gauge_ != nullptr) gauge_->Add(-1);
  }
  obs::Gauge* gauge_;
};

// Rng substream labels for the closed loop's two consumers; disjoint from
// each other and stable across releases (they are part of the
// reproducibility contract).
constexpr std::uint64_t kQuiescentLabelBase = 0xADA0'0000ULL;
constexpr std::uint64_t kValidateLabelBase = 0xADB0'0000ULL;

// Engine seeds must survive the request parser's double round-trip.
constexpr std::uint64_t kSeedMask = (1ULL << 53) - 1;

class Runner {
 public:
  Runner(const AdaptSpec& spec, opt::SolveBackend& backend,
         obs::MetricsRegistry* registry, const AdaptHooks& hooks)
      : spec_(spec),
        backend_(backend),
        hooks_(hooks),
        metrics_(registry != nullptr ? std::make_unique<AdaptMetrics>(
                                           *registry)
                                     : nullptr) {}

  JsonValue Run();

 private:
  // False = stop the loop now (deadline expired / admission refused), with
  // the epochs completed so far as the partial result.
  bool KeepGoing() {
    if (hooks_.cancel != nullptr) hooks_.cancel->ThrowIfCancelled();
    if (deadline_.set() && deadline_.Expired()) {
      degraded_ = true;
      if (metrics_) metrics_->deadline_partial->Inc();
      return false;
    }
    return true;
  }

  bool Solve(const std::vector<std::string>& lines,
             std::vector<JsonValue>* responses) {
    if (hooks_.admit && !hooks_.admit(lines.size(), deadline_)) {
      degraded_ = true;
      if (metrics_) metrics_->deadline_partial->Inc();
      return false;
    }
    *responses = backend_.Solve(lines);
    return true;
  }

  // The candidate scenario at one population: N/k/M replaced, Pd thinned
  // by transport loss. Returns nullopt when the combination is invalid
  // (e.g. k exceeding the possible report count at this population).
  std::optional<SystemParams> CandidateParamsAt(int nodes, int k,
                                                int window) const {
    SystemParams p = spec_.params;
    p.num_nodes = nodes;
    p.threshold_reports = k;
    p.window_periods = window;
    p.detect_prob = spec_.failure.EffectiveDetectProb(spec_.params.detect_prob);
    try {
      p.Validate();
    } catch (const Error&) {
      return std::nullopt;
    }
    return p;
  }

  AdaptSpec spec_;
  opt::SolveBackend& backend_;
  AdaptHooks hooks_;
  std::unique_ptr<AdaptMetrics> metrics_;
  resilience::Deadline deadline_;

  std::uint64_t next_id_ = 1;
  std::int64_t solve_errors_ = 0;
  bool degraded_ = false;
};

JsonValue Runner::Run() {
  if (metrics_) metrics_->runs->Inc();
  ActiveGuard active(metrics_ ? metrics_->active : nullptr);

  deadline_ = spec_.deadline_ms > 0
                  ? resilience::Deadline::AfterMillis(spec_.deadline_ms)
                  : resilience::Deadline();

  const int epoch_periods = spec_.EpochPeriods();
  const bool closed_loop = spec_.mode == AdaptMode::kClosedLoop;
  const double q_eff =
      spec_.pf * (1.0 - spec_.failure.report_loss_prob);

  // The (k, M) candidate grid, shared by every epoch: axis values plus the
  // spec's initial setting, in deterministic (window, k) order.
  std::vector<std::pair<int, int>> grid;  // (window, k)
  {
    const std::vector<double> ks =
        spec_.k.set ? spec_.k.Values()
                    : std::vector<double>{static_cast<double>(
                          spec_.params.threshold_reports)};
    const std::vector<double> windows =
        spec_.window.set ? spec_.window.Values()
                         : std::vector<double>{static_cast<double>(
                               spec_.params.window_periods)};
    for (double m : windows) {
      for (double k : ks) {
        grid.emplace_back(static_cast<int>(m), static_cast<int>(k));
      }
    }
    grid.emplace_back(spec_.params.window_periods,
                      spec_.params.threshold_reports);
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  }

  std::optional<FailureTrajectory> trajectory;
  std::optional<LivePopulationEstimator> estimator;
  Rng seed_base(spec_.sim_seed);
  if (closed_loop) {
    trajectory.emplace(spec_.params.num_nodes, spec_.failure, spec_.sim_seed);
    if (spec_.estimate_from_reports) {
      estimator.emplace(q_eff, spec_.estimator_windows, spec_.estimator_z);
    }
  }

  ControllerConfig config;
  config.min_detection = spec_.min_detection;
  config.max_fa = spec_.max_fa;
  config.margin = spec_.margin;
  config.min_dwell_epochs = spec_.min_dwell_epochs;
  AdaptController controller(config, spec_.params.threshold_reports,
                             spec_.params.window_periods);

  JsonValue rows = JsonValue::Array();
  int epochs_run = 0;
  std::int64_t retunes = 0;
  bool held = true;
  double prev_survival = 1.0;
  int final_population = spec_.params.num_nodes;

  for (int e = 0; e < spec_.horizon_epochs; ++e) {
    if (!KeepGoing()) break;
    const auto start = std::chrono::steady_clock::now();

    const double t =
        static_cast<double>(e) * epoch_periods * spec_.params.period_length;
    const double survival = spec_.failure.SurvivalAt(t);
    const double expected_live = survival * spec_.params.num_nodes;

    // --- Population estimate the decision runs against. ---
    int alive = 0;
    int population = spec_.params.num_nodes;
    JsonValue estimate_json;
    if (closed_loop) {
      alive = trajectory->AliveAt(t);
      if (estimator.has_value()) {
        if (e > 0 && prev_survival > 0.0) {
          estimator->Age(std::min(1.0, survival / prev_survival));
        }
        Rng qrng = seed_base.Substream(kQuiescentLabelBase +
                                       static_cast<std::uint64_t>(e));
        const int reports =
            QuiescentReportCount(alive, epoch_periods, q_eff, qrng);
        estimator->Observe(reports, epoch_periods);
        const PopulationEstimate est = estimator->Estimate();
        // Zero reports so far says nothing about N beyond the upper bound
        // (q·N·periods may just be small); until data arrives the best
        // belief is the failure-model prior, which the deployment knows.
        population = est.live > 0.0
                         ? static_cast<int>(std::llround(est.live))
                         : static_cast<int>(std::llround(expected_live));
        population = std::clamp(population, 1, spec_.params.num_nodes);
        estimate_json = JsonValue::Object();
        estimate_json.Set("live", est.live)
            .Set("lo", est.lo)
            .Set("hi", est.hi)
            .Set("reports", reports)
            .Set("windows", est.windows);
        if (metrics_) {
          metrics_->estimated_population->Set(
              static_cast<std::int64_t>(std::llround(est.live)));
        }
      } else {
        population = std::max(alive, 1);
        if (metrics_) metrics_->estimated_population->Set(population);
      }
      if (metrics_) metrics_->live_population->Set(alive);
    } else {
      if (metrics_) {
        const std::int64_t live =
            static_cast<std::int64_t>(std::llround(expected_live));
        metrics_->live_population->Set(live);
        metrics_->estimated_population->Set(live);
      }
    }

    // --- Evaluate the candidate grid at this population. ---
    // Analyze mode keeps N fixed and thins through the reliability scalar
    // (the AnalyzeDegrading view); closed_loop replaces N with the integer
    // estimate, exactly what a base station could actually do.
    MsApproachOptions epoch_options = spec_.options;
    double pf_eff = spec_.pf * (1.0 - spec_.failure.report_loss_prob);
    if (!closed_loop) {
      epoch_options.node_reliability =
          spec_.options.node_reliability * survival;
      pf_eff *= survival;
    }

    std::vector<CandidateEval> evals;
    std::vector<std::pair<int, int>> solved;  // (window, k) per line
    std::vector<std::string> lines;
    for (const auto& [window, k] : grid) {
      const std::optional<SystemParams> p =
          CandidateParamsAt(population, k, window);
      if (!p.has_value()) continue;
      lines.push_back(SweepRequestLine(*p, epoch_options, next_id_++));
      solved.emplace_back(window, k);
    }
    if (lines.empty()) {
      throw Error("adapt: no valid candidate setting at population " +
                  std::to_string(population));
    }
    std::vector<JsonValue> responses;
    if (!Solve(lines, &responses)) break;
    if (metrics_) metrics_->candidates->Inc(lines.size());
    for (std::size_t i = 0; i < solved.size(); ++i) {
      const double detection = ExtractSweepDetection(responses[i]);
      if (detection < 0.0) {
        ++solve_errors_;
        if (metrics_) metrics_->solve_errors->Inc();
        continue;
      }
      CandidateEval eval;
      eval.window = solved[i].first;
      eval.k = solved[i].second;
      eval.detection = detection;
      const SystemParams p =
          *CandidateParamsAt(population, eval.k, eval.window);
      eval.system_fa = CountOnlySystemFaProbability(p, pf_eff);
      evals.push_back(eval);
    }
    if (evals.empty()) {
      throw Error(
          "adapt: every candidate failed to solve (is the window larger "
          "than the traversal span ms?)");
    }

    const Decision decision = controller.Decide(evals);
    if (decision.retuned) {
      ++retunes;
      if (metrics_) metrics_->retunes->Inc();
    }
    if (!decision.feasible) {
      held = false;
      if (metrics_) metrics_->infeasible_epochs->Inc();
    }

    JsonValue row = JsonValue::Object();
    row.Set("epoch", e)
        .Set("time_s", t)
        .Set("survival", survival)
        .Set("expected_live", expected_live);
    if (closed_loop) {
      row.Set("alive", alive);
      if (estimator.has_value()) row.Set("estimate", std::move(estimate_json));
    }
    row.Set("population", population)
        .Set("k", decision.k)
        .Set("window", decision.window)
        .Set("retuned", decision.retuned)
        .Set("feasible", decision.feasible)
        .Set("detection_probability", decision.detection)
        .Set("system_fa", decision.system_fa);

    // --- Closed-loop ground truth: the chosen setting at the *realized*
    // alive count, analytically and (optionally) by Monte Carlo. ---
    if (closed_loop) {
      const std::optional<SystemParams> truth =
          alive >= 1 ? CandidateParamsAt(alive, decision.k, decision.window)
                     : std::nullopt;
      if (truth.has_value()) {
        std::vector<std::string> vlines;
        vlines.push_back(
            SweepRequestLine(*truth, spec_.options, next_id_++));
        if (spec_.sim_trials > 0) {
          const std::uint64_t vseed =
              seed_base.Substream(kValidateLabelBase +
                                  static_cast<std::uint64_t>(e))() &
              kSeedMask;
          vlines.push_back(SimulateRequestLine(
              *truth, spec_.sim_trials, vseed,
              spec_.failure.report_loss_prob, next_id_++));
        }
        std::vector<JsonValue> vresponses;
        if (!Solve(vlines, &vresponses)) {
          rows.Append(std::move(row));
          ++epochs_run;
          break;
        }
        const double analytic = ExtractSweepDetection(vresponses[0]);
        if (analytic >= 0.0) {
          row.Set("analytic_alive", analytic);
        } else {
          ++solve_errors_;
          if (metrics_) metrics_->solve_errors->Inc();
        }
        if (vresponses.size() > 1) {
          const JsonValue* result = vresponses[1].is_object()
                                        ? vresponses[1].Find("result")
                                        : nullptr;
          if (result != nullptr) {
            row.Set("simulated", *result);
          } else {
            ++solve_errors_;
            if (metrics_) metrics_->solve_errors->Inc();
          }
        }
      }
    }

    rows.Append(std::move(row));
    ++epochs_run;
    final_population = population;
    prev_survival = survival;
    if (metrics_) {
      metrics_->epochs->Inc();
      metrics_->current_k->Set(decision.k);
      metrics_->current_window->Set(decision.window);
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      metrics_->epoch_us->Record(us);
    }
  }

  JsonValue final_setting = JsonValue::Object();
  final_setting.Set("k", controller.k())
      .Set("window", controller.window())
      .Set("live", final_population);

  JsonValue result = JsonValue::Object();
  result.Set("mode", AdaptModeName(spec_.mode))
      .Set("degraded", degraded_)
      .Set("held", held)
      .Set("epochs_run", epochs_run)
      .Set("horizon_epochs", spec_.horizon_epochs)
      .Set("retunes", retunes)
      .Set("solve_errors", solve_errors_)
      .Set("final", std::move(final_setting))
      .Set("epochs", std::move(rows));
  return result;
}

}  // namespace

AdaptMetrics::AdaptMetrics(obs::MetricsRegistry& registry)
    : runs(&registry.counter("adapt_runs_total")),
      epochs(&registry.counter("adapt_epochs_total")),
      retunes(&registry.counter("adapt_retunes_total")),
      candidates(&registry.counter("adapt_candidates_total")),
      solve_errors(&registry.counter("adapt_solve_errors_total")),
      infeasible_epochs(&registry.counter("adapt_infeasible_epochs_total")),
      deadline_partial(&registry.counter("adapt_deadline_partial_total")),
      active(&registry.gauge("adapt_active")),
      live_population(&registry.gauge("adapt_live_population")),
      estimated_population(&registry.gauge("adapt_estimated_population")),
      current_k(&registry.gauge("adapt_current_k")),
      current_window(&registry.gauge("adapt_current_window")),
      epoch_us(&registry.histogram("adapt_epoch_us", {},
                                   obs::DefaultLatencyBoundsUs())) {}

JsonValue AdaptRun(const AdaptSpec& spec, opt::SolveBackend& backend,
                   obs::MetricsRegistry* registry, const AdaptHooks& hooks) {
  Runner runner(spec, backend, registry, hooks);
  return runner.Run();
}

JsonValue HandleAdaptCommand(const JsonValue& command,
                             opt::SolveBackend& backend,
                             obs::MetricsRegistry* registry,
                             const AdaptHooks& hooks) {
  JsonValue response = JsonValue::Object();
  if (command.is_object()) {
    const JsonValue* id = command.Find("id");
    if (id != nullptr && (id->is_string() || id->is_number())) {
      response.Set("id", *id);
    }
  }
  try {
    if (!command.is_object()) {
      throw InvalidArgument("adapt command must be a JSON object");
    }
    for (const auto& [key, value] : command.Fields()) {
      (void)value;
      if (key != "cmd" && key != "id" && key != "tenant" && key != "spec") {
        throw InvalidArgument("adapt command: unknown key \"" + key + "\"");
      }
    }
    const JsonValue* spec_json = command.Find("spec");
    if (spec_json == nullptr) {
      throw InvalidArgument("adapt command: missing \"spec\" object");
    }
    const AdaptSpec spec = ParseAdaptSpec(*spec_json);
    response.Set("result", AdaptRun(spec, backend, registry, hooks));
  } catch (const resilience::Cancelled& e) {
    response
        .Set("error", std::string("adapt cancelled: ") +
                          resilience::CancelReasonName(e.reason()))
        .Set("error_code", CancelErrorCode(e.reason()));
  } catch (const InvalidArgument& e) {
    response.Set("error", std::string(e.what()))
        .Set("error_code", "invalid_argument");
  } catch (const Error& e) {
    response.Set("error", std::string(e.what()))
        .Set("error_code", "internal");
  }
  return response;
}

void WriteAdaptOutput(const JsonValue& result, std::ostream& out) {
  const JsonValue* epochs =
      result.is_object() ? result.Find("epochs") : nullptr;
  if (epochs == nullptr) {
    out << result.ToString() << '\n';
    return;
  }
  for (const JsonValue& row : epochs->Items()) {
    out << row.ToString() << '\n';
  }
  JsonValue summary = JsonValue::Object();
  for (const auto& [key, value] : result.Fields()) {
    if (key == "epochs") {
      summary.Set("epochs_size", static_cast<std::int64_t>(value.Size()));
    } else {
      summary.Set(key, value);
    }
  }
  out << summary.ToString() << '\n';
}

}  // namespace sparsedet::adapt
