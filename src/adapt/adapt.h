// The self-healing adaptation loop.
//
// Each epoch: (1) advance the failure process (expected survival in
// analyze mode, one seeded realization in closed_loop mode); (2) estimate
// the live population (oracle census or the report-count estimator); (3)
// evaluate every candidate (k, M) setting at that population — detection
// through the engine (pooled workers + result cache + the process-wide
// solver memo cache, which consecutive epochs share since they differ only
// in the population scalar), false-alarm bound as a local closed form; (4)
// let the controller pick next epoch's setting; (5) in closed_loop mode,
// optionally validate the chosen setting by Monte Carlo at the *realized*
// alive count, which is the acceptance check that the loop actually holds
// its floor.
//
// Determinism contract (matching the optimizer's): epoch order, batch
// composition, estimator arithmetic and output depend only on the spec —
// never on thread count or cache temperature — so a given spec produces
// byte-identical results at --solver-threads 1 or 8, cold or warm memo.
//
// Deadlines: spec.deadline_ms is enforced *between* inner-solve batches;
// expiry yields the epochs completed so far tagged "degraded": true, never
// a hang. The admission hook is consulted per batch exactly like the
// optimizer's, so the TCP front-end meters adapt runs with the same
// per-tenant buckets.
#pragma once

#include <ostream>

#include "adapt/spec.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "opt/backend.h"
#include "opt/optimizer.h"

namespace sparsedet::adapt {

// Admission / cancellation hooks, shared with the optimizer so the serve
// front-ends meter both long-command kinds identically.
using AdaptHooks = opt::OptimizerHooks;

// adapt_* handles in a metrics registry, resolved once so the epoch loop
// never takes the registry mutex.
struct AdaptMetrics {
  explicit AdaptMetrics(obs::MetricsRegistry& registry);

  obs::Counter* runs;
  obs::Counter* epochs;
  obs::Counter* retunes;
  obs::Counter* candidates;
  obs::Counter* solve_errors;
  obs::Counter* infeasible_epochs;
  obs::Counter* deadline_partial;
  obs::Gauge* active;
  // Deployment health after the most recent epoch: the population the
  // decision used, the estimator's view of it, and the setting in force.
  obs::Gauge* live_population;
  obs::Gauge* estimated_population;
  obs::Gauge* current_k;
  obs::Gauge* current_window;
  obs::Histogram* epoch_us;
};

// Runs the adaptation loop to completion (or deadline) and returns:
//
//   {"mode": "closed_loop", "degraded": false, "held": true,
//    "epochs_run": 12, "horizon_epochs": 12, "retunes": 3,
//    "solve_errors": 0,
//    "final": {"k": 3, "window": 30, "live": 41},
//    "epochs": [{"epoch": 0, "time_s": 0, "survival": 1,
//                "expected_live": 60, "alive": 60,
//                "estimate": {"live": ..., "lo": ..., "hi": ...},
//                "k": 5, "window": 20, "retuned": false, "feasible": true,
//                "detection_probability": ..., "system_fa": ...,
//                "analytic_alive": ...,          // closed_loop
//                "simulated": {...}},            // closed_loop, trials > 0
//               ...]}
//
// "held" is true when every epoch run found a setting meeting the floor
// and FA cap at its population estimate. Throws resilience::Cancelled when
// hooks.cancel fires and InvalidArgument/Error for spec-level failures.
JsonValue AdaptRun(const AdaptSpec& spec, opt::SolveBackend& backend,
                   obs::MetricsRegistry* registry = nullptr,
                   const AdaptHooks& hooks = {});

// Handles one {"cmd": "adapt", "id": ..., "spec": {...}} command object
// (serve and serve-tcp). Returns the response object: the echoed id plus
// either {"result": <AdaptRun output>} or {"error", "error_code"} — the
// optimizer's error vocabulary (deadline_exceeded / watchdog_cancelled /
// disconnected / cancelled / invalid_argument / internal). Never throws.
JsonValue HandleAdaptCommand(const JsonValue& command,
                             opt::SolveBackend& backend,
                             obs::MetricsRegistry* registry,
                             const AdaptHooks& hooks = {});

// CLI rendering: one JSON line per epoch, then a summary line where the
// epochs array is replaced by "epochs_size" (the frontier-output idiom).
void WriteAdaptOutput(const JsonValue& result, std::ostream& out);

}  // namespace sparsedet::adapt
