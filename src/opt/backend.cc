#include "opt/backend.h"

#include <condition_variable>
#include <mutex>
#include <sstream>

#include "common/check.h"
#include "common/error.h"

namespace sparsedet::opt {
namespace {

std::vector<JsonValue> ParseResponses(const std::vector<std::string>& raw,
                                      std::size_t expected) {
  SPARSEDET_CHECK(raw.size() == expected,
                  "engine returned a different number of responses than "
                  "requests submitted");
  std::vector<JsonValue> responses;
  responses.reserve(raw.size());
  for (const std::string& line : raw) {
    responses.push_back(ParseJson(line));
  }
  return responses;
}

}  // namespace

std::vector<JsonValue> SyncEngineBackend::Solve(
    const std::vector<std::string>& lines) {
  std::ostringstream in_text;
  for (const std::string& line : lines) in_text << line << '\n';
  std::istringstream in(in_text.str());
  std::ostringstream out;
  engine_.RunBatch(in, out);

  std::vector<std::string> raw;
  raw.reserve(lines.size());
  std::istringstream out_lines(out.str());
  std::string line;
  while (std::getline(out_lines, line)) {
    if (!line.empty()) raw.push_back(line);
  }
  return ParseResponses(raw, lines.size());
}

std::vector<JsonValue> AsyncEngineBackend::Solve(
    const std::vector<std::string>& lines) {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::string> raw(lines.size());
  std::size_t done = 0;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    engine_.SubmitLineAsync(
        lines[i], static_cast<int>(i) + 1, parent_, /*oversized=*/false,
        [&, i](std::string response) {
          // Emitter thread: store and signal, nothing that can block.
          std::lock_guard<std::mutex> lock(mutex);
          raw[i] = std::move(response);
          ++done;
          if (done == lines.size()) cv.notify_one();
        });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done == lines.size(); });
  }
  return ParseResponses(raw, lines.size());
}

}  // namespace sparsedet::opt
