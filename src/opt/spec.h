// The inverse-deployment optimizer's problem specification.
//
// Everything else in the system answers the paper's forward question —
// given (N, k, M, t, Pd, duty cycle), what is the detection probability?
// An OptimizeSpec states the inverse one: over a search grid of those
// knobs, find the configuration that minimizes an objective (fleet size,
// energy drain) subject to detection / false-alarm / lifetime constraints,
// or trace the whole energy-vs-P_D Pareto frontier.
//
// One spec per JSON object:
//
//   {"objective": "min_nodes",            // min_nodes|min_energy|max_detection
//    "mode": "optimize",                  // optimize|frontier
//    "constraints": {"min_detection": 0.99, "pf": 1e-3, "max_fa": 0.01,
//                    "min_lifetime_days": 0},
//    "search": {"nodes":  {"from": 60, "to": 240, "step": 20},
//               "k":      {"from": 2, "to": 8, "step": 1},
//               "window": {...}, "period": {...}, "duty": {...}},
//    "params":  {... fixed scenario, engine "params" schema ...},
//    "options": {... M-S solver options, engine "options" schema ...},
//    "energy":  {"battery": 2e5, "sense": 0.5, "idle": 0.01,
//                "tx": 0.05, "rx": 0.02, "hops": 4.3},
//    "refine_rounds": 2,
//    "deadline_ms": 0}
//
// Parsing is strict (unknown keys and wrong types are rejected with a
// message naming the offending key), mirroring the batch-engine request
// protocol so a typo never silently optimizes the default scenario.
//
// Axis semantics: an absent axis is fixed at the value in "params" (duty
// at 1.0). A present axis enumerates from, from+step, ... up to `to`
// inclusive. Endpoints are bounded to +/-1e9, the integer axes (nodes, k,
// window) require integral from/step, and each axis is capped at
// kMaxGridCandidates values — all checked in closed form at parse time,
// so a hostile range is rejected before anything is materialized. Duty cycling maps onto the solver analytically (validated by
// experiment E20): an awake fraction d scales the per-period report
// probability to d * Pd — so every duty point reuses the same analytical
// solve family, and therefore the same solver memo entries, as a plain
// sweep would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/energy_model.h"
#include "core/ms_approach.h"
#include "core/params.h"

namespace sparsedet::opt {

enum class Objective { kMinNodes, kMinEnergy, kMaxDetection };
enum class SearchMode { kOptimize, kFrontier };

// "min_nodes", "min_energy", "max_detection" / "optimize", "frontier".
std::string ObjectiveName(Objective objective);
std::string SearchModeName(SearchMode mode);

// One search dimension: from, from + step, ... up to `to` inclusive (with
// the same epsilon the sweep grid uses). `set` is false for axes absent
// from the spec, which stay fixed at the scenario value.
struct AxisSpec {
  bool set = false;
  double from = 0.0;
  double to = 0.0;
  double step = 1.0;

  // Number of grid values (1 when unset: the fixed scenario value).
  std::size_t Count() const;
  std::vector<double> Values() const;
};

struct OptimizeSpec {
  Objective objective = Objective::kMinNodes;
  SearchMode mode = SearchMode::kOptimize;

  // Constraints. `pf` is the per-node per-awake-period false alarm
  // probability feeding both the count-only system FA bound and the
  // steady-state energy report rate; `max_fa` caps the count-only
  // P[system false alarm per window] (1 = unconstrained).
  double min_detection = 0.9;
  double pf = 0.0;
  double max_fa = 1.0;
  double min_lifetime_days = 0.0;

  // Search axes over (N, k, M, t, duty).
  AxisSpec nodes;
  AxisSpec k;
  AxisSpec window;
  AxisSpec period;
  AxisSpec duty;

  // Fixed scenario baseline + solver options (engine request schema).
  SystemParams params = SystemParams::OnrDefaults();
  MsApproachOptions options;

  // Energy accounting (E24): model costs plus the mean route length to the
  // base station.
  EnergyModel energy;
  double mean_hops = 4.3;

  // Local-refinement rounds around the incumbent after the coarse sweep
  // (mode "optimize" only); each round halves every set axis's step and
  // re-evaluates the +/- neighborhood. 0 = coarse grid only.
  int refine_rounds = 2;

  // Wall-clock budget for the whole search; 0 = none. Expiry yields a
  // valid partial result tagged "degraded": true, never a hang. The
  // deadline is enforced *between* inner-solve batches so inner solves
  // never carry deadline tokens — deadline-bearing tokens forbid memo
  // inserts, and the optimizer's whole economy is warming that cache.
  std::int64_t deadline_ms = 0;

  // Total coarse-grid size (product of axis counts).
  std::size_t GridSize() const;
};

// Largest coarse grid a spec may enumerate (product of axis counts),
// mirroring the engine's sweep-point cap: serve mode must never accept a
// request that enqueues unbounded work.
inline constexpr std::size_t kMaxGridCandidates = 100000;

// Parses and validates one spec object. Throws InvalidArgument with a
// key-specific message on unknown keys, type mismatches, out-of-domain
// values, or a grid larger than kMaxGridCandidates.
OptimizeSpec ParseOptimizeSpec(const JsonValue& json);

// The spec as canonical JSON (round-trips through ParseOptimizeSpec);
// echoed in results so a stored frontier is self-describing.
JsonValue SpecToJson(const OptimizeSpec& spec);

// One point of the search grid.
struct Candidate {
  int nodes = 0;
  int k = 0;
  int window = 0;
  double period = 0.0;
  double duty = 1.0;
};

// Deterministic lexicographic order over (nodes, k, window, period, duty);
// the tie-break order every objective shares.
bool CandidateLess(const Candidate& a, const Candidate& b);

// Injective dedup key (bit-exact doubles), used to skip re-evaluating grid
// points the refinement neighborhoods revisit.
std::string CandidateKey(const Candidate& c);

// The candidate applied to the spec's fixed scenario: N/k/M/t replaced,
// detect_prob scaled by duty (the E20 duty-cycling equivalence).
SystemParams CandidateParams(const OptimizeSpec& spec, const Candidate& c);

// The full coarse grid in deterministic order (nodes outermost, duty
// innermost — matching CandidateLess). Candidates whose parameters fail
// SystemParams::Validate() are dropped; `invalid` (optional) receives the
// dropped count.
std::vector<Candidate> CoarseGrid(const OptimizeSpec& spec,
                                  std::size_t* invalid = nullptr);

}  // namespace sparsedet::opt
