#include "opt/spec.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "engine/request.h"

namespace sparsedet::opt {
namespace {

[[noreturn]] void FailKey(const std::string& section, const std::string& key,
                          const std::string& message) {
  std::ostringstream os;
  os << "spec field \"" << (section.empty() ? key : section + "." + key)
     << "\": " << message;
  throw InvalidArgument(os.str());
}

// Strict typed field extraction, the request.cc idiom: every section lists
// its allowed keys so a typo is named instead of silently ignored.
void CheckKeys(const JsonValue& obj, const std::string& section,
               const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.Fields()) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::ostringstream os;
      os << "unknown spec field \""
         << (section.empty() ? key : section + "." + key) << "\"";
      throw InvalidArgument(os.str());
    }
  }
}

double GetNumber(const JsonValue& obj, const std::string& section,
                 const std::string& key, double fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailKey(section, key, "expected a number");
  return v->AsDouble();
}

double RequireNumber(const JsonValue& obj, const std::string& section,
                     const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) FailKey(section, key, "required");
  if (!v->is_number()) FailKey(section, key, "expected a number");
  return v->AsDouble();
}

int GetInt(const JsonValue& obj, const std::string& section,
           const std::string& key, int fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailKey(section, key, "expected an integer");
  const double d = v->AsDouble();
  if (d != std::floor(d) || std::abs(d) > 1e9) {
    FailKey(section, key, "expected an integer");
  }
  return static_cast<int>(d);
}

std::string GetString(const JsonValue& obj, const std::string& section,
                      const std::string& key, const std::string& fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) FailKey(section, key, "expected a string");
  return v->AsString();
}

// Everything here is reachable from an untrusted {"cmd":"optimize"}
// network request, so the axis must be provably small *before* any vector
// is materialized: endpoints bounded, the step guaranteed to advance the
// iterate in double precision (a sub-ulp step would loop forever), and the
// closed-form count checked against the grid cap.
AxisSpec ParseAxis(const JsonValue& obj, const std::string& section,
                   bool integer) {
  if (!obj.is_object()) FailKey("search", section, "expected an object");
  CheckKeys(obj, "search." + section, {"from", "to", "step"});
  AxisSpec axis;
  axis.set = true;
  axis.from = RequireNumber(obj, "search." + section, "from");
  axis.to = RequireNumber(obj, "search." + section, "to");
  axis.step = GetNumber(obj, "search." + section, "step", 1.0);
  if (!std::isfinite(axis.from) || std::abs(axis.from) > 1e9) {
    FailKey("search." + section, "from", "expected finite in [-1e9, 1e9]");
  }
  if (!std::isfinite(axis.to) || std::abs(axis.to) > 1e9) {
    FailKey("search." + section, "to", "expected finite in [-1e9, 1e9]");
  }
  if (!std::isfinite(axis.step) || !(axis.step > 0.0)) {
    FailKey("search." + section, "step", "expected > 0");
  }
  if (axis.to < axis.from) {
    FailKey("search." + section, "to", "expected >= from");
  }
  if (integer) {
    if (axis.from != std::floor(axis.from)) {
      FailKey("search." + section, "from", "expected an integer");
    }
    if (axis.step != std::floor(axis.step)) {
      FailKey("search." + section, "step", "expected an integer");
    }
  }
  if (axis.from + axis.step == axis.from ||
      axis.to + axis.step == axis.to) {
    FailKey("search." + section, "step",
            "too small to advance the axis at this magnitude");
  }
  if (axis.Count() > kMaxGridCandidates) {
    std::ostringstream os;
    os << "axis expands to more than " << kMaxGridCandidates << " values";
    FailKey("search." + section, "step", os.str());
  }
  return axis;
}

JsonValue AxisToJson(const AxisSpec& axis) {
  JsonValue json = JsonValue::Object();
  json.Set("from", axis.from).Set("to", axis.to).Set("step", axis.step);
  return json;
}

}  // namespace

std::string ObjectiveName(Objective objective) {
  switch (objective) {
    case Objective::kMinNodes:
      return "min_nodes";
    case Objective::kMinEnergy:
      return "min_energy";
    case Objective::kMaxDetection:
      return "max_detection";
  }
  return "?";
}

std::string SearchModeName(SearchMode mode) {
  return mode == SearchMode::kFrontier ? "frontier" : "optimize";
}

std::size_t AxisSpec::Count() const {
  if (!set) return 1;
  // Closed form of the Values() loop count (largest i with
  // from + i * step <= to + 1e-9), so grid-size checks never materialize
  // the axis.
  const double count = std::floor((to - from + 1e-9) / step) + 1.0;
  if (!(count >= 1.0)) return 1;
  constexpr double kSizeMax =
      static_cast<double>(std::numeric_limits<std::size_t>::max());
  if (count >= kSizeMax) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(count);
}

std::vector<double> AxisSpec::Values() const {
  std::vector<double> values;
  if (!set) return values;
  // The sweep grid's inclusive-upper-bound epsilon, so an optimizer axis
  // and an engine sweep over the same range enumerate identical points.
  for (double v = from; v <= to + 1e-9; v += step) {
    values.push_back(v);
    // Defense in depth behind the ParseAxis closed-form cap: an axis built
    // outside the parser must still never allocate unbounded memory or
    // spin on a step too small to advance v.
    if (values.size() > kMaxGridCandidates) {
      throw InvalidArgument("axis expands to too many values");
    }
  }
  return values;
}

std::size_t OptimizeSpec::GridSize() const {
  // Saturating product: five axes each at the per-axis cap would overflow
  // a naive size_t multiply.
  std::size_t total = 1;
  for (std::size_t count : {nodes.Count(), k.Count(), window.Count(),
                            period.Count(), duty.Count()}) {
    if (total > std::numeric_limits<std::size_t>::max() / count) {
      return std::numeric_limits<std::size_t>::max();
    }
    total *= count;
  }
  return total;
}

OptimizeSpec ParseOptimizeSpec(const JsonValue& json) {
  if (!json.is_object()) {
    throw InvalidArgument("optimize spec must be a JSON object");
  }
  CheckKeys(json, "",
            {"objective", "mode", "constraints", "search", "params",
             "options", "energy", "refine_rounds", "deadline_ms"});

  OptimizeSpec spec;
  const std::string objective =
      GetString(json, "", "objective", "min_nodes");
  if (objective == "min_nodes") {
    spec.objective = Objective::kMinNodes;
  } else if (objective == "min_energy") {
    spec.objective = Objective::kMinEnergy;
  } else if (objective == "max_detection") {
    spec.objective = Objective::kMaxDetection;
  } else {
    FailKey("", "objective",
            "expected \"min_nodes\", \"min_energy\" or \"max_detection\"");
  }
  const std::string mode = GetString(json, "", "mode", "optimize");
  if (mode == "optimize") {
    spec.mode = SearchMode::kOptimize;
  } else if (mode == "frontier") {
    spec.mode = SearchMode::kFrontier;
  } else {
    FailKey("", "mode", "expected \"optimize\" or \"frontier\"");
  }

  if (const JsonValue* constraints = json.Find("constraints")) {
    if (!constraints->is_object()) {
      FailKey("", "constraints", "expected an object");
    }
    CheckKeys(*constraints, "constraints",
              {"min_detection", "pf", "max_fa", "min_lifetime_days"});
    spec.min_detection = GetNumber(*constraints, "constraints",
                                   "min_detection", spec.min_detection);
    spec.pf = GetNumber(*constraints, "constraints", "pf", spec.pf);
    spec.max_fa =
        GetNumber(*constraints, "constraints", "max_fa", spec.max_fa);
    spec.min_lifetime_days = GetNumber(
        *constraints, "constraints", "min_lifetime_days",
        spec.min_lifetime_days);
    if (spec.min_detection < 0.0 || spec.min_detection > 1.0) {
      FailKey("constraints", "min_detection", "expected in [0, 1]");
    }
    if (spec.pf < 0.0 || spec.pf > 1.0) {
      FailKey("constraints", "pf", "expected in [0, 1]");
    }
    if (spec.max_fa < 0.0 || spec.max_fa > 1.0) {
      FailKey("constraints", "max_fa", "expected in [0, 1]");
    }
    if (spec.min_lifetime_days < 0.0) {
      FailKey("constraints", "min_lifetime_days", "expected >= 0");
    }
  }

  if (const JsonValue* search = json.Find("search")) {
    if (!search->is_object()) FailKey("", "search", "expected an object");
    CheckKeys(*search, "search", {"nodes", "k", "window", "period", "duty"});
    if (const JsonValue* axis = search->Find("nodes")) {
      spec.nodes = ParseAxis(*axis, "nodes", /*integer=*/true);
      if (spec.nodes.from < 1.0) FailKey("search.nodes", "from", "expected >= 1");
    }
    if (const JsonValue* axis = search->Find("k")) {
      spec.k = ParseAxis(*axis, "k", /*integer=*/true);
      if (spec.k.from < 1.0) FailKey("search.k", "from", "expected >= 1");
    }
    if (const JsonValue* axis = search->Find("window")) {
      spec.window = ParseAxis(*axis, "window", /*integer=*/true);
      if (spec.window.from < 1.0) {
        FailKey("search.window", "from", "expected >= 1");
      }
    }
    if (const JsonValue* axis = search->Find("period")) {
      spec.period = ParseAxis(*axis, "period", /*integer=*/false);
      if (!(spec.period.from > 0.0)) {
        FailKey("search.period", "from", "expected > 0");
      }
    }
    if (const JsonValue* axis = search->Find("duty")) {
      spec.duty = ParseAxis(*axis, "duty", /*integer=*/false);
      if (!(spec.duty.from > 0.0)) {
        FailKey("search.duty", "from", "expected > 0");
      }
      if (spec.duty.to > 1.0) FailKey("search.duty", "to", "expected <= 1");
    }
  }

  if (const JsonValue* params = json.Find("params")) {
    if (!params->is_object()) FailKey("", "params", "expected an object");
    spec.params = engine::ParseParamsSection(*params);
  }
  if (const JsonValue* options = json.Find("options")) {
    if (!options->is_object()) FailKey("", "options", "expected an object");
    spec.options = engine::ParseOptionsSection(*options);
  }

  if (const JsonValue* energy = json.Find("energy")) {
    if (!energy->is_object()) FailKey("", "energy", "expected an object");
    CheckKeys(*energy, "energy",
              {"battery", "sense", "idle", "tx", "rx", "hops"});
    spec.energy.battery_joules =
        GetNumber(*energy, "energy", "battery", spec.energy.battery_joules);
    spec.energy.sense_cost_per_period = GetNumber(
        *energy, "energy", "sense", spec.energy.sense_cost_per_period);
    spec.energy.idle_cost_per_period = GetNumber(
        *energy, "energy", "idle", spec.energy.idle_cost_per_period);
    spec.energy.tx_cost_per_report_hop = GetNumber(
        *energy, "energy", "tx", spec.energy.tx_cost_per_report_hop);
    spec.energy.rx_cost_per_report_hop = GetNumber(
        *energy, "energy", "rx", spec.energy.rx_cost_per_report_hop);
    spec.mean_hops = GetNumber(*energy, "energy", "hops", spec.mean_hops);
    spec.energy.Validate();
    if (!(spec.mean_hops >= 0.0)) {
      FailKey("energy", "hops", "expected >= 0");
    }
  }

  spec.refine_rounds = GetInt(json, "", "refine_rounds", spec.refine_rounds);
  if (spec.refine_rounds < 0 || spec.refine_rounds > 16) {
    FailKey("", "refine_rounds", "expected in [0, 16]");
  }
  const double deadline =
      GetNumber(json, "", "deadline_ms",
                static_cast<double>(spec.deadline_ms));
  // The 9.0e15 bound matches the engine request parser: every accepted
  // value is exactly representable in int64_t, so the cast below is safe.
  if (deadline < 0.0 || deadline != std::floor(deadline) ||
      deadline > 9.0e15) {
    FailKey("", "deadline_ms", "expected a non-negative integer");
  }
  spec.deadline_ms = static_cast<std::int64_t>(deadline);

  if (spec.GridSize() > kMaxGridCandidates) {
    std::ostringstream os;
    os << "spec field \"search\": grid has " << spec.GridSize()
       << " candidates, max " << kMaxGridCandidates;
    throw InvalidArgument(os.str());
  }
  // The fixed scenario must itself be valid; per-candidate overrides are
  // re-validated (and invalid combinations dropped) during enumeration.
  spec.params.Validate();
  return spec;
}

JsonValue SpecToJson(const OptimizeSpec& spec) {
  JsonValue constraints = JsonValue::Object();
  constraints.Set("min_detection", spec.min_detection)
      .Set("pf", spec.pf)
      .Set("max_fa", spec.max_fa)
      .Set("min_lifetime_days", spec.min_lifetime_days);

  JsonValue search = JsonValue::Object();
  if (spec.nodes.set) search.Set("nodes", AxisToJson(spec.nodes));
  if (spec.k.set) search.Set("k", AxisToJson(spec.k));
  if (spec.window.set) search.Set("window", AxisToJson(spec.window));
  if (spec.period.set) search.Set("period", AxisToJson(spec.period));
  if (spec.duty.set) search.Set("duty", AxisToJson(spec.duty));

  JsonValue params = JsonValue::Object();
  params.Set("field_width", spec.params.field_width)
      .Set("field_height", spec.params.field_height)
      .Set("nodes", spec.params.num_nodes)
      .Set("rs", spec.params.sensing_range)
      .Set("rc", spec.params.comm_range)
      .Set("pd", spec.params.detect_prob)
      .Set("period", spec.params.period_length)
      .Set("speed", spec.params.target_speed)
      .Set("window", spec.params.window_periods)
      .Set("k", spec.params.threshold_reports);

  JsonValue options = JsonValue::Object();
  options.Set("gh", spec.options.gh)
      .Set("g", spec.options.g)
      .Set("normalize", spec.options.normalize)
      .Set("reliability", spec.options.node_reliability);

  JsonValue energy = JsonValue::Object();
  energy.Set("battery", spec.energy.battery_joules)
      .Set("sense", spec.energy.sense_cost_per_period)
      .Set("idle", spec.energy.idle_cost_per_period)
      .Set("tx", spec.energy.tx_cost_per_report_hop)
      .Set("rx", spec.energy.rx_cost_per_report_hop)
      .Set("hops", spec.mean_hops);

  JsonValue json = JsonValue::Object();
  json.Set("objective", ObjectiveName(spec.objective))
      .Set("mode", SearchModeName(spec.mode))
      .Set("constraints", std::move(constraints))
      .Set("search", std::move(search))
      .Set("params", std::move(params))
      .Set("options", std::move(options))
      .Set("energy", std::move(energy))
      .Set("refine_rounds", spec.refine_rounds)
      .Set("deadline_ms", spec.deadline_ms);
  return json;
}

bool CandidateLess(const Candidate& a, const Candidate& b) {
  if (a.nodes != b.nodes) return a.nodes < b.nodes;
  if (a.k != b.k) return a.k < b.k;
  if (a.window != b.window) return a.window < b.window;
  if (a.period != b.period) return a.period < b.period;
  return a.duty < b.duty;
}

std::string CandidateKey(const Candidate& c) {
  // Bit-exact doubles: two candidates share a key only when they are the
  // same grid point, the memo-cache keying discipline.
  std::ostringstream os;
  os << c.nodes << '|' << c.k << '|' << c.window << '|'
     << std::bit_cast<std::uint64_t>(c.period) << '|'
     << std::bit_cast<std::uint64_t>(c.duty);
  return os.str();
}

SystemParams CandidateParams(const OptimizeSpec& spec, const Candidate& c) {
  SystemParams p = spec.params;
  p.num_nodes = c.nodes;
  p.threshold_reports = c.k;
  p.window_periods = c.window;
  p.period_length = c.period;
  // E20 duty-cycling equivalence: an awake fraction d is analytically a
  // per-period report probability of d * Pd.
  p.detect_prob = spec.params.detect_prob * c.duty;
  return p;
}

std::vector<Candidate> CoarseGrid(const OptimizeSpec& spec,
                                  std::size_t* invalid) {
  const std::vector<double> nodes =
      spec.nodes.set ? spec.nodes.Values()
                     : std::vector<double>{
                           static_cast<double>(spec.params.num_nodes)};
  const std::vector<double> ks =
      spec.k.set ? spec.k.Values()
                 : std::vector<double>{
                       static_cast<double>(spec.params.threshold_reports)};
  const std::vector<double> windows =
      spec.window.set ? spec.window.Values()
                      : std::vector<double>{
                            static_cast<double>(spec.params.window_periods)};
  const std::vector<double> periods =
      spec.period.set ? spec.period.Values()
                      : std::vector<double>{spec.params.period_length};
  const std::vector<double> duties =
      spec.duty.set ? spec.duty.Values() : std::vector<double>{1.0};

  std::size_t dropped = 0;
  std::vector<Candidate> grid;
  grid.reserve(nodes.size() * ks.size() * windows.size() * periods.size() *
               duties.size());
  for (double n : nodes) {
    for (double k : ks) {
      for (double m : windows) {
        for (double t : periods) {
          for (double d : duties) {
            Candidate c;
            c.nodes = static_cast<int>(n);
            c.k = static_cast<int>(k);
            c.window = static_cast<int>(m);
            c.period = t;
            c.duty = d > 1.0 ? 1.0 : d;
            try {
              CandidateParams(spec, c).Validate();
            } catch (const Error&) {
              ++dropped;
              continue;
            }
            grid.push_back(c);
          }
        }
      }
    }
  }
  if (invalid != nullptr) *invalid = dropped;
  return grid;
}

}  // namespace sparsedet::opt
