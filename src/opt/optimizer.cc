#include "opt/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/error.h"
#include "core/false_alarm_model.h"

namespace sparsedet::opt {
namespace {

JsonValue ParamsJson(const SystemParams& p) {
  JsonValue obj = JsonValue::Object();
  obj.Set("field_width", p.field_width)
      .Set("field_height", p.field_height)
      .Set("nodes", p.num_nodes)
      .Set("rs", p.sensing_range)
      .Set("rc", p.comm_range)
      .Set("pd", p.detect_prob)
      .Set("period", p.period_length)
      .Set("speed", p.target_speed)
      .Set("window", p.window_periods)
      .Set("k", p.threshold_reports);
  return obj;
}

JsonValue OptionsJson(const MsApproachOptions& o) {
  JsonValue obj = JsonValue::Object();
  obj.Set("gh", o.gh)
      .Set("g", o.g)
      .Set("normalize", o.normalize)
      .Set("reliability", o.node_reliability);
  return obj;
}

// One candidate as an engine request: a single-point sweep, the engine's
// cheapest unit (detection probability only), sharing result-cache and
// memo-cache entries with any user sweep over the same scenario.
std::string CandidateRequestLine(const OptimizeSpec& spec, const Candidate& c,
                                 std::uint64_t id) {
  const SystemParams p = CandidateParams(spec, c);
  JsonValue sweep = JsonValue::Object();
  sweep.Set("param", "nodes")
      .Set("from", p.num_nodes)
      .Set("to", p.num_nodes)
      .Set("step", 1);
  JsonValue req = JsonValue::Object();
  req.Set("id", static_cast<std::int64_t>(id))
      .Set("op", "sweep")
      .Set("params", ParamsJson(p))
      .Set("options", OptionsJson(spec.options))
      .Set("sweep", std::move(sweep));
  return req.ToString();
}

// The detection probability out of a single-point sweep response, or a
// negative value when the engine answered with a per-request error.
double ExtractDetection(const JsonValue& response) {
  const JsonValue* result =
      response.is_object() ? response.Find("result") : nullptr;
  if (result == nullptr) return -1.0;
  const JsonValue* points = result->Find("points");
  SPARSEDET_CHECK(points != nullptr && points->is_array() &&
                      points->Size() == 1,
                  "inner solve response missing its sweep point");
  const JsonValue* detection = points->At(0).Find("detection_probability");
  SPARSEDET_CHECK(detection != nullptr && detection->is_number(),
                  "inner solve response missing detection_probability");
  return detection->AsDouble();
}

// The engine's structured error vocabulary for a cancelled optimize run,
// so clients branch on the same codes for both request kinds.
const char* CancelErrorCode(resilience::CancelReason reason) {
  switch (reason) {
    case resilience::CancelReason::kDeadline:
      return "deadline_exceeded";
    case resilience::CancelReason::kWatchdog:
      return "watchdog_cancelled";
    case resilience::CancelReason::kDisconnect:
      return "disconnected";
    default:
      return "cancelled";
  }
}

// Decrements opt_active on every exit path, exception-safe.
struct ActiveGuard {
  explicit ActiveGuard(obs::Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add(1);
  }
  ~ActiveGuard() {
    if (gauge_ != nullptr) gauge_->Add(-1);
  }
  obs::Gauge* gauge_;
};

}  // namespace

OptMetrics::OptMetrics(obs::MetricsRegistry& registry)
    : runs(&registry.counter("opt_runs_total")),
      candidates(&registry.counter("opt_candidates_total")),
      batches(&registry.counter("opt_batches_total")),
      feasible(&registry.counter("opt_feasible_total")),
      invalid(&registry.counter("opt_invalid_total")),
      solve_errors(&registry.counter("opt_solve_errors_total")),
      refine_rounds(&registry.counter("opt_refine_rounds_total")),
      deadline_partial(&registry.counter("opt_deadline_partial_total")),
      active(&registry.gauge("opt_active")),
      last_evaluated(&registry.gauge("opt_last_evaluated")),
      last_frontier(&registry.gauge("opt_last_frontier_size")),
      sweep_batch_us(&registry.histogram("opt_iteration_us",
                                         {{"phase", "sweep"}},
                                         obs::DefaultLatencyBoundsUs())),
      refine_batch_us(&registry.histogram("opt_iteration_us",
                                          {{"phase", "refine"}},
                                          obs::DefaultLatencyBoundsUs())) {}

Optimizer::Optimizer(const OptimizeSpec& spec, SolveBackend& backend,
                     obs::MetricsRegistry* registry, OptimizerHooks hooks)
    : spec_(spec),
      backend_(backend),
      hooks_(std::move(hooks)),
      metrics_(registry != nullptr ? std::make_unique<OptMetrics>(*registry)
                                   : nullptr) {}

bool Optimizer::KeepGoing() {
  if (hooks_.cancel != nullptr) hooks_.cancel->ThrowIfCancelled();
  if (deadline_.set() && deadline_.Expired()) {
    degraded_ = true;
    if (metrics_) metrics_->deadline_partial->Inc();
    return false;
  }
  return true;
}

bool Optimizer::EvaluateBatch(const std::vector<Candidate>& batch,
                              bool refining) {
  if (batch.empty()) return true;
  if (hooks_.admit && !hooks_.admit(batch.size(), deadline_)) {
    degraded_ = true;
    if (metrics_) metrics_->deadline_partial->Inc();
    return false;
  }
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::string> lines;
  lines.reserve(batch.size());
  for (const Candidate& c : batch) {
    lines.push_back(CandidateRequestLine(spec_, c, next_id_++));
  }
  const std::vector<JsonValue> responses = backend_.Solve(lines);
  ++batches_;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double detection = ExtractDetection(responses[i]);
    if (detection < 0.0) {
      ++solve_errors_;
      if (metrics_) metrics_->solve_errors->Inc();
      continue;
    }
    Eval e;
    e.candidate = batch[i];
    e.detection = detection;
    const SystemParams cparams = CandidateParams(spec_, batch[i]);
    const double pf_awake = batch[i].duty * spec_.pf;
    e.system_fa = CountOnlySystemFaProbability(cparams, pf_awake);
    e.energy = AnalyzeEnergy(
        cparams, spec_.energy, batch[i].duty,
        SteadyStateReportRate(batch[i].duty, spec_.pf), spec_.mean_hops);
    e.feasible = e.detection >= spec_.min_detection &&
                 e.system_fa <= spec_.max_fa &&
                 e.energy.lifetime_days >= spec_.min_lifetime_days;
    if (e.feasible && metrics_) metrics_->feasible->Inc();
    evaluated_.push_back(std::move(e));
  }

  if (metrics_) {
    metrics_->candidates->Inc(batch.size());
    metrics_->batches->Inc();
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    (refining ? metrics_->refine_batch_us : metrics_->sweep_batch_us)
        ->Record(us);
  }
  return true;
}

std::vector<Candidate> Optimizer::Neighborhood(const Candidate& center,
                                               int round) const {
  const double scale = std::pow(0.5, round);
  // Candidate values along one axis: the center plus center +/- delta where
  // delta is the axis step halved `round` times (integer axes floor at a
  // delta of 1), clamped to the axis's declared [from, to] domain.
  const auto axis_values = [&](const AxisSpec& axis, double center_value,
                               bool integer) {
    std::vector<double> values{center_value};
    if (!axis.set) return values;
    double delta = axis.step * scale;
    if (integer) delta = std::max(1.0, std::round(delta));
    for (double v : {center_value - delta, center_value + delta}) {
      if (integer) v = std::round(v);
      if (v < axis.from - 1e-9 || v > axis.to + 1e-9) continue;
      if (std::find(values.begin(), values.end(), v) == values.end()) {
        values.push_back(v);
      }
    }
    std::sort(values.begin(), values.end());
    return values;
  };

  const std::vector<double> nodes =
      axis_values(spec_.nodes, center.nodes, /*integer=*/true);
  const std::vector<double> ks = axis_values(spec_.k, center.k, true);
  const std::vector<double> windows =
      axis_values(spec_.window, center.window, true);
  const std::vector<double> periods =
      axis_values(spec_.period, center.period, false);
  const std::vector<double> duties =
      axis_values(spec_.duty, center.duty, false);

  std::vector<Candidate> fresh;
  for (double n : nodes) {
    for (double k : ks) {
      for (double m : windows) {
        for (double t : periods) {
          for (double d : duties) {
            Candidate c;
            c.nodes = static_cast<int>(n);
            c.k = static_cast<int>(k);
            c.window = static_cast<int>(m);
            c.period = t;
            c.duty = std::min(d, 1.0);
            if (seen_.count(CandidateKey(c)) != 0) continue;
            try {
              CandidateParams(spec_, c).Validate();
            } catch (const Error&) {
              continue;
            }
            fresh.push_back(c);
          }
        }
      }
    }
  }
  return fresh;
}

double Optimizer::ObjectiveValue(const Eval& e) const {
  switch (spec_.objective) {
    case Objective::kMinNodes:
      return static_cast<double>(e.candidate.nodes);
    case Objective::kMinEnergy:
      return e.energy.drain_per_period;
    case Objective::kMaxDetection:
      return e.detection;
  }
  return 0.0;
}

bool Optimizer::Better(const Eval& a, const Eval& b) const {
  const double av = ObjectiveValue(a);
  const double bv = ObjectiveValue(b);
  if (av != bv) {
    return spec_.objective == Objective::kMaxDetection ? av > bv : av < bv;
  }
  return CandidateLess(a.candidate, b.candidate);
}

const Optimizer::Eval* Optimizer::CurrentBest() const {
  const Eval* best = nullptr;
  for (const Eval& e : evaluated_) {
    if (!e.feasible) continue;
    if (best == nullptr || Better(e, *best)) best = &e;
  }
  return best;
}

JsonValue Optimizer::EvalJson(const Eval& e) const {
  JsonValue obj = JsonValue::Object();
  obj.Set("nodes", e.candidate.nodes)
      .Set("k", e.candidate.k)
      .Set("window", e.candidate.window)
      .Set("period", e.candidate.period)
      .Set("duty", e.candidate.duty)
      .Set("detection_probability", e.detection)
      .Set("system_fa", e.system_fa)
      .Set("drain_per_period", e.energy.drain_per_period)
      .Set("lifetime_days", e.energy.lifetime_days)
      .Set("objective_value", ObjectiveValue(e));
  return obj;
}

JsonValue Optimizer::Run() {
  if (metrics_) metrics_->runs->Inc();
  ActiveGuard active(metrics_ ? metrics_->active : nullptr);

  deadline_ = spec_.deadline_ms > 0
                  ? resilience::Deadline::AfterMillis(spec_.deadline_ms)
                  : resilience::Deadline();

  const std::vector<Candidate> grid = CoarseGrid(spec_, &invalid_);
  if (metrics_ && invalid_ > 0) metrics_->invalid->Inc(invalid_);
  for (const Candidate& c : grid) seen_.insert(CandidateKey(c));

  // Phase 1: the coarse sweep, in deterministic grid order. The deadline
  // and external cancellation are consulted between batches only, so the
  // worst-case overrun is one batch.
  std::size_t pos = 0;
  while (pos < grid.size()) {
    if (!KeepGoing()) break;
    const std::size_t n = std::min(kSolveBatchSize, grid.size() - pos);
    const std::vector<Candidate> batch(grid.begin() + pos,
                                       grid.begin() + pos + n);
    if (!EvaluateBatch(batch, /*refining=*/false)) break;
    pos += n;
  }

  // Phase 2: local refinement around the incumbent (optimize mode, and
  // only when the sweep ran to completion — refining a truncated sweep
  // would anchor on an arbitrary prefix).
  if (spec_.mode == SearchMode::kOptimize && !degraded_) {
    for (int round = 1; round <= spec_.refine_rounds; ++round) {
      const Eval* best = CurrentBest();
      if (best == nullptr) break;
      const std::vector<Candidate> neighborhood =
          Neighborhood(best->candidate, round);
      if (neighborhood.empty()) continue;
      for (const Candidate& c : neighborhood) seen_.insert(CandidateKey(c));
      if (!KeepGoing()) break;
      if (!EvaluateBatch(neighborhood, /*refining=*/true)) break;
      ++refine_rounds_done_;
      if (metrics_) metrics_->refine_rounds->Inc();
    }
  }

  std::size_t feasible_count = 0;
  for (const Eval& e : evaluated_) {
    if (e.feasible) ++feasible_count;
  }

  JsonValue result = JsonValue::Object();
  result.Set("objective", ObjectiveName(spec_.objective))
      .Set("mode", SearchModeName(spec_.mode))
      .Set("degraded", degraded_)
      .Set("grid", static_cast<std::int64_t>(grid.size()))
      .Set("evaluated", static_cast<std::int64_t>(evaluated_.size()))
      .Set("feasible", static_cast<std::int64_t>(feasible_count))
      .Set("invalid", static_cast<std::int64_t>(invalid_))
      .Set("solve_errors", static_cast<std::int64_t>(solve_errors_))
      .Set("batches", static_cast<std::int64_t>(batches_))
      .Set("refine_rounds", refine_rounds_done_);

  const Eval* best = CurrentBest();
  result.Set("best", best != nullptr ? EvalJson(*best) : JsonValue());

  if (spec_.mode == SearchMode::kFrontier) {
    // Non-dominated set over (drain minimized, detection maximized) among
    // the feasible candidates: sort by drain ascending (detection
    // descending, then CandidateLess inside ties, for determinism) and
    // keep each strict improvement in detection.
    std::vector<const Eval*> feasible;
    feasible.reserve(feasible_count);
    for (const Eval& e : evaluated_) {
      if (e.feasible) feasible.push_back(&e);
    }
    std::sort(feasible.begin(), feasible.end(),
              [](const Eval* a, const Eval* b) {
                if (a->energy.drain_per_period != b->energy.drain_per_period) {
                  return a->energy.drain_per_period <
                         b->energy.drain_per_period;
                }
                if (a->detection != b->detection) {
                  return a->detection > b->detection;
                }
                return CandidateLess(a->candidate, b->candidate);
              });
    JsonValue frontier = JsonValue::Array();
    double best_detection = -1.0;
    std::size_t frontier_size = 0;
    for (const Eval* e : feasible) {
      if (e->detection <= best_detection) continue;
      best_detection = e->detection;
      frontier.Append(EvalJson(*e));
      ++frontier_size;
    }
    result.Set("frontier", std::move(frontier));
    if (metrics_) {
      metrics_->last_frontier->Set(static_cast<std::int64_t>(frontier_size));
    }
  }

  if (metrics_) {
    metrics_->last_evaluated->Set(static_cast<std::int64_t>(evaluated_.size()));
  }
  return result;
}

JsonValue HandleOptimizeCommand(const JsonValue& command,
                                SolveBackend& backend,
                                obs::MetricsRegistry* registry,
                                const OptimizerHooks& hooks) {
  JsonValue response = JsonValue::Object();
  if (command.is_object()) {
    const JsonValue* id = command.Find("id");
    if (id != nullptr && (id->is_string() || id->is_number())) {
      response.Set("id", *id);
    }
  }
  try {
    if (!command.is_object()) {
      throw InvalidArgument("optimize command must be a JSON object");
    }
    for (const auto& [key, value] : command.Fields()) {
      (void)value;
      if (key != "cmd" && key != "id" && key != "tenant" && key != "spec") {
        throw InvalidArgument("optimize command: unknown key \"" + key +
                              "\"");
      }
    }
    const JsonValue* spec_json = command.Find("spec");
    if (spec_json == nullptr) {
      throw InvalidArgument("optimize command: missing \"spec\" object");
    }
    const OptimizeSpec spec = ParseOptimizeSpec(*spec_json);
    Optimizer optimizer(spec, backend, registry, hooks);
    response.Set("result", optimizer.Run());
  } catch (const resilience::Cancelled& e) {
    response
        .Set("error", std::string("optimize cancelled: ") +
                          resilience::CancelReasonName(e.reason()))
        .Set("error_code", CancelErrorCode(e.reason()));
  } catch (const InvalidArgument& e) {
    response.Set("error", std::string(e.what()))
        .Set("error_code", "invalid_argument");
  } catch (const Error& e) {
    response.Set("error", std::string(e.what()))
        .Set("error_code", "internal");
  }
  return response;
}

void WriteOptimizeOutput(const JsonValue& result, std::ostream& out) {
  const JsonValue* frontier =
      result.is_object() ? result.Find("frontier") : nullptr;
  if (frontier == nullptr) {
    out << result.ToString() << '\n';
    return;
  }
  for (const JsonValue& point : frontier->Items()) {
    out << point.ToString() << '\n';
  }
  JsonValue summary = JsonValue::Object();
  for (const auto& [key, value] : result.Fields()) {
    if (key == "frontier") {
      summary.Set("frontier_size", static_cast<std::int64_t>(value.Size()));
    } else {
      summary.Set(key, value);
    }
  }
  out << summary.ToString() << '\n';
}

}  // namespace sparsedet::opt
