// How the optimizer's inner solves reach the batch engine.
//
// The optimizer never computes a detection probability itself — every
// candidate becomes one JSONL engine request (a single-point sweep, the
// engine's cheapest unit), so inner solves flow through the engine's
// worker pool, result cache and the process-wide solver memo cache exactly
// like user traffic. Two transports:
//
//   * SyncEngineBackend drives BatchEngine::RunBatch from the calling
//     thread — the CLI `optimize` subcommand and the stdio serve hook,
//     where the engine is otherwise idle between requests.
//   * AsyncEngineBackend feeds BatchEngine::SubmitLineAsync — the TCP
//     front-end, whose engine already runs in async mode serving other
//     connections concurrently. Solve() must NOT be called from the
//     engine's emitter thread (the callbacks it waits on run there).
//
// Both return exactly one parsed response per request line, in request
// order, which is what makes the optimizer's output byte-identical across
// transports and thread counts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "engine/engine.h"
#include "resilience/cancel.h"

namespace sparsedet::opt {

class SolveBackend {
 public:
  virtual ~SolveBackend() = default;

  // Evaluates one batch of JSONL request lines (no trailing newlines) and
  // returns the parsed response objects in request order. Individual
  // request failures come back as {"id":...,"error":...} objects; throws
  // only on transport-level failure.
  virtual std::vector<JsonValue> Solve(
      const std::vector<std::string>& lines) = 0;
};

class SyncEngineBackend : public SolveBackend {
 public:
  explicit SyncEngineBackend(engine::BatchEngine& engine)
      : engine_(engine) {}

  std::vector<JsonValue> Solve(const std::vector<std::string>& lines) override;

 private:
  engine::BatchEngine& engine_;
};

class AsyncEngineBackend : public SolveBackend {
 public:
  // `parent` (optional) chains under every inner request's token; the TCP
  // front-end passes the connection token so a disconnect cancels the
  // optimizer's in-flight solves. The engine must be in async mode
  // (StartAsync) for the lifetime of this backend.
  AsyncEngineBackend(engine::BatchEngine& engine,
                     std::shared_ptr<const resilience::CancelToken> parent)
      : engine_(engine), parent_(std::move(parent)) {}

  std::vector<JsonValue> Solve(const std::vector<std::string>& lines) override;

 private:
  engine::BatchEngine& engine_;
  std::shared_ptr<const resilience::CancelToken> parent_;
};

}  // namespace sparsedet::opt
