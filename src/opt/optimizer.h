// The inverse-deployment optimizer.
//
// Search shape (the sweep-and-refine idiom): enumerate the spec's coarse
// grid over (N, k, M, t, duty) in deterministic order, evaluate it in
// fixed-size batches of inner solves fanned out through a SolveBackend,
// filter by the detection / false-alarm / lifetime constraints, then run
// `refine_rounds` of local refinement around the incumbent — each round
// halves every set axis's step and evaluates the +/- neighborhood, so the
// optimum is located to sub-grid resolution without paying for a fine
// global grid. Frontier mode skips refinement and instead reports the
// non-dominated set over (energy drain minimized, detection maximized).
//
// Division of labor per candidate: the detection probability is the
// expensive part and goes through the engine (pooled workers + result
// cache + solver memo cache); the false-alarm bound and the energy report
// are closed forms computed locally, so constraint checks never occupy a
// worker.
//
// Determinism contract (matching the engine's): the search order, batch
// boundaries, tie-breaking and output composition depend only on the spec,
// never on thread count or cache temperature, so a given spec produces
// byte-identical results at --solver-threads 1 or 8, cold or warm memo.
//
// Deadlines: spec.deadline_ms is enforced *between* batches — inner solves
// never carry deadline tokens (those forbid solver memo inserts, and
// warming that cache is the optimizer's whole economy). Expiry mid-search
// yields a valid partial result tagged "degraded": true; the worst-case
// overrun is one batch, never a hang.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/json.h"
#include "core/energy_model.h"
#include "obs/metrics.h"
#include "opt/backend.h"
#include "opt/spec.h"
#include "resilience/cancel.h"

namespace sparsedet::opt {

// Number of candidates per inner-solve batch: large enough to saturate the
// engine's worker pool, small enough that the between-batch deadline check
// bounds overrun tightly.
inline constexpr std::size_t kSolveBatchSize = 256;

struct OptimizerHooks {
  // Invoked before each inner-solve batch with its candidate count. The
  // TCP front-end applies per-tenant admission here (blocking until the
  // tenant's bucket admits the batch). Returning false stops the search
  // with a partial degraded result, exactly like a deadline expiry;
  // throwing resilience::Cancelled aborts the run.
  std::function<bool(std::size_t batch_size,
                     const resilience::Deadline& deadline)>
      admit;
  // Optional external cancellation (e.g. a connection token), checked
  // between batches; cancellation aborts the run with Cancelled.
  std::shared_ptr<const resilience::CancelToken> cancel;
};

// opt_* handles in a metrics registry, resolved once so the search loop
// never takes the registry mutex.
struct OptMetrics {
  explicit OptMetrics(obs::MetricsRegistry& registry);

  obs::Counter* runs;
  obs::Counter* candidates;
  obs::Counter* batches;
  obs::Counter* feasible;
  obs::Counter* invalid;
  obs::Counter* solve_errors;
  obs::Counter* refine_rounds;
  obs::Counter* deadline_partial;
  obs::Gauge* active;
  obs::Gauge* last_evaluated;
  obs::Gauge* last_frontier;
  // Per-iteration (inner-solve batch) latency, split by search phase.
  obs::Histogram* sweep_batch_us;
  obs::Histogram* refine_batch_us;
};

class Optimizer {
 public:
  // `registry` (optional) receives opt_* counters/gauges and per-iteration
  // latency histograms; pass the engine's so they surface in /statusz and
  // {"cmd":"stats"}. `hooks` wires admission and cancellation.
  Optimizer(const OptimizeSpec& spec, SolveBackend& backend,
            obs::MetricsRegistry* registry = nullptr,
            OptimizerHooks hooks = {});

  // Runs the search to completion (or deadline) and returns the result
  // object:
  //
  //   {"objective": ..., "mode": ..., "degraded": false,
  //    "grid": 480, "evaluated": 480, "feasible": 123, "invalid": 0,
  //    "solve_errors": 0, "batches": 2, "refine_rounds": 2,
  //    "best": {candidate} | null,
  //    "frontier": [{candidate}, ...]}        // frontier mode only
  //
  // where each candidate object carries nodes/k/window/period/duty plus
  // detection_probability, system_fa, drain_per_period, lifetime_days and
  // objective_value. Throws resilience::Cancelled when hooks.cancel fires
  // and InvalidArgument/Error for spec-level failures.
  JsonValue Run();

 private:
  struct Eval {
    Candidate candidate;
    double detection = 0.0;
    double system_fa = 0.0;
    EnergyReport energy;
    bool feasible = false;
  };

  // False = stop the search now (deadline expired / admission refused),
  // with whatever has been evaluated so far as the partial result.
  bool KeepGoing();
  bool EvaluateBatch(const std::vector<Candidate>& batch, bool refining);
  // The +/- step/2^round neighborhood of `center` over the set axes,
  // deduplicated against everything already evaluated.
  std::vector<Candidate> Neighborhood(const Candidate& center,
                                      int round) const;
  double ObjectiveValue(const Eval& e) const;
  // Strict deterministic "a is a better optimum than b" (both feasible).
  bool Better(const Eval& a, const Eval& b) const;
  const Eval* CurrentBest() const;
  JsonValue EvalJson(const Eval& e) const;

  OptimizeSpec spec_;
  SolveBackend& backend_;
  OptimizerHooks hooks_;
  std::unique_ptr<OptMetrics> metrics_;  // null without a registry
  resilience::Deadline deadline_;

  std::vector<Eval> evaluated_;
  std::unordered_set<std::string> seen_;
  std::uint64_t next_id_ = 1;
  std::size_t invalid_ = 0;
  std::size_t solve_errors_ = 0;
  std::uint64_t batches_ = 0;
  int refine_rounds_done_ = 0;
  bool degraded_ = false;
};

// Handles one {"cmd": "optimize", "id": ..., "spec": {...}} command object
// (serve and serve-tcp). Returns the response object: the echoed id plus
// either {"result": <Optimizer::Run() output>} or {"error", "error_code"}.
// Never throws — cancellation and spec errors become structured error
// responses, matching the engine's per-request error isolation.
JsonValue HandleOptimizeCommand(const JsonValue& command,
                                SolveBackend& backend,
                                obs::MetricsRegistry* registry,
                                const OptimizerHooks& hooks = {});

// CLI rendering: mode "optimize" prints the result as one JSON line; mode
// "frontier" prints one JSON line per frontier point followed by a summary
// line where the frontier array is replaced by "frontier_size".
void WriteOptimizeOutput(const JsonValue& result, std::ostream& out);

}  // namespace sparsedet::opt
