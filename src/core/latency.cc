#include "core/latency.h"

#include <algorithm>

#include "common/check.h"

namespace sparsedet {

double LatencyDistribution::CdfAt(int periods) const {
  if (cdf.empty() || periods < first_valid_prefix) return 0.0;
  const std::size_t index = std::min(
      static_cast<std::size_t>(periods - first_valid_prefix),
      cdf.size() - 1);
  return cdf[index];
}

double LatencyDistribution::MeanConditionalLatency() const {
  SPARSEDET_REQUIRE(!cdf.empty() && cdf.back() > 0.0,
                    "mean latency needs a positive detection probability");
  // E[L | detected] = sum_L L * P[latency = L] / P[detected].
  double weighted = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    const double mass = cdf[i] - prev;
    weighted += static_cast<double>(first_valid_prefix + i) * mass;
    prev = cdf[i];
  }
  return weighted / cdf.back();
}

int LatencyDistribution::ConditionalQuantile(double q) const {
  SPARSEDET_REQUIRE(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
  SPARSEDET_REQUIRE(!cdf.empty() && cdf.back() > 0.0,
                    "quantile needs a positive detection probability");
  const double target = q * cdf.back();
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    if (cdf[i] >= target - 1e-15) {
      return first_valid_prefix + static_cast<int>(i);
    }
  }
  return first_valid_prefix + static_cast<int>(cdf.size()) - 1;
}

LatencyDistribution DetectionLatency(const SystemParams& params,
                                     const MsApproachOptions& options) {
  params.Validate();
  const int ms = params.Ms();
  SPARSEDET_REQUIRE(params.window_periods > ms,
                    "latency analysis requires M > ms");

  LatencyDistribution latency;
  latency.first_valid_prefix = ms + 1;
  latency.cdf.reserve(
      static_cast<std::size_t>(params.window_periods - ms));
  double running_max = 0.0;
  for (int prefix = ms + 1; prefix <= params.window_periods; ++prefix) {
    SystemParams truncated = params;
    truncated.window_periods = prefix;
    const double p =
        MsApproachAnalyze(truncated, options).detection_probability;
    // The cumulative count is monotone in the prefix, so the cdf must be
    // too; tiny cap-induced wobbles are clamped away.
    running_max = std::max(running_max, p);
    latency.cdf.push_back(running_max);
  }
  return latency;
}

}  // namespace sparsedet
