#include "core/energy_model.h"

#include "common/check.h"

namespace sparsedet {

void EnergyModel::Validate() const {
  SPARSEDET_REQUIRE(battery_joules > 0.0, "battery must be positive");
  SPARSEDET_REQUIRE(sense_cost_per_period >= 0.0 &&
                        idle_cost_per_period >= 0.0 &&
                        tx_cost_per_report_hop >= 0.0 &&
                        rx_cost_per_report_hop >= 0.0,
                    "energy costs must be >= 0");
}

double SteadyStateReportRate(double duty_cycle, double false_alarm_prob) {
  SPARSEDET_REQUIRE(duty_cycle >= 0.0 && duty_cycle <= 1.0,
                    "duty cycle must be in [0, 1]");
  SPARSEDET_REQUIRE(false_alarm_prob >= 0.0 && false_alarm_prob <= 1.0,
                    "false alarm probability must be in [0, 1]");
  return duty_cycle * false_alarm_prob;
}

EnergyReport AnalyzeEnergy(const SystemParams& params,
                           const EnergyModel& model, double duty_cycle,
                           double report_rate, double mean_hops) {
  params.Validate();
  model.Validate();
  SPARSEDET_REQUIRE(duty_cycle >= 0.0 && duty_cycle <= 1.0,
                    "duty cycle must be in [0, 1]");
  SPARSEDET_REQUIRE(report_rate >= 0.0, "report rate must be >= 0");
  SPARSEDET_REQUIRE(mean_hops >= 0.0, "mean hops must be >= 0");

  EnergyReport report;
  const double sensing = duty_cycle * model.sense_cost_per_period +
                         (1.0 - duty_cycle) * model.idle_cost_per_period;
  // A report traveling h hops costs h transmissions and h receptions,
  // distributed over the nodes along its route; with every node
  // originating `report_rate` reports per period, the expected per-node
  // comms drain is rate * hops * (tx + rx).
  const double comms =
      report_rate * mean_hops *
      (model.tx_cost_per_report_hop + model.rx_cost_per_report_hop);
  report.drain_per_period = sensing + comms;
  if (report.drain_per_period > 0.0) {
    report.sensing_share = sensing / report.drain_per_period;
    report.comms_share = comms / report.drain_per_period;
    report.lifetime_periods = model.battery_joules / report.drain_per_period;
    report.lifetime_days =
        report.lifetime_periods * params.period_length / 86400.0;
  }
  return report;
}

}  // namespace sparsedet
