#include "core/region_pmf.h"

#include <algorithm>
#include <numeric>

#include "common/arena.h"
#include "common/check.h"
#include "common/error.h"
#include "common/parallel.h"
#include "prob/binomial.h"
#include "prob/memo_cache.h"
#include "prob/memo_snapshot.h"
#include "resilience/cancel.h"
#include "simd/simd.h"

namespace sparsedet {
namespace {

// Canonical memo key for a region-pmf call site: every argument that can
// change the result goes in, doubles bit-exact. The tag separates call
// sites so identical parameter tuples never alias across functions.
prob::MemoKey RegionKey(std::string_view tag, int num_nodes, double field_area,
                        const std::vector<double>& areas, double pd) {
  prob::MemoKey key(tag);
  key.AddInt(num_nodes)
      .AddDouble(field_area)
      .AddDouble(pd)
      .AddInt(static_cast<std::int64_t>(areas.size()));
  for (double a : areas) key.AddDouble(a);
  return key;
}

std::size_t PmfHeapBytes(const Pmf& pmf) { return pmf.size() * sizeof(double); }

// Snapshot codec: a Pmf is exactly its mass vector, stored bit-exact, so a
// restored entry is indistinguishable from a freshly computed one.
std::string EncodePmf(const void* value) {
  const Pmf& pmf = *static_cast<const Pmf*>(value);
  std::string out;
  prob::MemoAppendU64(&out, pmf.size());
  for (double m : pmf.mass()) prob::MemoAppendDouble(&out, m);
  return out;
}

std::shared_ptr<const void> DecodePmf(std::string_view encoded,
                                      std::size_t* bytes) {
  prob::MemoDecoder dec(encoded);
  const std::uint64_t n = dec.ReadU64();
  if (n * 8 != dec.remaining()) {
    throw Error("pmf codec: length mismatch");
  }
  std::vector<double> mass(static_cast<std::size_t>(n));
  for (double& m : mass) m = dec.ReadDouble();
  auto pmf = std::make_shared<const Pmf>(std::move(mass));
  // Mirror the charge GetOrCompute applies at the original insert site.
  *bytes = sizeof(Pmf) + PmfHeapBytes(*pmf);
  return pmf;
}

const bool kPmfCodecsRegistered = [] {
  prob::MemoCodec codec{EncodePmf, DecodePmf};
  prob::RegisterMemoCodec("core/exact_region_pmf", codec);
  prob::RegisterMemoCodec("core/capped_region_pmf", codec);
  prob::RegisterMemoCodec("core/capped_region_pmf_literal", codec);
  return true;
}();

double CheckAreas(const std::vector<double>& areas, double field_area,
                  double pd) {
  SPARSEDET_REQUIRE(!areas.empty(), "region needs at least one subarea");
  SPARSEDET_REQUIRE(pd >= 0.0 && pd <= 1.0, "Pd must be in [0, 1]");
  double total = 0.0;
  for (double a : areas) {
    SPARSEDET_REQUIRE(a >= 0.0, "subarea sizes must be non-negative");
    total += a;
  }
  SPARSEDET_REQUIRE(total > 0.0, "region must have positive total area");
  SPARSEDET_REQUIRE(total <= field_area * (1.0 + 1e-9),
                    "region cannot exceed the field");
  return total;
}

}  // namespace

Pmf ConditionalSensorReportPmf(const std::vector<double>& areas, double pd) {
  const double total = CheckAreas(areas, 1e300, pd);
  const int max_periods = static_cast<int>(areas.size());
  const simd::Kernels& kern = simd::Active();
  std::vector<double> mass(static_cast<std::size_t>(max_periods) + 1, 0.0);
  for (int periods = 1; periods <= max_periods; ++periods) {
    const double weight = areas[periods - 1] / total;
    if (weight == 0.0) continue;
    // One hoisted Binomial(periods, pd) row instead of per-m transcendental
    // calls; the axpy accumulates the same products in the same m order.
    const std::vector<double> row = BinomialPmfVector(periods, pd);
    kern.axpy(weight, row.data(), mass.data(), row.size());
  }
  return Pmf(std::move(mass));
}

namespace {

Pmf ComputeExactRegionReportPmf(int num_nodes, double field_area,
                                const std::vector<double>& areas, double pd,
                                double node_reliability) {
  SPARSEDET_REQUIRE(num_nodes >= 0, "node count must be >= 0");
  SPARSEDET_REQUIRE(field_area > 0.0, "field area must be positive");
  SPARSEDET_REQUIRE(node_reliability >= 0.0 && node_reliability <= 1.0,
                    "node reliability must be in [0, 1]");
  const double total = CheckAreas(areas, field_area, pd);

  // Per-sensor unconditional pmf: outside the region with probability
  // 1 - total/S (zero reports), otherwise in subarea i with probability
  // areas[i]/S generating Binomial(i+1, pd) reports.
  const int max_periods = static_cast<int>(areas.size());
  const simd::Kernels& kern = simd::Active();
  std::vector<double> per(static_cast<std::size_t>(max_periods) + 1, 0.0);
  per[0] = 1.0 - total / field_area;
  for (int periods = 1; periods <= max_periods; ++periods) {
    const double weight = areas[periods - 1] / field_area;
    if (weight == 0.0) continue;
    const std::vector<double> row = BinomialPmfVector(periods, pd);
    kern.axpy(weight, row.data(), per.data(), row.size());
  }
  return Pmf(per).ThinnedBy(node_reliability).ConvolvePower(num_nodes);
}

// The convolution chain below accumulates strictly in n order; it stays
// sequential on purpose so the floating-point association — and therefore
// every golden value — is independent of the thread count. Parallelism and
// reuse come from the memo cache wrapper and from the callers (the M-S
// stages run these calls concurrently).
Pmf ComputeCappedRegionReportPmf(int num_nodes, double field_area,
                                 const std::vector<double>& areas, double pd,
                                 int cap, double node_reliability) {
  SPARSEDET_REQUIRE(num_nodes >= 0, "node count must be >= 0");
  SPARSEDET_REQUIRE(field_area > 0.0, "field area must be positive");
  SPARSEDET_REQUIRE(cap >= 0, "cap must be >= 0");
  SPARSEDET_REQUIRE(node_reliability >= 0.0 && node_reliability <= 1.0,
                    "node reliability must be in [0, 1]");
  const double total = CheckAreas(areas, field_area, pd);
  const double p_in = total / field_area;
  const int max_periods = static_cast<int>(areas.size());
  const int effective_cap = std::min(cap, num_nodes);

  const Pmf conditional =
      ConditionalSensorReportPmf(areas, pd).ThinnedBy(node_reliability);
  const std::size_t cond_size = conditional.size();
  std::vector<double> out(
      static_cast<std::size_t>(effective_cap) * max_periods + 1, 0.0);
  // The n-fold powers conditional^0, conditional^1, ... ping-pong through
  // two arena buffers instead of allocating a Pmf per n; ConvolveAccumulate
  // is the exact kernel ConvolveWith runs, so the chain — still strictly
  // sequential in n to keep the FP association thread-count-independent —
  // produces bit-identical tables.
  const std::size_t max_fold =
      static_cast<std::size_t>(effective_cap) * (cond_size - 1) + 1;
  common::ScratchArena::Frame frame;
  double* fold = frame.Alloc(max_fold);
  double* next = frame.Alloc(max_fold);
  fold[0] = 1.0;  // conditional^0 = Delta(0)
  std::size_t fold_size = 1;
  const simd::Kernels& kern = simd::Active();
  const std::vector<double> p_n = BinomialPmfVector(num_nodes, p_in,
                                                    effective_cap);
  for (int n = 0; n <= effective_cap; ++n) {
    resilience::CancellationPoint();
    kern.axpy(p_n[n], fold, out.data(), std::min(fold_size, out.size()));
    if (n < effective_cap) {
      const std::size_t next_size = fold_size + cond_size - 1;
      std::fill(next, next + next_size, 0.0);
      ConvolveAccumulate(fold, fold_size, conditional.mass().data(),
                         cond_size, next, next_size, /*saturate=*/false);
      std::swap(fold, next);
      fold_size = next_size;
    }
  }
  return Pmf(std::move(out));
}

}  // namespace

Pmf ExactRegionReportPmf(int num_nodes, double field_area,
                         const std::vector<double>& areas, double pd,
                         double node_reliability) {
  // With the cache disabled (capacity 0: cold benchmarks, memo-off runs)
  // a lookup can never hit, so key construction and shard locking are
  // pure overhead on the solve hot path — compute directly.
  if (prob::MemoCache::Global().capacity() == 0) {
    return ComputeExactRegionReportPmf(num_nodes, field_area, areas, pd,
                                       node_reliability);
  }
  prob::MemoKey key =
      RegionKey("core/exact_region_pmf", num_nodes, field_area, areas, pd);
  key.AddDouble(node_reliability);
  return *prob::MemoCache::Global().GetOrCompute<Pmf>(
      key,
      [&] {
        return ComputeExactRegionReportPmf(num_nodes, field_area, areas, pd,
                                           node_reliability);
      },
      PmfHeapBytes);
}

Pmf CappedRegionReportPmf(int num_nodes, double field_area,
                          const std::vector<double>& areas, double pd,
                          int cap, double node_reliability) {
  if (prob::MemoCache::Global().capacity() == 0) {
    return ComputeCappedRegionReportPmf(num_nodes, field_area, areas, pd, cap,
                                        node_reliability);
  }
  prob::MemoKey key =
      RegionKey("core/capped_region_pmf", num_nodes, field_area, areas, pd);
  key.AddInt(cap).AddDouble(node_reliability);
  return *prob::MemoCache::Global().GetOrCompute<Pmf>(
      key,
      [&] {
        return ComputeCappedRegionReportPmf(num_nodes, field_area, areas, pd,
                                            cap, node_reliability);
      },
      PmfHeapBytes);
}

namespace {

// Recursive ordered-tuple enumeration from the paper's Algorithm 1:
// choose the subarea R_d of the d-th sensor, then its report count, and
// accumulate p_loc * prod_d p(N_d, R_d) into out[sum N_d].
void EnumerateLiteral(const std::vector<double>& area_over_s,
                      const std::vector<std::vector<double>>& report_pmfs,
                      int depth, int reports_so_far, double weight,
                      std::vector<double>& out) {
  if (depth == 0) {
    out[reports_so_far] += weight;
    return;
  }
  resilience::CancellationPoint();
  for (std::size_t region = 0; region < area_over_s.size(); ++region) {
    const double w_region = weight * area_over_s[region];
    if (w_region == 0.0) continue;
    const std::vector<double>& pmf = report_pmfs[region];
    for (std::size_t m = 0; m < pmf.size(); ++m) {
      if (pmf[m] == 0.0) continue;
      EnumerateLiteral(area_over_s, report_pmfs, depth - 1,
                       reports_so_far + static_cast<int>(m),
                       w_region * pmf[m], out);
    }
  }
}

}  // namespace

namespace {

Pmf ComputeCappedRegionReportPmfLiteral(int num_nodes, double field_area,
                                        const std::vector<double>& areas,
                                        double pd, int cap) {
  SPARSEDET_REQUIRE(num_nodes >= 0, "node count must be >= 0");
  SPARSEDET_REQUIRE(field_area > 0.0, "field area must be positive");
  SPARSEDET_REQUIRE(cap >= 0, "cap must be >= 0");
  const double total = CheckAreas(areas, field_area, pd);
  const double p_in = total / field_area;
  const int max_periods = static_cast<int>(areas.size());
  const int effective_cap = std::min(cap, num_nodes);

  // Region weights Region(i)/S and per-region report pmfs p(m, i) (Eq. 3).
  std::vector<double> area_over_s(areas.size());
  std::vector<std::vector<double>> report_pmfs(areas.size());
  for (std::size_t i = 0; i < areas.size(); ++i) {
    area_over_s[i] = areas[i] / field_area;
    report_pmfs[i] = BinomialPmfVector(static_cast<int>(i) + 1, pd);
  }

  const std::size_t out_size =
      static_cast<std::size_t>(effective_cap) * max_periods + 1;
  // The per-depth enumerations are independent and wildly uneven (cost
  // grows as areas.size()^n), so run them under work stealing; the final
  // accumulation below walks depths in index order, which keeps the
  // floating-point association — and hence the bits — identical to the
  // sequential loop for every thread count.
  std::vector<std::vector<double>> partials(
      static_cast<std::size_t>(effective_cap) + 1);
  // The depth-n enumeration visits ~areas.size()^n tuples; the deepest
  // depth dominates, so the mean per-item cost is ~total / (cap + 1).
  // Below the dispatch threshold the whole enumeration is cheaper than
  // spawning workers and runs inline.
  double est_total_ns = 5.0;
  for (int d = 0; d < effective_cap; ++d) {
    est_total_ns *= static_cast<double>(areas.size());
    if (est_total_ns > 1e12) break;  // saturate; definitely parallel
  }
  ParallelOptions enum_opts;
  enum_opts.work_ns_hint = static_cast<std::size_t>(
      est_total_ns / static_cast<double>(partials.size())) + 1;
  ParallelFor(partials.size(), enum_opts, [&](std::size_t n) {
    std::vector<double> partial(out_size, 0.0);
    EnumerateLiteral(area_over_s, report_pmfs, static_cast<int>(n), 0, 1.0,
                     partial);
    partials[n] = std::move(partial);
  });

  std::vector<double> out(out_size, 0.0);
  for (int n = 0; n <= effective_cap; ++n) {
    // pS{(n)(R1..Rn)} = C(N, n) (1 - A/S)^(N-n) prod Region(R_i)/S; the
    // leading factor is shared by every tuple of this depth. Note
    // C(N, n) (1 - A/S)^(N-n) (A/S)^n = BinomialPmf(N, n, A/S) and the
    // enumeration above multiplies in exactly (A/S)^n via the region
    // weights, so scale by BinomialPmf / (A/S)^n for stability.
    double scale = BinomialPmf(num_nodes, n, p_in);
    for (int d = 0; d < n; ++d) scale /= p_in;
    simd::Active().axpy(scale, partials[n].data(), out.data(), out.size());
  }
  return Pmf(std::move(out));
}

}  // namespace

Pmf CappedRegionReportPmfLiteral(int num_nodes, double field_area,
                                 const std::vector<double>& areas, double pd,
                                 int cap) {
  if (prob::MemoCache::Global().capacity() == 0) {
    return ComputeCappedRegionReportPmfLiteral(num_nodes, field_area, areas,
                                               pd, cap);
  }
  prob::MemoKey key = RegionKey("core/capped_region_pmf_literal", num_nodes,
                                field_area, areas, pd);
  key.AddInt(cap);
  return *prob::MemoCache::Global().GetOrCompute<Pmf>(
      key,
      [&] {
        return ComputeCappedRegionReportPmfLiteral(num_nodes, field_area,
                                                   areas, pd, cap);
      },
      PmfHeapBytes);
}

double RegionCapAccuracy(int num_nodes, double field_area, double region_area,
                         int cap) {
  SPARSEDET_REQUIRE(num_nodes >= 0, "node count must be >= 0");
  SPARSEDET_REQUIRE(field_area > 0.0 && region_area > 0.0 &&
                        region_area <= field_area * (1.0 + 1e-9),
                    "region area must be in (0, field area]");
  return BinomialCdf(num_nodes, cap, region_area / field_area);
}

int RequiredRegionCap(int num_nodes, double field_area, double region_area,
                      double accuracy) {
  SPARSEDET_REQUIRE(accuracy > 0.0 && accuracy <= 1.0,
                    "accuracy must be in (0, 1]");
  for (int cap = 0; cap < num_nodes; ++cap) {
    if (RegionCapAccuracy(num_nodes, field_area, region_area, cap) >=
        accuracy) {
      return cap;
    }
  }
  return num_nodes;
}

JointPmf ConditionalSensorJointPmf(const std::vector<double>& areas, double pd,
                                   int max_m, int max_n) {
  const double total = CheckAreas(areas, 1e300, pd);
  SPARSEDET_REQUIRE(max_m >= static_cast<int>(areas.size()),
                    "max_m too small to hold one sensor's reports");
  SPARSEDET_REQUIRE(max_n >= 1, "max_n must be >= 1");
  JointPmf joint(max_m, max_n);
  for (int periods = 1; periods <= static_cast<int>(areas.size()); ++periods) {
    const double weight = areas[periods - 1] / total;
    if (weight == 0.0) continue;
    for (int m = 0; m <= periods; ++m) {
      joint.At(m, m >= 1 ? 1 : 0) += weight * BinomialPmf(periods, m, pd);
    }
  }
  return joint;
}

JointPmf CappedRegionJointPmf(int num_nodes, double field_area,
                              const std::vector<double>& areas, double pd,
                              int cap, int max_m, int max_n) {
  SPARSEDET_REQUIRE(num_nodes >= 0, "node count must be >= 0");
  SPARSEDET_REQUIRE(field_area > 0.0, "field area must be positive");
  SPARSEDET_REQUIRE(cap >= 0, "cap must be >= 0");
  const double total = CheckAreas(areas, field_area, pd);
  const double p_in = total / field_area;
  const int effective_cap = std::min(cap, num_nodes);
  SPARSEDET_REQUIRE(
      max_m >= effective_cap * static_cast<int>(areas.size()),
      "max_m too small to hold the capped region's reports exactly");

  const JointPmf conditional =
      ConditionalSensorJointPmf(areas, pd, max_m, max_n);
  JointPmf out(max_m, max_n);
  JointPmf n_fold = JointPmf::DeltaZero(max_m, max_n);
  const std::vector<double> p_n = BinomialPmfVector(num_nodes, p_in,
                                                    effective_cap);
  for (int n = 0; n <= effective_cap; ++n) {
    resilience::CancellationPoint();
    // Same element order as the historical (m, nn) double loop: the grid
    // is row-major, so one flat axpy accumulates identically.
    out.AccumulateScaled(n_fold, p_n[n]);
    if (n < effective_cap) {
      // Node axis saturates (">= h nodes"); the report axis is sized to be
      // exact, so saturation there never triggers.
      n_fold = n_fold.ConvolveWith(conditional, /*saturate_m=*/true,
                                   /*saturate_n=*/true);
    }
  }
  return out;
}

}  // namespace sparsedet
