// System parameters of the surveillance scenario (paper Section 2 + the ONR
// evaluation defaults of Section 4).
#pragma once

namespace sparsedet {

// All lengths in meters, times in seconds, speeds in m/s.
struct SystemParams {
  double field_width = 32000.0;   // sensor field width  (S = W * H)
  double field_height = 32000.0;  // sensor field height
  int num_nodes = 60;             // N, uniformly randomly deployed
  double sensing_range = 1000.0;  // Rs
  double comm_range = 6000.0;     // communication range (net substrate only)
  double detect_prob = 0.9;       // Pd: P[report | target inside range]
  double period_length = 60.0;    // t: sensing period length
  double target_speed = 10.0;     // V: constant target speed
  int window_periods = 20;        // M: decision window, in sensing periods
  int threshold_reports = 5;      // k: reports needed within the window

  // The parameter set suggested by the Office of Naval Research that the
  // paper uses for all validation experiments.
  static SystemParams OnrDefaults() { return SystemParams{}; }

  // Throws InvalidArgument if any parameter is out of its documented domain
  // (positive lengths/times, 0 <= Pd <= 1, N >= 1, 1 <= k, M >= 1, and the
  // sparse-deployment premise comm_range > 2 * sensing_range).
  void Validate() const;

  double FieldArea() const { return field_width * field_height; }

  // V * t: distance the target travels per sensing period.
  double StepLength() const { return target_speed * period_length; }

  // ms = ceil(2 * Rs / (V * t)): the number of periods the target needs to
  // traverse one sensing diameter; a sensor covers the target for at most
  // ms + 1 consecutive periods.
  int Ms() const;

  // |DR| of one period: 2*Rs*V*t + pi*Rs^2.
  double DrArea() const;
  // |ARegion| of the whole window: 2*M*Rs*V*t + pi*Rs^2.
  double ARegionArea() const;
};

}  // namespace sparsedet
