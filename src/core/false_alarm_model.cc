#include "core/false_alarm_model.h"

#include "common/check.h"
#include "prob/binomial.h"

namespace sparsedet {
namespace {

int WindowSlots(const SystemParams& params) {
  params.Validate();
  return params.num_nodes * params.window_periods;
}

}  // namespace

Pmf FalseReportDistribution(const SystemParams& params, double pf) {
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  return Pmf(BinomialPmfVector(WindowSlots(params), pf));
}

double CountOnlySystemFaProbability(const SystemParams& params, double pf) {
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  return BinomialSurvival(WindowSlots(params), params.threshold_reports, pf);
}

int MinimumThresholdForFaRate(const SystemParams& params, double pf,
                              double max_fa_prob) {
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  SPARSEDET_REQUIRE(max_fa_prob >= 0.0 && max_fa_prob <= 1.0,
                    "max_fa_prob must be in [0, 1]");
  const int slots = WindowSlots(params);
  for (int k = 1; k <= slots; ++k) {
    if (BinomialSurvival(slots, k, pf) <= max_fa_prob) return k;
  }
  return slots + 1;
}

double ExpectedFalseReportsPerWindow(const SystemParams& params, double pf) {
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  return static_cast<double>(WindowSlots(params)) * pf;
}

}  // namespace sparsedet
