// Section-4 extension: the decision rule "at least k detection reports
// from at least h distinct nodes within M periods".
//
// The paper sketches the required change: grow the Markov state from the
// scalar "reports so far" to pairs m:n where n counts distinct reporting
// nodes and saturates at h ("n = h means at least h nodes"). We implement
// exactly that with a joint (reports, nodes) distribution per stage and a
// joint chain across stages; h = 1 degenerates to the base M-S-approach
// (verified by tests).
#pragma once

#include "core/params.h"
#include "prob/joint_pmf.h"

namespace sparsedet {

struct KNodeOptions {
  int h = 2;   // distinct-node threshold
  int gh = 3;  // Head-stage sensor cap
  int g = 3;   // Body/Tail-stage sensor cap
  bool normalize = true;  // Eq. 13 applied to the joint mass
};

struct KNodeResult {
  JointPmf joint;  // final (reports, min(nodes, h)) distribution, truncated
  double total_mass = 0.0;
  double detection_probability = 0.0;  // P[reports >= k and nodes >= h]
  int ms = 0;
  int num_report_states = 0;  // M * Z + 1 (the paper's h*M*Z + 1 total)
};

// Requires params.window_periods > params.Ms(), h >= 1, gh >= g >= 1.
KNodeResult KNodeAnalyze(const SystemParams& params,
                         const KNodeOptions& options = {});

}  // namespace sparsedet
