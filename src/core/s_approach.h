// The Spatial approach (paper Section 3.3).
//
// The S-approach treats the whole M-period Aggregate Region as one region,
// splits it into Region(i) subareas (a resident sensor covers the target
// for exactly i periods) and computes the distribution of the total number
// of detection reports, enumerating placements of at most G sensors inside
// the ARegion. Its accuracy is eta_S = P[Binomial(N, |ARegion|/S) <= G]
// (Eq. 5), and its cost blows up as ~ ms^(2G) — the motivation for the
// M-S-approach.
//
// Because the sensors are i.i.d., the *uncapped* S-approach has a cheap
// closed form (an N-fold convolution); we expose it as the exact model
// reference against which every approximation in this library is measured.
#pragma once

#include "core/params.h"
#include "prob/pmf.h"

namespace sparsedet {

struct SApproachOptions {
  int cap = 5;  // G: maximum number of sensors enumerated inside the ARegion
  // When true, reproduce the paper's Algorithm-1 ordered-tuple enumeration
  // verbatim (exponential in cap); otherwise use the algebraically
  // identical mixture-convolution form. Results are bit-for-bit comparable.
  bool literal_enumeration = false;
  bool normalize = true;  // renormalize the truncated distribution
  // Failure-injection extension (1.0 = the paper's model).
  double node_reliability = 1.0;
};

struct SApproachResult {
  Pmf report_distribution;        // truncated: TotalMass() == eta_S
  double total_mass = 0.0;        // == predicted accuracy eta_S
  double detection_probability = 0.0;  // P_M[X >= k]
  double predicted_accuracy = 0.0;     // Eq. 5
  int ms = 0;
};

// Requires params.window_periods > params.Ms() (the paper's general case).
SApproachResult SApproachAnalyze(const SystemParams& params,
                                 const SApproachOptions& options = {});

// Exact (uncapped) distribution of reports over the M-period window under
// the paper's spatial model; TotalMass() == 1.
Pmf SApproachExactDistribution(const SystemParams& params,
                               double node_reliability = 1.0);

// P_M[X >= k] from the exact distribution.
double SApproachExactDetectionProbability(const SystemParams& params,
                                          int k = -1,
                                          double node_reliability = 1.0);

// Smallest G meeting `accuracy` per Eq. 5.
int SApproachRequiredCap(const SystemParams& params, double accuracy);

// The paper's cost model for the capped S-approach, ~ ms^(2G) elementary
// operations (Section 3.4.5). Returned as a double because it overflows
// integer ranges precisely in the regimes the paper calls infeasible.
double SApproachCostModel(int ms, int cap);

}  // namespace sparsedet
