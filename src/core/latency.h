// Detection latency: how long after entering the field is the target
// recognized?
//
// The paper computes P_M[X >= k] for one window length M; related work it
// cites ([21], Chin et al.) studies detection *latency*. Within the
// paper's own model the two are the same object viewed differently: the
// cumulative report count over the first L periods is exactly the
// L-period-window statistic, so
//     P[latency <= L] = P_L[X >= k]
// and the latency distribution falls out of running the M-S-approach for
// every prefix length L = ms+1 .. M. (Prefixes L <= ms are below the
// model's domain; their probability is folded into the first valid
// prefix, which is conservative: the reported latency cdf is a lower
// bound there and exact beyond.)
#pragma once

#include <vector>

#include "core/ms_approach.h"
#include "core/params.h"

namespace sparsedet {

struct LatencyDistribution {
  // cdf[i] = P[detected within (first_valid_prefix + i) periods];
  // the last entry equals the full-window detection probability.
  std::vector<double> cdf;
  int first_valid_prefix = 0;  // = ms + 1

  // P[detected within L periods]; 0 below the first valid prefix,
  // clamped to the final value beyond M.
  double CdfAt(int periods) const;

  // E[latency in periods | detected within M]. Requires a positive
  // detection probability.
  double MeanConditionalLatency() const;

  // Smallest L with P[latency <= L] >= q * P[detected within M]
  // (a quantile of the conditional latency law). Requires q in (0, 1].
  int ConditionalQuantile(double q) const;
};

// Computes the latency distribution for the scenario by sweeping the
// window prefix through the M-S-approach. Requires
// params.window_periods > params.Ms() (as the base analysis does).
LatencyDistribution DetectionLatency(const SystemParams& params,
                                     const MsApproachOptions& options = {});

}  // namespace sparsedet
