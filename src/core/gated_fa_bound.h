// Analytical upper bound on the TRACK-GATED system false alarm
// probability — the paper's Section-6 future-work item: "the exact lower
// bound of k based on a specified false alarm model [that] can provide
// statistical guarantee that no possible sequencing of false alarms
// results in a system level false alarm".
//
// Model: no target; every (node, period) slot false-alarms independently
// with probability pf, node positions i.i.d. uniform. The gated detector
// fires when some chain of k reports with consecutively gate-feasible
// pairs exists (reach(dp) = V*t*(dp+1) + 2*Rs + slack). By the union
// bound,
//   P[gated FA] <= E[#feasible k-chains]
//               = pf^k * N^k * sum over non-decreasing period sequences
//                 p_1 <= ... <= p_k of  prod_i q(p_{i+1} - p_i),
// with q(dp) = min(1, pi * reach(dp)^2 / S) the probability that two
// uniform points are within gate reach. The inner sum is a simple DP in
// O(k * M^2). The bound overcounts (ordered tuples, no exclusivity), so
// the k it certifies is conservative — exactly what a guarantee needs.
#pragma once

#include "core/params.h"

namespace sparsedet {

// E[#feasible k-chains]; also a valid probability bound when < 1.
// Requires 0 <= pf <= 1, slack >= 0; uses params' k when k < 0.
double GatedFaUnionBound(const SystemParams& params, double pf, int k = -1,
                         double gate_slack = 0.0);

// Smallest k whose union bound is <= max_fa_prob: the guaranteed-safe
// threshold. Returns N*M + 1 if none qualifies.
int GuaranteedGatedThreshold(const SystemParams& params, double pf,
                             double max_fa_prob, double gate_slack = 0.0);

// The pairwise feasibility probability q(dp) used by the bound.
double GatePairProbability(const SystemParams& params, int period_gap,
                           double gate_slack = 0.0);

}  // namespace sparsedet
