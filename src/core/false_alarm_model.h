// Node-level false alarms and the choice of k (paper Section 2 and the
// Section-6 future-work item "exact lower bound of k for a specified false
// alarm model").
//
// Model: in every sensing period every node independently emits a false
// positive with probability pf. Within an M-period window the number of
// false reports is Binomial(N*M, pf). A *count-only* group detector (the
// paper's abstraction, with the track-mapping step ignored) raises a
// system-level false alarm when that count reaches k, so
//   P_sysFA(k) = P[Binomial(N*M, pf) >= k]
// is an upper bound for any detector that additionally requires the
// reports to map to a feasible track — the track gate can only discard
// report subsets. The minimum k meeting a target system FA probability
// under the count-only model is therefore a conservative (safe) choice for
// the gated detector too; `detect/` measures how much slack the gate adds.
#pragma once

#include "core/params.h"
#include "prob/pmf.h"

namespace sparsedet {

// Distribution of false reports in one M-period window (no target present).
// Requires 0 <= pf <= 1.
Pmf FalseReportDistribution(const SystemParams& params, double pf);

// P[system-level false alarm in one window] under the count-only rule.
double CountOnlySystemFaProbability(const SystemParams& params, double pf);

// Smallest k with CountOnlySystemFaProbability <= max_fa_prob. Returns
// N*M + 1 if even k = N*M cannot meet the target (only when pf == 1 and
// max_fa_prob < 1). Requires max_fa_prob in [0, 1].
int MinimumThresholdForFaRate(const SystemParams& params, double pf,
                              double max_fa_prob);

// Expected number of node-level false alarms per window, N * M * pf.
double ExpectedFalseReportsPerWindow(const SystemParams& params, double pf);

}  // namespace sparsedet
