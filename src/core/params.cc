#include "core/params.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sparsedet {

void SystemParams::Validate() const {
  SPARSEDET_REQUIRE(field_width > 0.0 && field_height > 0.0,
                    "field dimensions must be positive");
  SPARSEDET_REQUIRE(num_nodes >= 1, "at least one sensor node is required");
  SPARSEDET_REQUIRE(sensing_range > 0.0, "sensing range must be positive");
  SPARSEDET_REQUIRE(comm_range > 2.0 * sensing_range,
                    "sparse deployment requires comm range > 2 * Rs");
  SPARSEDET_REQUIRE(detect_prob >= 0.0 && detect_prob <= 1.0,
                    "Pd must be in [0, 1]");
  SPARSEDET_REQUIRE(period_length > 0.0, "period length must be positive");
  SPARSEDET_REQUIRE(target_speed > 0.0, "target speed must be positive");
  SPARSEDET_REQUIRE(window_periods >= 1, "M must be >= 1");
  SPARSEDET_REQUIRE(threshold_reports >= 1, "k must be >= 1");
  SPARSEDET_REQUIRE(threshold_reports <= num_nodes * window_periods,
                    "k exceeds the maximum possible number of reports");
}

int SystemParams::Ms() const {
  return static_cast<int>(std::ceil(2.0 * sensing_range / StepLength()));
}

double SystemParams::DrArea() const {
  return 2.0 * sensing_range * StepLength() +
         std::numbers::pi * sensing_range * sensing_range;
}

double SystemParams::ARegionArea() const {
  return 2.0 * window_periods * sensing_range * StepLength() +
         std::numbers::pi * sensing_range * sensing_range;
}

}  // namespace sparsedet
