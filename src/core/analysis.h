// One-call scenario analysis facade.
//
// Bundles everything a system designer wants to know about a scenario —
// the paper's stated purpose — into a single structure: the M-S-approach
// detection probability (the headline number), the exact-model reference,
// the single-period and instantaneous baselines, accuracy diagnostics and
// the computational footprint of the alternatives.
#pragma once

#include <string>

#include "core/ms_approach.h"
#include "core/params.h"

namespace sparsedet {

struct ScenarioReport {
  SystemParams params;
  int ms = 0;

  // Headline: P_M[X >= k] by the M-S-approach (Eq. 13 normalized).
  double detection_probability = 0.0;
  // Ground truth under the same spatial model (uncapped convolution).
  double exact_detection_probability = 0.0;
  // Raw (unnormalized) M-S value and the Eq. 14 accuracy prediction.
  double unnormalized_detection_probability = 0.0;
  double predicted_accuracy = 0.0;

  // Baselines.
  double single_period_detection = 0.0;   // P1[X >= k] (Eq. 2)
  double instantaneous_detection = 0.0;   // P_M[X >= 1]

  // Caps used and the caps a 99% accuracy target would need.
  int gh = 0;
  int g = 0;
  MsRequiredCaps required_caps_99;

  // Computational footprint (paper Section 3.4.5 cost models).
  int ms_states = 0;            // M * Z + 1
  double t_approach_states = 0.0;  // at the same cap
  double s_approach_cost = 0.0;    // ~ms^2G at the required 99% G
  double ms_approach_cost = 0.0;

  // Human-readable multi-line summary.
  std::string Summary() const;
};

// Runs every analysis on `params`. `options` controls the caps /
// normalization / reliability of the headline M-S run.
ScenarioReport AnalyzeScenario(const SystemParams& params,
                               const MsApproachOptions& options = {});

}  // namespace sparsedet
