#include "core/analysis.h"

#include <sstream>

#include "common/table.h"
#include "core/s_approach.h"
#include "core/single_period.h"
#include "core/t_approach.h"

namespace sparsedet {

ScenarioReport AnalyzeScenario(const SystemParams& params,
                               const MsApproachOptions& options) {
  params.Validate();
  ScenarioReport report;
  report.params = params;
  report.ms = params.Ms();
  report.gh = options.gh;
  report.g = options.g;

  const MsApproachResult normalized = MsApproachAnalyze(params, options);
  report.detection_probability = normalized.detection_probability;
  report.predicted_accuracy = normalized.predicted_accuracy;
  report.ms_states = normalized.num_states;

  MsApproachOptions raw = options;
  raw.normalize = false;
  report.unnormalized_detection_probability =
      MsApproachAnalyze(params, raw).detection_probability;

  report.exact_detection_probability = SApproachExactDetectionProbability(
      params, -1, options.node_reliability);
  report.instantaneous_detection = SApproachExactDetectionProbability(
      params, 1, options.node_reliability);
  report.single_period_detection = SinglePeriodDetectionProbability(params);

  report.required_caps_99 = MsRequiredCapsFor(params, 0.99);
  report.t_approach_states = TApproachStateCount(params, options.g);
  const int required_g = SApproachRequiredCap(params, 0.99);
  report.s_approach_cost = SApproachCostModel(report.ms, required_g);
  report.ms_approach_cost = MsApproachCostModel(
      report.ms, report.required_caps_99.gh, report.required_caps_99.g,
      params.window_periods);
  return report;
}

std::string ScenarioReport::Summary() const {
  std::ostringstream os;
  os << "scenario: N=" << params.num_nodes << " Rs=" << params.sensing_range
     << "m V=" << params.target_speed << "m/s t=" << params.period_length
     << "s k=" << params.threshold_reports << " M=" << params.window_periods
     << " (ms=" << ms << ")\n";
  os << "  P[detect] (M-S, gh=" << gh << ", g=" << g
     << ")        : " << FormatDouble(detection_probability, 4) << "\n";
  os << "  P[detect] (exact spatial model)   : "
     << FormatDouble(exact_detection_probability, 4) << "\n";
  os << "  P[detect] (M-S, unnormalized)     : "
     << FormatDouble(unnormalized_detection_probability, 4)
     << "  [eta_MS = " << FormatDouble(predicted_accuracy, 4) << "]\n";
  os << "  P[detect] single period (Eq. 2)   : "
     << FormatDouble(single_period_detection, 4) << "\n";
  os << "  P[detect] instantaneous (k=1)     : "
     << FormatDouble(instantaneous_detection, 4) << "\n";
  os << "  caps for 99% accuracy             : gh="
     << required_caps_99.gh << " g=" << required_caps_99.g << "\n";
  os << "  Markov states (M-S vs T-approach) : " << ms_states << " vs "
     << FormatDouble(t_approach_states, 0) << "\n";
  os << "  cost model (S vs M-S, 99% target) : "
     << FormatDouble(s_approach_cost, 0) << " vs "
     << FormatDouble(ms_approach_cost, 0) << "\n";
  return os.str();
}

}  // namespace sparsedet
