// The Markov chain based Spatial approach (paper Section 3.4) — the
// paper's primary contribution.
//
// Instead of enumerating sensor placements over the whole Aggregate Region
// at once, the window is processed one Newly Explored Detectable Region at
// a time:
//   Head stage — period 1, subareas AreaH(i) (Eq. 6), sensor cap gh;
//   Body stage — periods 2 .. M-ms, subareas AreaB(i) (Eq. 8), cap g,
//                one identical Markov step per period;
//   Tail stage — periods M-ms+1 .. M, subareas AreaT(j, i) (Eq. 10),
//                cap g, one distinct step per period.
// Each stage yields the pmf of the reports its NEDR generates; a Markov
// chain over "total reports so far" (states 0 .. M*Z, Z = (ms+1)*gh,
// Figures 5-7) chains them:  Result = u TH TB^(M-ms-1) prod_j TTj (Eq. 12).
// The truncated result is renormalized (Eq. 13); predicted accuracy is
// eta_MS = xi_h * xi^(M-1) (Eq. 14).
#pragma once

#include <vector>

#include "core/params.h"
#include "prob/pmf.h"

namespace sparsedet {

struct MsApproachOptions {
  int gh = 3;  // sensor cap in the Head NEDR
  int g = 3;   // sensor cap in each Body/Tail NEDR
  // Apply Eq. 13 (renormalize the truncated distribution). Figure 9(b)
  // turns this off to show the raw truncation error.
  bool normalize = true;
  // Probability that a node is functional for the whole window (failure-
  // injection extension; 1.0 reproduces the paper's model exactly).
  double node_reliability = 1.0;
  // Propagate through explicit transition matrices (paper-literal Eq. 12).
  // When false, use the equivalent direct increment propagation, which is
  // what a production caller would want. Tests assert both paths agree to
  // machine precision.
  bool use_transition_matrices = false;
};

struct MsApproachResult {
  // Result vector of Eq. 12 restated as a pmf over 0 .. M*Z reports;
  // TotalMass() < 1 because of the per-stage caps.
  Pmf report_distribution;
  double total_mass = 0.0;             // "sum" in Eq. 13
  double detection_probability = 0.0;  // P_M[X >= k], Eq. 13
  double predicted_accuracy = 0.0;     // eta_MS, Eq. 14
  int ms = 0;
  int z = 0;           // Z = (ms + 1) * gh, max reports from the Head DR
  int num_states = 0;  // M * Z + 1

  // Per-stage report pmfs, exposed for introspection and tests:
  Pmf head_pmf;               // ph:m
  Pmf body_pmf;               // pb:m
  std::vector<Pmf> tail_pmfs;  // pt1:m .. ptms:m
};

// Analyzes P_M[X >= k] for the given scenario. Requires
// params.window_periods > params.Ms() (the paper's general case) and
// gh >= g >= 1.
MsApproachResult MsApproachAnalyze(const SystemParams& params,
                                   const MsApproachOptions& options = {});

// Per-stage accuracies (Eqs. 7 and 9).
double MsHeadStageAccuracy(const SystemParams& params, int gh);   // xi_h
double MsBodyStageAccuracy(const SystemParams& params, int g);    // xi
// eta_MS = xi_h * xi^(M-1) (Eq. 14).
double MsPredictedAccuracy(const SystemParams& params, int gh, int g);

struct MsRequiredCaps {
  int gh = 0;
  int g = 0;
};

// Smallest per-stage caps meeting overall accuracy `eta` following the
// paper's recipe: each stage must reach xi >= eta^(1/M) (Section 3.4.5).
MsRequiredCaps MsRequiredCapsFor(const SystemParams& params, double eta);

// The paper's cost model for the M-S-approach:
// ms^(2*gh) + (M - 1) * ms^(2*g) elementary operations (Section 3.4.5).
double MsApproachCostModel(int ms, int gh, int g, int window_periods);

}  // namespace sparsedet
