// Parameter sensitivity of the detection probability.
//
// The paper's stated purpose is to let designers "understand the impact of
// various system parameters". This module makes that quantitative: for
// each tunable parameter it reports the local elasticity
//     (dP / P) / (dx / x)   (percent detection change per percent
//                            parameter change)
// via central finite differences on the M-S-approach. Elasticities rank
// which knob buys the most detection probability — e.g. whether a budget
// is better spent on more nodes or on longer-range sensors.
#pragma once

#include <string>
#include <vector>

#include "core/ms_approach.h"
#include "core/params.h"

namespace sparsedet {

struct ParameterSensitivity {
  std::string parameter;  // "nodes", "sensing_range", "pd", "speed", ...
  double value = 0.0;     // the parameter's current value
  double derivative = 0.0;  // dP/dx (finite difference)
  double elasticity = 0.0;  // (dP/P) / (dx/x)
};

struct SensitivityReport {
  double detection_probability = 0.0;  // at the base point
  std::vector<ParameterSensitivity> entries;

  // Entry lookup by name; throws InvalidArgument if absent.
  const ParameterSensitivity& For(const std::string& parameter) const;
};

// Computes sensitivities for: nodes, sensing_range, pd, speed,
// period_length, window (M) and threshold (k). Continuous parameters use a
// relative step `rel_step`; integer parameters (nodes, window, threshold)
// use +/- 1 around the base value. Requires a valid scenario with
// window_periods > ms + 1 (so the M +/- 1 probe stays in the model's
// domain).
SensitivityReport AnalyzeSensitivity(const SystemParams& params,
                                     const MsApproachOptions& options = {},
                                     double rel_step = 0.05);

}  // namespace sparsedet
