// Node energy budget and network lifetime.
//
// The surveillance systems the paper builds on (VigilNet etc.) live or die
// by energy; duty cycling (E20) buys lifetime at the cost of detection
// probability. This model closes the loop: expected per-node drain per
// sensing period from sensing, idling, reporting and relaying, hence the
// expected node lifetime, hence the detection-vs-lifetime frontier a
// designer actually chooses on (experiment E24).
#pragma once

#include "core/params.h"

namespace sparsedet {

struct EnergyModel {
  double battery_joules = 2.0e5;          // primary cell budget
  double sense_cost_per_period = 0.5;     // J per AWAKE sensing period
  double idle_cost_per_period = 0.01;     // J per asleep period
  double tx_cost_per_report_hop = 0.05;   // J to transmit one report one hop
  double rx_cost_per_report_hop = 0.02;   // J to receive one report one hop

  // Throws InvalidArgument unless all costs are >= 0 and the battery > 0.
  void Validate() const;
};

struct EnergyReport {
  double drain_per_period = 0.0;    // expected J per node per period
  double sensing_share = 0.0;       // fraction of drain spent sensing
  double comms_share = 0.0;         // fraction spent on tx + rx relaying
  double lifetime_periods = 0.0;    // battery / drain
  double lifetime_days = 0.0;
};

// Expected energy accounting for one node under:
//   duty_cycle d        — awake fraction of periods,
//   report_rate         — expected reports *originated* per node per period
//                         (detections while a target is present + false
//                         alarms; pass the no-target rate d*pf for steady
//                         state surveillance),
//   mean_hops           — average route length to the base station; every
//                         report costs (tx + rx) * hops shared across the
//                         route, i.e. per-node relay load is
//                         report_rate * N * hops / N = report_rate * hops.
EnergyReport AnalyzeEnergy(const SystemParams& params,
                           const EnergyModel& model, double duty_cycle,
                           double report_rate, double mean_hops);

// Steady-state surveillance report rate: duty-scaled false alarms only
// (targets are rare events). pf is the per-awake-period FA probability.
double SteadyStateReportRate(double duty_cycle, double false_alarm_prob);

}  // namespace sparsedet
