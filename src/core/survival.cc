#include "core/survival.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/false_alarm_model.h"

namespace sparsedet {

const char* FailureKindName(FailureKind kind) {
  return kind == FailureKind::kWeibull ? "weibull" : "exponential";
}

namespace {

// Weibull scale lambda for a given mean: mean = lambda * Gamma(1 + 1/shape).
double WeibullScale(double mean, double shape) {
  return mean / std::tgamma(1.0 + 1.0 / shape);
}

}  // namespace

void SensorFailureModel::Validate() const {
  SPARSEDET_REQUIRE(std::isfinite(mean_lifetime_s) && mean_lifetime_s >= 0.0,
                    "mean_lifetime_s must be finite and >= 0");
  SPARSEDET_REQUIRE(std::isfinite(weibull_shape) && weibull_shape > 0.0,
                    "weibull shape must be finite and > 0");
  SPARSEDET_REQUIRE(
      std::isfinite(report_loss_prob) && report_loss_prob >= 0.0 &&
          report_loss_prob < 1.0,
      "report_loss_prob must be in [0, 1)");
}

double SensorFailureModel::SurvivalAt(double t_seconds) const {
  if (mean_lifetime_s <= 0.0 || t_seconds <= 0.0) return 1.0;
  if (kind == FailureKind::kExponential || weibull_shape == 1.0) {
    return std::exp(-t_seconds / mean_lifetime_s);
  }
  const double scale = WeibullScale(mean_lifetime_s, weibull_shape);
  return std::exp(-std::pow(t_seconds / scale, weibull_shape));
}

double SensorFailureModel::LifetimeFromUniform(double u) const {
  if (mean_lifetime_s <= 0.0) return std::numeric_limits<double>::infinity();
  // -ln(1-u) is an Exp(1) sample; u in [0, 1) keeps it finite.
  const double e = -std::log1p(-u);
  if (kind == FailureKind::kExponential || weibull_shape == 1.0) {
    return mean_lifetime_s * e;
  }
  const double scale = WeibullScale(mean_lifetime_s, weibull_shape);
  return scale * std::pow(e, 1.0 / weibull_shape);
}

double SensorFailureModel::EffectiveDetectProb(double pd) const {
  return pd * (1.0 - report_loss_prob);
}

std::vector<DegradingEpoch> AnalyzeDegrading(const SystemParams& params,
                                             const MsApproachOptions& options,
                                             const SensorFailureModel& model,
                                             int horizon_epochs,
                                             int epoch_periods, double pf) {
  SPARSEDET_REQUIRE(horizon_epochs >= 1, "horizon_epochs must be >= 1");
  SPARSEDET_REQUIRE(epoch_periods >= 1, "epoch_periods must be >= 1");
  SPARSEDET_REQUIRE(std::isfinite(pf) && pf >= 0.0 && pf <= 1.0,
                    "pf must be in [0, 1]");
  params.Validate();
  model.Validate();

  SystemParams epoch_params = params;
  epoch_params.detect_prob = model.EffectiveDetectProb(params.detect_prob);

  std::vector<DegradingEpoch> rows;
  rows.reserve(static_cast<std::size_t>(horizon_epochs));
  for (int e = 0; e < horizon_epochs; ++e) {
    DegradingEpoch row;
    row.epoch = e;
    row.time_s = static_cast<double>(e) * epoch_periods * params.period_length;
    row.survival = model.SurvivalAt(row.time_s);
    row.expected_live = row.survival * params.num_nodes;

    MsApproachOptions epoch_options = options;
    epoch_options.node_reliability = options.node_reliability * row.survival;
    row.detection_probability =
        MsApproachAnalyze(epoch_params, epoch_options).detection_probability;

    if (pf > 0.0) {
      // A dead node emits neither true nor false reports, and a lost report
      // is lost whatever triggered it — the count-only FA bound sees the
      // same thinning the detection side does.
      const double pf_eff =
          row.survival * pf * (1.0 - model.report_loss_prob);
      row.system_fa = CountOnlySystemFaProbability(epoch_params, pf_eff);
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace sparsedet
