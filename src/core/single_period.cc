#include "core/single_period.h"

#include "common/check.h"
#include "prob/binomial.h"

namespace sparsedet {

double SinglePeriodPIndi(const SystemParams& params) {
  params.Validate();
  return params.detect_prob * params.DrArea() / params.FieldArea();
}

double SinglePeriodReportPmf(const SystemParams& params, int k) {
  SPARSEDET_REQUIRE(k >= 0, "report count must be >= 0");
  return BinomialPmf(params.num_nodes, k, SinglePeriodPIndi(params));
}

double SinglePeriodDetectionProbability(const SystemParams& params, int k) {
  if (k < 0) k = params.threshold_reports;
  return BinomialSurvival(params.num_nodes, k, SinglePeriodPIndi(params));
}

Pmf SinglePeriodReportDistribution(const SystemParams& params) {
  return Pmf(BinomialPmfVector(params.num_nodes, SinglePeriodPIndi(params)));
}

}  // namespace sparsedet
