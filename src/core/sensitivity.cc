#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"

namespace sparsedet {
namespace {

double Probability(const SystemParams& params,
                   const MsApproachOptions& options) {
  return MsApproachAnalyze(params, options).detection_probability;
}

ParameterSensitivity Continuous(
    const std::string& name, double value, double rel_step,
    const std::function<double(double)>& probability_at, double base_p) {
  const double lo = value * (1.0 - rel_step);
  const double hi = value * (1.0 + rel_step);
  const double p_lo = probability_at(lo);
  const double p_hi = probability_at(hi);
  ParameterSensitivity s;
  s.parameter = name;
  s.value = value;
  s.derivative = (p_hi - p_lo) / (hi - lo);
  s.elasticity = base_p > 0.0 ? s.derivative * value / base_p : 0.0;
  return s;
}

ParameterSensitivity Integer(
    const std::string& name, int value,
    const std::function<double(int)>& probability_at, double base_p) {
  const double p_lo = probability_at(value - 1);
  const double p_hi = probability_at(value + 1);
  ParameterSensitivity s;
  s.parameter = name;
  s.value = value;
  s.derivative = (p_hi - p_lo) / 2.0;
  s.elasticity = base_p > 0.0 ? s.derivative * value / base_p : 0.0;
  return s;
}

}  // namespace

const ParameterSensitivity& SensitivityReport::For(
    const std::string& parameter) const {
  for (const ParameterSensitivity& entry : entries) {
    if (entry.parameter == parameter) return entry;
  }
  SPARSEDET_REQUIRE(false, "no sensitivity entry for: " + parameter);
  // Unreachable; REQUIRE throws.
  throw InternalError("unreachable");
}

SensitivityReport AnalyzeSensitivity(const SystemParams& params,
                                     const MsApproachOptions& options,
                                     double rel_step) {
  params.Validate();
  SPARSEDET_REQUIRE(rel_step > 0.0 && rel_step < 0.5,
                    "relative step must be in (0, 0.5)");
  SPARSEDET_REQUIRE(params.window_periods > params.Ms() + 1,
                    "sensitivity probes require M > ms + 1");

  SensitivityReport report;
  report.detection_probability = Probability(params, options);
  const double base_p = report.detection_probability;

  report.entries.push_back(Integer(
      "nodes", params.num_nodes,
      [&](int n) {
        SystemParams p = params;
        p.num_nodes = std::max(1, n);
        return Probability(p, options);
      },
      base_p));

  report.entries.push_back(Continuous(
      "sensing_range", params.sensing_range, rel_step,
      [&](double rs) {
        SystemParams p = params;
        p.sensing_range = rs;
        // Keep the sparse premise intact while probing.
        p.comm_range = std::max(p.comm_range, 2.5 * rs);
        return Probability(p, options);
      },
      base_p));

  report.entries.push_back(Continuous(
      "pd", params.detect_prob, rel_step,
      [&](double pd) {
        SystemParams p = params;
        p.detect_prob = std::min(pd, 1.0);
        return Probability(p, options);
      },
      base_p));

  report.entries.push_back(Continuous(
      "speed", params.target_speed, rel_step,
      [&](double v) {
        SystemParams p = params;
        p.target_speed = v;
        return Probability(p, options);
      },
      base_p));

  report.entries.push_back(Continuous(
      "period_length", params.period_length, rel_step,
      [&](double t) {
        SystemParams p = params;
        p.period_length = t;
        return Probability(p, options);
      },
      base_p));

  report.entries.push_back(Integer(
      "window", params.window_periods,
      [&](int m) {
        SystemParams p = params;
        p.window_periods = m;
        return Probability(p, options);
      },
      base_p));

  report.entries.push_back(Integer(
      "threshold", params.threshold_reports,
      [&](int k) {
        SystemParams p = params;
        p.threshold_reports = std::max(1, k);
        return Probability(p, options);
      },
      base_p));

  return report;
}

}  // namespace sparsedet
