#include "core/s_approach.h"

#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "core/region_pmf.h"
#include "geometry/region_decomposition.h"
#include "obs/timer.h"
#include "prob/memo_cache.h"
#include "prob/memo_snapshot.h"

namespace sparsedet {
namespace {

// Snapshot codec for the memoized subarea decomposition vector.
const bool kSRegionsCodecRegistered = [] {
  prob::MemoCodec codec;
  codec.encode = [](const void* value) {
    const auto& v = *static_cast<const std::vector<double>*>(value);
    std::string out;
    prob::MemoAppendU64(&out, v.size());
    for (double a : v) prob::MemoAppendDouble(&out, a);
    return out;
  };
  codec.decode = [](std::string_view encoded,
                    std::size_t* bytes) -> std::shared_ptr<const void> {
    prob::MemoDecoder dec(encoded);
    const std::uint64_t n = dec.ReadU64();
    if (n * 8 != dec.remaining()) {
      throw Error("s_regions codec: length mismatch");
    }
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& a : v) a = dec.ReadDouble();
    auto out = std::make_shared<const std::vector<double>>(std::move(v));
    *bytes = sizeof(std::vector<double>) + out->size() * sizeof(double);
    return out;
  };
  prob::RegisterMemoCodec("core/s_regions", codec);
  return true;
}();

// The subarea decomposition depends on four scalars only and repeats for
// every sweep point that varies N, Pd, or k, so it is memoized
// process-wide. The report-pmf calls downstream have their own memos.
std::vector<double> SRegions(const SystemParams& params) {
  obs::ObsTimer timer(obs::Phase::kRegionDecomposition);
  params.Validate();
  prob::MemoKey key("core/s_regions");
  key.AddDouble(params.sensing_range)
      .AddDouble(params.target_speed)
      .AddDouble(params.period_length)
      .AddInt(params.window_periods);
  return *prob::MemoCache::Global().GetOrCompute<std::vector<double>>(
      key,
      [&] {
        const RegionDecomposition decomp(
            params.sensing_range, params.target_speed, params.period_length);
        SPARSEDET_REQUIRE(params.window_periods > decomp.ms(),
                          "the S-approach requires M > ms");
        return decomp.SApproachRegions(params.window_periods);
      },
      [](const std::vector<double>& v) { return v.size() * sizeof(double); });
}

}  // namespace

SApproachResult SApproachAnalyze(const SystemParams& params,
                                 const SApproachOptions& options) {
  SPARSEDET_REQUIRE(options.cap >= 0, "cap must be >= 0");
  const std::vector<double> regions = SRegions(params);

  SApproachResult result;
  result.ms = params.Ms();
  {
    obs::ObsTimer timer(obs::Phase::kSEnumeration);
    result.report_distribution =
        options.literal_enumeration
            ? CappedRegionReportPmfLiteral(params.num_nodes,
                                           params.FieldArea(), regions,
                                           params.detect_prob, options.cap)
            : CappedRegionReportPmf(params.num_nodes, params.FieldArea(),
                                    regions, params.detect_prob, options.cap,
                                    options.node_reliability);
  }
  result.total_mass = result.report_distribution.TotalMass();
  result.predicted_accuracy = RegionCapAccuracy(
      params.num_nodes, params.FieldArea(), params.ARegionArea(), options.cap);

  const double tail =
      result.report_distribution.TailSum(params.threshold_reports);
  result.detection_probability =
      options.normalize && result.total_mass > 0.0 ? tail / result.total_mass
                                                   : tail;
  return result;
}

Pmf SApproachExactDistribution(const SystemParams& params,
                               double node_reliability) {
  const std::vector<double> regions = SRegions(params);
  obs::ObsTimer timer(obs::Phase::kSEnumeration);
  return ExactRegionReportPmf(params.num_nodes, params.FieldArea(), regions,
                              params.detect_prob, node_reliability);
}

double SApproachExactDetectionProbability(const SystemParams& params, int k,
                                          double node_reliability) {
  if (k < 0) k = params.threshold_reports;
  return SApproachExactDistribution(params, node_reliability).TailSum(k);
}

int SApproachRequiredCap(const SystemParams& params, double accuracy) {
  params.Validate();
  return RequiredRegionCap(params.num_nodes, params.FieldArea(),
                           params.ARegionArea(), accuracy);
}

double SApproachCostModel(int ms, int cap) {
  SPARSEDET_REQUIRE(ms >= 1 && cap >= 0, "ms must be >= 1 and cap >= 0");
  return std::pow(static_cast<double>(ms), 2.0 * cap);
}

}  // namespace sparsedet
