#include "core/gated_fa_bound.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/check.h"

namespace sparsedet {

double GatePairProbability(const SystemParams& params, int period_gap,
                           double gate_slack) {
  params.Validate();
  SPARSEDET_REQUIRE(period_gap >= 0, "period gap must be >= 0");
  SPARSEDET_REQUIRE(gate_slack >= 0.0, "gate slack must be >= 0");
  const double reach = params.target_speed * params.period_length *
                           (period_gap + 1) +
                       2.0 * params.sensing_range + gate_slack;
  return std::min(1.0, std::numbers::pi * reach * reach /
                           params.FieldArea());
}

double GatedFaUnionBound(const SystemParams& params, double pf, int k,
                         double gate_slack) {
  params.Validate();
  SPARSEDET_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf must be in [0, 1]");
  if (k < 0) k = params.threshold_reports;
  SPARSEDET_REQUIRE(k >= 1, "k must be >= 1");
  const int m = params.window_periods;
  if (pf == 0.0) return 0.0;

  // q(dp) for dp = 0 .. M-1.
  std::vector<double> q(static_cast<std::size_t>(m));
  for (int dp = 0; dp < m; ++dp) {
    q[dp] = GatePairProbability(params, dp, gate_slack);
  }

  // DP over chain length: f[j][p] = sum over feasible (p_1 <= ... <= p_j=p)
  // of prod q(gaps). Work in log-safe doubles; values can be large when
  // the bound exceeds 1 (then it is vacuous but still well-defined).
  std::vector<double> f(static_cast<std::size_t>(m), 1.0);
  for (int j = 2; j <= k; ++j) {
    std::vector<double> next(static_cast<std::size_t>(m), 0.0);
    for (int p = 0; p < m; ++p) {
      double acc = 0.0;
      for (int prev = 0; prev <= p; ++prev) {
        acc += f[prev] * q[p - prev];
      }
      next[p] = acc;
    }
    f = std::move(next);
  }
  double chains = 0.0;
  for (double v : f) chains += v;

  // pf^k * N^k, guarded against underflow via logs.
  const double log_scale =
      k * (std::log(pf) + std::log(static_cast<double>(params.num_nodes)));
  return chains * std::exp(log_scale);
}

int GuaranteedGatedThreshold(const SystemParams& params, double pf,
                             double max_fa_prob, double gate_slack) {
  params.Validate();
  SPARSEDET_REQUIRE(max_fa_prob >= 0.0 && max_fa_prob <= 1.0,
                    "max_fa_prob must be in [0, 1]");
  const int max_k = params.num_nodes * params.window_periods;
  for (int k = 1; k <= max_k; ++k) {
    if (GatedFaUnionBound(params, pf, k, gate_slack) <= max_fa_prob) {
      return k;
    }
  }
  return max_k + 1;
}

}  // namespace sparsedet
