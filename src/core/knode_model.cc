#include "core/knode_model.h"

#include "common/check.h"
#include "core/region_pmf.h"
#include "geometry/region_decomposition.h"

namespace sparsedet {

KNodeResult KNodeAnalyze(const SystemParams& params,
                         const KNodeOptions& options) {
  params.Validate();
  SPARSEDET_REQUIRE(options.h >= 1, "h must be >= 1");
  SPARSEDET_REQUIRE(options.g >= 1 && options.gh >= options.g,
                    "caps must satisfy gh >= g >= 1");
  const RegionDecomposition decomp(params.sensing_range, params.target_speed,
                                   params.period_length);
  const int ms = decomp.ms();
  SPARSEDET_REQUIRE(params.window_periods > ms,
                    "the k-node model requires M > ms");

  const int z = (ms + 1) * options.gh;
  const int max_m = params.window_periods * z;
  const int max_n = options.h;
  const double s = params.FieldArea();
  const double pd = params.detect_prob;
  const int n = params.num_nodes;

  // Stage joints on the shared (reports 0..M*Z, nodes 0..h) grid; the node
  // axis saturates at h inside both the per-stage construction and the
  // cross-stage convolution — exactly the paper's m:n state space.
  const JointPmf head = CappedRegionJointPmf(n, s, decomp.area_h(), pd,
                                             options.gh, max_m, max_n);
  const JointPmf body = CappedRegionJointPmf(n, s, decomp.area_b(), pd,
                                             options.g, max_m, max_n);

  JointPmf dist = JointPmf::DeltaZero(max_m, max_n);
  dist = dist.ConvolveWith(head, /*saturate_m=*/false, /*saturate_n=*/true);
  for (int period = 2; period <= params.window_periods - ms; ++period) {
    dist = dist.ConvolveWith(body, /*saturate_m=*/false, /*saturate_n=*/true);
  }
  for (int j = 1; j <= ms; ++j) {
    const JointPmf tail = CappedRegionJointPmf(n, s, decomp.AreaTVector(j), pd,
                                               options.g, max_m, max_n);
    dist = dist.ConvolveWith(tail, /*saturate_m=*/false, /*saturate_n=*/true);
  }

  KNodeResult result{.joint = dist,
                     .total_mass = dist.TotalMass(),
                     .detection_probability = 0.0,
                     .ms = ms,
                     .num_report_states = max_m + 1};
  const double tail_prob =
      dist.JointTail(params.threshold_reports, options.h);
  result.detection_probability =
      options.normalize && result.total_mass > 0.0
          ? tail_prob / result.total_mass
          : tail_prob;
  return result;
}

}  // namespace sparsedet
