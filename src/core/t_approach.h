// The Temporal approach (paper Section 3.2) — the rejected baseline.
//
// The T-approach walks the window period by period and needs the Markov
// state to remember, for each of the last ms periods, how many sensors sit
// in the still-overlapping part of that period's DR (otherwise the
// conditional detection probability of the next period is wrong). With a
// per-region sensor cap of c, that memory alone multiplies the state space
// by (c+1)^ms on top of the (M*Z + 1) report-count states. The paper
// reports "millions or more states"; this module provides the state-count
// model that reproduces that argument quantitatively (E6).
#pragma once

#include "core/params.h"

namespace sparsedet {

// Number of Markov states the T-approach needs: (M*Z + 1) * (cap+1)^ms,
// with Z = (ms + 1) * cap. Returned as a double because it exceeds 2^63
// exactly in the regimes the paper calls infeasible. Requires cap >= 1.
double TApproachStateCount(const SystemParams& params, int cap);

// Same, from raw ms / M / cap (for sweeps without a full parameter set).
double TApproachStateCountRaw(int ms, int window_periods, int cap);

// For comparison: the M-S-approach state count, M*Z + 1.
double MsApproachStateCount(const SystemParams& params, int gh);

}  // namespace sparsedet
