// The M = 1 preliminary model of Section 3.1 (Eqs. 1-2), following [9]
// (Wettergren): with a single sensing period, the number of detection
// reports is Binomial(N, p_indi) with
//   p_indi = Pd * (2*Rs*V*t + pi*Rs^2) / S.
#pragma once

#include "core/params.h"
#include "prob/pmf.h"

namespace sparsedet {

// p_indi: probability that one uniformly sampled sensor detects the target
// in one sensing period.
double SinglePeriodPIndi(const SystemParams& params);

// Eq. 1: P1[X = k].
double SinglePeriodReportPmf(const SystemParams& params, int k);

// Eq. 2: P1[X >= k]. Uses params.threshold_reports when k < 0.
double SinglePeriodDetectionProbability(const SystemParams& params,
                                        int k = -1);

// The full Binomial(N, p_indi) report distribution.
Pmf SinglePeriodReportDistribution(const SystemParams& params);

}  // namespace sparsedet
