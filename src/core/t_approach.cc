#include "core/t_approach.h"

#include <cmath>

#include "common/check.h"

namespace sparsedet {

double TApproachStateCountRaw(int ms, int window_periods, int cap) {
  SPARSEDET_REQUIRE(ms >= 1, "ms must be >= 1");
  SPARSEDET_REQUIRE(window_periods >= 1, "M must be >= 1");
  SPARSEDET_REQUIRE(cap >= 1, "cap must be >= 1");
  const double z = static_cast<double>((ms + 1) * cap);
  const double report_states = static_cast<double>(window_periods) * z + 1.0;
  const double memory = std::pow(static_cast<double>(cap + 1), ms);
  return report_states * memory;
}

double TApproachStateCount(const SystemParams& params, int cap) {
  params.Validate();
  return TApproachStateCountRaw(params.Ms(), params.window_periods, cap);
}

double MsApproachStateCount(const SystemParams& params, int gh) {
  params.Validate();
  SPARSEDET_REQUIRE(gh >= 1, "gh must be >= 1");
  return static_cast<double>(params.window_periods) *
             static_cast<double>((params.Ms() + 1) * gh) +
         1.0;
}

}  // namespace sparsedet
