#include "core/ms_approach.h"

#include <cmath>

#include "common/check.h"
#include "core/region_pmf.h"
#include "geometry/region_decomposition.h"
#include "markov/chain.h"
#include "markov/increment_chain.h"
#include "obs/timer.h"
#include "resilience/cancel.h"

namespace sparsedet {
namespace {

RegionDecomposition Decompose(const SystemParams& params) {
  obs::ObsTimer timer(obs::Phase::kRegionDecomposition);
  params.Validate();
  RegionDecomposition decomp(params.sensing_range, params.target_speed,
                             params.period_length);
  SPARSEDET_REQUIRE(params.window_periods > decomp.ms(),
                    "the M-S-approach requires M > ms");
  return decomp;
}

}  // namespace

MsApproachResult MsApproachAnalyze(const SystemParams& params,
                                   const MsApproachOptions& options) {
  SPARSEDET_REQUIRE(options.g >= 1 && options.gh >= 1,
                    "per-stage caps must be >= 1");
  SPARSEDET_REQUIRE(options.gh >= options.g,
                    "the Head NEDR is the largest region; gh >= g");
  SPARSEDET_REQUIRE(
      options.node_reliability >= 0.0 && options.node_reliability <= 1.0,
      "node reliability must be in [0, 1]");
  const RegionDecomposition decomp = Decompose(params);
  const int ms = decomp.ms();
  const int m_periods = params.window_periods;
  const double s = params.FieldArea();
  const double pd = params.detect_prob;
  const int n = params.num_nodes;

  MsApproachResult result;
  result.ms = ms;
  result.z = (ms + 1) * options.gh;
  result.num_states = m_periods * result.z + 1;

  // Stage pmfs. Head uses the full DR subareas AreaH(i); Body/Tail use the
  // crescent NEDR subareas AreaB(i) / AreaT(j, i).
  const double rel = options.node_reliability;
  {
    obs::ObsTimer timer(obs::Phase::kMsHead);
    result.head_pmf =
        CappedRegionReportPmf(n, s, decomp.area_h(), pd, options.gh, rel);
  }
  resilience::CancellationPoint();
  {
    obs::ObsTimer timer(obs::Phase::kMsBody);
    result.body_pmf =
        CappedRegionReportPmf(n, s, decomp.area_b(), pd, options.g, rel);
  }
  resilience::CancellationPoint();
  {
    obs::ObsTimer timer(obs::Phase::kMsTail);
    result.tail_pmfs.reserve(static_cast<std::size_t>(ms));
    for (int j = 1; j <= ms; ++j) {
      result.tail_pmfs.push_back(CappedRegionReportPmf(
          n, s, decomp.AreaTVector(j), pd, options.g, rel));
    }
  }
  resilience::CancellationPoint();

  // Chain the stages: Result = u TH TB^(M-ms-1) prod_j TTj (Eq. 12).
  // The state space 0 .. M*Z is large enough that no transition can
  // overflow it (Head adds <= Z, each of the other M-1 stages adds
  // <= (ms+1)*g <= Z), so saturation never triggers; we still keep the
  // boundary behavior explicit.
  const std::size_t num_states = static_cast<std::size_t>(result.num_states);
  std::vector<double> dist(num_states, 0.0);
  dist[0] = 1.0;  // u = [1 0 0 ... 0] (Eq. 11)

  {
    obs::ObsTimer timer(obs::Phase::kMsPropagate);
    if (options.use_transition_matrices) {
      const MarkovChain head(BuildIncrementTransitionMatrix(
          result.head_pmf, num_states, /*saturate_top=*/false));
      const MarkovChain body(BuildIncrementTransitionMatrix(
          result.body_pmf, num_states, /*saturate_top=*/false));
      dist = head.Propagate(dist);
      dist = body.PropagateSteps(dist, m_periods - ms - 1);
      for (const Pmf& tail : result.tail_pmfs) {
        const MarkovChain chain(BuildIncrementTransitionMatrix(
            tail, num_states, /*saturate_top=*/false));
        dist = chain.Propagate(dist);
      }
    } else {
      dist = PropagateIncrement(dist, result.head_pmf,
                                /*saturate_top=*/false);
      dist = PropagateIncrementSteps(dist, result.body_pmf, m_periods - ms - 1,
                                     /*saturate_top=*/false);
      for (const Pmf& tail : result.tail_pmfs) {
        dist = PropagateIncrement(dist, tail, /*saturate_top=*/false);
      }
    }
  }

  result.report_distribution = Pmf(std::move(dist));
  result.total_mass = result.report_distribution.TotalMass();
  result.predicted_accuracy = MsPredictedAccuracy(params, options.gh,
                                                  options.g);

  const double tail_prob =
      result.report_distribution.TailSum(params.threshold_reports);
  result.detection_probability =
      options.normalize && result.total_mass > 0.0
          ? tail_prob / result.total_mass  // Eq. 13
          : tail_prob;
  return result;
}

double MsHeadStageAccuracy(const SystemParams& params, int gh) {
  params.Validate();
  return RegionCapAccuracy(params.num_nodes, params.FieldArea(),
                           params.DrArea(), gh);
}

double MsBodyStageAccuracy(const SystemParams& params, int g) {
  params.Validate();
  const double nedr = 2.0 * params.sensing_range * params.StepLength();
  return RegionCapAccuracy(params.num_nodes, params.FieldArea(), nedr, g);
}

double MsPredictedAccuracy(const SystemParams& params, int gh, int g) {
  const double xi_h = MsHeadStageAccuracy(params, gh);
  const double xi = MsBodyStageAccuracy(params, g);
  return xi_h * std::pow(xi, params.window_periods - 1);
}

MsRequiredCaps MsRequiredCapsFor(const SystemParams& params, double eta) {
  SPARSEDET_REQUIRE(eta > 0.0 && eta < 1.0, "eta must be in (0, 1)");
  params.Validate();
  // Per-stage requirement xi >= eta^(1/M) (the paper sets xi_h = xi).
  const double per_stage =
      std::pow(eta, 1.0 / static_cast<double>(params.window_periods));
  MsRequiredCaps caps;
  caps.gh = RequiredRegionCap(params.num_nodes, params.FieldArea(),
                              params.DrArea(), per_stage);
  const double nedr = 2.0 * params.sensing_range * params.StepLength();
  caps.g = RequiredRegionCap(params.num_nodes, params.FieldArea(), nedr,
                             per_stage);
  return caps;
}

double MsApproachCostModel(int ms, int gh, int g, int window_periods) {
  SPARSEDET_REQUIRE(ms >= 1 && gh >= 0 && g >= 0 && window_periods >= 1,
                    "invalid cost-model arguments");
  const double head = std::pow(static_cast<double>(ms), 2.0 * gh);
  const double rest = static_cast<double>(window_periods - 1) *
                      std::pow(static_cast<double>(ms), 2.0 * g);
  return head + rest;
}

}  // namespace sparsedet
