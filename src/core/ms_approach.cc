#include "core/ms_approach.h"

#include <cmath>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/region_pmf.h"
#include "geometry/region_decomposition.h"
#include "markov/chain.h"
#include "markov/increment_chain.h"
#include "obs/timer.h"
#include "prob/memo_cache.h"
#include "prob/memo_snapshot.h"
#include "resilience/cancel.h"

namespace sparsedet {
namespace {

// Everything MsApproachAnalyze derives that does not depend on the report
// threshold k or on normalization. Cached as one memo entry so a k-sweep
// (the common batch shape: one curve per threshold) reuses the full stage
// and propagation work and only re-evaluates the tail sum.
struct MsSolveCore {
  Pmf head_pmf;
  Pmf body_pmf;
  std::vector<Pmf> tail_pmfs;
  Pmf report_distribution;
};

std::size_t MsSolveCoreHeapBytes(const MsSolveCore& core) {
  std::size_t bytes = (core.head_pmf.size() + core.body_pmf.size() +
                       core.report_distribution.size()) *
                      sizeof(double);
  for (const Pmf& tail : core.tail_pmfs) bytes += tail.size() * sizeof(double);
  return bytes;
}

// Snapshot codec: each stage pmf mass vector bit-exact, tails prefixed by
// their count.
void EncodeStagePmf(std::string* out, const Pmf& pmf) {
  prob::MemoAppendU64(out, pmf.size());
  for (double m : pmf.mass()) prob::MemoAppendDouble(out, m);
}

Pmf DecodeStagePmf(prob::MemoDecoder* dec) {
  const std::uint64_t n = dec->ReadU64();
  if (n * 8 > dec->remaining()) {
    throw Error("ms_solve_core codec: truncated pmf");
  }
  std::vector<double> mass(static_cast<std::size_t>(n));
  for (double& m : mass) m = dec->ReadDouble();
  return Pmf(std::move(mass));
}

const bool kMsSolveCoreCodecRegistered = [] {
  prob::MemoCodec codec;
  codec.encode = [](const void* value) {
    const auto& core = *static_cast<const MsSolveCore*>(value);
    std::string out;
    EncodeStagePmf(&out, core.head_pmf);
    EncodeStagePmf(&out, core.body_pmf);
    prob::MemoAppendU64(&out, core.tail_pmfs.size());
    for (const Pmf& tail : core.tail_pmfs) EncodeStagePmf(&out, tail);
    EncodeStagePmf(&out, core.report_distribution);
    return out;
  };
  codec.decode = [](std::string_view encoded,
                    std::size_t* bytes) -> std::shared_ptr<const void> {
    prob::MemoDecoder dec(encoded);
    MsSolveCore core;
    core.head_pmf = DecodeStagePmf(&dec);
    core.body_pmf = DecodeStagePmf(&dec);
    const std::uint64_t tails = dec.ReadU64();
    if (tails > dec.remaining() / 8) {
      throw Error("ms_solve_core codec: tail count too large");
    }
    core.tail_pmfs.reserve(static_cast<std::size_t>(tails));
    for (std::uint64_t j = 0; j < tails; ++j) {
      core.tail_pmfs.push_back(DecodeStagePmf(&dec));
    }
    core.report_distribution = DecodeStagePmf(&dec);
    if (dec.remaining() != 0) {
      throw Error("ms_solve_core codec: trailing bytes");
    }
    auto out = std::make_shared<const MsSolveCore>(std::move(core));
    *bytes = sizeof(MsSolveCore) + MsSolveCoreHeapBytes(*out);
    return out;
  };
  prob::RegisterMemoCodec("core/ms_solve_core", codec);
  return true;
}();

RegionDecomposition Decompose(const SystemParams& params) {
  obs::ObsTimer timer(obs::Phase::kRegionDecomposition);
  params.Validate();
  RegionDecomposition decomp(params.sensing_range, params.target_speed,
                             params.period_length);
  SPARSEDET_REQUIRE(params.window_periods > decomp.ms(),
                    "the M-S-approach requires M > ms");
  return decomp;
}

}  // namespace

MsApproachResult MsApproachAnalyze(const SystemParams& params,
                                   const MsApproachOptions& options) {
  SPARSEDET_REQUIRE(options.g >= 1 && options.gh >= 1,
                    "per-stage caps must be >= 1");
  SPARSEDET_REQUIRE(options.gh >= options.g,
                    "the Head NEDR is the largest region; gh >= g");
  SPARSEDET_REQUIRE(
      options.node_reliability >= 0.0 && options.node_reliability <= 1.0,
      "node reliability must be in [0, 1]");
  const auto compute_core = [&]() -> MsSolveCore {
    const RegionDecomposition decomp = Decompose(params);
    const int ms = decomp.ms();
    const int m_periods = params.window_periods;
    const double s = params.FieldArea();
    const double pd = params.detect_prob;
    const int n = params.num_nodes;
    const double rel = options.node_reliability;

    // Stage pmfs. Head uses the full DR subareas AreaH(i); Body/Tail use
    // the crescent NEDR subareas AreaB(i) / AreaT(j, i). The ms + 2 stages
    // are independent, so they run under work stealing; each lands in its
    // own slot, which keeps the result identical for any thread count.
    MsSolveCore core;
    std::vector<Pmf> stages(static_cast<std::size_t>(ms) + 2);
    // Rough per-stage cost: each capped PMF is a convolution chain over
    // ~areas.size() regions with support O(cap) — calibrated against
    // BM_CappedRegionPmf (~2.5 us at paper sizes). Paper-sized solves stay
    // under the dispatch threshold and run serial; large (N, gh) scenarios
    // blow well past it and keep the work-stealing fan-out.
    ParallelOptions stage_opts;
    stage_opts.work_ns_hint =
        30 * static_cast<std::size_t>(ms + 1) *
        static_cast<std::size_t>(options.gh + 1) *
        static_cast<std::size_t>(options.gh + 1);
    ParallelFor(stages.size(), stage_opts, [&](std::size_t t) {
      if (t == 0) {
        obs::ObsTimer timer(obs::Phase::kMsHead);
        stages[0] =
            CappedRegionReportPmf(n, s, decomp.area_h(), pd, options.gh, rel);
      } else if (t == 1) {
        obs::ObsTimer timer(obs::Phase::kMsBody);
        stages[1] =
            CappedRegionReportPmf(n, s, decomp.area_b(), pd, options.g, rel);
      } else {
        obs::ObsTimer timer(obs::Phase::kMsTail);
        stages[t] = CappedRegionReportPmf(
            n, s, decomp.AreaTVector(static_cast<int>(t) - 1), pd, options.g,
            rel);
      }
    });
    core.head_pmf = std::move(stages[0]);
    core.body_pmf = std::move(stages[1]);
    core.tail_pmfs.reserve(static_cast<std::size_t>(ms));
    for (int j = 1; j <= ms; ++j) {
      core.tail_pmfs.push_back(std::move(stages[static_cast<std::size_t>(j) + 1]));
    }
    resilience::CancellationPoint();

    // Chain the stages: Result = u TH TB^(M-ms-1) prod_j TTj (Eq. 12).
    // The state space 0 .. M*Z is large enough that no transition can
    // overflow it (Head adds <= Z, each of the other M-1 stages adds
    // <= (ms+1)*g <= Z), so saturation never triggers; we still keep the
    // boundary behavior explicit.
    const std::size_t num_states =
        static_cast<std::size_t>(m_periods * (ms + 1) * options.gh + 1);
    std::vector<double> dist(num_states, 0.0);
    dist[0] = 1.0;  // u = [1 0 0 ... 0] (Eq. 11)

    {
      obs::ObsTimer timer(obs::Phase::kMsPropagate);
      if (options.use_transition_matrices) {
        const MarkovChain head(BuildIncrementTransitionMatrix(
            core.head_pmf, num_states, /*saturate_top=*/false));
        const MarkovChain body(BuildIncrementTransitionMatrix(
            core.body_pmf, num_states, /*saturate_top=*/false));
        dist = head.Propagate(dist);
        dist = body.PropagateSteps(dist, m_periods - ms - 1);
        for (const Pmf& tail : core.tail_pmfs) {
          const MarkovChain chain(BuildIncrementTransitionMatrix(
              tail, num_states, /*saturate_top=*/false));
          dist = chain.Propagate(dist);
        }
      } else {
        dist = PropagateIncrement(dist, core.head_pmf,
                                  /*saturate_top=*/false);
        dist = PropagateIncrementSteps(dist, core.body_pmf, m_periods - ms - 1,
                                       /*saturate_top=*/false);
        for (const Pmf& tail : core.tail_pmfs) {
          dist = PropagateIncrement(dist, tail, /*saturate_top=*/false);
        }
      }
    }
    core.report_distribution = Pmf(std::move(dist));
    return core;
  };

  // Everything up to the tail sum is independent of k/normalize, so it is
  // shared across the threshold sweep via the process-wide memo cache.
  // With the cache disabled (capacity 0) a lookup can never hit; skip the
  // key build and shard locking and compute directly.
  std::shared_ptr<const MsSolveCore> core;
  if (prob::MemoCache::Global().capacity() == 0) {
    core = std::make_shared<const MsSolveCore>(compute_core());
  } else {
    prob::MemoKey key("core/ms_solve_core");
    key.AddDouble(params.field_width)
        .AddDouble(params.field_height)
        .AddInt(params.num_nodes)
        .AddDouble(params.sensing_range)
        .AddDouble(params.detect_prob)
        .AddDouble(params.period_length)
        .AddDouble(params.target_speed)
        .AddInt(params.window_periods)
        .AddInt(options.gh)
        .AddInt(options.g)
        .AddDouble(options.node_reliability)
        .AddBool(options.use_transition_matrices);
    core = prob::MemoCache::Global().GetOrCompute<MsSolveCore>(
        key, compute_core, MsSolveCoreHeapBytes);
  }

  MsApproachResult result;
  // One tail stage per NEDR crescent, so the count recovers decomp.ms().
  result.ms = static_cast<int>(core->tail_pmfs.size());
  result.z = (result.ms + 1) * options.gh;
  result.num_states = params.window_periods * result.z + 1;
  result.head_pmf = core->head_pmf;
  result.body_pmf = core->body_pmf;
  result.tail_pmfs = core->tail_pmfs;
  result.report_distribution = core->report_distribution;
  result.total_mass = result.report_distribution.TotalMass();
  result.predicted_accuracy = MsPredictedAccuracy(params, options.gh,
                                                  options.g);

  const double tail_prob =
      result.report_distribution.TailSum(params.threshold_reports);
  result.detection_probability =
      options.normalize && result.total_mass > 0.0
          ? tail_prob / result.total_mass  // Eq. 13
          : tail_prob;
  return result;
}

double MsHeadStageAccuracy(const SystemParams& params, int gh) {
  params.Validate();
  return RegionCapAccuracy(params.num_nodes, params.FieldArea(),
                           params.DrArea(), gh);
}

double MsBodyStageAccuracy(const SystemParams& params, int g) {
  params.Validate();
  const double nedr = 2.0 * params.sensing_range * params.StepLength();
  return RegionCapAccuracy(params.num_nodes, params.FieldArea(), nedr, g);
}

double MsPredictedAccuracy(const SystemParams& params, int gh, int g) {
  const double xi_h = MsHeadStageAccuracy(params, gh);
  const double xi = MsBodyStageAccuracy(params, g);
  return xi_h * std::pow(xi, params.window_periods - 1);
}

MsRequiredCaps MsRequiredCapsFor(const SystemParams& params, double eta) {
  SPARSEDET_REQUIRE(eta > 0.0 && eta < 1.0, "eta must be in (0, 1)");
  params.Validate();
  // Per-stage requirement xi >= eta^(1/M) (the paper sets xi_h = xi).
  const double per_stage =
      std::pow(eta, 1.0 / static_cast<double>(params.window_periods));
  MsRequiredCaps caps;
  caps.gh = RequiredRegionCap(params.num_nodes, params.FieldArea(),
                              params.DrArea(), per_stage);
  const double nedr = 2.0 * params.sensing_range * params.StepLength();
  caps.g = RequiredRegionCap(params.num_nodes, params.FieldArea(), nedr,
                             per_stage);
  return caps;
}

double MsApproachCostModel(int ms, int gh, int g, int window_periods) {
  SPARSEDET_REQUIRE(ms >= 1 && gh >= 0 && g >= 0 && window_periods >= 1,
                    "invalid cost-model arguments");
  const double head = std::pow(static_cast<double>(ms), 2.0 * gh);
  const double rest = static_cast<double>(window_periods - 1) *
                      std::pow(static_cast<double>(ms), 2.0 * g);
  return head + rest;
}

}  // namespace sparsedet
