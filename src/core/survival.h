// Time-varying effective population: sensor-survival models and the
// epoch-wise degrading analysis.
//
// The paper fixes a population of N healthy sensors for the whole
// deployment; a long-running deployment does not get that luxury — nodes
// exhaust batteries or are destroyed, and reports are lost in transit.
// This header restates the analysis for a population that *decays*: a
// per-node lifetime distribution (exponential or Weibull, the two standard
// hardware-mortality models) induces a survival probability S(t), and each
// analysis epoch evaluates the M-S solver against the thinned population.
//
// Two equivalences make this exact rather than heuristic:
//   * random per-node survival with probability s is a binomial thinning
//     of the report counts — precisely what MsApproachOptions::
//     node_reliability already implements (region_pmf.cc ThinnedBy), so a
//     degraded epoch reuses the solver (and its memo-cache entries)
//     unchanged;
//   * i.i.d. report-transport loss with probability l scales the
//     per-period report probability to Pd * (1 - l), the same family of
//     solves as a detect-probability sweep.
#pragma once

#include <vector>

#include "core/ms_approach.h"
#include "core/params.h"

namespace sparsedet {

enum class FailureKind { kExponential, kWeibull };

// "exponential" / "weibull".
const char* FailureKindName(FailureKind kind);

// Per-node mortality plus report transport loss. Both lifetime families
// are parameterized by the *mean* lifetime so operators state one number;
// the Weibull scale is derived as mean / Gamma(1 + 1/shape). shape > 1
// models wear-out (deaths cluster around the mean), shape < 1 infant
// mortality, shape == 1 reduces exactly to the exponential.
struct SensorFailureModel {
  FailureKind kind = FailureKind::kExponential;
  double mean_lifetime_s = 0.0;  // 0 = immortal population (paper model)
  double weibull_shape = 1.0;
  double report_loss_prob = 0.0;

  // Throws InvalidArgument unless mean_lifetime_s >= 0, weibull_shape > 0
  // and report_loss_prob in [0, 1).
  void Validate() const;

  // S(t) = P[node still alive at time t]. 1.0 for the immortal model.
  double SurvivalAt(double t_seconds) const;

  // Inverse-CDF lifetime sample from a uniform draw u in [0, 1) —
  // exponential: -mean * ln(1-u); Weibull: scale * (-ln(1-u))^(1/shape).
  // The sim's seeded failure trajectories flow through this so analysis
  // and simulation share one definition of the failure process.
  double LifetimeFromUniform(double u) const;

  // Per-period report probability after transport loss: pd * (1 - loss).
  double EffectiveDetectProb(double pd) const;
};

// One epoch of the degrading analysis.
struct DegradingEpoch {
  int epoch = 0;
  double time_s = 0.0;         // epoch start time
  double survival = 1.0;       // S(time_s)
  double expected_live = 0.0;  // N * S(time_s)
  double detection_probability = 0.0;  // M-S solve on the thinned population
  double system_fa = 0.0;  // count-only bound at the thinned report rate
};

// Propagates the survival process through the M-S solver epoch by epoch:
// epoch e starts at t = e * epoch_periods * period_length, and its solve
// is the scenario with node_reliability scaled by S(t) and detect_prob by
// (1 - report_loss). `pf` (per-node per-period false alarm probability)
// feeds the count-only system-FA bound, thinned the same way. Consecutive
// epochs differ only in the reliability scalar, so region tables and solve
// cores shared across epochs come out of the process-wide memo cache.
// Requires horizon_epochs >= 1 and epoch_periods >= 1.
std::vector<DegradingEpoch> AnalyzeDegrading(const SystemParams& params,
                                             const MsApproachOptions& options,
                                             const SensorFailureModel& model,
                                             int horizon_epochs,
                                             int epoch_periods,
                                             double pf = 0.0);

}  // namespace sparsedet
