// The batch-engine request protocol.
//
// One request per JSONL line:
//
//   {"id": "a1", "op": "analyze",
//    "params":  {"nodes": 240, "speed": 10, ...},        // scenario
//    "options": {"gh": 3, "g": 3, "normalize": true, "reliability": 1}}
//
// Ops: analyze | simulate | sweep | latency | fa. Op-specific sections:
//   "sim":   {"trials", "seed", "pf", "reliability", "h", "motion",
//             "geometry"}                                (op = simulate)
//   "sweep": {"param", "from", "to", "step"}             (op = sweep)
//   "fa":    {"pf", "max_k"}                             (op = fa)
//
// Parsing is strict: unknown keys, wrong types and out-of-domain scenario
// parameters are all rejected with a message naming the offending key, so
// a typo never silently evaluates the default scenario (mirroring the
// FlagParser contract on the CLI side).
//
// A request expands into one or more *work units* — the engine's unit of
// evaluation, deduplication and caching. analyze/simulate/latency/fa are
// one unit each; a sweep becomes one unit per grid point, so overlapping
// sweeps share point evaluations through the cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/ms_approach.h"
#include "core/params.h"

namespace sparsedet::engine {

enum class RequestOp { kAnalyze, kSimulate, kSweep, kLatency, kFa };

// Returns "analyze", "simulate", ...
std::string OpName(RequestOp op);

struct SimulateSpec {
  int trials = 10000;
  std::uint64_t seed = 20080617;
  double false_alarm_prob = 0.0;
  double node_reliability = 1.0;
  int distinct_nodes = 1;  // "h": reports must come from >= h distinct nodes
  std::string motion = "straight";     // straight | random-walk
  std::string geometry = "toroidal";   // toroidal | planar
  double node_death_prob = 0.0;   // "death": per-period node death process
  double report_loss_prob = 0.0;  // "loss": i.i.d. report transport loss
};

struct SweepSpec {
  std::string param = "nodes";  // nodes | speed | k | window | rs | pd
  double from = 60.0;
  double to = 240.0;
  double step = 20.0;
};

struct FaSpec {
  double false_alarm_prob = 1e-3;
  int max_k = 8;
};

struct Request {
  JsonValue id;  // echoed verbatim in the response (string or number)
  RequestOp op = RequestOp::kAnalyze;
  SystemParams params;
  MsApproachOptions options;
  SimulateSpec sim;
  SweepSpec sweep;
  FaSpec fa;
  // Admission-control identity for the TCP front-end's per-tenant quotas;
  // empty = the default tenant. Not part of any cache key — it routes the
  // request, it does not change the result.
  std::string tenant;
  // Wall-clock budget for the whole request; 0 = none. Not part of any
  // cache key — it bounds the computation, it does not change the result.
  std::int64_t deadline_ms = 0;
  // On deadline expiry, fall back to the cheap closed forms (analyze only)
  // instead of failing; the response is tagged "degraded": true.
  bool degrade = false;
};

// Parses and validates one request object. `default_id` is used when the
// request carries no "id" field (the engine passes the 1-based input line
// number). Throws InvalidArgument with a key-specific message.
Request ParseRequest(const JsonValue& json, int default_id);

// The "params" / "options" section parsers, exported so other request
// schemas embedding a scenario (the optimizer's spec) share one strict
// parse instead of drifting. Both throw InvalidArgument naming the
// offending key.
SystemParams ParseParamsSection(const JsonValue& obj);
MsApproachOptions ParseOptionsSection(const JsonValue& obj);

// A single cacheable evaluation. For op == kSweep this is one grid point
// (params carry the applied sweep value); other ops evaluate whole.
struct WorkUnit {
  RequestOp op = RequestOp::kAnalyze;
  bool sweep_point = false;  // true: evaluate detection probability only
  SystemParams params;
  MsApproachOptions options;
  SimulateSpec sim;
  FaSpec fa;
};

// The sweep grid: from, from + step, ... up to `to` (inclusive, with the
// same epsilon the CLI sweep uses).
std::vector<double> SweepValues(const SweepSpec& spec);

// Expands a request into its work units (>= 1, in deterministic order).
std::vector<WorkUnit> ExpandRequest(const Request& request);

// Canonical cache key: a stable string over every parameter the unit's
// result depends on, with shortest-round-trip number formatting so 10 and
// 10.0 canonicalize identically.
std::string CanonicalKey(const WorkUnit& unit);

// Evaluates one unit against core/sim. Pure: no shared state, safe to call
// concurrently from pool workers. Throws sparsedet::Error on invalid
// scenarios (the engine converts that into a per-request error line).
JsonValue EvaluateUnit(const WorkUnit& unit);

// Reassembles the response body from the unit results, in unit order.
JsonValue ComposeResponse(const Request& request,
                          const std::vector<const JsonValue*>& unit_results);

// The graceful-degradation fallback for an analyze request whose deadline
// expired: the M = 1 closed form (Eqs. 1-2) plus a reduced-G S-approach
// (G = 1) with its achieved accuracy eta_S. Cheap by construction — no
// M-S chain propagation, one convolution at most.
JsonValue DegradedAnalyzeResult(const SystemParams& params);

}  // namespace sparsedet::engine
