// Batch evaluation engine: JSONL requests in, JSONL results out.
//
// The engine reads one JSON request per line (see request.h for the
// schema), expands each into cacheable work units, deduplicates units
// against a bounded LRU result cache *and* against identical units already
// in flight, evaluates the remainder on a persistent worker pool, and
// emits exactly one JSON response line per input line.
//
// Determinism contract (ordered mode, the default):
//   * responses appear in input order;
//   * every cache lookup and insertion happens on the coordinator thread
//     in input order, so the hit/miss/eviction counters — and the entire
//     output stream including the final stats line — are byte-identical
//     across worker-thread counts.
// Unordered mode trades that for latency: responses are emitted as soon as
// they complete (each tagged with its request id), and the stats counters
// remain deterministic but line order does not.
//
// Per-request error isolation: a malformed line or an invalid scenario
// yields one {"id": ..., "error": ...} line; the engine itself never
// throws for bad input and keeps processing the stream.
//
// Observability: every engine owns an obs::MetricsRegistry. All stats
// counters live in it (incremented on the coordinator, so they stay
// deterministic), the four engine phases (queue-wait / cache-lookup /
// solve / serialize) and the solver stages record latency histograms into
// it, and each request carries an obs::RequestSpan. Spans are emitted only
// under options.trace / options.trace_file; serve mode answers a
// {"cmd":"stats"} line in-stream with the full registry snapshot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.h"
#include "engine/cache.h"
#include "engine/request.h"
#include "engine/worker_pool.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/tracez.h"
#include "resilience/cancel.h"
#include "resilience/fault_injection.h"
#include "resilience/retry.h"

namespace sparsedet::engine {

struct EngineOptions {
  std::size_t threads = 0;  // worker threads; 0 = hardware concurrency
  std::size_t cache_capacity = 4096;  // LRU entries; 0 disables the cache
  // Intra-solve ParallelFor width per work unit ("--solver-threads").
  // Defaults to 1: the pool already saturates the machine with one unit
  // per worker, so nested parallelism only helps when requests are scarce.
  // 0 = hardware concurrency. Installed process-wide for the engine's
  // lifetime and restored on destruction.
  std::size_t solver_threads = 1;
  // Capacity of the process-wide solver memo cache in entries
  // ("--memo-cache-entries"); 0 disables memoization. Installed at
  // construction, restored on destruction; the cached values themselves
  // persist across engines (they are keyed, immutable, and request-free).
  std::size_t memo_cache_entries = 4096;
  // Cross-request batch dispatch. Fresh work units whose cost proxy falls
  // below group_cost_threshold are packed into a few pool tasks instead of
  // one task per unit: a paper-sized analytical solve runs in ~10 us, so
  // per-task dispatch (queue mutex, condvar wakeup, ~us each) would
  // otherwise dominate and a multi-thread pool could lose to a serial
  // loop. Heavy units keep a task to themselves for latency. Results and
  // every output byte are unchanged either way — grouping only re-buckets
  // which worker runs which unit. Grouping is bypassed while the watchdog
  // is armed: the watchdog cancels whole pool tasks, and one stuck unit
  // must not take its group-mates down with it.
  bool group_dispatch = true;
  // Units below this rough elementary-operation count are groupable
  // (~one millisecond of solve work at the default).
  std::size_t group_cost_threshold = std::size_t{1} << 20;
  bool unordered = false;  // emit completions immediately, tagged by id
  bool trace = false;      // attach a "trace" span object to response lines
  std::string trace_file;  // JSONL span log path; empty = no span file

  // Resilience. The defaults either disable a feature or bound only
  // pathological inputs, so output for well-formed streams is unchanged.
  std::size_t max_queue = 0;  // reject requests whose units would push the
                              // pool backlog past this; 0 = unbounded
  std::size_t max_line_bytes = 1 << 20;  // reject longer input lines; 0 = off
  int max_json_depth = 64;  // nesting cap for request lines
  resilience::RetryPolicy retry;  // transient-fault retry schedule
  std::int64_t watchdog_stuck_ms = 0;  // cancel units stuck longer; 0 = off
  std::string fault_config;  // FaultInjector JSON (testing); "" = disabled

  // SLO objectives ("--slo-availability" / "--slo-p99-ms"). Disabled by
  // default; when enabled the tracker's gauges join the registry, so the
  // default-registry snapshot — and the determinism contract around it —
  // is untouched for existing invocations.
  obs::SloOptions slo;
  // Capacity of the completed-span ring behind /tracez.
  std::size_t trace_ring_capacity = obs::TraceRing::kDefaultCapacity;
};

// Deterministic counter snapshot; the shape of the final stats line.
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t units = 0;      // work units after sweep expansion
  std::uint64_t coalesced = 0;  // units joined to an identical in-flight unit

  // {"stats": {..., "cache": {...}}} — the final line batch mode emits.
  JsonValue ToJson(const LruResultCache& cache) const;
};

// Handles into the engine's registry; resolved once at construction so the
// hot path never takes the registry mutex.
struct EngineMetrics {
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  obs::Counter* requests;
  obs::Counter* ok;
  obs::Counter* errors;
  obs::Counter* units;
  obs::Counter* coalesced;
  obs::Gauge* queue_depth;
  obs::Histogram* queue_wait;
  obs::Histogram* cache_lookup;
  obs::Histogram* solve;
  obs::Histogram* serialize;
  // Resilience events (all zero when the features are off).
  obs::Counter* deadline_exceeded;
  obs::Counter* degraded;
  obs::Counter* cancelled_units;
  obs::Counter* retries;
  obs::Counter* worker_aborts;
  obs::Counter* worker_respawns;
  obs::Counter* watchdog_cancels;
  obs::Counter* overloaded;
  obs::Counter* rejected_lines;
  obs::Counter* injected_faults;
  // Solver memo-cache mirrors, refreshed at snapshot time. Gauges (not
  // counters) because the underlying cache is process-global: workers from
  // any engine, or none, may have moved it since the last snapshot. They
  // are deliberately absent from the batch stats line — hit/miss totals
  // depend on worker interleaving, and that line must stay byte-identical
  // across thread counts.
  obs::Gauge* memo_hits;
  obs::Gauge* memo_misses;
  obs::Gauge* memo_entries;
  obs::Gauge* memo_bytes;
  obs::Gauge* memo_evictions;
  // Disk-snapshot provenance (serve-tcp --memo-snapshot): entries/bytes
  // restored at startup and the snapshot's age, all zero when none loaded.
  obs::Gauge* memo_restored;
  obs::Gauge* memo_snapshot_entries;
  obs::Gauge* memo_snapshot_bytes;
  obs::Gauge* memo_snapshot_age_ms;
};

class BatchEngine {
 public:
  explicit BatchEngine(const EngineOptions& options);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  // Drains `in`: plans every line, then emits every response. The cache
  // and cumulative stats persist across calls, so a second pass over the
  // same input reports hits instead of recomputing.
  void RunBatch(std::istream& in, std::ostream& out);

  // Long-running loop: one request line in, one response line out
  // (flushed), until EOF. Sweeps still fan out across the pool. A
  // {"cmd":"stats"} line is answered with StatsSnapshotJson() instead of
  // being treated as a request.
  void Serve(std::istream& in, std::ostream& out);

  // Appends the {"stats": ...} line to `out`.
  void WriteStatsLine(std::ostream& out) const;

  EngineStats stats() const;
  const LruResultCache& cache() const { return cache_; }

  // Full registry snapshot (counters, gauges, phase histograms).
  obs::RegistrySnapshot MetricsSnapshot() const;
  // {"stats": {...}, "metrics": {...}} — the {"cmd":"stats"} response.
  JsonValue StatsSnapshotJson() const;

  // The engine's registry, for front-ends that register their own
  // counters (connections, tenants, drain) alongside the engine's.
  obs::MetricsRegistry& registry() { return registry_; }

  // The completed-span ring behind the admin plane's /tracez. Always
  // recording (it never touches the output stream or the registry).
  const obs::TraceRing& trace_ring() const { return trace_ring_; }
  // The SLO tracker, or null unless options.slo enabled one.
  obs::SloTracker* slo() { return slo_.get(); }

  // Called at the end of every rendered request (the emitter thread in
  // async mode, the coordinator in the sync paths) with the request's
  // flattened span. Install before traffic starts; the hook must not
  // block or re-enter the engine. Front-ends use it to feed their own
  // histograms (server_queue_wait_us / server_solve_us).
  using CompletionHook = std::function<void(const obs::CompletedSpan&)>;
  void SetCompletionHook(CompletionHook hook) { completion_hook_ = std::move(hook); }

  // Effective engine configuration as JSON, for /statusz.
  JsonValue OptionsJson() const;

  // ---- Out-of-band submission (the TCP front-end) ----
  //
  // The async API decouples planning from emission so many connections can
  // feed one engine concurrently. SubmitLineAsync plans the line
  // immediately (on the caller's thread, serialized by an internal mutex)
  // and enqueues it on a global FIFO; a dedicated emitter thread renders
  // responses in FIFO order — which preserves both the per-submitter
  // response order and the coordinator-thread cache-op ordering the
  // determinism contract requires — and hands each rendered line (no
  // trailing newline) to its callback. Callbacks run on the emitter
  // thread and must not block or re-enter the engine.
  //
  // `parent` (optional) chains under every token the request creates, so
  // cancelling it — e.g. on client disconnect — stops the request's units
  // at their next cancellation point. Command lines ({"cmd":...}) are
  // answered in FIFO position, reflecting all earlier submissions.
  using ResponseCallback = std::function<void(std::string response)>;
  void StartAsync();
  void SubmitLineAsync(const std::string& line, int line_number,
                       std::shared_ptr<const resilience::CancelToken> parent,
                       bool oversized, ResponseCallback done);
  // Blocks until every submitted line has been rendered and called back.
  void DrainAsync();
  // DrainAsync + stop the emitter thread. StartAsync may be called again.
  void StopAsync();

  // Streaming command lines ({"cmd": ...}); true when handled, with the
  // response (no trailing newline) in `*response`.
  bool HandleCommandLine(const std::string& line, std::string* response);

  // Front-end extension point for additional {"cmd": ...} command types
  // (the optimizer's "optimize"): the hook receives the parsed command
  // object and returns the response object. Hooks run synchronously on the
  // thread that called HandleCommandLine and may take as long as they
  // need — the stdio serve loop is idle between requests; the TCP
  // front-end routes long-running commands off the event loop itself.
  // Install before traffic starts; "stats" is not overridable.
  using CommandHook = std::function<JsonValue(const JsonValue& command)>;
  void RegisterCommand(const std::string& name, CommandHook hook);

 private:
  struct PendingUnit;
  struct PendingRequest;
  struct AsyncItem {
    std::unique_ptr<PendingRequest> request;  // null: a command line
    std::string command_line;
    ResponseCallback done;
  };

  // Parses + plans one input line into a pending request, submitting any
  // newly needed evaluations to the pool. Callers hold plan_mutex_ (the
  // sync paths are single-threaded and satisfy that trivially).
  std::unique_ptr<PendingRequest> PlanLine(
      const std::string& line, int line_number,
      std::shared_ptr<const resilience::CancelToken> parent = nullptr);
  // A pending request that never parses: oversized line, overload.
  std::unique_ptr<PendingRequest> RejectedLine(int line_number,
                                               std::string message,
                                               std::string code);
  // Blocks until the request's units are done, inserts newly computed
  // results into the cache, and returns the rendered response line (no
  // trailing newline).
  std::string RenderRequest(PendingRequest& request);
  void EmitRequest(PendingRequest& request, std::ostream& out);
  void ProcessStream(std::istream& in, std::ostream& out, bool streaming);
  // Streaming-mode command lines ({"cmd": ...}); true when handled.
  bool MaybeHandleCommand(const std::string& line, std::ostream& out);
  void EmitterLoop();
  // Hands one evaluation attempt for `unit` to the pool. Attempt 1 comes
  // from the coordinator; retries resubmit from the failing worker.
  void SubmitUnit(const std::shared_ptr<PendingUnit>& slot, WorkUnit unit,
                  int attempt);
  // Dispatches the freshly planned units of one request: heavy units one
  // pool task each, small units grouped into contiguous chunks (see
  // EngineOptions::group_dispatch). Clears `*fresh`.
  void FlushSubmits(
      std::vector<std::pair<std::shared_ptr<PendingUnit>, WorkUnit>>* fresh);
  // The worker-side body of one attempt: fault injection, cancellation
  // scope, evaluation, retry-or-publish.
  void RunUnit(const std::shared_ptr<PendingUnit>& slot,
               const std::shared_ptr<resilience::CancelToken>& token,
               WorkUnit unit, int attempt, std::int64_t submitted_ns);

  EngineOptions options_;
  // Process-wide settings displaced by this engine, restored in ~BatchEngine.
  std::size_t prev_solver_threads_ = 0;
  std::size_t prev_memo_capacity_ = 0;
  // The registry outlives the cache (counter handles) and the pool
  // (workers record into phase histograms until joined) — declaration
  // order is load-bearing here. The injector sits between cache and pool
  // for the same reason: workers call into it until the pool is joined.
  obs::MetricsRegistry registry_;
  EngineMetrics metrics_;
  LruResultCache cache_;
  std::unique_ptr<resilience::FaultInjector> injector_;
  // Completion signalling shared by all units. Declared before the pool:
  // a worker abandoned by a deadline may broadcast on done_cv_ right up
  // until the pool's destructor joins it, so the condvar must die later.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  WorkerPool pool_;
  std::ofstream trace_out_;
  std::uint64_t next_trace_id_ = 1;
  obs::TraceRing trace_ring_;
  std::unique_ptr<obs::SloTracker> slo_;  // null unless options.slo enabled
  CompletionHook completion_hook_;        // set before traffic, or never
  std::map<std::string, CommandHook> command_hooks_;  // sorted: error text

  // Units planned but not yet handed to emission, keyed by canonical key;
  // identical units join the same slot instead of recomputing.
  std::unordered_map<std::string, std::shared_ptr<PendingUnit>> in_flight_;

  // Serializes the coordinator-side state (PlanLine, the emitter's cache
  // publication, in_flight_, next_trace_id_, stats rendering) when the
  // async API is in use. The sync paths run single-threaded and pay one
  // uncontended lock per request.
  mutable std::mutex plan_mutex_;

  // Async emission: a global FIFO drained by one emitter thread.
  std::mutex async_mutex_;
  std::condition_variable async_cv_;
  std::deque<AsyncItem> async_queue_;
  std::size_t async_pending_ = 0;  // queued + currently rendering
  bool async_stop_ = false;
  std::thread emitter_;
};

}  // namespace sparsedet::engine
