// Batch evaluation engine: JSONL requests in, JSONL results out.
//
// The engine reads one JSON request per line (see request.h for the
// schema), expands each into cacheable work units, deduplicates units
// against a bounded LRU result cache *and* against identical units already
// in flight, evaluates the remainder on a persistent worker pool, and
// emits exactly one JSON response line per input line.
//
// Determinism contract (ordered mode, the default):
//   * responses appear in input order;
//   * every cache lookup and insertion happens on the coordinator thread
//     in input order, so the hit/miss/eviction counters — and the entire
//     output stream including the final stats line — are byte-identical
//     across worker-thread counts.
// Unordered mode trades that for latency: responses are emitted as soon as
// they complete (each tagged with its request id), and the stats counters
// remain deterministic but line order does not.
//
// Per-request error isolation: a malformed line or an invalid scenario
// yields one {"id": ..., "error": ...} line; the engine itself never
// throws for bad input and keeps processing the stream.
//
// Observability: every engine owns an obs::MetricsRegistry. All stats
// counters live in it (incremented on the coordinator, so they stay
// deterministic), the four engine phases (queue-wait / cache-lookup /
// solve / serialize) and the solver stages record latency histograms into
// it, and each request carries an obs::RequestSpan. Spans are emitted only
// under options.trace / options.trace_file; serve mode answers a
// {"cmd":"stats"} line in-stream with the full registry snapshot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>

#include "common/json.h"
#include "engine/cache.h"
#include "engine/worker_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace sparsedet::engine {

struct EngineOptions {
  std::size_t threads = 0;  // worker threads; 0 = hardware concurrency
  std::size_t cache_capacity = 4096;  // LRU entries; 0 disables the cache
  bool unordered = false;  // emit completions immediately, tagged by id
  bool trace = false;      // attach a "trace" span object to response lines
  std::string trace_file;  // JSONL span log path; empty = no span file
};

// Deterministic counter snapshot; the shape of the final stats line.
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t units = 0;      // work units after sweep expansion
  std::uint64_t coalesced = 0;  // units joined to an identical in-flight unit

  // {"stats": {..., "cache": {...}}} — the final line batch mode emits.
  JsonValue ToJson(const LruResultCache& cache) const;
};

// Handles into the engine's registry; resolved once at construction so the
// hot path never takes the registry mutex.
struct EngineMetrics {
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  obs::Counter* requests;
  obs::Counter* ok;
  obs::Counter* errors;
  obs::Counter* units;
  obs::Counter* coalesced;
  obs::Gauge* queue_depth;
  obs::Histogram* queue_wait;
  obs::Histogram* cache_lookup;
  obs::Histogram* solve;
  obs::Histogram* serialize;
};

class BatchEngine {
 public:
  explicit BatchEngine(const EngineOptions& options);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  // Drains `in`: plans every line, then emits every response. The cache
  // and cumulative stats persist across calls, so a second pass over the
  // same input reports hits instead of recomputing.
  void RunBatch(std::istream& in, std::ostream& out);

  // Long-running loop: one request line in, one response line out
  // (flushed), until EOF. Sweeps still fan out across the pool. A
  // {"cmd":"stats"} line is answered with StatsSnapshotJson() instead of
  // being treated as a request.
  void Serve(std::istream& in, std::ostream& out);

  // Appends the {"stats": ...} line to `out`.
  void WriteStatsLine(std::ostream& out) const;

  EngineStats stats() const;
  const LruResultCache& cache() const { return cache_; }

  // Full registry snapshot (counters, gauges, phase histograms).
  obs::RegistrySnapshot MetricsSnapshot() const;
  // {"stats": {...}, "metrics": {...}} — the {"cmd":"stats"} response.
  JsonValue StatsSnapshotJson() const;

 private:
  struct PendingUnit;
  struct PendingRequest;

  // Parses + plans one input line into a pending request, submitting any
  // newly needed evaluations to the pool. Coordinator thread only.
  std::unique_ptr<PendingRequest> PlanLine(const std::string& line,
                                           int line_number);
  // Blocks until the request's units are done, then writes its response
  // line and inserts newly computed results into the cache.
  void EmitRequest(PendingRequest& request, std::ostream& out);
  void ProcessStream(std::istream& in, std::ostream& out, bool streaming);
  // Streaming-mode command lines ({"cmd": ...}); true when handled.
  bool MaybeHandleCommand(const std::string& line, std::ostream& out);

  EngineOptions options_;
  // The registry outlives the cache (counter handles) and the pool
  // (workers record into phase histograms until joined) — declaration
  // order is load-bearing here.
  obs::MetricsRegistry registry_;
  EngineMetrics metrics_;
  LruResultCache cache_;
  WorkerPool pool_;
  std::ofstream trace_out_;
  std::uint64_t next_trace_id_ = 1;

  // Units planned but not yet handed to emission, keyed by canonical key;
  // identical units join the same slot instead of recomputing.
  std::unordered_map<std::string, std::shared_ptr<PendingUnit>> in_flight_;

  // Completion signalling shared by all units.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

}  // namespace sparsedet::engine
