// Bounded LRU cache for evaluated scenario results.
//
// The batch engine canonicalizes every work unit (one analyze / latency /
// simulate request, or one sweep point) into a key string; identical units
// across requests, passes and overlapping sweeps then share one evaluation.
// The cache is deliberately NOT thread-safe: the engine performs every
// lookup and insertion on its coordinator thread, in input order, so hit /
// miss / eviction counters — and therefore the emitted stats line — are
// byte-identical regardless of the worker-thread count.
//
// Counters are registry-backed when a MetricsRegistry is supplied
// (engine_cache_hits_total / _misses_total / _evictions_total plus the
// engine_cache_size gauge), so a {"cmd":"stats"} snapshot sees them
// mid-stream; a standalone cache owns private equivalents.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/json.h"
#include "obs/metrics.h"

namespace sparsedet::engine {

class LruResultCache {
 public:
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  // capacity == 0 disables caching (every Get misses, Put is a no-op).
  explicit LruResultCache(std::size_t capacity);
  // Same, but counters live in `registry` under the engine_cache_* names.
  LruResultCache(std::size_t capacity, obs::MetricsRegistry& registry);

  // Returns the cached value and marks the entry most-recently-used, or
  // nullptr on a miss. Updates the hit/miss counters.
  std::shared_ptr<const JsonValue> Get(const std::string& key);

  // Inserts (or refreshes) an entry, evicting least-recently-used entries
  // until the size bound holds. Requires value != nullptr.
  void Put(const std::string& key, std::shared_ptr<const JsonValue> value);

  Counters counters() const;
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const JsonValue>>;

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;

  // Owned fallback counters for registry-less construction.
  struct OwnedCounters {
    obs::Counter hits, misses, evictions;
    obs::Gauge size;
  };
  std::unique_ptr<OwnedCounters> owned_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Gauge* size_gauge_;
};

}  // namespace sparsedet::engine
