#include "engine/worker_pool.h"

#include <utility>

#include "common/parallel.h"

namespace sparsedet::engine {

WorkerPool::WorkerPool(std::size_t threads, obs::Gauge* queue_depth_gauge)
    : queue_depth_gauge_(queue_depth_gauge) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

std::size_t WorkerPool::QueueDepth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size();
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
      }
      ++active_tasks_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace sparsedet::engine
