#include "engine/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/parallel.h"
#include "obs/timer.h"
#include "resilience/fault_injection.h"

namespace sparsedet::engine {

WorkerPool::WorkerPool(const WorkerPoolOptions& options)
    : queue_depth_gauge_(options.queue_depth_gauge),
      respawns_counter_(options.respawns_counter),
      watchdog_cancels_counter_(options.watchdog_cancels_counter),
      stuck_after_ms_(options.stuck_after_ms) {
  std::size_t threads = options.threads;
  if (threads == 0) threads = DefaultThreadCount();
  active_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

WorkerPool::WorkerPool(std::size_t threads, obs::Gauge* queue_depth_gauge)
    : WorkerPool([&] {
        WorkerPoolOptions options;
        options.threads = threads;
        options.queue_depth_gauge = queue_depth_gauge;
        return options;
      }()) {}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  watchdog_wakeup_.notify_all();
  // The watchdog is joined first: it is the only other toucher of
  // workers_, so the join loop below owns the vector outright.
  if (watchdog_.joinable()) watchdog_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // If the last worker crashed after the watchdog exited, its queued work
  // (e.g. a retry it resubmitted on the way down) has no thread left; run
  // the remainder inline so the drain guarantee holds.
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task.fn();
    } catch (const resilience::WorkerAbort&) {
    }
  }
}

void WorkerPool::Submit(std::function<void()> task,
                        std::shared_ptr<resilience::CancelToken> token) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(Task{std::move(task), std::move(token)});
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

std::size_t WorkerPool::QueueDepth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t WorkerPool::respawn_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return respawns_;
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

void WorkerPool::WorkerLoop(std::size_t index) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<std::int64_t>(queue_.size()));
      }
      ++active_tasks_;
      active_[index] =
          ActiveSlot{task.token, obs::NowNanos(), /*busy=*/true};
    }
    bool aborted = false;
    try {
      task.fn();
    } catch (const resilience::WorkerAbort&) {
      aborted = true;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      active_[index] = ActiveSlot{};
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) all_idle_.notify_all();
      if (aborted) dead_workers_.push_back(index);
    }
    if (aborted) {
      // This thread is "crashed": tell the watchdog to respawn the slot
      // and exit without touching the queue again.
      watchdog_wakeup_.notify_all();
      return;
    }
  }
}

void WorkerPool::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stuck_after_ms_ > 0) {
      // Poll: stuck-task detection needs periodic clock checks even when
      // nothing notifies.
      watchdog_wakeup_.wait_for(
          lock, std::chrono::milliseconds(
                    std::max<std::int64_t>(5, stuck_after_ms_ / 4)));
    } else {
      watchdog_wakeup_.wait(lock, [this] {
        return shutting_down_ || !dead_workers_.empty();
      });
    }

    while (!dead_workers_.empty()) {
      const std::size_t index = dead_workers_.back();
      dead_workers_.pop_back();
      std::thread crashed = std::move(workers_[index]);
      lock.unlock();
      // The crashed thread is on its way out of WorkerLoop and never
      // re-takes the mutex, so this join is prompt.
      if (crashed.joinable()) crashed.join();
      std::thread fresh([this, index] { WorkerLoop(index); });
      lock.lock();
      workers_[index] = std::move(fresh);
      ++respawns_;
      if (respawns_counter_ != nullptr) respawns_counter_->Inc();
    }

    if (stuck_after_ms_ > 0 && !shutting_down_) {
      const std::int64_t now = obs::NowNanos();
      const std::int64_t limit_ns = stuck_after_ms_ * 1'000'000;
      for (ActiveSlot& slot : active_) {
        if (slot.busy && slot.token != nullptr &&
            now - slot.start_ns > limit_ns && !slot.token->IsCancelled()) {
          slot.token->Cancel(resilience::CancelReason::kWatchdog);
          if (watchdog_cancels_counter_ != nullptr) {
            watchdog_cancels_counter_->Inc();
          }
        }
      }
    }

    if (shutting_down_ && dead_workers_.empty()) return;
  }
}

}  // namespace sparsedet::engine
