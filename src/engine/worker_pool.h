// Persistent worker pool with a shared task queue, plus a watchdog.
//
// Unlike ParallelFor (which spawns one thread per call and partitions a
// fixed index range), the pool keeps its workers alive for the engine's
// lifetime and feeds them independent tasks as they arrive — the right
// shape for a stream of heterogeneous requests where one expensive
// simulate must not serialize a thousand cheap analyzes behind it.
//
// Tasks must not throw, with one sanctioned exception: a task may throw
// resilience::WorkerAbort to simulate (or report) a crashed worker. The
// worker thread running it dies; the watchdog thread joins the corpse and
// respawns a fresh worker into the same slot, so pool capacity recovers
// without coordinator involvement. Any other escaping exception keeps its
// std::terminate behavior — that is a bug, not a fault to absorb.
//
// The watchdog also (optionally) polices stuck tasks: when
// `stuck_after_ms > 0`, any task that has been running longer than that
// and was submitted with a CancelToken gets the token cancelled with
// reason kWatchdog. Cancellation stays cooperative — the watchdog never
// kills a thread that is making progress, it only raises the flag the
// solvers' CancellationPoint() calls observe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "resilience/cancel.h"

namespace sparsedet::engine {

struct WorkerPoolOptions {
  std::size_t threads = 0;  // 0 picks DefaultThreadCount()
  // When given, kept equal to the number of queued (not yet started)
  // tasks, so a stats snapshot sees backlog in real time.
  obs::Gauge* queue_depth_gauge = nullptr;
  obs::Counter* respawns_counter = nullptr;          // watchdog respawns
  obs::Counter* watchdog_cancels_counter = nullptr;  // stuck-task cancels
  // Cancel the token of any task running longer than this; 0 disables
  // stuck-task detection (crash respawn is always on).
  std::int64_t stuck_after_ms = 0;
};

class WorkerPool {
 public:
  explicit WorkerPool(const WorkerPoolOptions& options);
  // Back-compat shorthand for a pool with only a queue-depth gauge.
  explicit WorkerPool(std::size_t threads,
                      obs::Gauge* queue_depth_gauge = nullptr);
  // Drains the queue, then joins the watchdog and every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues a task; a worker picks it up as soon as one is free. The
  // optional token associates the task with a cancellation target the
  // watchdog may cancel if the task gets stuck.
  void Submit(std::function<void()> task,
              std::shared_ptr<resilience::CancelToken> token = nullptr);

  // Blocks until every submitted task has finished.
  void Wait();

  std::size_t thread_count() const { return workers_.size(); }

  // Tasks submitted but not yet picked up by a worker.
  std::size_t QueueDepth() const;

  // Workers respawned after a WorkerAbort, over the pool's lifetime.
  std::uint64_t respawn_count() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::shared_ptr<resilience::CancelToken> token;
  };
  struct ActiveSlot {
    std::shared_ptr<resilience::CancelToken> token;
    std::int64_t start_ns = 0;
    bool busy = false;
  };

  void WorkerLoop(std::size_t index);
  void WatchdogLoop();

  obs::Gauge* queue_depth_gauge_;
  obs::Counter* respawns_counter_;
  obs::Counter* watchdog_cancels_counter_;
  std::int64_t stuck_after_ms_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::deque<Task> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::condition_variable watchdog_wakeup_;
  std::vector<ActiveSlot> active_;          // per worker; guarded by mutex_
  std::vector<std::size_t> dead_workers_;   // slots awaiting respawn
  std::uint64_t respawns_ = 0;
  std::size_t active_tasks_ = 0;
  bool shutting_down_ = false;
};

}  // namespace sparsedet::engine
