// Persistent worker pool with a shared task queue.
//
// Unlike ParallelFor (which spawns one thread per call and partitions a
// fixed index range), the pool keeps its workers alive for the engine's
// lifetime and feeds them independent tasks as they arrive — the right
// shape for a stream of heterogeneous requests where one expensive
// simulate must not serialize a thousand cheap analyzes behind it.
//
// Tasks must not throw: the engine wraps every evaluation in its own
// try/catch and records failures in the task's result slot.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sparsedet::engine {

class WorkerPool {
 public:
  // Spawns `threads` workers; 0 picks DefaultThreadCount(). When given a
  // gauge, the pool keeps it equal to the number of queued (not yet
  // started) tasks, so a stats snapshot sees backlog in real time.
  explicit WorkerPool(std::size_t threads,
                      obs::Gauge* queue_depth_gauge = nullptr);
  // Drains the queue, then joins every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues a task; a worker picks it up as soon as one is free.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  std::size_t thread_count() const { return workers_.size(); }

  // Tasks submitted but not yet picked up by a worker.
  std::size_t QueueDepth() const;

 private:
  void WorkerLoop();

  obs::Gauge* queue_depth_gauge_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t active_tasks_ = 0;
  bool shutting_down_ = false;
};

}  // namespace sparsedet::engine
