#include "engine/request.h"

#include <cmath>
#include <limits>
#include <memory>
#include <numbers>
#include <sstream>

#include "common/check.h"
#include "core/analysis.h"
#include "core/false_alarm_model.h"
#include "core/latency.h"
#include "core/s_approach.h"
#include "core/single_period.h"
#include "sim/monte_carlo.h"

namespace sparsedet::engine {
namespace {

// Maximum points one sweep may expand into; guards serve mode against a
// request that would enqueue unbounded work.
constexpr std::size_t kMaxSweepPoints = 100000;

[[noreturn]] void FailKey(const std::string& section, const std::string& key,
                          const std::string& message) {
  std::ostringstream os;
  os << "request field \"" << (section.empty() ? key : section + "." + key)
     << "\": " << message;
  throw InvalidArgument(os.str());
}

// Strict typed field extraction. Every section lists its allowed keys via
// CheckKeys so a typo is named instead of silently ignored.
void CheckKeys(const JsonValue& obj, const std::string& section,
               const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.Fields()) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::ostringstream os;
      os << "unknown request field \""
         << (section.empty() ? key : section + "." + key) << "\"";
      throw InvalidArgument(os.str());
    }
  }
}

double GetNumber(const JsonValue& obj, const std::string& section,
                 const std::string& key, double fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailKey(section, key, "expected a number");
  return v->AsDouble();
}

int GetInt(const JsonValue& obj, const std::string& section,
           const std::string& key, int fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) FailKey(section, key, "expected an integer");
  const double d = v->AsDouble();
  if (d != std::floor(d) || d < std::numeric_limits<int>::min() ||
      d > std::numeric_limits<int>::max()) {
    FailKey(section, key, "expected an integer");
  }
  return static_cast<int>(d);
}

bool GetBool(const JsonValue& obj, const std::string& section,
             const std::string& key, bool fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) FailKey(section, key, "expected true or false");
  return v->AsBool();
}

std::string GetString(const JsonValue& obj, const std::string& section,
                      const std::string& key, const std::string& fallback) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) FailKey(section, key, "expected a string");
  return v->AsString();
}

SystemParams ParseParams(const JsonValue& obj) {
  CheckKeys(obj, "params",
            {"field_width", "field_height", "nodes", "rs", "rc", "pd",
             "period", "speed", "window", "k"});
  SystemParams p = SystemParams::OnrDefaults();
  p.field_width = GetNumber(obj, "params", "field_width", p.field_width);
  p.field_height = GetNumber(obj, "params", "field_height", p.field_height);
  p.num_nodes = GetInt(obj, "params", "nodes", p.num_nodes);
  p.sensing_range = GetNumber(obj, "params", "rs", p.sensing_range);
  p.comm_range = GetNumber(obj, "params", "rc", p.comm_range);
  p.detect_prob = GetNumber(obj, "params", "pd", p.detect_prob);
  p.period_length = GetNumber(obj, "params", "period", p.period_length);
  p.target_speed = GetNumber(obj, "params", "speed", p.target_speed);
  p.window_periods = GetInt(obj, "params", "window", p.window_periods);
  p.threshold_reports = GetInt(obj, "params", "k", p.threshold_reports);
  return p;
}

MsApproachOptions ParseOptions(const JsonValue& obj) {
  CheckKeys(obj, "options", {"gh", "g", "normalize", "reliability"});
  MsApproachOptions o;
  o.gh = GetInt(obj, "options", "gh", o.gh);
  o.g = GetInt(obj, "options", "g", o.g);
  o.normalize = GetBool(obj, "options", "normalize", o.normalize);
  o.node_reliability =
      GetNumber(obj, "options", "reliability", o.node_reliability);
  return o;
}

SimulateSpec ParseSim(const JsonValue& obj) {
  CheckKeys(obj, "sim",
            {"trials", "seed", "pf", "reliability", "h", "motion",
             "geometry", "death", "loss"});
  SimulateSpec s;
  s.trials = GetInt(obj, "sim", "trials", s.trials);
  const double seed =
      GetNumber(obj, "sim", "seed", static_cast<double>(s.seed));
  if (seed < 0 || seed != std::floor(seed)) {
    FailKey("sim", "seed", "expected a non-negative integer");
  }
  s.seed = static_cast<std::uint64_t>(seed);
  s.false_alarm_prob = GetNumber(obj, "sim", "pf", s.false_alarm_prob);
  s.node_reliability =
      GetNumber(obj, "sim", "reliability", s.node_reliability);
  s.distinct_nodes = GetInt(obj, "sim", "h", s.distinct_nodes);
  s.motion = GetString(obj, "sim", "motion", s.motion);
  s.geometry = GetString(obj, "sim", "geometry", s.geometry);
  s.node_death_prob = GetNumber(obj, "sim", "death", s.node_death_prob);
  s.report_loss_prob = GetNumber(obj, "sim", "loss", s.report_loss_prob);
  if (s.node_death_prob < 0.0 || s.node_death_prob > 1.0) {
    FailKey("sim", "death", "expected in [0, 1]");
  }
  if (s.report_loss_prob < 0.0 || s.report_loss_prob > 1.0) {
    FailKey("sim", "loss", "expected in [0, 1]");
  }
  if (s.trials < 1) FailKey("sim", "trials", "expected >= 1");
  if (s.distinct_nodes < 1) FailKey("sim", "h", "expected >= 1");
  if (s.motion != "straight" && s.motion != "random-walk") {
    FailKey("sim", "motion", "expected \"straight\" or \"random-walk\"");
  }
  if (s.geometry != "toroidal" && s.geometry != "planar") {
    FailKey("sim", "geometry", "expected \"toroidal\" or \"planar\"");
  }
  return s;
}

SweepSpec ParseSweep(const JsonValue& obj) {
  CheckKeys(obj, "sweep", {"param", "from", "to", "step"});
  SweepSpec s;
  s.param = GetString(obj, "sweep", "param", s.param);
  s.from = GetNumber(obj, "sweep", "from", s.from);
  s.to = GetNumber(obj, "sweep", "to", s.to);
  s.step = GetNumber(obj, "sweep", "step", s.step);
  if (s.param != "nodes" && s.param != "speed" && s.param != "k" &&
      s.param != "window" && s.param != "rs" && s.param != "pd") {
    FailKey("sweep", "param",
            "expected one of nodes | speed | k | window | rs | pd");
  }
  if (!(s.step > 0.0)) FailKey("sweep", "step", "expected > 0");
  if (s.to < s.from) FailKey("sweep", "to", "expected >= sweep.from");
  return s;
}

FaSpec ParseFa(const JsonValue& obj) {
  CheckKeys(obj, "fa", {"pf", "max_k"});
  FaSpec f;
  f.false_alarm_prob = GetNumber(obj, "fa", "pf", f.false_alarm_prob);
  f.max_k = GetInt(obj, "fa", "max_k", f.max_k);
  if (f.false_alarm_prob < 0.0 || f.false_alarm_prob > 1.0) {
    FailKey("fa", "pf", "expected in [0, 1]");
  }
  if (f.max_k < 1) FailKey("fa", "max_k", "expected >= 1");
  return f;
}

void ApplySweepValue(SystemParams& p, const std::string& param,
                     double value) {
  if (param == "nodes") {
    p.num_nodes = static_cast<int>(value);
  } else if (param == "speed") {
    p.target_speed = value;
  } else if (param == "k") {
    p.threshold_reports = static_cast<int>(value);
  } else if (param == "window") {
    p.window_periods = static_cast<int>(value);
  } else if (param == "rs") {
    p.sensing_range = value;
  } else {
    SPARSEDET_CHECK(param == "pd", "unexpected sweep param " + param);
    p.detect_prob = value;
  }
}

// Shortest-round-trip number formatting, shared with the serializer so the
// cache key for nodes=10 and nodes=10.0 is identical.
std::string Num(double d) { return JsonValue(d).ToString(); }

void AppendScenarioKey(std::ostream& os, const SystemParams& p) {
  os << "|W=" << Num(p.field_width) << "|H=" << Num(p.field_height)
     << "|N=" << p.num_nodes << "|Rs=" << Num(p.sensing_range)
     << "|Rc=" << Num(p.comm_range) << "|Pd=" << Num(p.detect_prob)
     << "|t=" << Num(p.period_length) << "|V=" << Num(p.target_speed)
     << "|M=" << p.window_periods << "|k=" << p.threshold_reports;
}

void AppendOptionsKey(std::ostream& os, const MsApproachOptions& o) {
  os << "|gh=" << o.gh << "|g=" << o.g << "|norm=" << (o.normalize ? 1 : 0)
     << "|rel=" << Num(o.node_reliability);
}

JsonValue AnalyzeToJson(const SystemParams& params,
                        const ScenarioReport& report) {
  JsonValue json = JsonValue::Object();
  json.Set("nodes", params.num_nodes)
      .Set("speed_mps", params.target_speed)
      .Set("k", params.threshold_reports)
      .Set("window_periods", params.window_periods)
      .Set("ms", report.ms)
      .Set("detection_probability", report.detection_probability)
      .Set("exact_detection_probability", report.exact_detection_probability)
      .Set("unnormalized_detection_probability",
           report.unnormalized_detection_probability)
      .Set("predicted_accuracy", report.predicted_accuracy)
      .Set("single_period_detection", report.single_period_detection)
      .Set("instantaneous_detection", report.instantaneous_detection)
      .Set("required_gh_99", report.required_caps_99.gh)
      .Set("required_g_99", report.required_caps_99.g)
      .Set("ms_states", report.ms_states)
      .Set("t_approach_states", report.t_approach_states);
  return json;
}

}  // namespace

SystemParams ParseParamsSection(const JsonValue& obj) {
  return ParseParams(obj);
}

MsApproachOptions ParseOptionsSection(const JsonValue& obj) {
  return ParseOptions(obj);
}

std::string OpName(RequestOp op) {
  switch (op) {
    case RequestOp::kAnalyze:
      return "analyze";
    case RequestOp::kSimulate:
      return "simulate";
    case RequestOp::kSweep:
      return "sweep";
    case RequestOp::kLatency:
      return "latency";
    case RequestOp::kFa:
      return "fa";
  }
  return "?";
}

Request ParseRequest(const JsonValue& json, int default_id) {
  SPARSEDET_REQUIRE(json.is_object(), "request must be a JSON object");
  CheckKeys(json, "",
            {"id", "op", "params", "options", "sim", "sweep", "fa",
             "tenant", "deadline_ms", "degrade"});

  Request request;
  if (const JsonValue* id = json.Find("id")) {
    if (!id->is_string() && !id->is_number()) {
      FailKey("", "id", "expected a string or number");
    }
    request.id = *id;
  } else {
    request.id = JsonValue(default_id);
  }

  const JsonValue* op = json.Find("op");
  if (op == nullptr) FailKey("", "op", "required field is missing");
  if (!op->is_string()) FailKey("", "op", "expected a string");
  const std::string& name = op->AsString();
  if (name == "analyze") {
    request.op = RequestOp::kAnalyze;
  } else if (name == "simulate") {
    request.op = RequestOp::kSimulate;
  } else if (name == "sweep") {
    request.op = RequestOp::kSweep;
  } else if (name == "latency") {
    request.op = RequestOp::kLatency;
  } else if (name == "fa") {
    request.op = RequestOp::kFa;
  } else {
    FailKey("", "op",
            "expected one of analyze | simulate | sweep | latency | fa");
  }

  auto section = [&](const char* key, bool allowed) -> const JsonValue* {
    const JsonValue* v = json.Find(key);
    if (v == nullptr) return nullptr;
    if (!allowed) {
      FailKey("", key, "not valid for op \"" + name + "\"");
    }
    if (!v->is_object()) FailKey("", key, "expected an object");
    return v;
  };

  if (const JsonValue* params = section("params", true)) {
    request.params = ParseParams(*params);
  }
  const bool analytic = request.op == RequestOp::kAnalyze ||
                        request.op == RequestOp::kSweep ||
                        request.op == RequestOp::kLatency;
  if (const JsonValue* options = section("options", analytic)) {
    request.options = ParseOptions(*options);
  }
  if (const JsonValue* sim =
          section("sim", request.op == RequestOp::kSimulate)) {
    request.sim = ParseSim(*sim);
  }
  if (const JsonValue* sweep =
          section("sweep", request.op == RequestOp::kSweep)) {
    request.sweep = ParseSweep(*sweep);
  }
  if (const JsonValue* fa = section("fa", request.op == RequestOp::kFa)) {
    request.fa = ParseFa(*fa);
  }

  request.tenant = GetString(json, "", "tenant", "");

  const double deadline = GetNumber(json, "", "deadline_ms", 0.0);
  if (deadline < 0.0 || deadline != std::floor(deadline) ||
      deadline > 9.0e15) {
    FailKey("", "deadline_ms", "expected a non-negative integer");
  }
  request.deadline_ms = static_cast<std::int64_t>(deadline);
  request.degrade = GetBool(json, "", "degrade", false);

  request.params.Validate();
  if (request.op == RequestOp::kSweep) {
    SweepValues(request.sweep);  // validates the grid size
  }
  return request;
}

std::vector<double> SweepValues(const SweepSpec& spec) {
  std::vector<double> values;
  for (double value = spec.from; value <= spec.to + 1e-9;
       value += spec.step) {
    values.push_back(value);
    SPARSEDET_REQUIRE(values.size() <= kMaxSweepPoints,
                      "sweep expands to too many points");
  }
  return values;
}

std::vector<WorkUnit> ExpandRequest(const Request& request) {
  std::vector<WorkUnit> units;
  if (request.op == RequestOp::kSweep) {
    for (double value : SweepValues(request.sweep)) {
      WorkUnit unit;
      unit.op = RequestOp::kSweep;
      unit.sweep_point = true;
      unit.params = request.params;
      ApplySweepValue(unit.params, request.sweep.param, value);
      unit.options = request.options;
      units.push_back(std::move(unit));
    }
    return units;
  }
  WorkUnit unit;
  unit.op = request.op;
  unit.params = request.params;
  unit.options = request.options;
  unit.sim = request.sim;
  unit.fa = request.fa;
  units.push_back(std::move(unit));
  return units;
}

std::string CanonicalKey(const WorkUnit& unit) {
  std::ostringstream os;
  switch (unit.op) {
    case RequestOp::kAnalyze:
      os << "analyze";
      AppendScenarioKey(os, unit.params);
      AppendOptionsKey(os, unit.options);
      break;
    case RequestOp::kSweep:  // one sweep point
      os << "point";
      AppendScenarioKey(os, unit.params);
      AppendOptionsKey(os, unit.options);
      break;
    case RequestOp::kLatency:
      os << "latency";
      AppendScenarioKey(os, unit.params);
      AppendOptionsKey(os, unit.options);
      break;
    case RequestOp::kFa:
      os << "fa";
      AppendScenarioKey(os, unit.params);
      os << "|pf=" << Num(unit.fa.false_alarm_prob)
         << "|maxk=" << unit.fa.max_k;
      break;
    case RequestOp::kSimulate:
      os << "sim";
      AppendScenarioKey(os, unit.params);
      os << "|trials=" << unit.sim.trials << "|seed=" << unit.sim.seed
         << "|pf=" << Num(unit.sim.false_alarm_prob)
         << "|srel=" << Num(unit.sim.node_reliability)
         << "|h=" << unit.sim.distinct_nodes << "|motion=" << unit.sim.motion
         << "|geom=" << unit.sim.geometry
         << "|death=" << Num(unit.sim.node_death_prob)
         << "|loss=" << Num(unit.sim.report_loss_prob);
      break;
  }
  return os.str();
}

JsonValue EvaluateUnit(const WorkUnit& unit) {
  switch (unit.op) {
    case RequestOp::kAnalyze: {
      const ScenarioReport report = AnalyzeScenario(unit.params, unit.options);
      return AnalyzeToJson(unit.params, report);
    }
    case RequestOp::kSweep: {
      JsonValue json = JsonValue::Object();
      json.Set("detection_probability",
               MsApproachAnalyze(unit.params, unit.options)
                   .detection_probability);
      return json;
    }
    case RequestOp::kLatency: {
      const LatencyDistribution latency =
          DetectionLatency(unit.params, unit.options);
      JsonValue cdf = JsonValue::Array();
      for (double p : latency.cdf) cdf.Append(p);
      JsonValue json = JsonValue::Object();
      json.Set("first_valid_prefix", latency.first_valid_prefix)
          .Set("cdf", std::move(cdf));
      if (!latency.cdf.empty() && latency.cdf.back() > 0.0) {
        json.Set("mean_conditional_latency",
                 latency.MeanConditionalLatency())
            .Set("conditional_p90", latency.ConditionalQuantile(0.9));
      } else {
        json.Set("mean_conditional_latency", JsonValue())
            .Set("conditional_p90", JsonValue());
      }
      return json;
    }
    case RequestOp::kFa: {
      SystemParams params = unit.params;
      JsonValue thresholds = JsonValue::Array();
      for (int k = 1; k <= unit.fa.max_k; ++k) {
        params.threshold_reports = k;
        JsonValue row = JsonValue::Object();
        row.Set("k", k).Set(
            "count_only",
            CountOnlySystemFaProbability(params, unit.fa.false_alarm_prob));
        thresholds.Append(std::move(row));
      }
      JsonValue json = JsonValue::Object();
      json.Set("expected_false_reports",
               ExpectedFalseReportsPerWindow(unit.params,
                                             unit.fa.false_alarm_prob))
          .Set("thresholds", std::move(thresholds));
      return json;
    }
    case RequestOp::kSimulate: {
      TrialConfig config;
      config.params = unit.params;
      config.false_alarm_prob = unit.sim.false_alarm_prob;
      config.node_reliability = unit.sim.node_reliability;
      config.node_death_prob = unit.sim.node_death_prob;
      config.report_loss_prob = unit.sim.report_loss_prob;
      config.geometry = unit.sim.geometry == "planar"
                            ? SensingGeometry::kPlanar
                            : SensingGeometry::kToroidal;
      std::unique_ptr<MotionModel> model;
      if (unit.sim.motion == "random-walk") {
        model = std::make_unique<RandomWalkMotion>(std::numbers::pi / 4.0);
      } else {
        model = std::make_unique<StraightLineMotion>();
      }
      config.motion = model.get();

      MonteCarloOptions mc;
      mc.trials = unit.sim.trials;
      mc.seed = unit.sim.seed;
      // Trial batches follow the --solver-threads setting (engine default
      // 1, so the pool stays the only parallelism unless the operator opts
      // in). Estimates are bit-identical regardless (per-trial RNG
      // substreams with a deterministic success count).
      mc.threads = 0;
      const ProportionEstimate est =
          unit.sim.distinct_nodes > 1
              ? EstimateKNodeDetectionProbability(config,
                                                  unit.sim.distinct_nodes, mc)
              : EstimateDetectionProbability(config, mc);
      JsonValue json = JsonValue::Object();
      json.Set("trials", est.trials)
          .Set("detections", est.successes)
          .Set("detection_probability", est.point)
          .Set("ci_lo", est.lo)
          .Set("ci_hi", est.hi);
      return json;
    }
  }
  throw InternalError("unhandled work unit op");
}

JsonValue ComposeResponse(const Request& request,
                          const std::vector<const JsonValue*>& unit_results) {
  SPARSEDET_CHECK(!unit_results.empty(), "request composed with no units");
  if (request.op != RequestOp::kSweep) {
    SPARSEDET_CHECK(unit_results.size() == 1,
                    "non-sweep request must have exactly one unit");
    return *unit_results[0];
  }
  const std::vector<double> values = SweepValues(request.sweep);
  SPARSEDET_CHECK(values.size() == unit_results.size(),
                  "sweep unit count mismatch");
  JsonValue points = JsonValue::Array();
  for (std::size_t i = 0; i < values.size(); ++i) {
    JsonValue point = JsonValue::Object();
    point.Set("value", values[i])
        .Set("detection_probability",
             *unit_results[i]->Find("detection_probability"));
    points.Append(std::move(point));
  }
  JsonValue json = JsonValue::Object();
  json.Set("param", request.sweep.param).Set("points", std::move(points));
  return json;
}

JsonValue DegradedAnalyzeResult(const SystemParams& params) {
  JsonValue json = JsonValue::Object();
  json.Set("nodes", params.num_nodes)
      .Set("k", params.threshold_reports)
      .Set("window_periods", params.window_periods)
      .Set("single_period_detection",
           SinglePeriodDetectionProbability(params));
  try {
    SApproachOptions options;
    options.cap = 1;
    const SApproachResult s = SApproachAnalyze(params, options);
    json.Set("detection_probability", s.detection_probability)
        .Set("eta_s", s.predicted_accuracy)
        .Set("degraded_mode", "s_approach_g1");
  } catch (const Error&) {
    // The S-approach needs M > ms; outside that regime the M = 1 closed
    // form is the only cheap answer (a lower bound, with no eta_S).
    json.Set("detection_probability",
             SinglePeriodDetectionProbability(params))
        .Set("eta_s", JsonValue())
        .Set("degraded_mode", "single_period");
  }
  return json;
}

}  // namespace sparsedet::engine
