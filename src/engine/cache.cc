#include "engine/cache.h"

#include "common/check.h"

namespace sparsedet::engine {

std::shared_ptr<const JsonValue> LruResultCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void LruResultCache::Put(const std::string& key,
                         std::shared_ptr<const JsonValue> value) {
  SPARSEDET_REQUIRE(value != nullptr, "cannot cache a null result");
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

}  // namespace sparsedet::engine
