#include "engine/cache.h"

#include "common/check.h"

namespace sparsedet::engine {

LruResultCache::LruResultCache(std::size_t capacity)
    : capacity_(capacity), owned_(std::make_unique<OwnedCounters>()) {
  hits_ = &owned_->hits;
  misses_ = &owned_->misses;
  evictions_ = &owned_->evictions;
  size_gauge_ = &owned_->size;
}

LruResultCache::LruResultCache(std::size_t capacity,
                               obs::MetricsRegistry& registry)
    : capacity_(capacity) {
  hits_ = &registry.counter("engine_cache_hits_total");
  misses_ = &registry.counter("engine_cache_misses_total");
  evictions_ = &registry.counter("engine_cache_evictions_total");
  size_gauge_ = &registry.gauge("engine_cache_size");
}

std::shared_ptr<const JsonValue> LruResultCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_->Inc();
    return nullptr;
  }
  hits_->Inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void LruResultCache::Put(const std::string& key,
                         std::shared_ptr<const JsonValue> value) {
  SPARSEDET_REQUIRE(value != nullptr, "cannot cache a null result");
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_->Inc();
  }
  size_gauge_->Set(static_cast<std::int64_t>(entries_.size()));
}

LruResultCache::Counters LruResultCache::counters() const {
  return {hits_->Value(), misses_->Value(), evictions_->Value()};
}

}  // namespace sparsedet::engine
