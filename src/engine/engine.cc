#include "engine/engine.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "engine/request.h"

namespace sparsedet::engine {

struct BatchEngine::PendingUnit {
  std::string key;
  std::shared_ptr<const JsonValue> result;  // set by the worker on success
  std::string error;                        // set by the worker on failure
  bool done = false;      // guarded by done_mutex_
  bool inserted = false;  // coordinator-only: already in the cache
};

struct BatchEngine::PendingRequest {
  JsonValue id;  // echoed in the response; defaults to the line number
  int line = 0;
  std::string parse_error;  // nonempty: request never got units
  Request request;

  // Each unit is either resolved from the cache at plan time or pending on
  // the pool (possibly shared with other requests that need the same key).
  struct UnitRef {
    std::shared_ptr<PendingUnit> pending;
    std::shared_ptr<const JsonValue> cached;
  };
  std::vector<UnitRef> units;
};

namespace {

bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

JsonValue EngineStats::ToJson(const LruResultCache& cache) const {
  JsonValue cache_json = JsonValue::Object();
  cache_json.Set("capacity", static_cast<std::int64_t>(cache.capacity()))
      .Set("size", static_cast<std::int64_t>(cache.size()))
      .Set("hits", static_cast<std::int64_t>(cache.counters().hits))
      .Set("misses", static_cast<std::int64_t>(cache.counters().misses))
      .Set("coalesced", static_cast<std::int64_t>(coalesced))
      .Set("evictions", static_cast<std::int64_t>(cache.counters().evictions));
  JsonValue body = JsonValue::Object();
  body.Set("requests", static_cast<std::int64_t>(requests))
      .Set("ok", static_cast<std::int64_t>(ok))
      .Set("errors", static_cast<std::int64_t>(errors))
      .Set("units", static_cast<std::int64_t>(units))
      .Set("cache", std::move(cache_json));
  JsonValue json = JsonValue::Object();
  json.Set("stats", std::move(body));
  return json;
}

BatchEngine::BatchEngine(const EngineOptions& options)
    : options_(options),
      cache_(options.cache_capacity),
      pool_(options.threads) {}

BatchEngine::~BatchEngine() = default;

std::unique_ptr<BatchEngine::PendingRequest> BatchEngine::PlanLine(
    const std::string& line, int line_number) {
  auto pending = std::make_unique<PendingRequest>();
  pending->line = line_number;
  pending->id = JsonValue(line_number);
  ++stats_.requests;
  try {
    const JsonValue json = ParseJson(line);
    // Recover the caller's id even if validation below fails, so the error
    // line is attributable.
    if (json.is_object()) {
      if (const JsonValue* id = json.Find("id");
          id != nullptr && (id->is_string() || id->is_number())) {
        pending->id = *id;
      }
    }
    pending->request = ParseRequest(json, line_number);
    pending->id = pending->request.id;

    for (WorkUnit& unit : ExpandRequest(pending->request)) {
      ++stats_.units;
      PendingRequest::UnitRef ref;
      const std::string key = CanonicalKey(unit);
      if (auto it = in_flight_.find(key); it != in_flight_.end()) {
        ref.pending = it->second;
        ++stats_.coalesced;
      } else if (std::shared_ptr<const JsonValue> cached = cache_.Get(key)) {
        ref.cached = std::move(cached);
      } else {
        auto slot = std::make_shared<PendingUnit>();
        slot->key = key;
        in_flight_.emplace(key, slot);
        ref.pending = slot;
        pool_.Submit([this, slot, unit = std::move(unit)] {
          try {
            slot->result = std::make_shared<JsonValue>(EvaluateUnit(unit));
          } catch (const Error& e) {
            slot->error = e.what();
          } catch (const std::exception& e) {
            slot->error = std::string("internal error: ") + e.what();
          }
          {
            std::lock_guard<std::mutex> lock(done_mutex_);
            slot->done = true;
          }
          done_cv_.notify_all();
        });
      }
      pending->units.push_back(std::move(ref));
    }
  } catch (const Error& e) {
    pending->parse_error = e.what();
    pending->units.clear();
  }
  return pending;
}

void BatchEngine::EmitRequest(PendingRequest& request, std::ostream& out) {
  if (!request.parse_error.empty()) {
    ++stats_.errors;
    JsonValue response = JsonValue::Object();
    if (!request.id.is_null()) response.Set("id", request.id);
    response.Set("line", request.line).Set("error", request.parse_error);
    out << response.ToString() << "\n";
    return;
  }

  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    for (const PendingRequest::UnitRef& ref : request.units) {
      if (ref.pending) {
        done_cv_.wait(lock, [&ref] { return ref.pending->done; });
      }
    }
  }

  std::string unit_error;
  std::vector<const JsonValue*> results;
  results.reserve(request.units.size());
  for (const PendingRequest::UnitRef& ref : request.units) {
    if (ref.cached) {
      results.push_back(ref.cached.get());
      continue;
    }
    PendingUnit& slot = *ref.pending;
    if (!slot.error.empty()) {
      unit_error = slot.error;
      break;
    }
    // First emitter of a shared unit publishes it to the cache; this runs
    // on the coordinator in emission order, keeping eviction deterministic.
    if (!slot.inserted) {
      cache_.Put(slot.key, slot.result);
      slot.inserted = true;
    }
    results.push_back(slot.result.get());
  }

  JsonValue response = JsonValue::Object();
  if (!unit_error.empty()) {
    ++stats_.errors;
    response.Set("id", request.id)
        .Set("line", request.line)
        .Set("error", unit_error);
  } else {
    ++stats_.ok;
    response.Set("id", request.id)
        .Set("op", OpName(request.request.op))
        .Set("result", ComposeResponse(request.request, results));
  }
  out << response.ToString() << "\n";
}

void BatchEngine::ProcessStream(std::istream& in, std::ostream& out,
                                bool streaming) {
  std::string line;
  int line_number = 0;
  if (streaming) {
    while (std::getline(in, line)) {
      ++line_number;
      if (IsBlank(line)) continue;
      std::unique_ptr<PendingRequest> request = PlanLine(line, line_number);
      EmitRequest(*request, out);
      out.flush();
      in_flight_.clear();
    }
    return;
  }

  std::vector<std::unique_ptr<PendingRequest>> planned;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsBlank(line)) continue;
    planned.push_back(PlanLine(line, line_number));
  }
  in_flight_.clear();  // emission takes over; new batches plan afresh

  if (!options_.unordered) {
    for (const std::unique_ptr<PendingRequest>& request : planned) {
      EmitRequest(*request, out);
    }
    return;
  }

  // Unordered: emit each request as soon as its last unit completes.
  auto ready = [](const PendingRequest& request) {
    if (!request.parse_error.empty()) return true;
    for (const PendingRequest::UnitRef& ref : request.units) {
      if (ref.pending && !ref.pending->done) return false;
    }
    return true;
  };
  std::vector<bool> emitted(planned.size(), false);
  std::size_t remaining = planned.size();
  while (remaining > 0) {
    std::size_t next = planned.size();
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [&] {
        for (std::size_t i = 0; i < planned.size(); ++i) {
          if (!emitted[i] && ready(*planned[i])) {
            next = i;
            return true;
          }
        }
        return false;
      });
    }
    EmitRequest(*planned[next], out);
    emitted[next] = true;
    --remaining;
  }
}

void BatchEngine::RunBatch(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*streaming=*/false);
}

void BatchEngine::Serve(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*streaming=*/true);
}

void BatchEngine::WriteStatsLine(std::ostream& out) const {
  out << stats_.ToJson(cache_).ToString() << "\n";
}

}  // namespace sparsedet::engine
