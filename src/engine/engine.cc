#include "engine/engine.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "engine/request.h"
#include "obs/timer.h"

namespace sparsedet::engine {

struct BatchEngine::PendingUnit {
  std::string key;
  std::shared_ptr<const JsonValue> result;  // set by the worker on success
  std::string error;                        // set by the worker on failure
  // Written by the worker before it publishes `done` (so reading them
  // after observing done under done_mutex_ is race-free).
  std::int64_t queue_wait_ns = 0;
  std::int64_t solve_ns = 0;
  bool done = false;      // guarded by done_mutex_
  bool inserted = false;  // coordinator-only: already in the cache
};

struct BatchEngine::PendingRequest {
  JsonValue id;  // echoed in the response; defaults to the line number
  int line = 0;
  std::string parse_error;  // nonempty: request never got units
  Request request;
  obs::RequestSpan span;

  // Each unit is either resolved from the cache at plan time or pending on
  // the pool (possibly shared with other requests that need the same key).
  struct UnitRef {
    std::shared_ptr<PendingUnit> pending;
    std::shared_ptr<const JsonValue> cached;
  };
  std::vector<UnitRef> units;  // parallel to span.units
};

namespace {

bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

JsonValue EngineStats::ToJson(const LruResultCache& cache) const {
  JsonValue cache_json = JsonValue::Object();
  cache_json.Set("capacity", static_cast<std::int64_t>(cache.capacity()))
      .Set("size", static_cast<std::int64_t>(cache.size()))
      .Set("hits", static_cast<std::int64_t>(cache.counters().hits))
      .Set("misses", static_cast<std::int64_t>(cache.counters().misses))
      .Set("coalesced", static_cast<std::int64_t>(coalesced))
      .Set("evictions", static_cast<std::int64_t>(cache.counters().evictions));
  JsonValue body = JsonValue::Object();
  body.Set("requests", static_cast<std::int64_t>(requests))
      .Set("ok", static_cast<std::int64_t>(ok))
      .Set("errors", static_cast<std::int64_t>(errors))
      .Set("units", static_cast<std::int64_t>(units))
      .Set("cache", std::move(cache_json));
  JsonValue json = JsonValue::Object();
  json.Set("stats", std::move(body));
  return json;
}

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry)
    : requests(&registry.counter("engine_requests_total")),
      ok(&registry.counter("engine_responses_ok_total")),
      errors(&registry.counter("engine_responses_error_total")),
      units(&registry.counter("engine_units_total")),
      coalesced(&registry.counter("engine_units_coalesced_total")),
      queue_depth(&registry.gauge("engine_queue_depth")),
      queue_wait(&registry.phase(obs::Phase::kQueueWait)),
      cache_lookup(&registry.phase(obs::Phase::kCacheLookup)),
      solve(&registry.phase(obs::Phase::kSolve)),
      serialize(&registry.phase(obs::Phase::kSerialize)) {}

BatchEngine::BatchEngine(const EngineOptions& options)
    : options_(options),
      metrics_(registry_),
      cache_(options.cache_capacity, registry_),
      pool_(options.threads, metrics_.queue_depth) {
  if (!options_.trace_file.empty()) {
    trace_out_.open(options_.trace_file, std::ios::out | std::ios::trunc);
    SPARSEDET_REQUIRE(trace_out_.good(),
                      "cannot open trace file " + options_.trace_file);
  }
  // Solver phase timers (M-S stages, Region(i) decomposition, MC trials)
  // reach this registry through the global install point.
  obs::InstallGlobalRegistry(&registry_);
}

BatchEngine::~BatchEngine() { obs::UninstallGlobalRegistry(&registry_); }

EngineStats BatchEngine::stats() const {
  EngineStats stats;
  stats.requests = metrics_.requests->Value();
  stats.ok = metrics_.ok->Value();
  stats.errors = metrics_.errors->Value();
  stats.units = metrics_.units->Value();
  stats.coalesced = metrics_.coalesced->Value();
  return stats;
}

obs::RegistrySnapshot BatchEngine::MetricsSnapshot() const {
  return registry_.Snapshot();
}

JsonValue BatchEngine::StatsSnapshotJson() const {
  JsonValue json = stats().ToJson(cache_);
  json.Set("metrics", MetricsSnapshot().ToJson());
  return json;
}

std::unique_ptr<BatchEngine::PendingRequest> BatchEngine::PlanLine(
    const std::string& line, int line_number) {
  auto pending = std::make_unique<PendingRequest>();
  pending->line = line_number;
  pending->id = JsonValue(line_number);
  pending->span.trace_id = next_trace_id_++;
  pending->span.line = line_number;
  metrics_.requests->Inc();
  try {
    const JsonValue json = ParseJson(line);
    // Recover the caller's id even if validation below fails, so the error
    // line is attributable.
    if (json.is_object()) {
      if (const JsonValue* id = json.Find("id");
          id != nullptr && (id->is_string() || id->is_number())) {
        pending->id = *id;
      }
    }
    pending->request = ParseRequest(json, line_number);
    pending->id = pending->request.id;
    pending->span.op = OpName(pending->request.op);

    for (WorkUnit& unit : ExpandRequest(pending->request)) {
      metrics_.units->Inc();
      PendingRequest::UnitRef ref;
      obs::RequestSpan::Unit unit_span;
      const std::string key = CanonicalKey(unit);

      const std::int64_t lookup_start = obs::NowNanos();
      const auto it = in_flight_.find(key);
      const bool coalesced = it != in_flight_.end();
      std::shared_ptr<const JsonValue> cached;
      if (!coalesced) cached = cache_.Get(key);
      const std::int64_t lookup_ns = obs::NowNanos() - lookup_start;
      metrics_.cache_lookup->Record(lookup_ns);
      pending->span.cache_lookup_ns += lookup_ns;

      if (coalesced) {
        ref.pending = it->second;
        metrics_.coalesced->Inc();
        unit_span.source = "coalesced";
      } else if (cached != nullptr) {
        ref.cached = std::move(cached);
        unit_span.source = "cache_hit";
      } else {
        auto slot = std::make_shared<PendingUnit>();
        slot->key = key;
        in_flight_.emplace(key, slot);
        ref.pending = slot;
        unit_span.source = "computed";
        const std::int64_t submitted_ns = obs::NowNanos();
        pool_.Submit([this, slot, submitted_ns, unit = std::move(unit)] {
          const std::int64_t started_ns = obs::NowNanos();
          slot->queue_wait_ns = started_ns - submitted_ns;
          metrics_.queue_wait->Record(slot->queue_wait_ns);
          try {
            slot->result = std::make_shared<JsonValue>(EvaluateUnit(unit));
          } catch (const Error& e) {
            slot->error = e.what();
          } catch (const std::exception& e) {
            slot->error = std::string("internal error: ") + e.what();
          }
          slot->solve_ns = obs::NowNanos() - started_ns;
          metrics_.solve->Record(slot->solve_ns);
          {
            // Notify while holding the mutex: the coordinator may destroy
            // this engine (and the condvar) as soon as it observes done, so
            // the broadcast must complete before the waiter can re-acquire.
            std::lock_guard<std::mutex> lock(done_mutex_);
            slot->done = true;
            done_cv_.notify_all();
          }
        });
      }
      pending->units.push_back(std::move(ref));
      pending->span.units.push_back(std::move(unit_span));
    }
  } catch (const Error& e) {
    pending->parse_error = e.what();
    pending->units.clear();
    pending->span.units.clear();
  }
  return pending;
}

void BatchEngine::EmitRequest(PendingRequest& request, std::ostream& out) {
  obs::RequestSpan& span = request.span;
  span.request_id = request.id;
  JsonValue response = JsonValue::Object();

  if (!request.parse_error.empty()) {
    metrics_.errors->Inc();
    if (!request.id.is_null()) response.Set("id", request.id);
    response.Set("line", request.line).Set("error", request.parse_error);
  } else {
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      for (const PendingRequest::UnitRef& ref : request.units) {
        if (ref.pending) {
          done_cv_.wait(lock, [&ref] { return ref.pending->done; });
        }
      }
    }

    // Copy the worker-side timings into the span (race-free: done was
    // observed under done_mutex_ above).
    for (std::size_t i = 0; i < request.units.size(); ++i) {
      if (const auto& pending = request.units[i].pending) {
        span.units[i].queue_wait_ns = pending->queue_wait_ns;
        span.units[i].solve_ns = pending->solve_ns;
        span.queue_wait_ns += pending->queue_wait_ns;
        span.solve_ns += pending->solve_ns;
      }
    }

    std::string unit_error;
    std::vector<const JsonValue*> results;
    results.reserve(request.units.size());
    for (const PendingRequest::UnitRef& ref : request.units) {
      if (ref.cached) {
        results.push_back(ref.cached.get());
        continue;
      }
      PendingUnit& slot = *ref.pending;
      if (!slot.error.empty()) {
        unit_error = slot.error;
        break;
      }
      // First emitter of a shared unit publishes it to the cache; this runs
      // on the coordinator in emission order, keeping eviction
      // deterministic.
      if (!slot.inserted) {
        cache_.Put(slot.key, slot.result);
        slot.inserted = true;
      }
      results.push_back(slot.result.get());
    }

    if (!unit_error.empty()) {
      metrics_.errors->Inc();
      response.Set("id", request.id)
          .Set("line", request.line)
          .Set("error", unit_error);
    } else {
      metrics_.ok->Inc();
      response.Set("id", request.id)
          .Set("op", OpName(request.request.op))
          .Set("result", ComposeResponse(request.request, results));
    }
  }

  const std::int64_t serialize_start = obs::NowNanos();
  std::string text = response.ToString();
  span.serialize_ns = obs::NowNanos() - serialize_start;
  metrics_.serialize->Record(span.serialize_ns);

  if (options_.trace) {
    response.Set("trace", span.ToJson());
    text = response.ToString();
  }
  out << text << "\n";
  if (trace_out_.is_open()) {
    trace_out_ << span.ToFileJson().ToString() << "\n";
    trace_out_.flush();
  }
}

bool BatchEngine::MaybeHandleCommand(const std::string& line,
                                     std::ostream& out) {
  JsonValue json;
  try {
    json = ParseJson(line);
  } catch (const Error&) {
    return false;  // not even JSON; let the request path report it
  }
  if (!json.is_object()) return false;
  const JsonValue* cmd = json.Find("cmd");
  if (cmd == nullptr) return false;
  if (cmd->is_string() && cmd->AsString() == "stats") {
    out << StatsSnapshotJson().ToString() << "\n";
  } else {
    JsonValue response = JsonValue::Object();
    response.Set("error", "unknown cmd; expected \"stats\"");
    out << response.ToString() << "\n";
  }
  return true;
}

void BatchEngine::ProcessStream(std::istream& in, std::ostream& out,
                                bool streaming) {
  std::string line;
  int line_number = 0;
  if (streaming) {
    while (std::getline(in, line)) {
      ++line_number;
      if (IsBlank(line)) continue;
      // Cheap substring guard: only lines that could carry a "cmd" key pay
      // for the extra parse. Requests never contain one (the strict parser
      // rejects it as an unknown field).
      if (line.find("\"cmd\"") != std::string::npos &&
          MaybeHandleCommand(line, out)) {
        out.flush();
        continue;
      }
      std::unique_ptr<PendingRequest> request = PlanLine(line, line_number);
      EmitRequest(*request, out);
      out.flush();
      in_flight_.clear();
    }
    return;
  }

  std::vector<std::unique_ptr<PendingRequest>> planned;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsBlank(line)) continue;
    planned.push_back(PlanLine(line, line_number));
  }
  in_flight_.clear();  // emission takes over; new batches plan afresh

  if (!options_.unordered) {
    for (const std::unique_ptr<PendingRequest>& request : planned) {
      EmitRequest(*request, out);
    }
    return;
  }

  // Unordered: emit each request as soon as its last unit completes.
  auto ready = [](const PendingRequest& request) {
    if (!request.parse_error.empty()) return true;
    for (const PendingRequest::UnitRef& ref : request.units) {
      if (ref.pending && !ref.pending->done) return false;
    }
    return true;
  };
  std::vector<bool> emitted(planned.size(), false);
  std::size_t remaining = planned.size();
  while (remaining > 0) {
    std::size_t next = planned.size();
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [&] {
        for (std::size_t i = 0; i < planned.size(); ++i) {
          if (!emitted[i] && ready(*planned[i])) {
            next = i;
            return true;
          }
        }
        return false;
      });
    }
    EmitRequest(*planned[next], out);
    emitted[next] = true;
    --remaining;
  }
}

void BatchEngine::RunBatch(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*streaming=*/false);
}

void BatchEngine::Serve(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*streaming=*/true);
}

void BatchEngine::WriteStatsLine(std::ostream& out) const {
  out << stats().ToJson(cache_).ToString() << "\n";
}

}  // namespace sparsedet::engine
