#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/framing.h"
#include "common/parallel.h"
#include "engine/request.h"
#include "obs/timer.h"
#include "prob/memo_cache.h"

namespace sparsedet::engine {

struct BatchEngine::PendingUnit {
  std::string key;
  std::shared_ptr<const JsonValue> result;  // set by the worker on success
  std::string error;                        // set by the worker on failure
  std::string error_code;  // structured category for resilience failures
  // The owning request's token when it carries a deadline; per-attempt
  // tokens chain off it so cancelling the request stops every attempt.
  std::shared_ptr<resilience::CancelToken> request_token;
  // Written by the worker before it publishes `done` (so reading them
  // after observing done under done_mutex_ is race-free).
  std::int64_t queue_wait_ns = 0;
  std::int64_t solve_ns = 0;
  int attempts = 1;
  bool done = false;      // guarded by done_mutex_
  bool inserted = false;  // coordinator-only: already in the cache
};

struct BatchEngine::PendingRequest {
  JsonValue id;  // echoed in the response; defaults to the line number
  int line = 0;
  std::int64_t planned_ns = 0;  // plan-time stamp; end-to-end latency base
  std::string parse_error;  // nonempty: request never got units
  std::string plan_error_code;  // structured code for plan-time rejections
  Request request;
  obs::RequestSpan span;
  // Set when the request carries a deadline; cancelled on expiry.
  std::shared_ptr<resilience::CancelToken> token;

  // Each unit is either resolved from the cache at plan time or pending on
  // the pool (possibly shared with other requests that need the same key).
  struct UnitRef {
    std::shared_ptr<PendingUnit> pending;
    std::shared_ptr<const JsonValue> cached;
  };
  std::vector<UnitRef> units;  // parallel to span.units
};

namespace {

bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

std::int64_t NowUnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Rough elementary-operation count for one unit — enough to split "tiny
// analytical solve" from "heavy simulation or scaled-up scenario", not a
// schedule. Analytical solves propagate an O(M*Z)-state chain M times over
// roughly N-proportional stage work; simulation runs `trials` windows of M
// periods with a per-period constant in the dozens of operations.
std::size_t UnitCostProxy(const WorkUnit& unit) {
  const std::size_t n =
      static_cast<std::size_t>(std::max(unit.params.num_nodes, 1));
  const std::size_t m =
      static_cast<std::size_t>(std::max(unit.params.window_periods, 1));
  if (unit.op == RequestOp::kSimulate) {
    return 64 * static_cast<std::size_t>(std::max(unit.sim.trials, 1)) * m;
  }
  return n * m * m;
}

// Group chunks aim for at least this many units each; fewer units than
// this per available worker and the dispatch overhead being amortized is
// already negligible.
constexpr std::size_t kGroupMinUnitsPerChunk = 16;

WorkerPoolOptions MakePoolOptions(const EngineOptions& options,
                                  const EngineMetrics& metrics) {
  WorkerPoolOptions pool;
  pool.threads = options.threads;
  pool.queue_depth_gauge = metrics.queue_depth;
  pool.respawns_counter = metrics.worker_respawns;
  pool.watchdog_cancels_counter = metrics.watchdog_cancels;
  pool.stuck_after_ms = options.watchdog_stuck_ms;
  return pool;
}

}  // namespace

JsonValue EngineStats::ToJson(const LruResultCache& cache) const {
  JsonValue cache_json = JsonValue::Object();
  cache_json.Set("capacity", static_cast<std::int64_t>(cache.capacity()))
      .Set("size", static_cast<std::int64_t>(cache.size()))
      .Set("hits", static_cast<std::int64_t>(cache.counters().hits))
      .Set("misses", static_cast<std::int64_t>(cache.counters().misses))
      .Set("coalesced", static_cast<std::int64_t>(coalesced))
      .Set("evictions", static_cast<std::int64_t>(cache.counters().evictions));
  JsonValue body = JsonValue::Object();
  body.Set("requests", static_cast<std::int64_t>(requests))
      .Set("ok", static_cast<std::int64_t>(ok))
      .Set("errors", static_cast<std::int64_t>(errors))
      .Set("units", static_cast<std::int64_t>(units))
      .Set("cache", std::move(cache_json));
  JsonValue json = JsonValue::Object();
  json.Set("stats", std::move(body));
  return json;
}

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry)
    : requests(&registry.counter("engine_requests_total")),
      ok(&registry.counter("engine_responses_ok_total")),
      errors(&registry.counter("engine_responses_error_total")),
      units(&registry.counter("engine_units_total")),
      coalesced(&registry.counter("engine_units_coalesced_total")),
      queue_depth(&registry.gauge("engine_queue_depth")),
      queue_wait(&registry.phase(obs::Phase::kQueueWait)),
      cache_lookup(&registry.phase(obs::Phase::kCacheLookup)),
      solve(&registry.phase(obs::Phase::kSolve)),
      serialize(&registry.phase(obs::Phase::kSerialize)),
      deadline_exceeded(&registry.counter("engine_deadline_exceeded_total")),
      degraded(&registry.counter("engine_degraded_total")),
      cancelled_units(&registry.counter("engine_cancelled_units_total")),
      retries(&registry.counter("engine_unit_retries_total")),
      worker_aborts(&registry.counter("engine_worker_aborts_total")),
      worker_respawns(&registry.counter("engine_worker_respawns_total")),
      watchdog_cancels(&registry.counter("engine_watchdog_cancels_total")),
      overloaded(&registry.counter("engine_overloaded_total")),
      rejected_lines(&registry.counter("engine_rejected_lines_total")),
      injected_faults(&registry.counter("engine_injected_faults_total")),
      memo_hits(&registry.gauge("solver_memo_hits")),
      memo_misses(&registry.gauge("solver_memo_misses")),
      memo_entries(&registry.gauge("solver_memo_entries")),
      memo_bytes(&registry.gauge("solver_memo_bytes")),
      memo_evictions(&registry.gauge("solver_memo_evictions")),
      memo_restored(&registry.gauge("solver_memo_restored")),
      memo_snapshot_entries(&registry.gauge("solver_memo_snapshot_entries")),
      memo_snapshot_bytes(&registry.gauge("solver_memo_snapshot_bytes")),
      memo_snapshot_age_ms(&registry.gauge("solver_memo_snapshot_age_ms")) {}

BatchEngine::BatchEngine(const EngineOptions& options)
    : options_(options),
      prev_solver_threads_(SetSolverThreads(options.solver_threads)),
      metrics_(registry_),
      cache_(options.cache_capacity, registry_),
      pool_(MakePoolOptions(options, metrics_)),
      trace_ring_(options.trace_ring_capacity) {
  prev_memo_capacity_ = prob::MemoCache::Global().capacity();
  prob::MemoCache::Global().SetCapacity(options_.memo_cache_entries);
  if (options_.slo.enabled()) {
    slo_ = std::make_unique<obs::SloTracker>(options_.slo, &registry_);
  }
  if (!options_.fault_config.empty()) {
    injector_ = std::make_unique<resilience::FaultInjector>(
        resilience::ParseFaultInjectorConfig(options_.fault_config),
        [this](const char*) { metrics_.injected_faults->Inc(); });
  }
  if (!options_.trace_file.empty()) {
    trace_out_.open(options_.trace_file, std::ios::out | std::ios::trunc);
    SPARSEDET_REQUIRE(trace_out_.good(),
                      "cannot open trace file " + options_.trace_file);
  }
  // Solver phase timers (M-S stages, Region(i) decomposition, MC trials)
  // reach this registry through the global install point.
  obs::InstallGlobalRegistry(&registry_);
}

BatchEngine::~BatchEngine() {
  StopAsync();
  obs::UninstallGlobalRegistry(&registry_);
  SetSolverThreads(prev_solver_threads_);
  prob::MemoCache::Global().SetCapacity(prev_memo_capacity_);
}

EngineStats BatchEngine::stats() const {
  EngineStats stats;
  stats.requests = metrics_.requests->Value();
  stats.ok = metrics_.ok->Value();
  stats.errors = metrics_.errors->Value();
  stats.units = metrics_.units->Value();
  stats.coalesced = metrics_.coalesced->Value();
  return stats;
}

obs::RegistrySnapshot BatchEngine::MetricsSnapshot() const {
  // Mirror the process-wide memo cache into the gauges so every snapshot
  // rendering (metrics-dump, Prometheus, {"cmd":"stats"}) sees it.
  const prob::MemoCacheStats memo = prob::MemoCache::Global().Stats();
  metrics_.memo_hits->Set(static_cast<std::int64_t>(memo.hits));
  metrics_.memo_misses->Set(static_cast<std::int64_t>(memo.misses));
  metrics_.memo_entries->Set(static_cast<std::int64_t>(memo.entries));
  metrics_.memo_bytes->Set(static_cast<std::int64_t>(memo.bytes));
  metrics_.memo_evictions->Set(static_cast<std::int64_t>(memo.evictions));
  metrics_.memo_restored->Set(static_cast<std::int64_t>(memo.restored));
  metrics_.memo_snapshot_entries->Set(
      static_cast<std::int64_t>(memo.snapshot_entries));
  metrics_.memo_snapshot_bytes->Set(
      static_cast<std::int64_t>(memo.snapshot_bytes));
  metrics_.memo_snapshot_age_ms->Set(
      memo.snapshot_loaded_unix_ms > 0
          ? NowUnixMillis() - memo.snapshot_loaded_unix_ms
          : 0);
  if (slo_ != nullptr) slo_->Publish(obs::NowNanos());
  return registry_.Snapshot();
}

JsonValue BatchEngine::OptionsJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("threads", static_cast<std::int64_t>(pool_.thread_count()))
      .Set("solver_threads",
           static_cast<std::int64_t>(options_.solver_threads))
      .Set("cache_capacity",
           static_cast<std::int64_t>(options_.cache_capacity))
      .Set("memo_cache_entries",
           static_cast<std::int64_t>(options_.memo_cache_entries))
      .Set("group_dispatch", options_.group_dispatch)
      .Set("group_cost_threshold",
           static_cast<std::int64_t>(options_.group_cost_threshold))
      .Set("unordered", options_.unordered)
      .Set("trace", options_.trace)
      .Set("max_queue", static_cast<std::int64_t>(options_.max_queue))
      .Set("max_line_bytes",
           static_cast<std::int64_t>(options_.max_line_bytes))
      .Set("max_json_depth", options_.max_json_depth)
      .Set("watchdog_stuck_ms", options_.watchdog_stuck_ms)
      .Set("retry_max", options_.retry.max_attempts)
      .Set("trace_ring_capacity",
           static_cast<std::int64_t>(options_.trace_ring_capacity));
  JsonValue slo = JsonValue::Object();
  slo.Set("enabled", options_.slo.enabled())
      .Set("availability", options_.slo.availability)
      .Set("p99_ms", options_.slo.p99_ms)
      .Set("window_s", options_.slo.window_s);
  json.Set("slo", std::move(slo));
  return json;
}

JsonValue BatchEngine::StatsSnapshotJson() const {
  JsonValue json;
  {
    // The result cache is coordinator-state; the async emitter may be
    // publishing into it concurrently.
    std::lock_guard<std::mutex> lock(plan_mutex_);
    json = stats().ToJson(cache_);
  }
  // The memo block lives here (the {"cmd":"stats"} response) and NOT in
  // the batch stats line: its hit/miss split depends on which worker won
  // each compute race, and the stats line is pinned byte-identical across
  // thread counts.
  const prob::MemoCacheStats memo = prob::MemoCache::Global().Stats();
  JsonValue memo_json = JsonValue::Object();
  memo_json
      .Set("capacity", static_cast<std::int64_t>(memo.capacity_entries))
      .Set("entries", static_cast<std::int64_t>(memo.entries))
      .Set("bytes", static_cast<std::int64_t>(memo.bytes))
      .Set("hits", static_cast<std::int64_t>(memo.hits))
      .Set("misses", static_cast<std::int64_t>(memo.misses))
      .Set("inserts", static_cast<std::int64_t>(memo.inserts))
      .Set("evictions", static_cast<std::int64_t>(memo.evictions))
      .Set("skipped_inserts",
           static_cast<std::int64_t>(memo.skipped_inserts))
      .Set("restored", static_cast<std::int64_t>(memo.restored));
  if (memo.snapshot_loaded_unix_ms > 0) {
    JsonValue snap = JsonValue::Object();
    snap.Set("entries", static_cast<std::int64_t>(memo.snapshot_entries))
        .Set("bytes", static_cast<std::int64_t>(memo.snapshot_bytes))
        .Set("age_ms", NowUnixMillis() - memo.snapshot_loaded_unix_ms);
    memo_json.Set("snapshot", std::move(snap));
  }
  json.Set("memo_cache", std::move(memo_json));
  json.Set("metrics", MetricsSnapshot().ToJson());
  return json;
}

std::unique_ptr<BatchEngine::PendingRequest> BatchEngine::PlanLine(
    const std::string& line, int line_number,
    std::shared_ptr<const resilience::CancelToken> parent) {
  auto pending = std::make_unique<PendingRequest>();
  pending->line = line_number;
  pending->id = JsonValue(line_number);
  pending->planned_ns = obs::NowNanos();
  pending->span.trace_id = next_trace_id_++;
  pending->span.line = line_number;
  metrics_.requests->Inc();
  // Fresh (non-cached, non-coalesced) units are collected here and handed
  // to the pool together once the whole request has planned, so small
  // units can share pool tasks (FlushSubmits).
  std::vector<std::pair<std::shared_ptr<PendingUnit>, WorkUnit>> fresh;
  try {
    const JsonValue json = ParseJson(line, options_.max_json_depth);
    // Recover the caller's id even if validation below fails, so the error
    // line is attributable.
    if (json.is_object()) {
      if (const JsonValue* id = json.Find("id");
          id != nullptr && (id->is_string() || id->is_number())) {
        pending->id = *id;
      }
    }
    pending->request = ParseRequest(json, line_number);
    pending->id = pending->request.id;
    pending->span.op = OpName(pending->request.op);
    pending->span.deadline_ms = pending->request.deadline_ms;
    if (pending->request.deadline_ms > 0) {
      pending->token = std::make_shared<resilience::CancelToken>(
          resilience::Deadline::AfterMillis(pending->request.deadline_ms),
          parent);
    } else if (parent != nullptr) {
      // No deadline, but the submitter wants a cancellation handle (e.g.
      // cancel-on-disconnect). The chained token inherits the parent's
      // memo-insert permission, so a connection token created with
      // allow_memo_inserts keeps warming the solver memo cache.
      pending->token = std::make_shared<resilience::CancelToken>(
          resilience::Deadline(), parent);
    }

    std::vector<WorkUnit> expanded = ExpandRequest(pending->request);

    // Backpressure: checked before any unit is admitted, so a rejected
    // request contributes nothing to the unit/cache counters.
    if (options_.max_queue > 0 &&
        pool_.QueueDepth() + expanded.size() > options_.max_queue) {
      metrics_.overloaded->Inc();
      pending->parse_error =
          "engine overloaded: " + std::to_string(expanded.size()) +
          " unit(s) would exceed max queue depth " +
          std::to_string(options_.max_queue);
      pending->plan_error_code = "overloaded";
      pending->span.outcome = "overloaded";
      return pending;
    }

    // A request under a deadline keeps to itself: its units still consult
    // the cache, but they neither join in-flight units nor register as
    // coalescing targets — cancelling a shared unit would fail an innocent
    // request that coalesced onto it.
    const bool isolated = pending->token != nullptr;

    for (WorkUnit& unit : expanded) {
      metrics_.units->Inc();
      PendingRequest::UnitRef ref;
      obs::RequestSpan::Unit unit_span;
      const std::string key = CanonicalKey(unit);

      const std::int64_t lookup_start = obs::NowNanos();
      const auto it = isolated ? in_flight_.end() : in_flight_.find(key);
      const bool coalesced = it != in_flight_.end();
      std::shared_ptr<const JsonValue> cached;
      if (!coalesced) cached = cache_.Get(key);
      const std::int64_t lookup_ns = obs::NowNanos() - lookup_start;
      metrics_.cache_lookup->Record(lookup_ns);
      pending->span.cache_lookup_ns += lookup_ns;

      if (coalesced) {
        ref.pending = it->second;
        metrics_.coalesced->Inc();
        unit_span.source = "coalesced";
      } else if (cached != nullptr) {
        ref.cached = std::move(cached);
        unit_span.source = "cache_hit";
      } else {
        auto slot = std::make_shared<PendingUnit>();
        slot->key = key;
        slot->request_token = pending->token;
        if (!isolated) in_flight_.emplace(key, slot);
        ref.pending = slot;
        unit_span.source = "computed";
        fresh.emplace_back(slot, std::move(unit));
      }
      pending->units.push_back(std::move(ref));
      pending->span.units.push_back(std::move(unit_span));
    }
    FlushSubmits(&fresh);
  } catch (const Error& e) {
    // Units planned before the failure were registered as coalescing
    // targets but never submitted; leaving them would hang any later
    // request that coalesces onto them.
    for (const auto& [slot, unit] : fresh) {
      const auto it = in_flight_.find(slot->key);
      if (it != in_flight_.end() && it->second == slot) in_flight_.erase(it);
    }
    pending->parse_error = e.what();
    pending->units.clear();
    pending->span.units.clear();
  }
  return pending;
}

void BatchEngine::FlushSubmits(
    std::vector<std::pair<std::shared_ptr<PendingUnit>, WorkUnit>>* fresh) {
  if (fresh->empty()) return;
  const bool groupable =
      options_.group_dispatch && options_.watchdog_stuck_ms == 0;
  std::vector<std::pair<std::shared_ptr<PendingUnit>, WorkUnit>> small;
  for (auto& entry : *fresh) {
    if (groupable &&
        UnitCostProxy(entry.second) < options_.group_cost_threshold) {
      small.push_back(std::move(entry));
    } else {
      SubmitUnit(entry.first, std::move(entry.second), /*attempt=*/1);
    }
  }
  fresh->clear();
  if (small.empty()) return;
  if (small.size() == 1) {
    SubmitUnit(small[0].first, std::move(small[0].second), /*attempt=*/1);
    return;
  }
  // Contiguous chunks preserve the units' in-request order inside each
  // task; chunk count caps at the pool width (more chunks than workers
  // only adds dispatch overhead back).
  const std::size_t pool_width = std::max<std::size_t>(1, pool_.thread_count());
  const std::size_t chunk_count = std::min(
      pool_width,
      std::max<std::size_t>(1, small.size() / kGroupMinUnitsPerChunk));
  const std::size_t per_chunk = (small.size() + chunk_count - 1) / chunk_count;
  const std::int64_t submitted_ns = obs::NowNanos();
  for (std::size_t begin = 0; begin < small.size(); begin += per_chunk) {
    const std::size_t end = std::min(small.size(), begin + per_chunk);
    auto chunk = std::make_shared<
        std::vector<std::pair<std::shared_ptr<PendingUnit>, WorkUnit>>>(
        std::make_move_iterator(small.begin() + begin),
        std::make_move_iterator(small.begin() + end));
    pool_.Submit([this, chunk, submitted_ns]() {
      for (std::size_t i = 0; i < chunk->size(); ++i) {
        auto& [slot, unit] = (*chunk)[i];
        // The same per-attempt token chain SubmitUnit builds, so deadline
        // and disconnect cancellation behave identically under grouping.
        // (No watchdog token: grouping is bypassed when it is armed.)
        std::shared_ptr<resilience::CancelToken> token;
        if (slot->request_token != nullptr) {
          token = std::make_shared<resilience::CancelToken>(
              resilience::Deadline(), slot->request_token);
        }
        try {
          RunUnit(slot, token, std::move(unit), /*attempt=*/1, submitted_ns);
        } catch (const resilience::WorkerAbort&) {
          // This worker thread is dying. Peel the not-yet-run group mates
          // off onto their own tasks so their requests still complete,
          // then let the abort propagate for the pool to respawn us.
          for (std::size_t j = i + 1; j < chunk->size(); ++j) {
            SubmitUnit((*chunk)[j].first, std::move((*chunk)[j].second),
                       /*attempt=*/1);
          }
          throw;
        }
      }
    });
  }
}

std::unique_ptr<BatchEngine::PendingRequest> BatchEngine::RejectedLine(
    int line_number, std::string message, std::string code) {
  auto pending = std::make_unique<PendingRequest>();
  pending->line = line_number;
  pending->id = JsonValue(line_number);
  pending->planned_ns = obs::NowNanos();
  pending->span.trace_id = next_trace_id_++;
  pending->span.line = line_number;
  pending->span.outcome = code;
  pending->parse_error = std::move(message);
  pending->plan_error_code = std::move(code);
  metrics_.requests->Inc();
  metrics_.rejected_lines->Inc();
  return pending;
}

void BatchEngine::SubmitUnit(const std::shared_ptr<PendingUnit>& slot,
                             WorkUnit unit, int attempt) {
  const std::int64_t submitted_ns = obs::NowNanos();
  // A per-attempt token chains off the request token (deadline) and gives
  // the watchdog a per-task cancellation target. No token at all when both
  // features are off — the default path allocates nothing.
  std::shared_ptr<resilience::CancelToken> token;
  if (slot->request_token != nullptr || options_.watchdog_stuck_ms > 0) {
    token = std::make_shared<resilience::CancelToken>(resilience::Deadline(),
                                                      slot->request_token);
  }
  pool_.Submit(
      [this, slot, token, attempt, submitted_ns,
       unit = std::move(unit)]() mutable {
        RunUnit(slot, token, std::move(unit), attempt, submitted_ns);
      },
      token);
}

void BatchEngine::RunUnit(const std::shared_ptr<PendingUnit>& slot,
                          const std::shared_ptr<resilience::CancelToken>& token,
                          WorkUnit unit, int attempt,
                          std::int64_t submitted_ns) {
  if (attempt > 1) {
    std::this_thread::sleep_for(options_.retry.Delay(
        attempt - 1, std::hash<std::string>{}(slot->key)));
  }
  const std::int64_t started_ns = obs::NowNanos();
  slot->queue_wait_ns = started_ns - submitted_ns;
  metrics_.queue_wait->Record(slot->queue_wait_ns);
  slot->attempts = attempt;

  bool publish = true;
  bool propagate_abort = false;
  try {
    resilience::ScopedCancelScope scope(token.get());
    if (injector_ != nullptr) injector_->OnEvaluate();
    resilience::CancellationPoint();  // the deadline may already be past
    slot->result = std::make_shared<JsonValue>(EvaluateUnit(unit));
  } catch (const resilience::Cancelled& e) {
    metrics_.cancelled_units->Inc();
    if (e.reason() == resilience::CancelReason::kWatchdog &&
        options_.retry.ShouldRetry(attempt)) {
      // Stuck (not deadline-expired): worth another try on a fresh token.
      metrics_.retries->Inc();
      publish = false;
      SubmitUnit(slot, std::move(unit), attempt + 1);
    } else {
      slot->error = e.what();
      switch (e.reason()) {
        case resilience::CancelReason::kDeadline:
          slot->error_code = "deadline_exceeded";
          break;
        case resilience::CancelReason::kWatchdog:
          slot->error_code = "watchdog_cancelled";
          break;
        case resilience::CancelReason::kDisconnect:
          slot->error_code = "disconnected";
          break;
        default:
          slot->error_code = "cancelled";
          break;
      }
    }
  } catch (const resilience::WorkerAbort& e) {
    metrics_.worker_aborts->Inc();
    if (options_.retry.ShouldRetry(attempt)) {
      metrics_.retries->Inc();
      publish = false;
      SubmitUnit(slot, std::move(unit), attempt + 1);
    } else {
      slot->error = std::string(e.what()) + " (retries exhausted)";
      slot->error_code = "worker_aborted";
    }
    // Either way this worker thread dies; the retry (if any) runs on a
    // surviving or respawned worker.
    propagate_abort = true;
  } catch (const resilience::Transient& e) {
    if (options_.retry.ShouldRetry(attempt)) {
      metrics_.retries->Inc();
      publish = false;
      SubmitUnit(slot, std::move(unit), attempt + 1);
    } else {
      slot->error = std::string(e.what()) + " (retries exhausted)";
      slot->error_code = "retries_exhausted";
    }
  } catch (const Error& e) {
    slot->error = e.what();
  } catch (const std::exception& e) {
    slot->error = std::string("internal error: ") + e.what();
  }
  slot->solve_ns = obs::NowNanos() - started_ns;
  metrics_.solve->Record(slot->solve_ns);
  if (publish) {
    // Notify while holding the mutex: the coordinator may destroy this
    // engine (and the condvar) as soon as it observes done, so the
    // broadcast must complete before the waiter can re-acquire.
    std::lock_guard<std::mutex> lock(done_mutex_);
    slot->done = true;
    done_cv_.notify_all();
  }
  if (propagate_abort) {
    throw resilience::WorkerAbort("worker crashed evaluating " + slot->key);
  }
}

std::string BatchEngine::RenderRequest(PendingRequest& request) {
  obs::RequestSpan& span = request.span;
  span.request_id = request.id;
  JsonValue response = JsonValue::Object();

  // On deadline expiry: try the cheap closed-form fallback if asked for it,
  // otherwise report a structured deadline error. Returns true once a
  // response has been built.
  const auto try_degrade = [&]() -> bool {
    if (!request.request.degrade ||
        request.request.op != RequestOp::kAnalyze) {
      return false;
    }
    try {
      JsonValue result = DegradedAnalyzeResult(request.request.params);
      metrics_.degraded->Inc();
      metrics_.ok->Inc();
      span.outcome = "degraded";
      response.Set("id", request.id)
          .Set("op", OpName(request.request.op))
          .Set("degraded", true)
          .Set("result", std::move(result));
      return true;
    } catch (const Error&) {
      return false;  // even the fallback rejected the scenario
    }
  };

  if (!request.parse_error.empty()) {
    metrics_.errors->Inc();
    if (!request.id.is_null()) response.Set("id", request.id);
    response.Set("line", request.line).Set("error", request.parse_error);
    if (!request.plan_error_code.empty()) {
      response.Set("error_code", request.plan_error_code);
    }
  } else {
    bool deadline_hit = false;
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      // A token without a deadline (cancel-on-disconnect) gets the plain
      // wait: cancellation makes its workers publish done with an error,
      // so the wait still terminates.
      const resilience::Deadline deadline =
          request.token != nullptr ? request.token->EffectiveDeadline()
                                   : resilience::Deadline();
      if (!deadline.set()) {
        for (const PendingRequest::UnitRef& ref : request.units) {
          if (ref.pending) {
            done_cv_.wait(lock, [&ref] { return ref.pending->done; });
          }
        }
      } else {
        const auto expires = deadline.time_point();
        for (const PendingRequest::UnitRef& ref : request.units) {
          if (!ref.pending) continue;
          if (!done_cv_.wait_until(lock, expires,
                                   [&ref] { return ref.pending->done; })) {
            deadline_hit = true;
            break;
          }
        }
      }
    }

    if (deadline_hit) {
      // Tell the workers to stop burning CPU on this request; the
      // cancellation points inside the solvers pick it up.
      request.token->Cancel(resilience::CancelReason::kDeadline);
      metrics_.deadline_exceeded->Inc();
      span.outcome = "deadline_exceeded";
      // The slots may still be written by workers that have not yet hit a
      // cancellation point — read none of them. That also guarantees
      // nothing from a timed-out request ever reaches the result cache.
      if (!try_degrade()) {
        metrics_.errors->Inc();
        response.Set("id", request.id)
            .Set("line", request.line)
            .Set("error",
                 "deadline exceeded after " +
                     std::to_string(request.request.deadline_ms) + " ms")
            .Set("error_code", "deadline_exceeded");
      }
    } else {
      // Copy the worker-side timings into the span (race-free: done was
      // observed under done_mutex_ above).
      for (std::size_t i = 0; i < request.units.size(); ++i) {
        if (const auto& pending = request.units[i].pending) {
          span.units[i].queue_wait_ns = pending->queue_wait_ns;
          span.units[i].solve_ns = pending->solve_ns;
          span.units[i].attempts = pending->attempts;
          span.queue_wait_ns += pending->queue_wait_ns;
          span.solve_ns += pending->solve_ns;
        }
      }

      std::string unit_error;
      std::string unit_error_code;
      std::vector<const JsonValue*> results;
      results.reserve(request.units.size());
      {
        std::lock_guard<std::mutex> plan_lock(plan_mutex_);
        for (const PendingRequest::UnitRef& ref : request.units) {
          if (ref.cached) {
            results.push_back(ref.cached.get());
            continue;
          }
          PendingUnit& slot = *ref.pending;
          if (!slot.error.empty()) {
            // Failed or cancelled units are never published to the cache.
            unit_error = slot.error;
            unit_error_code = slot.error_code;
            break;
          }
          // First emitter of a shared unit publishes it to the cache; this
          // runs on the emitter in emission order (the coordinator in the
          // sync paths), keeping eviction deterministic.
          if (!slot.inserted) {
            cache_.Put(slot.key, slot.result);
            slot.inserted = true;
          }
          results.push_back(slot.result.get());
        }
        // Release this request's in-flight registrations: async mode plans
        // concurrently with emission, so they are not cleared wholesale the
        // way the sync paths do (there the map is already empty here).
        for (const PendingRequest::UnitRef& ref : request.units) {
          if (!ref.pending) continue;
          auto it = in_flight_.find(ref.pending->key);
          if (it != in_flight_.end() && it->second == ref.pending) {
            in_flight_.erase(it);
          }
        }
      }

      if (!unit_error.empty()) {
        if (!unit_error_code.empty()) span.outcome = unit_error_code;
        if (unit_error_code == "deadline_exceeded") {
          metrics_.deadline_exceeded->Inc();
        }
        if (unit_error_code == "deadline_exceeded" && try_degrade()) {
          // A worker observed the deadline before the coordinator did
          // (unordered mode); same fallback applies.
        } else {
          metrics_.errors->Inc();
          response.Set("id", request.id)
              .Set("line", request.line)
              .Set("error", unit_error);
          if (!unit_error_code.empty()) {
            response.Set("error_code", unit_error_code);
          }
        }
      } else {
        metrics_.ok->Inc();
        response.Set("id", request.id)
            .Set("op", OpName(request.request.op))
            .Set("result", ComposeResponse(request.request, results));
      }
    }
  }

  const std::int64_t serialize_start = obs::NowNanos();
  std::string text = response.ToString();
  span.serialize_ns = obs::NowNanos() - serialize_start;
  metrics_.serialize->Record(span.serialize_ns);

  if (options_.trace) {
    response.Set("trace", span.ToJson());
    text = response.ToString();
  }
  if (trace_out_.is_open()) {
    trace_out_ << span.ToFileJson().ToString() << "\n";
    trace_out_.flush();
  }

  // Observability fan-out: every rendered request lands in the /tracez
  // ring, the SLO window (when configured), and the front-end's hook.
  // None of these touch `text`, so the output stream stays byte-identical.
  {
    const std::int64_t done_ns = obs::NowNanos();
    obs::CompletedSpan completed;
    completed.trace_id = span.trace_id;
    completed.id = request.id.is_string() ? request.id.AsString()
                                          : request.id.ToString();
    completed.op = span.op;
    completed.ok = response.Find("error") == nullptr;
    if (!completed.ok) {
      if (const JsonValue* code = response.Find("error_code")) {
        completed.error_code = code->AsString();
      }
    }
    completed.queue_wait_ns = span.queue_wait_ns;
    completed.solve_ns = span.solve_ns;
    completed.total_ns = done_ns - request.planned_ns;
    trace_ring_.Record(completed);
    if (slo_ != nullptr) {
      slo_->Record(completed.ok, completed.total_ns, done_ns);
    }
    if (completion_hook_) completion_hook_(completed);
  }
  return text;
}

void BatchEngine::EmitRequest(PendingRequest& request, std::ostream& out) {
  out << RenderRequest(request) << "\n";
}

bool BatchEngine::HandleCommandLine(const std::string& line,
                                    std::string* response) {
  JsonValue json;
  try {
    json = ParseJson(line, options_.max_json_depth);
  } catch (const Error&) {
    return false;  // not even JSON; let the request path report it
  }
  if (!json.is_object()) return false;
  const JsonValue* cmd = json.Find("cmd");
  if (cmd == nullptr) return false;
  if (cmd->is_string() && cmd->AsString() == "stats") {
    *response = StatsSnapshotJson().ToString();
  } else if (cmd->is_string() &&
             command_hooks_.count(cmd->AsString()) != 0) {
    *response = command_hooks_.at(cmd->AsString())(json).ToString();
  } else {
    std::string expected = "\"stats\"";
    for (const auto& [name, hook] : command_hooks_) {
      expected += ", \"" + name + "\"";
    }
    JsonValue error = JsonValue::Object();
    error.Set("error", "unknown cmd; expected " + expected);
    *response = error.ToString();
  }
  return true;
}

void BatchEngine::RegisterCommand(const std::string& name, CommandHook hook) {
  command_hooks_[name] = std::move(hook);
}

bool BatchEngine::MaybeHandleCommand(const std::string& line,
                                     std::ostream& out) {
  std::string response;
  if (!HandleCommandLine(line, &response)) return false;
  out << response << "\n";
  return true;
}

void BatchEngine::ProcessStream(std::istream& in, std::ostream& out,
                                bool streaming) {
  std::string line;
  int line_number = 0;
  bool truncated = false;
  const auto reject_long_line = [this](int number) {
    return RejectedLine(
        number,
        "input line exceeds max_line_bytes (" +
            std::to_string(options_.max_line_bytes) + ")",
        "line_too_long");
  };
  if (streaming) {
    while (framing::ReadBoundedLine(in, line, options_.max_line_bytes, &truncated)) {
      ++line_number;
      if (truncated) {
        EmitRequest(*reject_long_line(line_number), out);
        out.flush();
        continue;
      }
      if (IsBlank(line)) continue;
      // Cheap substring guard: only lines that could carry a "cmd" key pay
      // for the extra parse. Requests never contain one (the strict parser
      // rejects it as an unknown field).
      if (line.find("\"cmd\"") != std::string::npos &&
          MaybeHandleCommand(line, out)) {
        out.flush();
        continue;
      }
      std::unique_ptr<PendingRequest> request = PlanLine(line, line_number);
      EmitRequest(*request, out);
      out.flush();
      in_flight_.clear();
    }
    return;
  }

  std::vector<std::unique_ptr<PendingRequest>> planned;
  while (framing::ReadBoundedLine(in, line, options_.max_line_bytes, &truncated)) {
    ++line_number;
    if (truncated) {
      planned.push_back(reject_long_line(line_number));
      continue;
    }
    if (IsBlank(line)) continue;
    planned.push_back(PlanLine(line, line_number));
  }
  in_flight_.clear();  // emission takes over; new batches plan afresh

  if (!options_.unordered) {
    for (const std::unique_ptr<PendingRequest>& request : planned) {
      EmitRequest(*request, out);
    }
    return;
  }

  // Unordered: emit each request as soon as its last unit completes.
  auto ready = [](const PendingRequest& request) {
    if (!request.parse_error.empty()) return true;
    for (const PendingRequest::UnitRef& ref : request.units) {
      if (ref.pending && !ref.pending->done) return false;
    }
    return true;
  };
  std::vector<bool> emitted(planned.size(), false);
  std::size_t remaining = planned.size();
  while (remaining > 0) {
    std::size_t next = planned.size();
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [&] {
        for (std::size_t i = 0; i < planned.size(); ++i) {
          if (!emitted[i] && ready(*planned[i])) {
            next = i;
            return true;
          }
        }
        return false;
      });
    }
    EmitRequest(*planned[next], out);
    emitted[next] = true;
    --remaining;
  }
}

void BatchEngine::RunBatch(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*streaming=*/false);
}

void BatchEngine::Serve(std::istream& in, std::ostream& out) {
  ProcessStream(in, out, /*streaming=*/true);
}

void BatchEngine::StartAsync() {
  if (emitter_.joinable()) return;
  async_stop_ = false;
  emitter_ = std::thread([this] { EmitterLoop(); });
}

void BatchEngine::SubmitLineAsync(
    const std::string& line, int line_number,
    std::shared_ptr<const resilience::CancelToken> parent, bool oversized,
    ResponseCallback done) {
  AsyncItem item;
  item.done = std::move(done);
  if (oversized) {
    std::lock_guard<std::mutex> lock(plan_mutex_);
    item.request = RejectedLine(
        line_number,
        "input line exceeds max_line_bytes (" +
            std::to_string(options_.max_line_bytes) + ")",
        "line_too_long");
  } else {
    // Command lines are classified here but rendered at emission, so a
    // pipelined {"cmd":"stats"} reflects every request submitted before it.
    bool is_command = false;
    if (line.find("\"cmd\"") != std::string::npos) {
      try {
        const JsonValue json = ParseJson(line, options_.max_json_depth);
        is_command = json.is_object() && json.Find("cmd") != nullptr;
      } catch (const Error&) {
        is_command = false;
      }
    }
    if (is_command) {
      item.command_line = line;
    } else {
      std::lock_guard<std::mutex> lock(plan_mutex_);
      item.request = PlanLine(line, line_number, std::move(parent));
    }
  }
  {
    std::lock_guard<std::mutex> lock(async_mutex_);
    ++async_pending_;
    async_queue_.push_back(std::move(item));
  }
  async_cv_.notify_all();
}

void BatchEngine::EmitterLoop() {
  for (;;) {
    AsyncItem item;
    {
      std::unique_lock<std::mutex> lock(async_mutex_);
      async_cv_.wait(lock,
                     [this] { return async_stop_ || !async_queue_.empty(); });
      if (async_queue_.empty()) return;  // stopped and fully drained
      item = std::move(async_queue_.front());
      async_queue_.pop_front();
    }
    std::string text;
    if (item.request != nullptr) {
      text = RenderRequest(*item.request);
    } else if (!HandleCommandLine(item.command_line, &text)) {
      // Unreachable: SubmitLineAsync only queues lines that classified as
      // commands, and classification and handling parse identically.
      JsonValue error = JsonValue::Object();
      error.Set("error", "internal: command line failed to parse");
      text = error.ToString();
    }
    if (item.done) item.done(std::move(text));
    {
      std::lock_guard<std::mutex> lock(async_mutex_);
      --async_pending_;
    }
    async_cv_.notify_all();
  }
}

void BatchEngine::DrainAsync() {
  std::unique_lock<std::mutex> lock(async_mutex_);
  async_cv_.wait(lock, [this] { return async_pending_ == 0; });
}

void BatchEngine::StopAsync() {
  if (!emitter_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(async_mutex_);
    async_stop_ = true;
  }
  async_cv_.notify_all();
  emitter_.join();
}

void BatchEngine::WriteStatsLine(std::ostream& out) const {
  out << stats().ToJson(cache_).ToString() << "\n";
}

}  // namespace sparsedet::engine
