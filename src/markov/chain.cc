#include "markov/chain.h"

#include "common/check.h"

namespace sparsedet {

MarkovChain::MarkovChain(DenseMatrix transition)
    : transition_(std::move(transition)) {
  SPARSEDET_REQUIRE(transition_.rows() == transition_.cols(),
                    "transition matrix must be square");
  SPARSEDET_REQUIRE(transition_.RowSumsAtMostOne(1e-6),
                    "transition rows must be (sub-)stochastic");
}

std::vector<double> MarkovChain::Propagate(
    const std::vector<double>& dist) const {
  return transition_.LeftApply(dist);
}

std::vector<double> MarkovChain::PropagateSteps(const std::vector<double>& dist,
                                                int steps) const {
  SPARSEDET_REQUIRE(steps >= 0, "step count must be >= 0");
  std::vector<double> cur = dist;
  for (int i = 0; i < steps; ++i) cur = Propagate(cur);
  return cur;
}

std::vector<double> MarkovChain::InitialAt(std::size_t state) const {
  SPARSEDET_REQUIRE(state < num_states(), "initial state out of range");
  std::vector<double> dist(num_states(), 0.0);
  dist[state] = 1.0;
  return dist;
}

}  // namespace sparsedet
