// Generic finite Markov chain over states {0, ..., n-1}.
//
// The paper's Eq. 12 propagates an initial distribution u through a product
// of per-stage transition matrices; this class owns one (possibly
// sub-stochastic) transition matrix and provides the propagation.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace sparsedet {

class MarkovChain {
 public:
  // Requires a square matrix with non-negative entries and row sums <= 1 +
  // tolerance (sub-stochastic rows model the paper's truncated chains).
  explicit MarkovChain(DenseMatrix transition);

  std::size_t num_states() const { return transition_.rows(); }
  const DenseMatrix& transition() const { return transition_; }

  // dist * T. Requires dist.size() == num_states().
  std::vector<double> Propagate(const std::vector<double>& dist) const;

  // dist * T^steps, applied iteratively (cheaper than forming T^steps for
  // one distribution). steps >= 0.
  std::vector<double> PropagateSteps(const std::vector<double>& dist,
                                     int steps) const;

  // The distribution concentrated at `state`.
  std::vector<double> InitialAt(std::size_t state) const;

 private:
  DenseMatrix transition_;
};

}  // namespace sparsedet
