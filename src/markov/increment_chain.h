// Markov chains whose state is "total detection reports so far" and whose
// transitions add an increment drawn from a per-stage pmf (paper
// Figures 5-7). Because the increment distribution does not depend on the
// current state, the transition matrix is an upper-shift band matrix; we
// provide both the explicit matrix (paper-literal, Eq. 12) and a direct
// propagation that never materializes it. Tests assert the two agree.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "prob/pmf.h"

namespace sparsedet {

// Builds the (num_states x num_states) transition matrix T with
// T[s][s+m] = step[m]. Mass that would land beyond the last state is
// dropped when `saturate_top` is false (truncated chain; rows become
// sub-stochastic) or accumulated into the last state when true (merged
// ">= top" state, as the paper suggests when only P[X >= k] is needed).
// Requires num_states >= 1.
DenseMatrix BuildIncrementTransitionMatrix(const Pmf& step,
                                           std::size_t num_states,
                                           bool saturate_top);

// dist * T for the matrix above, computed in O(num_states * |step|).
// `dist.size()` fixes the state count.
std::vector<double> PropagateIncrement(const std::vector<double>& dist,
                                       const Pmf& step, bool saturate_top);

// Applies PropagateIncrement `steps` times.
std::vector<double> PropagateIncrementSteps(const std::vector<double>& dist,
                                            const Pmf& step, int steps,
                                            bool saturate_top);

}  // namespace sparsedet
