#include "markov/increment_chain.h"

#include <algorithm>

#include "common/arena.h"
#include "common/check.h"
#include "resilience/cancel.h"
#include "simd/simd.h"

namespace sparsedet {

DenseMatrix BuildIncrementTransitionMatrix(const Pmf& step,
                                           std::size_t num_states,
                                           bool saturate_top) {
  SPARSEDET_REQUIRE(num_states >= 1, "a chain needs at least one state");
  DenseMatrix t(num_states, num_states);
  const std::size_t top = num_states - 1;
  for (std::size_t s = 0; s < num_states; ++s) {
    for (std::size_t m = 0; m < step.size(); ++m) {
      const double p = step[m];
      if (p == 0.0) continue;
      const std::size_t target = s + m;
      if (target <= top) {
        t(s, target) += p;
      } else if (saturate_top) {
        t(s, top) += p;
      }
    }
  }
  return t;
}

namespace {

// Index one past the last nonzero entry (at least 1 so the state vector
// never degenerates). Entries beyond it contribute exact zeros to every
// target, so skipping them wholesale changes no bits.
std::size_t SupportEnd(const double* v, std::size_t n) {
  while (n > 1 && v[n - 1] == 0.0) --n;
  return n;
}

// One increment step, m-major: out = dist * T, accumulated into out.
//
// PRECONDITION: out[0, n) holds exact +0.0 on entry (a fresh
// value-initialized vector, or a prefix the caller re-zeroed). The caller
// owns the fill so the ping-pong loop in PropagateIncrementSteps can zero
// only the live prefix instead of the whole state vector every step.
//
// The historical kernel walked states s-major with a scalar inner loop
// over the step pmf; this walks the step pmf outer and the states inner.
// For a fixed target state t = s + m that reorders the per-t accumulation
// from m-descending to m-ascending — an intentional, documented
// FP-summation-order change (docs/PERFORMANCE.md); every consumer pins
// propagated values to >= 1e-13 tolerances, and determinism is unaffected
// because the new order is just as fixed as the old one. Only entries
// dist[0..support) can be nonzero; the zero suffix is skipped wholesale
// (bit-exact: it only ever adds +0). The non-saturating path fuses taps
// four at a time through simd::Kernels::conv4, which keeps the identical
// per-element ascending-m order while loading/storing each out element
// once per four taps; conv4 also applies interior zero taps, which is
// bit-neutral on the non-negative masses that flow through here (an exact
// +0.0 contribution cannot move a finite non-negative accumulator).
void PropagateIncrementInto(const double* dist, std::size_t n,
                            std::size_t support, const Pmf& step,
                            std::size_t step_support, bool saturate_top,
                            double* out) {
  const std::size_t top = n - 1;
  const simd::Kernels& kern = simd::Active();
  const double* taps = step.mass().data();
  if (!saturate_top) {
    std::size_t m = 0;
    for (; m + 4 <= step_support && m < n; m += 4) {
      resilience::CancellationPoint();
      kern.conv4(taps + m, dist, support, out + m, n - m);
    }
    for (; m < step_support && m < n; ++m) {
      const double p = taps[m];
      if (p == 0.0) continue;
      kern.axpy(p, dist, out + m, std::min(support, n - m));
    }
    return;
  }
  for (std::size_t m = 0; m < step_support; ++m) {
    const double p = taps[m];
    if (p == 0.0) continue;
    resilience::CancellationPoint();
    // States s < n - m land in range at s + m; the rest overflow.
    const std::size_t in_range = m < n ? std::min(support, n - m) : 0;
    kern.axpy(p, dist, out + m, in_range);
    for (std::size_t s = in_range; s < support; ++s) out[top] += p * dist[s];
  }
}

}  // namespace

std::vector<double> PropagateIncrement(const std::vector<double>& dist,
                                       const Pmf& step, bool saturate_top) {
  SPARSEDET_REQUIRE(!dist.empty(), "distribution must be non-empty");
  std::vector<double> out(dist.size());  // value-initialized: all +0.0
  PropagateIncrementInto(dist.data(), dist.size(),
                         SupportEnd(dist.data(), dist.size()), step,
                         SupportEnd(step.mass().data(), step.size()),
                         saturate_top, out.data());
  return out;
}

std::vector<double> PropagateIncrementSteps(const std::vector<double>& dist,
                                            const Pmf& step, int steps,
                                            bool saturate_top) {
  SPARSEDET_REQUIRE(steps >= 0, "step count must be >= 0");
  if (steps == 0) return dist;
  SPARSEDET_REQUIRE(!dist.empty(), "distribution must be non-empty");
  const std::size_t n = dist.size();
  std::vector<double> cur = dist;

  // Ping-pong through one arena buffer instead of allocating a fresh
  // vector per step; the support grows by at most the step pmf's top
  // nonzero index per iteration, which bounds each pass to the live
  // prefix of the state vector. Each buffer only needs its *dirty* prefix
  // re-zeroed before serving as the destination; beyond it both buffers
  // are exact +0.0 (the scratch is born zeroed, and cur's suffix is
  // normalized below — SupportEnd guarantees it holds only zeros, but a
  // caller-supplied -0.0 must become the +0.0 the historical full fill
  // produced).
  common::ScratchArena::Frame frame;
  const std::size_t step_support =
      SupportEnd(step.mass().data(), step.size());
  const std::size_t step_growth = step_support - 1;
  std::size_t support = SupportEnd(cur.data(), n);
  std::fill(cur.data() + support, cur.data() + n, 0.0);
  double* src = cur.data();
  double* dst = frame.AllocZeroed(n);
  std::size_t dirty_src = support;
  std::size_t dirty_dst = 0;
  for (int i = 0; i < steps; ++i) {
    std::fill(dst, dst + dirty_dst, 0.0);
    PropagateIncrementInto(src, n, support, step, step_support, saturate_top,
                           dst);
    support = std::min(n, support + step_growth);
    dirty_dst = support;
    // Saturation parks overflow mass on the top state, past the
    // contiguous prefix — but only when the prefix has already reached
    // the top, so the dirty extent above still covers it.
    std::swap(src, dst);
    std::swap(dirty_src, dirty_dst);
  }
  if (src != cur.data()) std::copy(src, src + n, cur.data());
  return cur;
}

}  // namespace sparsedet
