#include "markov/increment_chain.h"

#include "common/check.h"
#include "resilience/cancel.h"

namespace sparsedet {

DenseMatrix BuildIncrementTransitionMatrix(const Pmf& step,
                                           std::size_t num_states,
                                           bool saturate_top) {
  SPARSEDET_REQUIRE(num_states >= 1, "a chain needs at least one state");
  DenseMatrix t(num_states, num_states);
  const std::size_t top = num_states - 1;
  for (std::size_t s = 0; s < num_states; ++s) {
    for (std::size_t m = 0; m < step.size(); ++m) {
      const double p = step[m];
      if (p == 0.0) continue;
      const std::size_t target = s + m;
      if (target <= top) {
        t(s, target) += p;
      } else if (saturate_top) {
        t(s, top) += p;
      }
    }
  }
  return t;
}

std::vector<double> PropagateIncrement(const std::vector<double>& dist,
                                       const Pmf& step, bool saturate_top) {
  SPARSEDET_REQUIRE(!dist.empty(), "distribution must be non-empty");
  const std::size_t top = dist.size() - 1;
  std::vector<double> out(dist.size(), 0.0);
  for (std::size_t s = 0; s < dist.size(); ++s) {
    resilience::CancellationPoint();
    const double a = dist[s];
    if (a == 0.0) continue;
    for (std::size_t m = 0; m < step.size(); ++m) {
      const double p = step[m];
      if (p == 0.0) continue;
      const std::size_t target = s + m;
      if (target <= top) {
        out[target] += a * p;
      } else if (saturate_top) {
        out[top] += a * p;
      }
    }
  }
  return out;
}

std::vector<double> PropagateIncrementSteps(const std::vector<double>& dist,
                                            const Pmf& step, int steps,
                                            bool saturate_top) {
  SPARSEDET_REQUIRE(steps >= 0, "step count must be >= 0");
  std::vector<double> cur = dist;
  for (int i = 0; i < steps; ++i) {
    resilience::CancellationPoint();
    cur = PropagateIncrement(cur, step, saturate_top);
  }
  return cur;
}

}  // namespace sparsedet
