// The sparsedet CLI subcommands, as testable functions.
//
//   sparsedet analyze  [scenario flags]          analytical report
//   sparsedet simulate [scenario flags] [--trials --motion --geometry ...]
//   sparsedet plan     [scenario flags] [--target-detection --max-fa ...]
//   sparsedet fa       [scenario flags] [--pf --trials ...]
//   sparsedet sweep    [scenario flags] --param <name> --from --to --step
//   sparsedet latency  [scenario flags]          first-passage table
//   sparsedet trace    [scenario flags] --prefix <path>  export one trial
//   sparsedet batch    --input <file|-> [--threads --passes --unordered
//                       --trace --trace-file ...]
//   sparsedet optimize --spec <file> | [--objective --mode --search-* ...]
//                       inverse deployment search (docs/OPTIMIZER.md)
//   sparsedet adapt    --spec <file> | [--mode --failure-model --search-*
//                       --min-detection ...]   self-healing k/M retune loop
//   sparsedet serve    [--threads --cache-capacity --trace ...]  JSONL loop
//   sparsedet serve-tcp [serve flags --host --port --max-connections
//                       --tenant-qps --tenant-burst --idle-timeout-ms
//                       --memo-snapshot]           concurrent TCP server
//   sparsedet metrics-dump --input <file|-> [--format table|prometheus|json]
//
// Each command returns a process exit code and writes to `out` / `err`, so
// tests can drive them directly.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace sparsedet::cli {

// Dispatches argv (argv[1] is the subcommand). Returns the exit code.
int Run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

// Individual commands; `args` excludes the program and command names.
int CmdAnalyze(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
int CmdSimulate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
int CmdPlan(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);
int CmdFa(const std::vector<std::string>& args, std::ostream& out,
          std::ostream& err);
int CmdSweep(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);
int CmdLatency(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
int CmdTrace(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);
// `batch` reads JSONL requests from --input (default "-": `in`, normally
// stdin) and exits when drained; `serve` loops over `in` line-by-line with
// per-request error isolation. Both write one JSON line per request.
int CmdBatch(const std::vector<std::string>& args, std::istream& in,
             std::ostream& out, std::ostream& err);
// `optimize` runs the inverse-deployment search (src/opt/): a constrained
// sweep-and-refine over (N, k, M, t, duty) with the batch engine as its
// inner-solve backend. The spec comes from --spec <file> or from
// spec-building flags; output is one JSON result line (frontier mode: one
// line per frontier point plus a summary). Exit 1 = the search completed
// and nothing was feasible; a deadline partial still exits 0, tagged
// "degraded": true.
int CmdOptimize(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
// `adapt` runs the self-healing loop (src/adapt/): per epoch it thins the
// fleet by the configured failure model, (optionally) re-estimates the live
// population from quiescent report counts, and retunes (k, M) over the
// search axes to the cheapest setting holding --min-detection under the FA
// cap. Output is one JSON line per epoch plus a summary. Exit 1 = the loop
// ran to completion and some epoch had no feasible setting; a deadline
// partial still exits 0, tagged "degraded": true.
int CmdAdapt(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);
int CmdServe(const std::vector<std::string>& args, std::istream& in,
             std::ostream& out, std::ostream& err);
// `serve-tcp` runs the epoll TCP front-end (src/server/) until SIGTERM or
// SIGINT triggers a graceful drain; prints a {"listening":...} line with
// the bound port first, and a final {"stats":...} line after drain.
int CmdServeTcp(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
// `metrics-dump` re-renders a metrics snapshot (a saved {"cmd":"stats"}
// response, or any line of piped serve output carrying a "metrics" object)
// as a table, Prometheus text exposition, or normalized JSON.
int CmdMetricsDump(const std::vector<std::string>& args, std::istream& in,
                   std::ostream& out, std::ostream& err);

// Full usage text.
std::string Usage();

}  // namespace sparsedet::cli
