// Entry point of the `sparsedet` command-line tool.
#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  return sparsedet::cli::Run(argc, argv, std::cout, std::cerr);
}
