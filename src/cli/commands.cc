#include "cli/commands.h"

#include <cmath>
#include <csignal>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <numbers>
#include <sstream>

#include "adapt/adapt.h"
#include "adapt/spec.h"
#include "cli/flags.h"
#include "common/framing.h"
#include "server/tcp_server.h"
#include "common/check.h"
#include "common/json.h"
#include "common/table.h"
#include "common/error.h"
#include "core/analysis.h"
#include "core/false_alarm_model.h"
#include "core/latency.h"
#include "core/ms_approach.h"
#include "engine/engine.h"
#include "obs/log.h"
#include "opt/backend.h"
#include "opt/optimizer.h"
#include "opt/spec.h"
#include "prob/memo_cache.h"
#include "prob/memo_snapshot.h"
#include "obs/metrics.h"
#include "sim/trace_io.h"
#include "detect/system_fa.h"
#include "sim/monte_carlo.h"

namespace sparsedet::cli {
namespace {

std::vector<const char*> ToArgv(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) argv.push_back(a.c_str());
  return argv;
}

// Scenario flags shared by every subcommand.
SystemParams ParseScenario(FlagParser& flags) {
  SystemParams p = SystemParams::OnrDefaults();
  p.field_width = flags.GetDouble("field-width", p.field_width,
                                  "field width in meters");
  p.field_height = flags.GetDouble("field-height", p.field_height,
                                   "field height in meters");
  p.num_nodes = flags.GetInt("nodes", p.num_nodes, "number of sensor nodes");
  p.sensing_range =
      flags.GetDouble("rs", p.sensing_range, "sensing range Rs in meters");
  p.comm_range = flags.GetDouble("rc", p.comm_range,
                                 "communication range in meters");
  p.detect_prob =
      flags.GetDouble("pd", p.detect_prob, "in-range detection probability");
  p.period_length =
      flags.GetDouble("period", p.period_length, "sensing period t in s");
  p.target_speed =
      flags.GetDouble("speed", p.target_speed, "target speed V in m/s");
  p.window_periods = flags.GetInt("window", p.window_periods,
                                  "decision window M in periods");
  p.threshold_reports =
      flags.GetInt("k", p.threshold_reports, "reports required within M");
  return p;
}

MsApproachOptions ParseMsOptions(FlagParser& flags) {
  MsApproachOptions opt;
  opt.gh = flags.GetInt("gh", opt.gh, "Head-stage sensor cap");
  opt.g = flags.GetInt("g", opt.g, "Body/Tail-stage sensor cap");
  opt.normalize =
      flags.GetBool("normalize", opt.normalize, "apply Eq. 13 normalization");
  opt.node_reliability = flags.GetDouble(
      "reliability", opt.node_reliability, "node survival probability");
  return opt;
}

// Engine flags shared by batch / serve / serve-tcp, so the three
// front-ends cannot drift apart in what they accept.
engine::EngineOptions ParseEngineOptions(FlagParser& flags) {
  engine::EngineOptions options;
  options.threads = static_cast<std::size_t>(
      flags.GetInt("threads", 0, "worker threads (0 = hardware)"));
  options.cache_capacity = static_cast<std::size_t>(flags.GetInt(
      "cache-capacity", 4096, "LRU result-cache entries (0 disables)"));
  options.solver_threads = static_cast<std::size_t>(flags.GetInt(
      "solver-threads", 1,
      "intra-solve ParallelFor width per unit (0 = hardware)"));
  options.memo_cache_entries = static_cast<std::size_t>(flags.GetInt(
      "memo-cache-entries", 4096,
      "solver memo-cache entries shared across requests (0 disables)"));
  options.trace = flags.GetBool(
      "trace", false, "attach a \"trace\" span object to response lines");
  options.trace_file = flags.GetString(
      "trace-file", "", "write one span JSON line per request to this file");
  options.max_queue = static_cast<std::size_t>(flags.GetInt(
      "max-queue", 0, "reject requests past this pool backlog (0 = off)"));
  options.max_line_bytes = static_cast<std::size_t>(flags.GetInt(
      "max-line-bytes", 1 << 20, "reject longer input lines (0 = off)"));
  options.retry.max_attempts = flags.GetInt(
      "retry-max", 3, "attempts per unit under transient faults");
  options.retry.base_delay_ms = flags.GetInt(
      "retry-base-ms", 1, "base backoff delay between retries");
  options.watchdog_stuck_ms = flags.GetInt(
      "watchdog-stuck-ms", 0, "cancel units stuck longer (0 = off)");
  options.fault_config = flags.GetString(
      "fault-inject", "", "FaultInjector JSON config (testing)");
  options.slo.availability = flags.GetDouble(
      "slo-availability", 0.0,
      "availability objective, e.g. 0.999 (0 = no availability SLO)");
  options.slo.p99_ms = flags.GetInt(
      "slo-p99-ms", 0, "p99 latency objective in ms (0 = no latency SLO)");
  options.slo.window_s = flags.GetInt(
      "slo-window-s", 300, "rolling SLO window in seconds");
  return options;
}

// Structured-log flags shared by the long-running front-ends. Configures
// the process-wide logger; with no flags given this re-applies the
// defaults (stderr, info, 50 lines per event per second).
void ConfigureLogging(FlagParser& flags) {
  obs::LogOptions log;
  log.path = flags.GetString(
      "log-file", "", "structured JSONL log file (empty = stderr)");
  const std::string level = flags.GetString(
      "log-level", "info", "minimum log level: debug|info|warn|error");
  SPARSEDET_REQUIRE(obs::ParseLogLevel(level, &log.min_level),
                    "--log-level must be debug, info, warn or error");
  log.max_per_key_per_sec = static_cast<std::uint64_t>(flags.GetInt(
      "log-rate-limit", 50,
      "max lines per (component, event) per second (0 = unlimited)"));
  obs::StructuredLog::Global().Configure(log);
}

// One optimizer search axis as a "from:to[:step]" flag (step defaults to
// 1). An absent flag leaves the axis unset: fixed at the scenario value.
opt::AxisSpec ParseAxisFlag(FlagParser& flags, const std::string& name,
                            const std::string& help) {
  const std::string text = flags.GetString(name, "", help);
  opt::AxisSpec axis;
  if (text.empty()) return axis;
  std::vector<double> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    const std::string piece =
        colon == std::string::npos ? text.substr(start)
                                   : text.substr(start, colon - start);
    std::size_t used = 0;
    double value = 0.0;
    bool ok = !piece.empty();
    if (ok) {
      try {
        value = std::stod(piece, &used);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    SPARSEDET_REQUIRE(ok && used == piece.size(),
                      "--" + name + " must be from:to[:step], got \"" + text +
                          "\"");
    parts.push_back(value);
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  SPARSEDET_REQUIRE(parts.size() == 2 || parts.size() == 3,
                    "--" + name + " must be from:to[:step], got \"" + text +
                        "\"");
  axis.set = true;
  axis.from = parts[0];
  axis.to = parts[1];
  axis.step = parts.size() == 3 ? parts[2] : 1.0;
  return axis;
}

// SIGTERM/SIGINT target for serve-tcp. RequestDrain() is async-signal-safe
// (a single eventfd write), so this handler is too.
server::TcpServer* g_drain_target = nullptr;

void HandleDrainSignal(int) {
  if (g_drain_target != nullptr) g_drain_target->RequestDrain();
}

int Guard(std::ostream& err, const std::function<int()>& body) {
  try {
    return body();
  } catch (const InvalidArgument& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    err << "internal error: " << e.what() << "\n";
    return 3;
  }
}

}  // namespace

int CmdAnalyze(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    const SystemParams params = ParseScenario(flags);
    const MsApproachOptions options = ParseMsOptions(flags);
    const std::string format =
        flags.GetString("format", "text", "output format: text | json");
    flags.Finish();
    SPARSEDET_REQUIRE(format == "text" || format == "json",
                      "--format must be text or json");
    const ScenarioReport report = AnalyzeScenario(params, options);
    if (format == "json") {
      JsonValue json = JsonValue::Object();
      json.Set("nodes", params.num_nodes)
          .Set("speed_mps", params.target_speed)
          .Set("k", params.threshold_reports)
          .Set("window_periods", params.window_periods)
          .Set("ms", report.ms)
          .Set("detection_probability", report.detection_probability)
          .Set("exact_detection_probability",
               report.exact_detection_probability)
          .Set("unnormalized_detection_probability",
               report.unnormalized_detection_probability)
          .Set("predicted_accuracy", report.predicted_accuracy)
          .Set("single_period_detection", report.single_period_detection)
          .Set("instantaneous_detection", report.instantaneous_detection)
          .Set("required_gh_99", report.required_caps_99.gh)
          .Set("required_g_99", report.required_caps_99.g)
          .Set("ms_states", report.ms_states)
          .Set("t_approach_states", report.t_approach_states);
      out << json.ToString() << "\n";
    } else {
      out << report.Summary();
    }
    return 0;
  });
}

int CmdSimulate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    TrialConfig config;
    config.params = ParseScenario(flags);

    MonteCarloOptions mc;
    mc.trials = flags.GetInt("trials", 10000, "Monte-Carlo trials");
    mc.seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", 20080617, "base RNG seed"));
    config.false_alarm_prob = flags.GetDouble(
        "pf", 0.0, "per-node per-period false alarm probability");
    config.node_reliability =
        flags.GetDouble("reliability", 1.0, "node survival probability");
    const std::string motion = flags.GetString(
        "motion", "straight", "target motion: straight | random-walk");
    const std::string geometry = flags.GetString(
        "geometry", "toroidal", "sensing geometry: toroidal | planar");
    const int h =
        flags.GetInt("h", 1, "distinct reporting nodes required (>= 1)");
    const std::string format =
        flags.GetString("format", "text", "output format: text | json");
    flags.Finish();
    SPARSEDET_REQUIRE(format == "text" || format == "json",
                      "--format must be text or json");

    config.geometry = geometry == "planar" ? SensingGeometry::kPlanar
                                           : SensingGeometry::kToroidal;
    SPARSEDET_REQUIRE(geometry == "planar" || geometry == "toroidal",
                      "--geometry must be toroidal or planar");
    std::unique_ptr<MotionModel> model;
    if (motion == "random-walk") {
      model = std::make_unique<RandomWalkMotion>(std::numbers::pi / 4.0);
    } else {
      SPARSEDET_REQUIRE(motion == "straight",
                        "--motion must be straight or random-walk");
      model = std::make_unique<StraightLineMotion>();
    }
    config.motion = model.get();

    const ProportionEstimate est =
        h > 1 ? EstimateKNodeDetectionProbability(config, h, mc)
              : EstimateDetectionProbability(config, mc);
    if (format == "json") {
      JsonValue json = JsonValue::Object();
      json.Set("trials", est.trials)
          .Set("detections", est.successes)
          .Set("detection_probability", est.point)
          .Set("ci_lo", est.lo)
          .Set("ci_hi", est.hi);
      out << json.ToString() << "\n";
    } else {
      out << "trials            : " << est.trials << "\n"
          << "detections        : " << est.successes << "\n"
          << "P[detect]         : " << est.point << "\n"
          << "95% Wilson CI     : [" << est.lo << ", " << est.hi << "]\n";
    }
    return 0;
  });
}

int CmdPlan(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    SystemParams params = ParseScenario(flags);
    const double target = flags.GetDouble(
        "target-detection", 0.9, "required detection probability");
    const double pf = flags.GetDouble(
        "pf", 0.0, "per-node per-period false alarm probability");
    const double max_fa = flags.GetDouble(
        "max-fa", 0.01, "max system false alarm probability per window");
    const int max_nodes =
        flags.GetInt("max-nodes", 500, "largest fleet to consider");
    flags.Finish();
    SPARSEDET_REQUIRE(target > 0.0 && target < 1.0,
                      "--target-detection must be in (0, 1)");

    // Step 1: threshold k from the FA requirement (count-only bound at the
    // largest candidate fleet).
    if (pf > 0.0) {
      params.num_nodes = max_nodes;
      params.threshold_reports = MinimumThresholdForFaRate(params, pf, max_fa);
      out << "k = " << params.threshold_reports
          << " (bounds count-only P_sysFA <= " << max_fa << " at pf = " << pf
          << ")\n";
    } else {
      out << "k = " << params.threshold_reports << " (no FA requirement)\n";
    }

    // Step 2: smallest fleet meeting the detection target.
    for (int nodes = 20; nodes <= max_nodes; nodes += 10) {
      params.num_nodes = nodes;
      if (params.threshold_reports > nodes * params.window_periods) continue;
      const double detect =
          MsApproachAnalyze(params).detection_probability;
      if (detect >= target) {
        out << "N = " << nodes << " sensors reach P[detect] = " << detect
            << " >= " << target << "\n";
        return 0;
      }
    }
    out << "no fleet up to " << max_nodes << " nodes reaches " << target
        << "\n";
    return 1;
  });
}

int CmdFa(const std::vector<std::string>& args, std::ostream& out,
          std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    SystemParams params = ParseScenario(flags);
    const double pf = flags.GetDouble(
        "pf", 1e-3, "per-node per-period false alarm probability");
    const int trials =
        flags.GetInt("trials", 10000, "no-target windows to simulate");
    const int max_k = flags.GetInt("max-k", 8, "largest k to tabulate");
    flags.Finish();

    out << "expected false reports per window: "
        << ExpectedFalseReportsPerWindow(params, pf) << "\n";
    out << "k  count-only  track-gated\n";
    for (int k = 1; k <= max_k; ++k) {
      params.threshold_reports = k;
      SystemFaOptions opt;
      opt.trials = trials;
      const SystemFaEstimate est = EstimateSystemFaProbability(params, pf, opt);
      out << k << "  " << CountOnlySystemFaProbability(params, pf) << "  "
          << est.gated.point << "\n";
    }
    return 0;
  });
}

int CmdSweep(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    const SystemParams base = ParseScenario(flags);
    const MsApproachOptions options = ParseMsOptions(flags);
    const std::string param = flags.GetString(
        "param", "nodes",
        "parameter to sweep: nodes | speed | k | window | rs | pd");
    const double from = flags.GetDouble("from", 60.0, "sweep start");
    const double to = flags.GetDouble("to", 240.0, "sweep end (inclusive)");
    const double step = flags.GetDouble("step", 20.0, "sweep step");
    const int trials = flags.GetInt(
        "trials", 0, "Monte-Carlo trials per point (0 = analysis only)");
    const std::string csv =
        flags.GetString("csv", "", "optional CSV output path");
    flags.Finish();
    SPARSEDET_REQUIRE(step > 0.0, "--step must be positive");
    SPARSEDET_REQUIRE(to >= from, "--to must be >= --from");

    auto apply = [&](SystemParams& p, double value) {
      if (param == "nodes") {
        p.num_nodes = static_cast<int>(value);
      } else if (param == "speed") {
        p.target_speed = value;
      } else if (param == "k") {
        p.threshold_reports = static_cast<int>(value);
      } else if (param == "window") {
        p.window_periods = static_cast<int>(value);
      } else if (param == "rs") {
        p.sensing_range = value;
      } else if (param == "pd") {
        p.detect_prob = value;
      } else {
        SPARSEDET_REQUIRE(false, "unknown --param: " + param);
      }
    };

    std::vector<std::string> columns{param, "analysis"};
    if (trials > 0) columns.push_back("simulation");
    Table table(columns);
    for (double value = from; value <= to + 1e-9; value += step) {
      SystemParams p = base;
      apply(p, value);
      table.BeginRow();
      table.AddNumber(value, param == "pd" ? 3 : 0);
      table.AddNumber(MsApproachAnalyze(p, options).detection_probability,
                      4);
      if (trials > 0) {
        TrialConfig config;
        config.params = p;
        MonteCarloOptions mc;
        mc.trials = trials;
        table.AddNumber(EstimateDetectionProbability(config, mc).point, 4);
      }
    }
    table.PrintText(out);
    if (!csv.empty()) {
      SPARSEDET_REQUIRE(table.WriteCsvFile(csv),
                        "cannot write CSV to " + csv);
      out << "csv written to " << csv << "\n";
    }
    return 0;
  });
}

int CmdLatency(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    const SystemParams params = ParseScenario(flags);
    const MsApproachOptions options = ParseMsOptions(flags);
    flags.Finish();
    const LatencyDistribution latency = DetectionLatency(params, options);
    out << "P[detected within L periods]:\n";
    for (int l = latency.first_valid_prefix; l <= params.window_periods;
         ++l) {
      out << "  L = " << l << " : " << latency.CdfAt(l) << "\n";
    }
    out << "mean latency | detected : " << latency.MeanConditionalLatency()
        << " periods\n";
    out << "conditional 90th pct    : " << latency.ConditionalQuantile(0.9)
        << " periods\n";
    return 0;
  });
}

int CmdTrace(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    TrialConfig config;
    config.params = ParseScenario(flags);
    config.false_alarm_prob = flags.GetDouble(
        "pf", 0.0, "per-node per-period false alarm probability");
    const std::uint64_t seed = static_cast<std::uint64_t>(
        flags.GetInt("seed", 1, "trial RNG seed"));
    const std::string prefix =
        flags.GetString("prefix", "trial", "output CSV path prefix");
    flags.Finish();

    Rng rng(seed);
    const TrialResult trial = RunTrial(config, rng);
    const TraceFiles files = SaveTrialTrace(trial, prefix);
    out << "trial: " << trial.total_true_reports << " true reports from "
        << trial.distinct_true_nodes << " nodes\n"
        << "wrote " << files.nodes_path << ", " << files.path_path << ", "
        << files.reports_path << "\n";
    return 0;
  });
}

int CmdBatch(const std::vector<std::string>& args, std::istream& in,
             std::ostream& out, std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    const std::string input = flags.GetString(
        "input", "-", "JSONL request file, or - for stdin");
    engine::EngineOptions options = ParseEngineOptions(flags);
    options.unordered = flags.GetBool(
        "unordered", false, "emit completions immediately, tagged by id");
    const int passes =
        flags.GetInt("passes", 1, "process the input this many times");
    const bool stats =
        flags.GetBool("stats", true, "emit a final {\"stats\":...} line");
    flags.Finish();
    SPARSEDET_REQUIRE(passes >= 1, "--passes must be >= 1");
    SPARSEDET_REQUIRE(input != "-" || passes == 1,
                      "--passes > 1 requires a seekable --input file");

    engine::BatchEngine batch_engine(options);
    for (int pass = 0; pass < passes; ++pass) {
      if (input == "-") {
        batch_engine.RunBatch(in, out);
      } else {
        std::ifstream file(input);
        SPARSEDET_REQUIRE(file.good(), "cannot open --input " + input);
        batch_engine.RunBatch(file, out);
      }
    }
    if (stats) batch_engine.WriteStatsLine(out);
    return 0;
  });
}

int CmdServe(const std::vector<std::string>& args, std::istream& in,
             std::ostream& out, std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    engine::EngineOptions options = ParseEngineOptions(flags);
    const bool stats = flags.GetBool(
        "stats", false, "emit a {\"stats\":...} line at end of stream");
    flags.Finish();

    engine::BatchEngine batch_engine(options);
    // {"cmd":"optimize"} lines run the inverse-deployment optimizer with
    // the serve engine as its inner-solve backend. The hook runs
    // synchronously between requests (the streaming loop holds no engine
    // state across lines), so the re-entrant RunBatch is safe.
    opt::SyncEngineBackend optimize_backend(batch_engine);
    batch_engine.RegisterCommand(
        "optimize", [&batch_engine, &optimize_backend](const JsonValue& cmd) {
          return opt::HandleOptimizeCommand(cmd, optimize_backend,
                                            &batch_engine.registry());
        });
    // {"cmd":"adapt"} runs the self-healing adaptation loop on the same
    // synchronous backend; like optimize, the hook runs between requests.
    batch_engine.RegisterCommand(
        "adapt", [&batch_engine, &optimize_backend](const JsonValue& cmd) {
          return adapt::HandleAdaptCommand(cmd, optimize_backend,
                                           &batch_engine.registry());
        });
    if (&out == &std::cout) {
      // A real serving stdout must survive EINTR and partial write(2)s
      // (std::cout's streambuf silently drops the unwritten tail), so route
      // responses through the fd-level writer shared with the TCP server.
      std::signal(SIGPIPE, SIG_IGN);
      out.flush();
      framing::FdWriterBuf fd_buf(1);
      std::ostream fd_out(&fd_buf);
      batch_engine.Serve(in, fd_out);
      if (stats) batch_engine.WriteStatsLine(fd_out);
      fd_out.flush();
    } else {
      batch_engine.Serve(in, out);
      if (stats) batch_engine.WriteStatsLine(out);
    }
    return 0;
  });
}

int CmdOptimize(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);

    // Spec-building flags. All of them are consumed unconditionally (the
    // FlagParser contract), then rejected below if --spec names a file.
    opt::OptimizeSpec spec;
    spec.params = ParseScenario(flags);
    spec.options = ParseMsOptions(flags);
    const std::string objective = flags.GetString(
        "objective", "min_nodes",
        "optimization objective: min_nodes | min_energy | max_detection");
    const std::string mode = flags.GetString(
        "mode", "optimize", "search mode: optimize | frontier");
    spec.min_detection = flags.GetDouble(
        "min-detection", spec.min_detection,
        "feasibility floor on the window detection probability");
    spec.pf = flags.GetDouble(
        "pf", spec.pf, "per-node per-awake-period false alarm probability");
    spec.max_fa = flags.GetDouble(
        "max-fa", spec.max_fa,
        "cap on P[system false alarm per window] (1 = unconstrained)");
    spec.min_lifetime_days = flags.GetDouble(
        "min-lifetime-days", spec.min_lifetime_days,
        "feasibility floor on the battery lifetime");
    spec.nodes =
        ParseAxisFlag(flags, "search-nodes", "fleet-size axis from:to[:step]");
    spec.k = ParseAxisFlag(flags, "search-k", "threshold axis from:to[:step]");
    spec.window = ParseAxisFlag(flags, "search-window",
                                "decision-window axis from:to[:step]");
    spec.period = ParseAxisFlag(flags, "search-period",
                                "sensing-period axis from:to[:step]");
    spec.duty =
        ParseAxisFlag(flags, "search-duty", "duty-cycle axis from:to[:step]");
    spec.energy.battery_joules = flags.GetDouble(
        "battery", spec.energy.battery_joules, "battery budget in joules");
    spec.energy.sense_cost_per_period =
        flags.GetDouble("sense-cost", spec.energy.sense_cost_per_period,
                        "joules per awake sensing period");
    spec.energy.idle_cost_per_period = flags.GetDouble(
        "idle-cost", spec.energy.idle_cost_per_period,
        "joules per asleep period");
    spec.energy.tx_cost_per_report_hop = flags.GetDouble(
        "tx-cost", spec.energy.tx_cost_per_report_hop,
        "joules to transmit one report one hop");
    spec.energy.rx_cost_per_report_hop = flags.GetDouble(
        "rx-cost", spec.energy.rx_cost_per_report_hop,
        "joules to receive one report one hop");
    spec.mean_hops = flags.GetDouble(
        "hops", spec.mean_hops, "mean route length to the base station");
    spec.refine_rounds = flags.GetInt(
        "refine-rounds", spec.refine_rounds,
        "step-halving local refinement rounds after the coarse sweep");

    const std::string spec_path = flags.GetString(
        "spec", "", "optimize spec JSON file (replaces spec-building flags)");
    const int deadline_ms = flags.GetInt(
        "deadline-ms", 0,
        "wall-clock budget; expiry yields a degraded partial result");
    const std::string memo_snapshot = flags.GetString(
        "memo-snapshot", "",
        "memo-cache snapshot file: load before the search, save after");
    engine::EngineOptions options = ParseEngineOptions(flags);
    flags.Finish();

    if (objective == "min_nodes") {
      spec.objective = opt::Objective::kMinNodes;
    } else if (objective == "min_energy") {
      spec.objective = opt::Objective::kMinEnergy;
    } else if (objective == "max_detection") {
      spec.objective = opt::Objective::kMaxDetection;
    } else {
      throw InvalidArgument(
          "--objective must be min_nodes, min_energy or max_detection");
    }
    if (mode == "optimize") {
      spec.mode = opt::SearchMode::kOptimize;
    } else if (mode == "frontier") {
      spec.mode = opt::SearchMode::kFrontier;
    } else {
      throw InvalidArgument("--mode must be optimize or frontier");
    }
    spec.deadline_ms = deadline_ms;

    opt::OptimizeSpec parsed;
    if (!spec_path.empty()) {
      static const char* kSpecFlags[] = {
          "field-width", "field-height", "nodes",        "rs",
          "rc",          "pd",           "period",       "speed",
          "window",      "k",            "gh",           "g",
          "normalize",   "reliability",  "objective",    "mode",
          "min-detection", "pf",         "max-fa",       "min-lifetime-days",
          "search-nodes", "search-k",    "search-window", "search-period",
          "search-duty", "battery",      "sense-cost",   "idle-cost",
          "tx-cost",     "rx-cost",      "hops",         "refine-rounds"};
      for (const char* name : kSpecFlags) {
        SPARSEDET_REQUIRE(!flags.Provided(name),
                          std::string("--") + name +
                              " conflicts with --spec (the file is the "
                              "whole spec)");
      }
      std::ifstream file(spec_path);
      SPARSEDET_REQUIRE(file.good(), "cannot open --spec " + spec_path);
      std::ostringstream text;
      text << file.rdbuf();
      parsed = opt::ParseOptimizeSpec(ParseJson(text.str()));
      if (flags.Provided("deadline-ms")) {
        SPARSEDET_REQUIRE(deadline_ms >= 0, "--deadline-ms must be >= 0");
        parsed.deadline_ms = deadline_ms;
      }
    } else {
      // One parse path: flag-built specs round-trip through the canonical
      // JSON so they get exactly the file-spec validation (domains, grid
      // cap) and nothing can drift.
      parsed = opt::ParseOptimizeSpec(opt::SpecToJson(spec));
    }

    if (!memo_snapshot.empty()) {
      try {
        prob::LoadMemoSnapshot(prob::MemoCache::Global(), memo_snapshot);
      } catch (const Error&) {
        // A missing or stale snapshot is a cold start, not a failure.
      }
    }

    engine::BatchEngine batch_engine(options);
    opt::SyncEngineBackend backend(batch_engine);
    opt::Optimizer optimizer(parsed, backend, &batch_engine.registry());
    const JsonValue result = optimizer.Run();
    opt::WriteOptimizeOutput(result, out);
    out.flush();

    if (!memo_snapshot.empty()) {
      prob::SaveMemoSnapshot(prob::MemoCache::Global(), memo_snapshot);
    }

    // Degraded (deadline) partials still exit 0 — the result says so; a
    // search that ran to completion and found nothing feasible exits 1.
    const JsonValue* feasible = result.Find("feasible");
    const JsonValue* degraded = result.Find("degraded");
    if (feasible != nullptr && feasible->AsDouble() == 0.0 &&
        degraded != nullptr && !degraded->AsBool()) {
      return 1;
    }
    return 0;
  });
}

int CmdAdapt(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);

    // Spec-building flags. All of them are consumed unconditionally (the
    // FlagParser contract), then rejected below if --spec names a file.
    adapt::AdaptSpec spec;
    spec.params = ParseScenario(flags);
    spec.options = ParseMsOptions(flags);
    const std::string mode = flags.GetString(
        "mode", "analyze", "adaptation mode: analyze | closed_loop");
    const std::string failure_model = flags.GetString(
        "failure-model", "exponential",
        "per-node lifetime family: exponential | weibull");
    spec.failure.mean_lifetime_s = flags.GetDouble(
        "mean-lifetime-s", spec.failure.mean_lifetime_s,
        "mean node lifetime in seconds (0 = immortal)");
    spec.failure.weibull_shape = flags.GetDouble(
        "shape", spec.failure.weibull_shape,
        "Weibull shape (1 = exponential; >1 wear-out)");
    spec.failure.report_loss_prob = flags.GetDouble(
        "report-loss", spec.failure.report_loss_prob,
        "i.i.d. report transport loss probability");
    spec.horizon_epochs = flags.GetInt(
        "horizon-epochs", spec.horizon_epochs,
        "adaptation epochs to run the controller for");
    spec.epoch_periods = flags.GetInt(
        "epoch-periods", spec.epoch_periods,
        "sensing periods per epoch (0 = one decision window)");
    spec.min_detection = flags.GetDouble(
        "min-detection", spec.min_detection,
        "detection floor the controller must hold");
    spec.pf = flags.GetDouble(
        "pf", spec.pf,
        "per-node per-period false alarm probability (and the quiescent "
        "report rate the estimator observes)");
    spec.max_fa = flags.GetDouble(
        "max-fa", spec.max_fa,
        "cap on P[system false alarm per window] (1 = unconstrained)");
    spec.k = ParseAxisFlag(flags, "search-k", "threshold axis from:to[:step]");
    spec.window = ParseAxisFlag(flags, "search-window",
                                "decision-window axis from:to[:step]");
    spec.margin = flags.GetDouble(
        "margin", spec.margin,
        "feasibility slack required before switching settings");
    spec.min_dwell_epochs = flags.GetInt(
        "min-dwell", spec.min_dwell_epochs,
        "epochs a feasible setting is held before switching");
    const std::string estimator = flags.GetString(
        "estimator", "oracle",
        "live-population source: oracle | reports");
    spec.estimator_windows = flags.GetInt(
        "estimator-windows", spec.estimator_windows,
        "epochs of report counts the estimator retains");
    spec.estimator_z = flags.GetDouble(
        "estimator-z", spec.estimator_z,
        "confidence multiplier for the population bounds");
    const double seed = flags.GetDouble(
        "seed", static_cast<double>(spec.sim_seed),
        "closed-loop trajectory / estimator / validation seed");
    spec.sim_trials = flags.GetInt(
        "trials", spec.sim_trials,
        "per-epoch Monte-Carlo validation trials (0 = skip)");

    const std::string spec_path = flags.GetString(
        "spec", "", "adapt spec JSON file (replaces spec-building flags)");
    const int deadline_ms = flags.GetInt(
        "deadline-ms", 0,
        "wall-clock budget; expiry yields a degraded partial result");
    const std::string memo_snapshot = flags.GetString(
        "memo-snapshot", "",
        "memo-cache snapshot file: load before the run, save after");
    engine::EngineOptions options = ParseEngineOptions(flags);
    flags.Finish();

    if (mode == "analyze") {
      spec.mode = adapt::AdaptMode::kAnalyze;
    } else if (mode == "closed_loop") {
      spec.mode = adapt::AdaptMode::kClosedLoop;
    } else {
      throw InvalidArgument("--mode must be analyze or closed_loop");
    }
    if (failure_model == "exponential") {
      spec.failure.kind = FailureKind::kExponential;
    } else if (failure_model == "weibull") {
      spec.failure.kind = FailureKind::kWeibull;
    } else {
      throw InvalidArgument(
          "--failure-model must be exponential or weibull");
    }
    if (estimator == "oracle") {
      spec.estimate_from_reports = false;
    } else if (estimator == "reports") {
      spec.estimate_from_reports = true;
    } else {
      throw InvalidArgument("--estimator must be oracle or reports");
    }
    SPARSEDET_REQUIRE(seed >= 0 && seed == std::floor(seed) && seed <= 9.0e15,
                      "--seed must be a non-negative integer");
    spec.sim_seed = static_cast<std::uint64_t>(seed);
    spec.deadline_ms = deadline_ms;

    adapt::AdaptSpec parsed;
    if (!spec_path.empty()) {
      static const char* kSpecFlags[] = {
          "field-width",  "field-height",      "nodes",
          "rs",           "rc",                "pd",
          "period",       "speed",             "window",
          "k",            "gh",                "g",
          "normalize",    "reliability",       "mode",
          "failure-model", "mean-lifetime-s",  "shape",
          "report-loss",  "horizon-epochs",    "epoch-periods",
          "min-detection", "pf",               "max-fa",
          "search-k",     "search-window",     "margin",
          "min-dwell",    "estimator",         "estimator-windows",
          "estimator-z",  "seed",              "trials"};
      for (const char* name : kSpecFlags) {
        SPARSEDET_REQUIRE(!flags.Provided(name),
                          std::string("--") + name +
                              " conflicts with --spec (the file is the "
                              "whole spec)");
      }
      std::ifstream file(spec_path);
      SPARSEDET_REQUIRE(file.good(), "cannot open --spec " + spec_path);
      std::ostringstream text;
      text << file.rdbuf();
      parsed = adapt::ParseAdaptSpec(ParseJson(text.str()));
      if (flags.Provided("deadline-ms")) {
        SPARSEDET_REQUIRE(deadline_ms >= 0, "--deadline-ms must be >= 0");
        parsed.deadline_ms = deadline_ms;
      }
    } else {
      // One parse path: flag-built specs round-trip through the canonical
      // JSON so they get exactly the file-spec validation (domains, caps)
      // and nothing can drift.
      parsed = adapt::ParseAdaptSpec(adapt::SpecToJson(spec));
    }

    if (!memo_snapshot.empty()) {
      try {
        prob::LoadMemoSnapshot(prob::MemoCache::Global(), memo_snapshot);
      } catch (const Error&) {
        // A missing or stale snapshot is a cold start, not a failure.
      }
    }

    engine::BatchEngine batch_engine(options);
    opt::SyncEngineBackend backend(batch_engine);
    const JsonValue result =
        adapt::AdaptRun(parsed, backend, &batch_engine.registry());
    adapt::WriteAdaptOutput(result, out);
    out.flush();

    if (!memo_snapshot.empty()) {
      prob::SaveMemoSnapshot(prob::MemoCache::Global(), memo_snapshot);
    }

    // Degraded (deadline) partials still exit 0 — the result says so; a
    // loop that ran to completion and could not hold the floor exits 1.
    const JsonValue* held = result.Find("held");
    const JsonValue* degraded = result.Find("degraded");
    if (held != nullptr && !held->AsBool() && degraded != nullptr &&
        !degraded->AsBool()) {
      return 1;
    }
    return 0;
  });
}

int CmdServeTcp(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    engine::EngineOptions options = ParseEngineOptions(flags);
    server::TcpServerOptions sopts;
    sopts.host = flags.GetString("host", "127.0.0.1", "listen address");
    sopts.port = flags.GetInt(
        "port", 0, "TCP port (0 = ephemeral; the bound port is printed)");
    sopts.max_connections = static_cast<std::size_t>(flags.GetInt(
        "max-connections", 64, "reject connections past this count"));
    sopts.tenant_qps = flags.GetDouble(
        "tenant-qps", 0.0,
        "per-tenant admitted requests/sec (0 = unlimited)");
    sopts.tenant_burst = flags.GetDouble(
        "tenant-burst", 0.0,
        "per-tenant token-bucket burst (0 = max(1, tenant-qps))");
    sopts.idle_timeout_ms = flags.GetInt(
        "idle-timeout-ms", 0, "close silent connections after this (0 = off)");
    sopts.memo_snapshot_path = flags.GetString(
        "memo-snapshot", "",
        "memo-cache snapshot file: load on start, save on drain");
    sopts.admin_port = flags.GetInt(
        "admin-port", -1,
        "admin HTTP port for /metrics /healthz /statusz /tracez "
        "(-1 = off, 0 = ephemeral)");
    sopts.admin_host =
        flags.GetString("admin-host", "127.0.0.1", "admin listen address");
    ConfigureLogging(flags);
    const bool stats = flags.GetBool(
        "stats", true, "emit a final {\"stats\":...} line after drain");
    flags.Finish();
    sopts.max_line_bytes = options.max_line_bytes;

    engine::BatchEngine batch_engine(options);
    server::TcpServer server(batch_engine, sopts);
    std::signal(SIGPIPE, SIG_IGN);
    g_drain_target = &server;
    std::signal(SIGTERM, HandleDrainSignal);
    std::signal(SIGINT, HandleDrainSignal);
    server.Start();
    out << "{\"listening\":{\"host\":\"" << sopts.host
        << "\",\"port\":" << server.port();
    if (server.admin_port() >= 0) {
      out << ",\"admin_port\":" << server.admin_port();
    }
    out << "}}" << std::endl;
    server.Run();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    g_drain_target = nullptr;
    if (stats) batch_engine.WriteStatsLine(out);
    out.flush();
    return 0;
  });
}

int CmdMetricsDump(const std::vector<std::string>& args, std::istream& in,
                   std::ostream& out, std::ostream& err) {
  return Guard(err, [&] {
    const std::vector<const char*> argv = ToArgv(args);
    FlagParser flags(static_cast<int>(argv.size()), argv.data(), 0);
    const std::string input = flags.GetString(
        "input", "-", "metrics snapshot JSON(L) file, or - for stdin");
    const std::string format = flags.GetString(
        "format", "table", "output format: table | prometheus | json");
    flags.Finish();
    SPARSEDET_REQUIRE(
        format == "table" || format == "prometheus" || format == "json",
        "--format must be table, prometheus or json");

    std::ifstream file;
    std::istream* source = &in;
    if (input != "-") {
      file.open(input);
      SPARSEDET_REQUIRE(file.good(), "cannot open --input " + input);
      source = &file;
    }

    // Accept either a bare metrics object or any enclosing object with a
    // "metrics" key ({"cmd":"stats"} responses). Scanning every line and
    // keeping the last match means whole serve transcripts can be piped in
    // unfiltered.
    JsonValue metrics;
    bool found = false;
    std::string line;
    while (std::getline(*source, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      JsonValue json;
      try {
        json = ParseJson(line);
      } catch (const Error&) {
        continue;
      }
      if (!json.is_object()) continue;
      if (const JsonValue* nested = json.Find("metrics");
          nested != nullptr && nested->is_object()) {
        metrics = *nested;
        found = true;
      } else if (json.Find("counters") != nullptr ||
                 json.Find("histograms") != nullptr) {
        metrics = json;
        found = true;
      }
    }
    SPARSEDET_REQUIRE(found,
                      "no metrics snapshot found in " +
                          (input == "-" ? std::string("stdin") : input));

    const obs::RegistrySnapshot snapshot =
        obs::RegistrySnapshot::FromJson(metrics);
    if (format == "prometheus") {
      out << snapshot.ToPrometheus();
    } else if (format == "json") {
      out << snapshot.ToJson().ToString() << "\n";
    } else {
      snapshot.ToTable().PrintText(out);
    }
    return 0;
  });
}

std::string Usage() {
  return
      "sparsedet — group based detection analysis for sparse sensor "
      "networks\n"
      "\n"
      "usage: sparsedet <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  analyze    analytical report for a scenario (M-S-approach & co)\n"
      "  simulate   Monte-Carlo detection probability\n"
      "  plan       smallest fleet meeting a detection + FA requirement\n"
      "  fa         system-level false alarm table vs threshold k\n"
      "  sweep      detection probability across one parameter\n"
      "  latency    first-passage (time-to-detection) distribution\n"
      "  trace      export one simulated trial as CSV\n"
      "  batch      evaluate a JSONL request stream, then exit\n"
      "  optimize   inverse search: cheapest deployment meeting constraints\n"
      "  adapt      self-healing loop: retune k/M as sensors die\n"
      "  serve      long-running JSONL request loop on stdin/stdout\n"
      "  serve-tcp  concurrent TCP JSONL server with admission control\n"
      "  metrics-dump  render a metrics snapshot as table/Prometheus/JSON\n"
      "\n"
      "scenario flags (all commands): --field-width --field-height --nodes\n"
      "  --rs --rc --pd --period --speed --window --k\n"
      "analyze: --gh --g --normalize --reliability\n"
      "simulate: --trials --seed --pf --reliability --motion --geometry "
      "--h\n"
      "plan: --target-detection --pf --max-fa --max-nodes\n"
      "fa: --pf --trials --max-k\n"
      "sweep: --param --from --to --step [--trials --csv]\n"
      "batch: --input --threads --solver-threads --cache-capacity "
      "--memo-cache-entries --unordered --passes --stats --trace "
      "--trace-file\n"
      "optimize: --spec <file> | (--objective --mode --min-detection --pf\n"
      "  --max-fa --min-lifetime-days --search-nodes/k/window/period/duty\n"
      "  (from:to[:step]) --battery --sense-cost --idle-cost --tx-cost\n"
      "  --rx-cost --hops --refine-rounds) [--deadline-ms --memo-snapshot\n"
      "  + engine flags] (docs/OPTIMIZER.md)\n"
      "adapt: --spec <file> | (--mode analyze|closed_loop --failure-model\n"
      "  exponential|weibull --mean-lifetime-s --shape --report-loss\n"
      "  --horizon-epochs --epoch-periods --min-detection --pf --max-fa\n"
      "  --search-k/window (from:to[:step]) --margin --min-dwell\n"
      "  --estimator oracle|reports --estimator-windows --estimator-z\n"
      "  --seed --trials) [--deadline-ms --memo-snapshot + engine flags]\n"
      "  (docs/RESILIENCE.md)\n"
      "serve: --threads --solver-threads --cache-capacity "
      "--memo-cache-entries --stats --trace --trace-file\n"
      "serve-tcp: serve flags plus --host --port --max-connections\n"
      "  --tenant-qps --tenant-burst --idle-timeout-ms --memo-snapshot\n"
      "  --admin-port --admin-host (HTTP /metrics /healthz /statusz "
      "/tracez)\n"
      "  --log-file --log-level --log-rate-limit (structured JSONL log)\n"
      "batch/serve/serve-tcp SLO flags: --slo-availability --slo-p99-ms "
      "--slo-window-s\n"
      "metrics-dump: --input --format\n"
      "(batch/serve request schema: docs/ENGINE.md; TCP serving: "
      "docs/SERVING.md;\n metrics + spans: docs/OBSERVABILITY.md)\n";
}

int Run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  if (argc < 2) {
    err << Usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  if (command == "analyze") return CmdAnalyze(args, out, err);
  if (command == "simulate") return CmdSimulate(args, out, err);
  if (command == "plan") return CmdPlan(args, out, err);
  if (command == "fa") return CmdFa(args, out, err);
  if (command == "sweep") return CmdSweep(args, out, err);
  if (command == "latency") return CmdLatency(args, out, err);
  if (command == "trace") return CmdTrace(args, out, err);
  if (command == "batch") return CmdBatch(args, std::cin, out, err);
  if (command == "optimize") return CmdOptimize(args, out, err);
  if (command == "adapt") return CmdAdapt(args, out, err);
  if (command == "serve") return CmdServe(args, std::cin, out, err);
  if (command == "serve-tcp") return CmdServeTcp(args, out, err);
  if (command == "metrics-dump") {
    return CmdMetricsDump(args, std::cin, out, err);
  }
  if (command == "help" || command == "--help") {
    out << Usage();
    return 0;
  }
  err << "unknown command: " << command << "\n\n" << Usage();
  return 2;
}

}  // namespace sparsedet::cli
