// Minimal command-line flag parsing for the sparsedet CLI.
//
// Supports `--name value` and `--name=value`. Flags are declared by the
// getters: each Get* call records the flag's name, default and help text so
// Usage() can print a complete reference. Unknown flags are an error
// (caught by Finish()), which keeps typos from silently running the
// default scenario.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sparsedet {

class FlagParser {
 public:
  // Parses argv[start..argc); throws InvalidArgument on malformed input
  // (e.g. a flag without a value).
  FlagParser(int argc, const char* const* argv, int start = 1);

  // Typed getters; each consumes (marks as recognized) its flag.
  double GetDouble(const std::string& name, double default_value,
                   const std::string& help);
  int GetInt(const std::string& name, int default_value,
             const std::string& help);
  bool GetBool(const std::string& name, bool default_value,
               const std::string& help);
  std::string GetString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help);

  // Throws InvalidArgument if any provided flag was never consumed.
  void Finish() const;

  // One line per declared flag: --name (default ...): help.
  std::string Usage() const;

  // True if the flag was provided on the command line.
  bool Provided(const std::string& name) const;

 private:
  std::string Raw(const std::string& name, const std::string& default_value,
                  const std::string& help, const std::string& type);

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  struct Declared {
    std::string name;
    std::string type;
    std::string default_value;
    std::string help;
  };
  std::vector<Declared> declared_;
};

}  // namespace sparsedet
