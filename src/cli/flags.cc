#include "cli/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace sparsedet {

FlagParser::FlagParser(int argc, const char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    SPARSEDET_REQUIRE(arg.rfind("--", 0) == 0,
                      "expected a --flag, got: " + arg);
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      SPARSEDET_REQUIRE(i + 1 < argc, "flag --" + arg + " needs a value");
      values_[arg] = argv[++i];
    }
  }
  for (const auto& [name, value] : values_) consumed_[name] = false;
}

std::string FlagParser::Raw(const std::string& name,
                            const std::string& default_value,
                            const std::string& help,
                            const std::string& type) {
  declared_.push_back({name, type, default_value, help});
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  consumed_[name] = true;
  return it->second;
}

double FlagParser::GetDouble(const std::string& name, double default_value,
                             const std::string& help) {
  std::ostringstream def;
  def << default_value;
  const std::string raw = Raw(name, def.str(), help, "float");
  char* end = nullptr;
  const double parsed = std::strtod(raw.c_str(), &end);
  SPARSEDET_REQUIRE(end != nullptr && *end == '\0' && !raw.empty(),
                    "--" + name + " expects a number, got: " + raw);
  return parsed;
}

int FlagParser::GetInt(const std::string& name, int default_value,
                       const std::string& help) {
  const std::string raw =
      Raw(name, std::to_string(default_value), help, "int");
  char* end = nullptr;
  const long parsed = std::strtol(raw.c_str(), &end, 10);
  SPARSEDET_REQUIRE(end != nullptr && *end == '\0' && !raw.empty(),
                    "--" + name + " expects an integer, got: " + raw);
  return static_cast<int>(parsed);
}

bool FlagParser::GetBool(const std::string& name, bool default_value,
                         const std::string& help) {
  const std::string raw =
      Raw(name, default_value ? "true" : "false", help, "bool");
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  SPARSEDET_REQUIRE(false, "--" + name + " expects true/false, got: " + raw);
  return false;  // unreachable
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value,
                                  const std::string& help) {
  return Raw(name, default_value, help, "string");
}

void FlagParser::Finish() const {
  for (const auto& [name, used] : consumed_) {
    SPARSEDET_REQUIRE(used, "unknown flag: --" + name);
  }
}

bool FlagParser::Provided(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::Usage() const {
  std::ostringstream os;
  for (const Declared& d : declared_) {
    os << "  --" << d.name << " <" << d.type << ">  (default "
       << d.default_value << ")  " << d.help << "\n";
  }
  return os.str();
}

}  // namespace sparsedet
