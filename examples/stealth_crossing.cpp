// Stealth crossing: what group based detection can and cannot promise.
//
// One fixed sparse deployment. Two kinds of crossers:
//   * uninformed — random straight crossings, the paper's model: detected
//     with the analytical probability;
//   * informed — an adversary who knows every sensor position and walks
//     the maximal breach path (coverage analysis). If the breach distance
//     exceeds Rs, this crosser is NEVER sensed, regardless of k, M or Pd.
// The example makes the contrast concrete on the ONR scenario.
#include <cstdio>

#include "common/rng.h"
#include "core/ms_approach.h"
#include "coverage/coverage.h"
#include "geometry/field.h"
#include "geometry/segment.h"
#include "sim/deployment.h"

using namespace sparsedet;

int main() {
  SystemParams params = SystemParams::OnrDefaults();
  params.num_nodes = 240;
  params.target_speed = 10.0;

  const Field field(params.field_width, params.field_height);
  Rng rng(8461);
  const std::vector<Vec2> nodes =
      DeployUniform(field, params.num_nodes, rng);

  // Uninformed crossers: the paper's analysis applies.
  const double random_detect =
      MsApproachAnalyze(params).detection_probability;
  std::printf("uninformed random crosser: P[detected] = %.4f "
              "(M-S-approach)\n",
              random_detect);

  // Informed crosser: walk the maximal breach path.
  const CoverageStats coverage =
      EstimateCoverage(field, nodes, params.sensing_range);
  const BreachResult breach = MaximalBreachPath(field, nodes);
  std::printf("deployment coverage: %.1f%% of the field within Rs "
              "(Poisson estimate %.1f%%)\n",
              coverage.covered_fraction * 100.0,
              coverage.poisson_estimate * 100.0);
  std::printf("maximal breach distance: %.0f m (= %.2f x Rs) over a "
              "%zu-cell path\n",
              breach.distance, breach.distance / params.sensing_range,
              breach.path.size());

  // Verify directly: walk the breach path and count sensing events.
  int sensed_segments = 0;
  for (std::size_t i = 1; i < breach.path.size(); ++i) {
    const Segment leg(breach.path[i - 1], breach.path[i]);
    for (const Vec2& node : nodes) {
      if (leg.WithinDistance(node, params.sensing_range)) {
        ++sensed_segments;
        break;
      }
    }
  }
  if (breach.distance > params.sensing_range) {
    std::printf("informed crosser on the breach path: sensed on %d of %zu "
                "legs -> never detected, no matter how k and M are tuned\n",
                sensed_segments, breach.path.size() - 1);
  } else {
    std::printf("informed crosser cannot avoid sensing (breach <= Rs); "
                "sensed on %d legs\n",
                sensed_segments);
  }
  std::printf("\nmoral: the paper's guarantees are probabilistic statements "
              "about uninformed targets;\ndenying informed crossings needs "
              "breach < Rs, i.e. a barrier-level density.\n");
  return sensed_segments == 0 ? 0 : 0;
}
