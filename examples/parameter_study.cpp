// Parameter study: the paper's stated purpose is to let a system designer
// "understand the impact of various system parameters in an easy way,
// without running extensive simulations". This example exercises exactly
// that: one analytical sweep per knob, each finishing in milliseconds.
#include <cstdio>

#include "core/ms_approach.h"
#include "core/single_period.h"

using namespace sparsedet;

namespace {

double Detect(SystemParams p) { return MsApproachAnalyze(p).detection_probability; }

void Sweep(const char* title, const char* unit) {
  std::printf("\n%s (%s)\n", title, unit);
}

}  // namespace

int main() {
  SystemParams base = SystemParams::OnrDefaults();
  base.num_nodes = 140;
  base.target_speed = 10.0;
  std::printf("baseline: N=140, Rs=1000m, V=10m/s, t=60s, k=5, M=20 -> "
              "P = %.4f\n", Detect(base));

  Sweep("1. fleet size N", "sensors");
  for (int n = 60; n <= 300; n += 40) {
    SystemParams p = base;
    p.num_nodes = n;
    std::printf("   N = %-4d P = %.4f\n", n, Detect(p));
  }

  Sweep("2. sensing range Rs", "m");
  for (double rs : {500.0, 750.0, 1000.0, 1500.0, 2000.0}) {
    SystemParams p = base;
    p.sensing_range = rs;
    p.comm_range = 3.0 * rs;  // keep the sparse premise Rc > 2 Rs
    std::printf("   Rs = %-6.0f P = %.4f\n", rs, Detect(p));
  }

  Sweep("3. decision threshold k (within M = 20)", "reports");
  for (int k = 1; k <= 9; k += 2) {
    SystemParams p = base;
    p.threshold_reports = k;
    std::printf("   k = %-3d P = %.4f\n", k, Detect(p));
  }

  Sweep("4. window length M (k = 5)", "periods");
  for (int m = 10; m <= 40; m += 5) {
    SystemParams p = base;
    p.window_periods = m;
    if (m <= p.Ms()) continue;
    std::printf("   M = %-3d P = %.4f\n", m, Detect(p));
  }

  Sweep("5. sensing period length t", "s");
  for (double t : {30.0, 60.0, 120.0, 240.0}) {
    SystemParams p = base;
    p.period_length = t;
    if (p.window_periods <= p.Ms()) continue;
    std::printf("   t = %-5.0f P = %.4f  (ms = %d)\n", t, Detect(p), p.Ms());
  }

  Sweep("6. single-period sanity (Section 3.1)", "-");
  SystemParams single = base;
  single.window_periods = 1;
  single.threshold_reports = 1;
  std::printf("   M = 1, k = 1 (instantaneous): P = %.4f — filters no "
              "false alarms\n",
              SinglePeriodDetectionProbability(single));
  std::printf("   M = 20, k = 5 (group based) : P = %.4f — and bounds the "
              "FA rate\n",
              Detect(base));
  return 0;
}
