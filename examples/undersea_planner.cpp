// Undersea surveillance deployment planner — the paper's motivating
// application (Section 1: "considering the high cost of an undersea sensor
// ... in the order of thousands of dollars, a sparse deployment achieves
// the tradeoff between the size of the surveillance area and the detection
// performance").
//
// Given a surveillance requirement (detect a submarine with >= 90%
// probability, keep the system false-alarm probability per 20-minute
// window under 1%), the planner:
//   1. picks the report threshold k from the node-level false alarm rate
//      (count-only bound, conservative for a track-gated detector);
//   2. sweeps the fleet size N with the M-S-approach until the detection
//      requirement is met, for both slow and fast targets;
//   3. verifies connectivity and report latency over the acoustic multi-hop
//      network substrate.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/false_alarm_model.h"
#include "core/ms_approach.h"
#include "geometry/field.h"
#include "net/delivery.h"
#include "net/topology.h"
#include "sim/deployment.h"

using namespace sparsedet;

int main() {
  constexpr double kRequiredDetection = 0.90;
  constexpr double kMaxSystemFa = 0.01;
  constexpr double kNodeFaRate = 5e-4;  // per node per sensing period

  SystemParams params = SystemParams::OnrDefaults();  // 32 km x 32 km sea

  // Step 1: choose k. With pf = 5e-4 and candidate fleets up to ~400
  // nodes, the count-only bound picks the k that even a gate-less base
  // station could use safely.
  params.num_nodes = 400;  // worst case for false alarms: largest fleet
  const int k = MinimumThresholdForFaRate(params, kNodeFaRate, kMaxSystemFa);
  params.threshold_reports = k;
  std::printf("step 1: node FA rate %.1e, window %d periods -> k = %d "
              "(count-only P_sysFA = %.4f)\n",
              kNodeFaRate, params.window_periods, k,
              CountOnlySystemFaProbability(params, kNodeFaRate));

  // Step 2: smallest fleet meeting the detection requirement.
  std::printf("step 2: fleet sweep (requirement: P_detect >= %.2f)\n",
              kRequiredDetection);
  std::printf("  %-6s %-12s %-12s\n", "N", "P(V=4m/s)", "P(V=10m/s)");
  int chosen_n = -1;
  for (int nodes = 60; nodes <= 400; nodes += 20) {
    params.num_nodes = nodes;
    params.target_speed = 4.0;
    const double slow = MsApproachAnalyze(params).detection_probability;
    params.target_speed = 10.0;
    const double fast = MsApproachAnalyze(params).detection_probability;
    std::printf("  %-6d %-12.4f %-12.4f\n", nodes, slow, fast);
    // The slow target is the harder case (smaller swept area).
    if (chosen_n < 0 && slow >= kRequiredDetection) chosen_n = nodes;
  }
  if (chosen_n < 0) {
    std::printf("  no fleet size up to 400 meets the requirement\n");
    return 1;
  }
  std::printf("  -> deploy N = %d sensors\n", chosen_n);

  // Step 3: verify the communication premise on sample deployments.
  params.num_nodes = chosen_n;
  const Field sea = Field::Square(params.field_width);
  const Rng base_rng(7);
  double worst_within = 1.0;
  int worst_hops = 0;
  for (int rep = 0; rep < 10; ++rep) {
    Rng rng = base_rng.Substream(rep);
    std::vector<Vec2> nodes = DeployUniform(sea, chosen_n, rng);
    nodes.push_back({sea.width() / 2.0, 0.0});  // surface buoy / base ship
    const Topology topology(std::move(nodes), params.comm_range);
    const DeliveryStats stats = EvaluateDelivery(
        topology, topology.num_nodes() - 1,
        /*per_hop_latency=*/6.0, params.period_length, /*use_greedy=*/false);
    worst_within = std::min(worst_within, stats.within_period_fraction);
    worst_hops = std::max(worst_hops, stats.max_hops);
  }
  std::printf("step 3: over 10 deployments, worst within-period delivery "
              "fraction = %.3f, max hops = %d\n",
              worst_within, worst_hops);
  std::printf("plan: N = %d sensors, k = %d of M = %d  (P_detect(V=4) >= "
              "%.2f, P_sysFA <= %.2f)\n",
              chosen_n, k, params.window_periods, kRequiredDetection,
              kMaxSystemFa);
  return 0;
}
