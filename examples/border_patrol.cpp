// Border surveillance with an online detector — the paper's second
// motivating application (Section 1: sparse cameras along a border,
// communication through tall antennae).
//
// A 40 km x 8 km border strip is covered by sparse sensors. A crosser
// follows a waypoint route through the strip while every sensor also emits
// occasional false alarms. The base station runs the track-gated window
// detector; the example prints the period-by-period picture: reports
// received, longest feasible chain, and the moment the system declares a
// detection.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "detect/track_gate.h"
#include "detect/window_detector.h"
#include "sim/trial.h"

using namespace sparsedet;

int main() {
  SystemParams params;
  params.field_width = 40000.0;
  params.field_height = 8000.0;
  params.num_nodes = 90;
  params.sensing_range = 1000.0;
  params.comm_range = 6000.0;
  params.detect_prob = 0.9;
  params.period_length = 60.0;
  params.target_speed = 3.0;  // a person / slow vehicle
  params.window_periods = 30;
  params.threshold_reports = 4;

  // The crosser enters mid-border and zig-zags toward the far side.
  const WaypointMotion route({{20000.0, 0.0},
                              {21500.0, 2500.0},
                              {20500.0, 5000.0},
                              {22000.0, 8000.0}});

  TrialConfig config;
  config.params = params;
  config.motion = &route;
  config.geometry = SensingGeometry::kPlanar;  // a real bounded strip
  config.false_alarm_prob = 2e-3;

  Rng rng(20080617);
  const TrialResult trial = RunTrial(config, rng);

  WindowDetector::Options options;
  options.k = params.threshold_reports;
  options.window = params.window_periods;
  options.use_track_gate = true;
  options.gate = TrackGateParams::FromSystem(params);
  options.gate.slack = 200.0;  // tolerance for localization error
  WindowDetector detector(options);

  std::printf("border strip %.0f x %.0f m, %d sensors, k = %d of M = %d "
              "(track-gated)\n\n",
              params.field_width, params.field_height, params.num_nodes,
              options.k, options.window);
  std::printf("%-7s %-6s %-6s %-28s %s\n", "period", "true", "false",
              "window chain (gated length)", "decision");

  std::size_t next = 0;
  int detected_at = -1;
  std::vector<SimReport> window;
  for (int period = 0; period < params.window_periods; ++period) {
    std::vector<SimReport> batch;
    while (next < trial.reports.size() &&
           trial.reports[next].period == period) {
      batch.push_back(trial.reports[next]);
      ++next;
    }
    int true_count = 0;
    int false_count = 0;
    for (const SimReport& r : batch) {
      (r.is_false_alarm ? false_count : true_count) += 1;
      window.push_back(r);
    }
    while (!window.empty() &&
           window.front().period < period - options.window + 1) {
      window.erase(window.begin());
    }
    const int chain = LongestTrackConsistentChain(window, options.gate);
    const bool hit = detector.ProcessPeriod(period, batch);
    if (hit && detected_at < 0) detected_at = period;
    std::printf("%-7d %-6d %-6d %-28d %s\n", period, true_count, false_count,
                chain, hit ? "DETECTED" : "-");
  }

  if (detected_at >= 0) {
    std::printf("\ncrosser declared at period %d (%.0f s after entering "
                "the strip)\n",
                detected_at, (detected_at + 1) * params.period_length);
  } else {
    std::printf("\ncrosser not detected within the window — rerun with a "
                "denser deployment\n");
  }
  return detected_at >= 0 ? 0 : 1;
}
