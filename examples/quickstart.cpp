// Quickstart: predict the detection performance of a sparse sensor network
// with the M-S-approach, and cross-check the prediction with a quick
// Monte-Carlo simulation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/ms_approach.h"
#include "sim/monte_carlo.h"

using namespace sparsedet;

int main() {
  // The ONR scenario from the paper: 240 sensor nodes scattered over a
  // 32 km x 32 km sea area, 1 km sensing range, a 10 m/s target, and a
  // base station that declares a detection when 5 reports arrive within
  // 20 one-minute sensing periods.
  SystemParams params = SystemParams::OnrDefaults();
  params.num_nodes = 240;
  params.target_speed = 10.0;

  // 1. Analytical prediction (milliseconds).
  const MsApproachResult analysis = MsApproachAnalyze(params);
  std::printf("M-S-approach analysis\n");
  std::printf("  ms (periods per sensing diameter) : %d\n", analysis.ms);
  std::printf("  Markov states                     : %d\n",
              analysis.num_states);
  std::printf("  predicted accuracy (Eq. 14)       : %.4f\n",
              analysis.predicted_accuracy);
  std::printf("  P[target detected]                : %.4f\n",
              analysis.detection_probability);

  // 2. Monte-Carlo cross-check (a second or two).
  TrialConfig config;
  config.params = params;
  MonteCarloOptions mc;
  mc.trials = 10000;
  const ProportionEstimate sim = EstimateDetectionProbability(config, mc);
  std::printf("simulation (%d trials)\n", mc.trials);
  std::printf("  P[target detected]                : %.4f  [%.4f, %.4f]\n",
              sim.point, sim.lo, sim.hi);

  // 3. What-if: how much detection probability does a slower target cost?
  params.target_speed = 4.0;
  std::printf("same network, 4 m/s target          : %.4f\n",
              MsApproachAnalyze(params).detection_probability);
  return 0;
}
