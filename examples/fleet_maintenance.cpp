// Fleet maintenance study: undersea sensors die over a deployment's life
// (flooding, batteries, fouling). Using the node-reliability extension and
// the latency analysis, this example answers two operational questions:
//   1. When does cumulative attrition push the fleet below its detection
//      requirement — i.e. when must a maintenance cruise replenish it?
//   2. How does attrition stretch the time-to-detection (latency)?
#include <cmath>
#include <cstdio>

#include "core/latency.h"
#include "core/ms_approach.h"

using namespace sparsedet;

int main() {
  SystemParams params = SystemParams::OnrDefaults();
  params.num_nodes = 300;          // deployed fleet
  params.target_speed = 4.0;       // slow intruder: the hard case
  constexpr double kRequirement = 0.75;
  constexpr double kMonthlyLoss = 0.03;  // 3% of nodes fail per month

  std::printf("fleet: %d sensors, requirement P[detect] >= %.2f (V = 4 "
              "m/s), attrition %.0f%%/month\n\n",
              params.num_nodes, kRequirement, kMonthlyLoss * 100.0);
  std::printf("%-7s %-12s %-11s %-16s %-18s\n", "month", "reliability",
              "P[detect]", "mean latency", "90th pct latency");

  int replenish_month = -1;
  for (int month = 0; month <= 24; month += 2) {
    const double reliability = std::pow(1.0 - kMonthlyLoss, month);
    MsApproachOptions opt;
    opt.node_reliability = reliability;

    const double detect =
        MsApproachAnalyze(params, opt).detection_probability;
    const LatencyDistribution latency = DetectionLatency(params, opt);

    std::printf("%-7d %-12.3f %-11.4f %-16.2f %-18d\n", month, reliability,
                detect, latency.MeanConditionalLatency(),
                latency.ConditionalQuantile(0.9));
    if (replenish_month < 0 && detect < kRequirement) {
      replenish_month = month;
    }
  }

  if (replenish_month >= 0) {
    std::printf("\nschedule a maintenance cruise before month %d — the "
                "fleet drops below the %.2f requirement there.\n",
                replenish_month, kRequirement);
  } else {
    std::printf("\nthe fleet meets the requirement for the full 24-month "
                "horizon.\n");
  }
  return 0;
}
