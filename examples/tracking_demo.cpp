// Tracking demo: the full base-station pipeline on one scenario —
// detection reports stream in, the track gate accepts a chain, the system
// declares a detection and then ESTIMATES the intruder's track, which is
// what an operator actually wants ("where is it heading, how fast?").
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "detect/track_estimate.h"
#include "detect/track_gate.h"
#include "sim/trial.h"

using namespace sparsedet;

int main() {
  SystemParams params = SystemParams::OnrDefaults();
  params.num_nodes = 200;
  params.target_speed = 10.0;

  TrialConfig config;
  config.params = params;
  config.geometry = SensingGeometry::kPlanar;  // a real bounded sea area

  // Find a seed whose trial is detected (most are at this density).
  const Rng base(424242);
  for (int attempt = 0; attempt < 50; ++attempt) {
    Rng rng = base.Substream(attempt);
    const TrialResult trial = RunTrial(config, rng);
    // Pick a trial with enough geometry to estimate from: plenty of
    // reports, several distinct nodes, and a usable time span.
    if (trial.total_true_reports < 8 || trial.distinct_true_nodes < 4) {
      continue;
    }
    int min_p = 1 << 30;
    int max_p = -1;
    for (const SimReport& r : trial.reports) {
      min_p = std::min(min_p, r.period);
      max_p = std::max(max_p, r.period);
    }
    if (max_p - min_p < 5) continue;

    const TrackGateParams gate = TrackGateParams::FromSystem(params);
    const int chain = LongestTrackConsistentChain(trial.reports, gate);
    std::printf("trial %d: %d reports from %d nodes, longest feasible "
                "chain %d (k = %d) -> DETECTED\n\n",
                attempt, trial.total_true_reports, trial.distinct_true_nodes,
                chain, params.threshold_reports);

    std::printf("reports (period, node, position):\n");
    for (const SimReport& r : trial.reports) {
      std::printf("  p=%-3d n=%-4d (%8.0f, %8.0f)\n", r.period, r.node,
                  r.node_pos.x, r.node_pos.y);
    }

    const TrackEstimate fit =
        FitConstantVelocityTrack(trial.reports, params.period_length);
    const Vec2 true_v = (trial.target_path[1] - trial.target_path[0]) /
                        params.period_length;
    std::printf("\nestimated track: speed %.2f m/s heading %.1f deg, "
                "residual %.0f m\n",
                fit.Speed(),
                std::atan2(fit.velocity.y, fit.velocity.x) * 180.0 / M_PI,
                fit.rms_residual);
    std::printf("true track     : speed %.2f m/s heading %.1f deg\n",
                true_v.Norm(),
                std::atan2(true_v.y, true_v.x) * 180.0 / M_PI);
    // Evaluate at the center of the OBSERVED span; extrapolating beyond
    // the reports inflates any estimator's error.
    const int mid_period = (min_p + max_p) / 2;
    const double mid_t = (mid_period + 0.5) * params.period_length;
    const Vec2 true_mid = (trial.target_path[mid_period] +
                           trial.target_path[mid_period + 1]) /
                          2.0;
    std::printf("position error at the track's midpoint: %.0f m (sensing "
                "range is %.0f m)\n",
                fit.PositionAt(mid_t).DistanceTo(true_mid),
                params.sensing_range);
    return 0;
  }
  std::printf("no detected trial among the attempted seeds\n");
  return 1;
}
