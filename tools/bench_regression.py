#!/usr/bin/env python3
"""Diff a fresh bench artifact against the committed perf baseline.

CI runs the Release benches and collects their BENCH_JSON lines into
bench_ci.json (one JSON object per line). This tool compares the fresh
numbers against the newest committed BENCH_PR<N>.json in the repo root and
fails (exit 1) when a guarded throughput metric regressed by more than the
allowed fraction (default 20%):

  * net_serve.requests_per_s        — TCP serve-mode sustained throughput
  * engine_batch max units_per_s    — best batch-engine config
  * optimize max candidates_per_s   — best optimizer search config

Relative regressions fail the build: CI machines are slower and noisier
than the machines that produced the baseline, so the throughput gate is a
ratio against the baseline recorded in-tree, not an absolute bar. Two
hardware-independent *ratios* are additionally gated as absolute floors on
the fresh artifact (see check_floors): the cold M-S solve speedup vs the
pinned PR5 baseline (>= 5x) and, on multicore hosts, the hw-thread pool
beating the 1-thread pool (strictly > 1x).

A missing baseline, or a metric absent from the *baseline*, is a SKIP
with a notice (exit 0), never a traceback: older baselines predate newer
benches. A metric present in the baseline but absent from the *fresh*
artifact is a failure — CI runs every guarded bench, so a metric that
stops being emitted (bench dropped from the workflow, metric key renamed)
is lost coverage, not a benign skip.

Usage:
  tools/bench_regression.py --fresh bench_ci.json [--baseline BENCH_PR6.json]
      [--threshold 0.20] [--repo-root .]
"""

import argparse
import json
import re
import sys
from pathlib import Path


def load_fresh(path):
    """Parses a fresh artifact: JSONL of BENCH_JSON objects, or a single
    JSON object/BENCH_PR-style document. Unreadable files and malformed
    lines degrade to an empty/partial dict rather than a traceback."""
    try:
        text = Path(path).read_text()
    except OSError as err:
        print(f"bench-regression: cannot read {path}: {err}")
        return {}
    benches = {}
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if "bench" in doc:
            benches[doc["bench"]] = doc
        else:  # BENCH_PR-style: named sections
            for value in doc.values():
                if isinstance(value, dict) and "bench" in value:
                    benches[value["bench"]] = value
        return benches
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            print(f"bench-regression: skipping unparseable line in {path}")
            continue
        if isinstance(obj, dict) and "bench" in obj:
            benches[obj["bench"]] = obj
    return benches


def find_baseline(repo_root):
    """The highest-numbered committed BENCH_PR<N>.json."""
    best, best_n = None, -1
    for path in Path(repo_root).glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match and int(match.group(1)) > best_n:
            best, best_n = path, int(match.group(1))
    return best


def metric_net_serve(benches):
    bench = benches.get("net_serve", {})
    value = bench.get("requests_per_s")
    return None if value is None else float(value)


def max_config_rate(benches, bench_name, key):
    """Best per-config rate, ignoring configs that lack the key."""
    configs = benches.get(bench_name, {}).get("configs", [])
    rates = [float(c[key]) for c in configs
             if isinstance(c, dict) and c.get(key) is not None]
    return max(rates) if rates else None


def metric_engine_batch(benches):
    return max_config_rate(benches, "engine_batch", "units_per_s")


def metric_optimize(benches):
    return max_config_rate(benches, "optimize", "candidates_per_s")


def metric_adapt(benches):
    return max_config_rate(benches, "adapt", "epochs_per_s")


METRICS = [
    ("net_serve.requests_per_s", metric_net_serve),
    ("engine_batch.max_units_per_s", metric_engine_batch),
    ("optimize.max_candidates_per_s", metric_optimize),
    ("adapt.max_epochs_per_s", metric_adapt),
]


def bench_field(benches, bench_name, key):
    value = benches.get(bench_name, {}).get(key)
    return None if value is None else float(value)


# Absolute floors checked on the FRESH artifact only — these encode the
# PR10 acceptance bars (SIMD kernel speedup, pool scaling), not a ratio
# against a baseline, so they hold even when CI hardware drifts.
#
#   name                  key in engine_batch   floor  comparison
#   full_ms_speedup_vs_pr5  cold solve vs the pinned PR5 ns/solve, >= 5.0
#   hw_vs_1thread           pool scaling on multicore hosts, strictly > 1.0
#
# full_ms_speedup_vs_pr5 is emitted unconditionally, so its absence from a
# fresh artifact is lost coverage (fail). hw_vs_1thread is only emitted
# when hardware_concurrency() > 1; single-core runners legitimately omit
# it (bench reports hw_threads), so absence there is a SKIP, not a fail.
def check_floors(fresh):
    failures = 0
    speedup = bench_field(fresh, "engine_batch", "full_ms_speedup_vs_pr5")
    if speedup is None:
        print("  engine_batch.full_ms_speedup_vs_pr5 MISSING "
              "(floor 5.0; bench emits it unconditionally — lost coverage)")
        failures += 1
    else:
        verdict = "ok" if speedup >= 5.0 else "BELOW FLOOR"
        print(f"  engine_batch.full_ms_speedup_vs_pr5 {speedup:12.2f}  "
              f"(floor 5.00)  {verdict}")
        if verdict != "ok":
            failures += 1

    scaling = bench_field(fresh, "engine_batch", "hw_vs_1thread")
    hw_threads = bench_field(fresh, "engine_batch", "hw_threads")
    if scaling is None:
        if hw_threads is not None and hw_threads > 1:
            print(f"  engine_batch.hw_vs_1thread       MISSING "
                  f"(host reports {hw_threads:.0f} hw threads — the bench "
                  f"should have emitted it)")
            failures += 1
        else:
            print("  engine_batch.hw_vs_1thread       SKIP "
                  "(single-core host)")
    else:
        verdict = "ok" if scaling > 1.0 else "BELOW FLOOR"
        print(f"  engine_batch.hw_vs_1thread       {scaling:12.2f}  "
              f"(floor >1.00 strict)  {verdict}")
        if verdict != "ok":
            failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="fresh artifact (bench_ci.json)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file; default: newest BENCH_PR*.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed fractional drop (default 0.20)")
    parser.add_argument("--repo-root", default=".",
                        help="where to look for BENCH_PR*.json")
    args = parser.parse_args()

    baseline_path = args.baseline or find_baseline(args.repo_root)
    if baseline_path is None:
        print("bench-regression: no committed BENCH_PR*.json baseline; "
              "nothing to compare against")
        return 0
    fresh = load_fresh(args.fresh)
    baseline = load_fresh(baseline_path)
    print(f"bench-regression: {args.fresh} vs {baseline_path} "
          f"(threshold {args.threshold:.0%})")

    failures = 0
    for name, extract in METRICS:
        base = extract(baseline)
        now = extract(fresh)
        if base is None:
            print(f"  {name:32} SKIP (not in baseline)")
            continue
        if now is None:
            print(f"  {name:32} MISSING (baseline {base:.1f}, absent from "
                  f"fresh artifact — lost bench coverage)")
            failures += 1
            continue
        ratio = now / base
        verdict = "ok" if ratio >= 1.0 - args.threshold else "REGRESSED"
        print(f"  {name:32} {base:12.1f} -> {now:12.1f}  "
              f"({ratio - 1.0:+.1%})  {verdict}")
        if verdict != "ok":
            failures += 1

    print("absolute floors (fresh artifact only):")
    failures += check_floors(fresh)

    if failures:
        print(f"bench-regression: {failures} metric(s) regressed more than "
              f"{args.threshold:.0%}, fell below an absolute floor, or "
              f"went missing")
        return 1
    print("bench-regression: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
