#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace sparsedet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.Uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.UniformInt(0), InvalidArgument);
}

TEST(Rng, BernoulliEdgesAndRate) {
  Rng rng(23);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SubstreamsAreIndependentAndStable) {
  const Rng base(99);
  Rng s0 = base.Substream(0);
  Rng s0_again = base.Substream(0);
  Rng s1 = base.Substream(1);
  EXPECT_EQ(s0(), s0_again());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0() == s1()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SubstreamDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.Substream(123);
  EXPECT_EQ(a(), b());
}

TEST(ParallelFor, RunsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  ParallelFor(10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
              /*threads=*/1);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool called = false;
  ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(ParallelFor(100,
                           [](std::size_t i) {
                             if (i == 37) throw InvalidArgument("boom");
                           },
                           4),
               InvalidArgument);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::atomic<int> count{0};
  ParallelFor(3, [&](std::size_t) { count.fetch_add(1); }, 16);
  EXPECT_EQ(count.load(), 3);
}

TEST(Checks, RequireThrowsInvalidArgument) {
  EXPECT_THROW(SPARSEDET_REQUIRE(false, "message"), InvalidArgument);
  EXPECT_NO_THROW(SPARSEDET_REQUIRE(true, "message"));
}

TEST(Checks, CheckThrowsInternalError) {
  EXPECT_THROW(SPARSEDET_CHECK(false, "message"), InternalError);
}

TEST(Checks, MessagesCarryContext) {
  try {
    SPARSEDET_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  sw.Restart();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(Stopwatch, LapReturnsNanosAndRestarts) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  const std::int64_t first = sw.Lap();
  EXPECT_GT(first, 0);  // the loop above took measurable time
  // Lap restarted the watch: the second lap measures only its own
  // interval, so consecutive laps partition the run.
  const std::int64_t second = sw.Lap();
  EXPECT_GE(second, 0);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(Table, PrintsAlignedText) {
  Table t({"name", "value"});
  t.BeginRow();
  t.AddCell("alpha");
  t.AddNumber(1.5, 2);
  t.BeginRow();
  t.AddCell("b");
  t.AddInt(42);
  std::ostringstream os;
  t.PrintText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.BeginRow();
  t.AddCell("x,y");
  t.AddCell("quote\"inside");
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, RejectsIncompleteRows) {
  Table t({"a", "b"});
  t.BeginRow();
  t.AddCell("only one");
  EXPECT_THROW(t.BeginRow(), InvalidArgument);
  std::ostringstream os;
  EXPECT_THROW(t.PrintText(os), InvalidArgument);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a"});
  t.BeginRow();
  t.AddCell("1");
  EXPECT_THROW(t.AddCell("2"), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(FormatDouble, Rendering) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(std::nan(""), 3), "nan");
}

}  // namespace
}  // namespace sparsedet
